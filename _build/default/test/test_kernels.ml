(** Workload-level tests: every Livermore kernel, application program
    and suite entry compiles, validates against the interpreter, and
    satisfies the paper's qualitative claims (pipelining decisions,
    performance ordering). Marked [`Slow] where the simulation is
    long. *)

module C = Sp_core.Compile
module Kernel = Sp_kernels.Kernel

let warp = Sp_machine.Machine.warp

let check_kernel k () =
  let m = Kernel.run warp k in
  Alcotest.(check bool)
    (k.Kernel.name ^ " semantics") true m.Kernel.sem_ok;
  Alcotest.(check bool)
    (k.Kernel.name ^ " resources") true m.Kernel.resource_ok

let livermore_cases =
  List.map
    (fun k -> ("LFK " ^ k.Kernel.name, `Slow, check_kernel k))
    Sp_kernels.Livermore.all

let app_cases =
  List.map
    (fun (k, _) -> ("app " ^ k.Kernel.name, `Slow, check_kernel k))
    Sp_kernels.Apps.all

let test_suite_counts () =
  let total, cond = Sp_kernels.Suite.counts () in
  Alcotest.(check int) "72 programs" 72 total;
  Alcotest.(check int) "42 with conditionals" 42 cond

(* a sample of the suite (the full population runs in the bench) *)
let suite_sample_cases =
  List.filteri (fun i _ -> i mod 9 = 0) Sp_kernels.Suite.all
  |> List.map (fun (e : Sp_kernels.Suite.entry) ->
         ( "suite " ^ e.Sp_kernels.Suite.kernel.Kernel.name,
           `Slow,
           check_kernel e.Sp_kernels.Suite.kernel ))

(* ---- qualitative claims ---------------------------------------------- *)

let pipelined m =
  List.exists (fun (lr : C.loop_report) -> lr.C.status = C.Pipelined)
    m.Kernel.loops

let test_lfk22_not_pipelined () =
  (* the EXP expansion takes the body over the threshold *)
  let m = Kernel.run warp Sp_kernels.Livermore.k22_planckian in
  Alcotest.(check bool) "not pipelined" false (pipelined m);
  Alcotest.(check bool) "over threshold" true
    (List.exists
       (fun (lr : C.loop_report) -> lr.C.status = C.Over_threshold)
       m.Kernel.loops)

let test_lfk20_not_profitable () =
  let m = Kernel.run warp Sp_kernels.Livermore.k20_discrete_ordinates in
  Alcotest.(check bool) "division recurrence blocks pipelining" false
    (pipelined m)

let test_recurrence_vs_parallel_mflops () =
  (* the Table 4-2 shape: the parallel equation-of-state kernel far
     outruns the serial recurrences *)
  let eos = Kernel.run warp Sp_kernels.Livermore.k7_eos in
  let tri = Kernel.run warp Sp_kernels.Livermore.k5_tridiag in
  let sum = Kernel.run warp Sp_kernels.Livermore.k11_first_sum in
  Alcotest.(check bool) "eos > 5 MFLOPS" true (eos.Kernel.mflops > 5.0);
  Alcotest.(check bool) "tridiag < 1.5 MFLOPS" true (tri.Kernel.mflops < 1.5);
  Alcotest.(check bool) "first-sum ~ 5/7 MFLOPS" true
    (sum.Kernel.mflops > 0.5 && sum.Kernel.mflops < 1.0)

let test_lfk_efficiencies () =
  (* most kernels pipeline at their lower bound (the 75% claim is over
     the whole population; here: the clean vector kernels do) *)
  List.iter
    (fun k ->
      let m = Kernel.run warp k in
      Alcotest.(check (float 0.001))
        (k.Kernel.name ^ " efficiency")
        1.0 (Kernel.efficiency m))
    [ Sp_kernels.Livermore.k1_hydro; Sp_kernels.Livermore.k3_inner_product;
      Sp_kernels.Livermore.k7_eos; Sp_kernels.Livermore.k12_first_diff ]

let test_matmul_near_peak () =
  (* the systolic cell sustains close to one multiply-add per cycle *)
  let k, _ = List.hd Sp_kernels.Apps.all in
  let m = Kernel.run warp k in
  Alcotest.(check bool)
    (Printf.sprintf "matmul %.2f MFLOPS > 8" m.Kernel.mflops)
    true
    (m.Kernel.mflops > 8.0);
  Alcotest.(check bool) "II = 1" true
    (List.exists (fun (lr : C.loop_report) -> lr.C.ii = Some 1) m.Kernel.loops)

let test_average_speedup_band () =
  (* a fast sample of Figure 4-2's headline: average speed-up around 3x *)
  let sample = List.filteri (fun i _ -> i mod 6 = 0) Sp_kernels.Suite.all in
  let sps =
    List.map
      (fun (e : Sp_kernels.Suite.entry) ->
        let f, piped, local = Kernel.speedup warp e.Sp_kernels.Suite.kernel in
        Alcotest.(check bool) (piped.Kernel.kernel ^ " valid") true
          (piped.Kernel.sem_ok && local.Kernel.sem_ok);
        f)
      sample
  in
  let avg = List.fold_left ( +. ) 0.0 sps /. float_of_int (List.length sps) in
  Alcotest.(check bool)
    (Printf.sprintf "average %.2f in [2, 6]" avg)
    true
    (avg >= 2.0 && avg <= 6.0)

let suite =
  [
    ("suite counts (72/42)", `Quick, test_suite_counts);
    ("LFK22 rejected (threshold)", `Slow, test_lfk22_not_pipelined);
    ("LFK20 rejected (recurrence)", `Slow, test_lfk20_not_profitable);
    ("recurrence vs parallel MFLOPS", `Slow, test_recurrence_vs_parallel_mflops);
    ("efficiency at bound", `Slow, test_lfk_efficiencies);
    ("matmul near peak", `Slow, test_matmul_near_peak);
    ("average speed-up band", `Slow, test_average_speedup_band);
  ]
  @ livermore_cases @ app_cases @ suite_sample_cases
