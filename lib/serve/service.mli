(** The compile service: request/response model, wire framing and the
    in-process engine the [w2cd] daemon and [bench --table serve] /
    [--table slo] share.

    Wire protocol (over a Unix-domain stream socket): each message is
    one {e frame} — a 4-byte big-endian payload length followed by the
    payload bytes. Requests and responses are framed identically; a
    connection carries any number of request frames and receives
    exactly one response frame per request, {e in request order}.

    Request payloads (first line is the verb; the rest is the body):
    - [compile MACHINE[ inject=SITE@K][ trace=ID]\n<W2 source>] —
      compile the source for MACHINE (warp, toy, serial, warpNx). The
      optional inject token arms a deterministic fault for this
      request only; the optional trace id (any token without spaces or
      newlines) asks for the request's span tree back.
    - [stats] — cache statistics as JSON (schema [w2cd-stats/2]).
    - [status] — the daemon's health snapshot as JSON (schema
      [w2cd-status/1]): uptime in requests, request/error counters, an
      error-budget verdict, rolling telemetry series windows
      ({!Sp_obs.Series}) and cache occupancy.
    - [dashboard] — a self-contained HTML dashboard of the same
      telemetry ({!Sp_obs.Render.dashboard}).
    - [ping] — liveness probe; answers [pong].

    Response payloads: [ok\n<body>] or [error\n<message>]. An untraced
    compile body is byte-identical to offline [w2c compile FILE]
    stdout — the CI round-trip smoke compares them with [cmp]. A
    {e traced} compile body is instead a JSON envelope (schema
    [w2cd-trace/1]) carrying the trace id, the request sequence
    number, the span tree (decode → fingerprint → cache probe →
    schedule → verify → encode phases, with durations in µs) and the
    ordinary compile output under ["output"]. Error messages carry the
    request's identity ([... [req N]] or [... [req N trace=ID]]) so a
    failure is attributable from the payload alone.

    {b Telemetry and determinism.} The engine stamps every admitted
    request with a logical sequence number and records latency, batch
    occupancy, failure/fault outcomes and per-batch cache movement
    into {!Sp_obs.Series} ring buffers keyed by that logical clock —
    wall time appears only as series values, never in the window
    structure, so counter-valued snapshots are deterministic functions
    of the request stream. Telemetry can be disabled at {!create}
    ([~telemetry:false]), which restores the PR 7 request path
    byte-for-byte with no clock reads (the E14 zero-cost guard
    measures this). *)

type request =
  | Compile of {
      machine : string;
      inject : (string * int) option;
      trace : string option;
      source : string;
    }
  | Stats
  | Status
  | Dashboard
  | Ping

type response = Ok of string | Err of string

(** {1 Payload codec} (pure, unit-testable without sockets) *)

val render_request : request -> string
val parse_request : string -> (request, string) result
val render_response : response -> string
val parse_response : string -> response
(** A malformed response payload parses as [Err]. *)

(** {1 Frame I/O} *)

module Frame : sig
  val max_len : int
  (** Refuse frames above this (16 MiB) — a corrupt length prefix must
      not allocate unboundedly. *)

  val write : Unix.file_descr -> string -> unit
  val read : Unix.file_descr -> string option
  (** [None] on clean EOF before the first length byte; raises
      [Failure] on a truncated or oversized frame. *)
end

(** {1 Schema tags} *)

val stats_schema : string
val status_schema : string
val trace_schema : string
val reqlog_schema : string

(** {1 The engine} *)

type t

val create :
  ?cache_capacity:int ->
  ?jobs:int ->
  ?telemetry:bool ->
  ?log:out_channel ->
  unit ->
  t
(** [cache_capacity] defaults to 256 ([0] disables the schedule cache);
    [jobs] is the domain-pool width requests batch onto (default 1);
    [telemetry] (default true) enables the sequence clock and rolling
    series; [log] appends one JSON line per request (schema
    [w2cd-reqlog/1]: seq, verb, trace id, outcome, error message,
    latency, span tree when traced) — it requires telemetry and is
    flushed per batch. *)

val close : t -> unit
(** Shut the pool down. The service must not be used afterwards. *)

val cache : t -> Cache.t option
(** The underlying schedule cache ([None] when disabled), for harnesses
    that read hit rates directly. *)

val handle : t -> request -> response

val handle_batch : t -> request list -> response list
(** Responses in request order. Requests run concurrently on the pool —
    except when any request of the batch arms a fault or carries a
    trace id, in which case the whole batch runs sequentially on the
    calling domain: an armed site must not leak into a sibling request,
    and a traced request's span tree (cache probes included) must
    depend only on the requests admitted before it, never on worker
    scheduling — that is what makes the tree identical at any [jobs]
    width. *)

val stats_json : t -> string
(** The [stats] response body. *)

val status_json : t -> string
(** The [status] response body. *)

val dashboard_html : t -> string
(** The [dashboard] response body. *)

val telemetry_seq : t -> int
(** Requests admitted so far (0 when telemetry is off) — the logical
    clock harnesses key artifacts on. *)
