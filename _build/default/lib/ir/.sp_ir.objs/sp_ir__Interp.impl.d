lib/ir/interp.ml: List Machine_state Op Program Region Semantics
