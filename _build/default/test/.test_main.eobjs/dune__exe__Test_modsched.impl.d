test/test_modsched.ml: Alcotest Array List Memseg Op QCheck2 QCheck_alcotest Sp_core Sp_ir Sp_machine Subscript Vreg
