(** Seeded generation of W2 source programs for the differential
    campaign. Deterministic in the seed (private LCG stream, no hash
    tables): same seed, same program, byte for byte. Generated programs
    over-weight scheduler edge cases — zero-/single-trip loops, empty
    bodies, runtime trip counts, nesting, carried stores, max-latency
    operation chains — and never use channels, so banked repros replay
    without input streams. *)

val generate : seed:int -> Ast.program
(** The deterministic program for [seed]. All array subscripts are in
    bounds by construction, and every scalar is assigned before use. *)

val print : Ast.program -> string
(** Render back to parseable W2 source: [Parser.parse (print p)]
    succeeds and is structurally {!equal_program} to [p] for any
    program the parser itself can produce (fully parenthesized
    expressions, always-braced bodies, float literals that re-lex
    exactly). *)

val pp_program : Ast.program Fmt.t

val equal_program : Ast.program -> Ast.program -> bool
(** Structural equality ignoring source positions (NaN-safe on float
    literals). *)

val size : Ast.program -> int
(** AST node count — the minimizer's strictly-decreasing metric. *)

val expr_size : Ast.expr -> int
val stmt_size : Ast.stmt -> int

val eint : int -> Ast.expr
(** An integer literal expression; negatives are built as unary minus,
    matching how the parser reads them. *)

val efloat : float -> Ast.expr
