(** Minimal JSON values with a deterministic serializer and a strict
    parser.

    Objects preserve insertion order on output — serialization is a
    pure function of construction order, so two runs that build the
    same report produce byte-identical files (the benchmark harness
    diffs its own output for schema stability). No external JSON
    dependency is used anywhere in the repository. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; serialized with a ["."] or exponent *)
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** key order preserved *)

val to_string : ?pretty:bool -> t -> string
(** [pretty] indents with two spaces; default is compact. Raises
    [Invalid_argument] on a non-finite float. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit
(** {!to_string} followed by a final newline. *)

exception Parse_error of string
(** Position-annotated message, ["line L, column C: ..."] with 1-based
    line and column of the offending character. *)

val of_string : string -> t
(** Strict parser for the output of {!to_string} (and ordinary JSON:
    numbers, strings with escapes including [\uXXXX], arrays, objects).
    Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup in an object; [None] on missing key or non-object. *)

val path : string list -> t -> t option
(** Nested {!member} lookup. *)
