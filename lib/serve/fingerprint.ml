(** Structural fingerprints of (DDG, machine) pairs — see the mli for
    the contract.

    Canonicalization runs in three steps:

    1. A {e local descriptor} per unit: every scheduling-relevant fact
       the unit carries on its own — length, no-wrap/barrier flags,
       sorted reservations, payload kind, and the (time, class) shape
       of its register accesses {e in intrinsic list order} (operand
       order is structure, not naming, so it survives alpha-renaming).
       Register identities are deliberately absent here; they reach the
       fingerprint through edges and through the final first-occurrence
       renumbering.

    2. {e Neighborhood refinement} (Weisfeiler–Lehman style) over a
       two-sorted graph: unit keys start as hashes of the local
       descriptors, register keys as hashes of the register class, and
       both are iterated together — a unit's key absorbs the sorted
       multiset of (direction, delay, omega, neighbor key) over its
       dependence edges plus its accesses as (role, position, time,
       register key) in intrinsic operand order; a register's key
       absorbs the sorted multiset of (role, position, time, unit
       key) over its accesses — position included so registers
       distinguished only by which operand slot of a non-commutative
       op they feed still separate.
       The register side matters: read-read sharing produces no
       dependence edge, so without it two units with identical shapes
       but different sharing patterns would stay tied and the
       index tie-break below would make the canonical form depend on
       presentation order. Equal graphs presented under any unit
       permutation converge to equal key multisets.

    3. {e Individualization} for residual ties: refinement can leave
       distinct units with equal keys (for instance two tied producers
       feeding two tied consumers — every local view is symmetric, yet
       breaking the two ties independently is not an automorphism, so
       an index tie-break would make the result depend on presentation
       order). When a tied cell survives, each of its members is
       individualized in turn (its key perturbed, refinement re-run,
       recursion on remaining ties) and the lexicographically smallest
       full serialization wins — the standard individualization-
       refinement certificate, exponential only in tied-cell sizes,
       which are tiny here; a branch budget caps pathological graphs,
       falling back to the index tie-break (which can only cost a
       cache miss, never a wrong hit).

    4. The canonical order sorts units by (refined key, local
       descriptor, original index); registers are then renumbered by
       first occurrence in that order and the whole graph — units,
       renumbered accesses, sorted relabeled edges, machine resource
       table — is serialized and digested.

    The digest is MD5 via the stdlib [Digest] — keys are structural,
    not adversarial, and a colliding entry is re-verified against the
    requesting loop's own constraints before reuse ({!Cache}), so a
    collision can cost a lookup, never correctness. *)

module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
module Machine = Sp_machine.Machine

type canon = { fp : string; perm : int array }

let cls_char (v : Sp_ir.Vreg.t) =
  match v.Sp_ir.Vreg.cls with Sp_ir.Vreg.F -> 'F' | Sp_ir.Vreg.I -> 'I'

(* The renaming-invariant per-unit descriptor (step 1). *)
let local_descr (u : Sunit.t) : string =
  let b = Buffer.create 64 in
  Buffer.add_string b (string_of_int u.Sunit.len);
  Buffer.add_char b (if u.Sunit.no_wrap then 'w' else '-');
  Buffer.add_char b (if u.Sunit.barrier then 'b' else '-');
  Buffer.add_char b ';';
  List.iter
    (fun (off, rid) ->
      Buffer.add_string b (string_of_int off);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int rid);
      Buffer.add_char b ',')
    (List.sort compare u.Sunit.resv);
  Buffer.add_char b ';';
  (match u.Sunit.payload with
  | Sunit.P_op op ->
    Buffer.add_string b "op:";
    Buffer.add_string b (Sp_machine.Opkind.to_string op.Sp_ir.Op.kind)
  | Sunit.P_if _ -> Buffer.add_string b "if"
  | Sunit.P_loop _ -> Buffer.add_string b "loop");
  Buffer.add_char b ';';
  List.iter
    (fun (v, t) ->
      Buffer.add_string b (string_of_int t);
      Buffer.add_char b (cls_char v);
      Buffer.add_char b ',')
    u.Sunit.uses;
  Buffer.add_char b ';';
  List.iter
    (fun (v, t) ->
      Buffer.add_string b (string_of_int t);
      Buffer.add_char b (cls_char v);
      Buffer.add_char b ',')
    u.Sunit.defs;
  Buffer.contents b

let canon (g : Ddg.t) (m : Machine.t) : canon =
  let n = Array.length g.Ddg.units in
  let local = Array.map local_descr g.Ddg.units in
  (* registers as a second node sort: index every distinct vreg and
     record its accesses, so sharing that produces no dependence edge
     (read-read) still reaches the refinement *)
  let reg_idx : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let reg_cls = ref [] in
  let idx_of (v : Sp_ir.Vreg.t) =
    match Hashtbl.find_opt reg_idx v.Sp_ir.Vreg.id with
    | Some r -> r
    | None ->
      let r = Hashtbl.length reg_idx in
      Hashtbl.add reg_idx v.Sp_ir.Vreg.id r;
      reg_cls := cls_char v :: !reg_cls;
      r
  in
  let unit_acc =
    Array.map
      (fun (u : Sunit.t) ->
        List.mapi (fun p (v, t) -> (0, p, t, idx_of v)) u.Sunit.uses
        @ List.mapi (fun p (v, t) -> (1, p, t, idx_of v)) u.Sunit.defs)
      g.Ddg.units
  in
  let nr = Hashtbl.length reg_idx in
  let reg_acc = Array.make (max nr 1) [] in
  Array.iteri
    (fun i l ->
      List.iter
        (fun (role, p, t, r) -> reg_acc.(r) <- (role, p, t, i) :: reg_acc.(r))
        l)
    unit_acc;
  let cls = Array.of_list (List.rev !reg_cls) in
  (* step 2: joint refinement of unit and register keys; register keys
     start from the class alone so the fingerprint survives renaming.
     Keys are full MD5 digests of the serialized neighborhood —
     [Hashtbl.hash] only examines a bounded prefix of a structure, so
     it would silently ignore most of a large neighbor multiset and
     leave spurious ties. *)
  let init_key = Array.map (fun l -> Digest.string l) local in
  let init_rkey = Array.map (fun c -> Digest.string (String.make 1 c)) cls in
  let digest_round b parts =
    Buffer.clear b;
    List.iter
      (fun (a, bb, c, d, k) ->
        Buffer.add_string b (string_of_int a);
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int bb);
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int c);
        Buffer.add_char b ':';
        Buffer.add_string b (string_of_int d);
        Buffer.add_char b ':';
        Buffer.add_string b k;
        Buffer.add_char b ';')
      parts;
    Digest.string (Buffer.contents b)
  in
  let scratch = Buffer.create 256 in
  let rounds = min 16 (n + nr) in
  let distinct (a : string array) =
    let h = Hashtbl.create 16 in
    Array.iter (fun k -> Hashtbl.replace h k ()) a;
    Hashtbl.length h
  in
  let refine key0 rkey0 =
    let key = Array.copy key0 and rkey = Array.copy rkey0 in
    (* rehashing only ever splits key classes, so a round that leaves
       the distinct-key count unchanged is the fixpoint — bail out
       rather than burn the full round budget on every request *)
    let prev = ref (-1) in
    (try
       for _ = 1 to rounds do
      let next =
        Array.init n (fun i ->
            let nbrs =
              List.map
                (fun (e : Ddg.edge) ->
                  (0, 0, e.Ddg.delay, e.Ddg.omega, key.(e.Ddg.dst)))
                g.Ddg.succs.(i)
              @ List.map
                  (fun (e : Ddg.edge) ->
                    (1, 0, e.Ddg.delay, e.Ddg.omega, key.(e.Ddg.src)))
                  g.Ddg.preds.(i)
            in
            (* accesses stay in intrinsic operand order (order is
               structure, only the register names are abstracted), so
               they are tagged to keep them apart from the sorted edge
               multiset *)
            let accs =
              List.map
                (fun (role, p, t, r) -> (2, role, p, t, rkey.(r)))
                unit_acc.(i)
            in
            digest_round scratch
              ((0, 0, 0, 0, key.(i)) :: List.sort compare nbrs @ accs))
      in
      let rnext =
        Array.init nr (fun r ->
            (* the operand position [p] is the load-bearing part: two
               registers whose only distinction is which operand slot
               of a non-commutative op they feed would otherwise stay
               tied forever, and the tie-break below would then number
               them by presentation order *)
            let accs =
              List.map
                (fun (role, p, t, i) -> (role, p, t, 0, key.(i)))
                reg_acc.(r)
            in
            digest_round scratch
              ((0, 0, 0, 0, rkey.(r)) :: List.sort compare accs))
      in
      Array.blit next 0 key 0 n;
      Array.blit rnext 0 rkey 0 nr;
      let d = distinct key + distinct rkey in
      if d = !prev then raise Exit;
      prev := d
       done
     with Exit -> ());
    (key, rkey)
  in
  (* step 4: canonical order under the given keys, then
     first-occurrence register ids; returns the full serialization so
     candidate branches can be compared lexicographically *)
  let serialize key =
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b -> compare (key.(a), local.(a), a) (key.(b), local.(b), b))
      order;
    let perm = Array.make n 0 in
    Array.iteri (fun c i -> perm.(i) <- c) order;
    let reg_ids : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let reg_id (v : Sp_ir.Vreg.t) =
      match Hashtbl.find_opt reg_ids v.Sp_ir.Vreg.id with
      | Some c -> c
      | None ->
        let c = Hashtbl.length reg_ids in
        Hashtbl.add reg_ids v.Sp_ir.Vreg.id c;
        c
    in
    let b = Buffer.create 1024 in
    (* machine digest: the name plus everything the scheduler reads off
       the description — resource table and register-file capacities *)
    Buffer.add_string b m.Machine.name;
    Buffer.add_char b '|';
    Array.iter
      (fun (r : Machine.resource) ->
        Buffer.add_string b r.Machine.rname;
        Buffer.add_char b '=';
        Buffer.add_string b (string_of_int r.Machine.count);
        Buffer.add_char b ',')
      m.Machine.resources;
    Buffer.add_string b
      (Printf.sprintf "|f%d|i%d|n%d|" m.Machine.fregs m.Machine.iregs n);
    Array.iter
      (fun i ->
        let u = g.Ddg.units.(i) in
        Buffer.add_string b local.(i);
        (* the same accesses again, now with canonical register names *)
        Buffer.add_char b '/';
        List.iter
          (fun (v, _) ->
            Buffer.add_string b (string_of_int (reg_id v));
            Buffer.add_char b ',')
          u.Sunit.uses;
        Buffer.add_char b '/';
        List.iter
          (fun (v, _) ->
            Buffer.add_string b (string_of_int (reg_id v));
            Buffer.add_char b ',')
          u.Sunit.defs;
        Buffer.add_char b '\n')
      order;
    let edges =
      List.sort compare
        (List.map
           (fun (e : Ddg.edge) ->
             (perm.(e.Ddg.src), perm.(e.Ddg.dst), e.Ddg.delay, e.Ddg.omega))
           g.Ddg.edges)
    in
    List.iter
      (fun (s, d, delay, omega) ->
        Buffer.add_string b (Printf.sprintf "e%d>%d:%d:%d\n" s d delay omega))
      edges;
    (Buffer.contents b, perm)
  in
  (* step 3: individualization-refinement over residual ties. Pick the
     least tied (key, local) cell, individualize each member in turn,
     re-refine, recurse; the smallest full serialization is the
     certificate. The budget bounds the branch count; on exhaustion
     the index tie-break stands, which can only split what should
     collide (a missed hit), never merge what should differ beyond
     what MD5 already risks — and hits are re-verified anyway. *)
  let budget = ref 64 in
  let rec solve key0 rkey0 =
    let key, rkey = refine key0 rkey0 in
    let cells : (string * string, int list) Hashtbl.t = Hashtbl.create 16 in
    for i = n - 1 downto 0 do
      let k = (key.(i), local.(i)) in
      Hashtbl.replace cells k
        (i :: Option.value (Hashtbl.find_opt cells k) ~default:[])
    done;
    let tied =
      Hashtbl.fold
        (fun k members acc ->
          match (members, acc) with
          | ([] | [ _ ]), _ -> acc
          | _, Some (k0, _) when k0 <= k -> acc
          | _, _ -> Some (k, members))
        cells None
    in
    match tied with
    | None -> serialize key
    | Some _ when !budget <= 0 -> serialize key
    | Some (_, members) ->
      List.fold_left
        (fun best u ->
          decr budget;
          let key' = Array.copy key in
          key'.(u) <- Digest.string ("!" ^ key.(u));
          let cand = solve key' rkey in
          match best with
          | Some (bs, _) when bs <= fst cand -> best
          | _ -> Some cand)
        None members
      |> Option.get
  in
  let s, perm = solve init_key init_rkey in
  { fp = Digest.to_hex (Digest.string s); perm }

let of_loop g m = (canon g m).fp
