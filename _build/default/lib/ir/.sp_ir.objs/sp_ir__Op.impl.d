lib/ir/op.ml: Fmt List Memseg Option Sp_machine String Subscript Vreg
