lib/lang/typecheck.mli: Ast Hashtbl Token
