(** Tests for the compile service: fingerprint canonicalization
    (alpha-rename and unit-reorder invariance, constraint sensitivity),
    the content-addressed schedule cache (hit-side verifier, eviction
    order, disabled mode, concurrent insertion) and the service engine
    (codec, frame I/O, byte-identity with the offline compiler, fault
    scoping across requests). *)

open Sp_ir
module C = Sp_core.Compile
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
module Fingerprint = Sp_serve.Fingerprint
module Cache = Sp_serve.Cache
module Service = Sp_serve.Service
module Fault = Sp_util.Fault
module Opkind = Sp_machine.Opkind
module Json = Sp_obs.Json

let m = Sp_machine.Machine.warp

(* ---- DDG material --------------------------------------------------- *)

(** A random innermost-loop dependence graph via the program
    generator; [None] when the seed produces an empty body. *)
let ddg_of_seed seed =
  let spec =
    {
      Gen.seed;
      trip = 40;
      n_stmts = 3 + (seed mod 6);
      use_if = false;
      use_accum = seed mod 2 = 0;
      use_chan = false;
      carried_store = seed mod 3 = 0;
      empty_body = false;
      maxlat = seed mod 5 = 0;
    }
  in
  let p, _, _ = Gen.build_many [ spec ] in
  match C.innermost_ddgs m p with
  | (_, g) :: _ when Array.length g.Ddg.units > 0 -> Some g
  | _ -> None

(** Deterministic shuffle of [0..n-1]. *)
let permutation seed n =
  let a = Array.init n (fun i -> i) in
  let s = ref ((seed * 2) + 1) in
  let next k =
    s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
    !s mod k
  in
  for i = n - 1 downto 1 do
    let j = next (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  a

(** Present the same graph with unit [i] moved to position [pi.(i)]. *)
let permute_ddg (pi : int array) (g : Ddg.t) : Ddg.t =
  let n = Array.length g.Ddg.units in
  let units = Array.make n g.Ddg.units.(0) in
  Array.iteri (fun i u -> units.(pi.(i)) <- u) g.Ddg.units;
  let remap (e : Ddg.edge) =
    { e with Ddg.src = pi.(e.Ddg.src); dst = pi.(e.Ddg.dst) }
  in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri (fun i l -> succs.(pi.(i)) <- List.map remap l) g.Ddg.succs;
  Array.iteri (fun i l -> preds.(pi.(i)) <- List.map remap l) g.Ddg.preds;
  { g with Ddg.units; edges = List.map remap g.Ddg.edges; succs; preds }

(** Alpha-rename every register access (fresh ids, same sharing). *)
let rename_regs shift (g : Ddg.t) : Ddg.t =
  let rn (v : Vreg.t) =
    { v with Vreg.id = v.Vreg.id + shift; name = v.Vreg.name ^ "'" }
  in
  {
    g with
    Ddg.units =
      Array.map
        (fun (u : Sunit.t) ->
          {
            u with
            Sunit.uses = List.map (fun (v, t) -> (rn v, t)) u.Sunit.uses;
            defs = List.map (fun (v, t) -> (rn v, t)) u.Sunit.defs;
          })
        g.Ddg.units;
  }

let map_edges f (g : Ddg.t) : Ddg.t =
  {
    g with
    Ddg.edges = List.map f g.Ddg.edges;
    succs = Array.map (List.map f) g.Ddg.succs;
    preds = Array.map (List.map f) g.Ddg.preds;
  }

(* dependence chain of [k] adds (edges, shared registers) *)
let chain_units k : Sunit.t array =
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let r0 = Vreg.Supply.fresh sup Vreg.F in
  let rec go prev i acc =
    if i = k then List.rev acc
    else
      let d = Vreg.Supply.fresh sup Vreg.F in
      go d (i + 1)
        (Op.Supply.mk ops ~dst:d ~srcs:[ prev; prev ] Opkind.Fadd :: acc)
  in
  Array.of_list
    (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) (go r0 0 []))

(* [k] adds with no shared registers (no edges) *)
let indep_units k : Sunit.t array =
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  Array.init k (fun i ->
      let a = Vreg.Supply.fresh sup Vreg.F in
      let b = Vreg.Supply.fresh sup Vreg.F in
      let d = Vreg.Supply.fresh sup Vreg.F in
      Sunit.of_op m ~sid:i (Op.Supply.mk ops ~dst:d ~srcs:[ a; b ] Opkind.Fadd))

(* ---- fingerprint properties ----------------------------------------- *)

let seed_gen = QCheck2.Gen.int_bound 400

let prop_reorder_invariant =
  QCheck2.Test.make ~name:"fingerprint survives unit reordering" ~count:120
    seed_gen (fun seed ->
      match ddg_of_seed seed with
      | None -> true
      | Some g ->
        let pi = permutation seed (Array.length g.Ddg.units) in
        Fingerprint.of_loop g m = Fingerprint.of_loop (permute_ddg pi g) m)

let prop_alpha_invariant =
  QCheck2.Test.make ~name:"fingerprint survives register renaming" ~count:120
    seed_gen (fun seed ->
      match ddg_of_seed seed with
      | None -> true
      | Some g ->
        Fingerprint.of_loop g m = Fingerprint.of_loop (rename_regs 4096 g) m)

let prop_perm_transfers_times =
  QCheck2.Test.make
    ~name:"canon perm is a bijection into canonical space" ~count:120 seed_gen
    (fun seed ->
      match ddg_of_seed seed with
      | None -> true
      | Some g ->
        let n = Array.length g.Ddg.units in
        let c = Fingerprint.canon g m in
        let seen = Array.make n false in
        Array.length c.Fingerprint.perm = n
        && (Array.iter
              (fun p -> if p >= 0 && p < n then seen.(p) <- true)
              c.Fingerprint.perm;
            Array.for_all (fun b -> b) seen))

let test_delay_sensitivity () =
  let g = Ddg.build (chain_units 3) in
  Alcotest.(check bool) "chain has edges" true (g.Ddg.edges <> []);
  let g' = map_edges (fun e -> { e with Ddg.delay = e.Ddg.delay + 1 }) g in
  Alcotest.(check bool)
    "delay change breaks the fingerprint" false
    (Fingerprint.of_loop g m = Fingerprint.of_loop g' m)

let test_omega_sensitivity () =
  let g = Ddg.build (chain_units 3) in
  let g' = map_edges (fun e -> { e with Ddg.omega = e.Ddg.omega + 1 }) g in
  Alcotest.(check bool)
    "omega change breaks the fingerprint" false
    (Fingerprint.of_loop g m = Fingerprint.of_loop g' m)

let test_resv_sensitivity () =
  let g = Ddg.build (chain_units 3) in
  Alcotest.(check bool)
    "units reserve resources" true
    (g.Ddg.units.(0).Sunit.resv <> []);
  let units' = Array.copy g.Ddg.units in
  units'.(0) <-
    {
      units'.(0) with
      Sunit.resv =
        List.map (fun (off, rid) -> (off + 1, rid)) units'.(0).Sunit.resv;
    };
  let g' = { g with Ddg.units = units' } in
  Alcotest.(check bool)
    "reservation change breaks the fingerprint" false
    (Fingerprint.of_loop g m = Fingerprint.of_loop g' m)

let test_machine_sensitivity () =
  let g = Ddg.build (chain_units 3) in
  Alcotest.(check bool)
    "machine description is part of the key" false
    (Fingerprint.of_loop g m = Fingerprint.of_loop g Sp_machine.Machine.toy)

(* ---- the hit-side verifier ------------------------------------------ *)

let test_schedule_ok () =
  let g = Ddg.build (chain_units 3) in
  let n = Array.length g.Ddg.units in
  let spread = Array.init n (fun i -> i * 10) in
  Alcotest.(check bool)
    "spread chain verifies" true
    (Cache.schedule_ok m g ~s:100 ~times:spread);
  Alcotest.(check bool)
    "negative time rejected" false
    (Cache.schedule_ok m g ~s:100 ~times:(Array.map (fun t -> t - 10) spread));
  Alcotest.(check bool)
    "violated dependence rejected" false
    (Cache.schedule_ok m g ~s:100 ~times:(Array.make n 0));
  Alcotest.(check bool)
    "zero interval rejected" false
    (Cache.schedule_ok m g ~s:0 ~times:spread)

let test_schedule_ok_resources () =
  let g = Ddg.build (indep_units 8) in
  Alcotest.(check bool) "no edges" true (g.Ddg.edges = []);
  Alcotest.(check bool)
    "eight adds in one modulo slot rejected" false
    (Cache.schedule_ok m g ~s:1 ~times:(Array.make 8 0));
  Alcotest.(check bool)
    "spread out they verify" true
    (Cache.schedule_ok m g ~s:8 ~times:(Array.init 8 (fun i -> i)))

let test_schedule_ok_barrier () =
  let g = Ddg.build (chain_units 2) in
  let units' = Array.copy g.Ddg.units in
  units'.(0) <- { units'.(0) with Sunit.barrier = true };
  let g' = { g with Ddg.units = units' } in
  Alcotest.(check bool)
    "barrier graphs never verify" false
    (Cache.schedule_ok m g' ~s:100 ~times:[| 0; 10 |])

(* ---- cache behaviour through the compiler --------------------------- *)

(* three structurally distinct single-loop programs *)
let prog_a =
  "program pa; var x, y : array [0..63] of float; k : int;\n\
   begin for k := 0 to 63 do y[k] := 2.5 * x[k] + y[k]; end."

let prog_b =
  "program pb; var x, y : array [0..63] of float; k : int;\n\
   begin for k := 0 to 63 do y[k] := (x[k] + 1.5) * (x[k] + 2.5) + x[k]; \
   end."

let prog_c =
  "program pc; var x, y, z : array [0..63] of float; k : int;\n\
   begin for k := 0 to 63 do z[k] := x[k] * y[k] + z[k] * 0.5 + x[k]; end."

let compile_src ?cache src =
  let config =
    { C.default with C.cache = Option.map Cache.hook cache; jobs = 1 }
  in
  C.program ~config m (Sp_lang.Lower.compile_source src)

let test_cache_identity () =
  let direct = C.fingerprint (compile_src prog_a) in
  let cache = Cache.create ~capacity:8 in
  let cold = C.fingerprint (compile_src ~cache prog_a) in
  let warm = C.fingerprint (compile_src ~cache prog_a) in
  Alcotest.(check string) "cold equals direct" direct cold;
  Alcotest.(check string) "warm equals direct" direct warm;
  let s = Cache.stats cache in
  Alcotest.(check bool) "warm pass hit" true (s.Cache.hits > 0);
  Alcotest.(check int) "one schedule stored" 1 s.Cache.inserts

let test_cache_disabled () =
  let direct = C.fingerprint (compile_src prog_a) in
  let cache = Cache.create ~capacity:0 in
  let once = C.fingerprint (compile_src ~cache prog_a) in
  let twice = C.fingerprint (compile_src ~cache prog_a) in
  Alcotest.(check string) "disabled cache, identical output" direct once;
  Alcotest.(check string) "second pass identical too" direct twice;
  let s = Cache.stats cache in
  Alcotest.(check int) "never hits" 0 s.Cache.hits;
  Alcotest.(check int) "never stores" 0 s.Cache.inserts;
  Alcotest.(check int) "stays empty" 0 s.Cache.entries;
  Alcotest.(check bool) "probes still counted" true (s.Cache.misses > 0)

let test_cache_eviction () =
  let cache = Cache.create ~capacity:1 in
  ignore (compile_src ~cache prog_a);
  let s1 = Cache.stats cache in
  Alcotest.(check int) "one loop, one insert" 1 s1.Cache.inserts;
  ignore (compile_src ~cache prog_b);
  ignore (compile_src ~cache prog_a);
  let s = Cache.stats cache in
  Alcotest.(check int) "capacity 1 never hits here" 0 s.Cache.hits;
  Alcotest.(check int) "every compile inserted" 3 s.Cache.inserts;
  Alcotest.(check int) "two evictions" 2 s.Cache.evictions;
  Alcotest.(check int) "population respects capacity" 1 s.Cache.entries

let test_cache_lru_promotion () =
  let cache = Cache.create ~capacity:2 in
  ignore (compile_src ~cache prog_a) (* insert A *);
  ignore (compile_src ~cache prog_b) (* insert B *);
  ignore (compile_src ~cache prog_a) (* hit A: promotes its recency *);
  ignore (compile_src ~cache prog_c) (* insert C: evicts B, not A *);
  ignore (compile_src ~cache prog_a) (* must still hit *);
  let s = Cache.stats cache in
  Alcotest.(check int) "A hit twice" 2 s.Cache.hits;
  Alcotest.(check int) "three inserts" 3 s.Cache.inserts;
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "full" 2 s.Cache.entries

let test_cache_concurrent () =
  (* many concurrent requests hammering one cache through the service
     pool: every response must match the uncached reference *)
  let service = Service.create ~cache_capacity:16 ~jobs:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let progs = [ prog_a; prog_b; prog_c ] in
  let rq src =
    Service.Compile { machine = "warp"; inject = None; trace = None; source = src }
  in
  let batch = List.concat_map (fun s -> [ rq s; rq s; rq s; rq s ]) progs in
  let reference =
    let uncached = Service.create ~cache_capacity:0 () in
    Fun.protect ~finally:(fun () -> Service.close uncached) @@ fun () ->
    List.map
      (fun src ->
        match Service.handle uncached (rq src) with
        | Service.Ok body -> body
        | Service.Err e -> Alcotest.fail e)
      progs
  in
  let run () =
    List.map2
      (fun rq' expected ->
        match (rq', expected) with
        | Service.Ok body, e -> Alcotest.(check string) "identical" e body
        | Service.Err msg, _ -> Alcotest.fail msg)
      (Service.handle_batch service batch)
      (List.concat_map (fun e -> [ e; e; e; e ]) reference)
  in
  ignore (run ());
  ignore (run ());
  match Service.cache service with
  | None -> Alcotest.fail "service lost its cache"
  | Some c ->
    let s = Cache.stats c in
    Alcotest.(check bool) "second batch hits" true (s.Cache.hits > 0);
    Alcotest.(check bool)
      "population bounded" true
      (s.Cache.entries <= Cache.capacity c)

(* ---- service codec and frames --------------------------------------- *)

let test_codec_roundtrip () =
  let rqs =
    [
      Service.Compile
        { machine = "warp"; inject = None; trace = None;
          source = "program p; begin end." };
      Service.Compile
        {
          machine = "toy";
          inject = Some ("modsched.place", 3);
          trace = None;
          source = "body\nwith\nnewlines";
        };
      Service.Compile
        { machine = "warp"; inject = None; trace = Some "req-0007";
          source = "program p; begin end." };
      Service.Compile
        {
          machine = "serial";
          inject = Some ("modsched.place", 1);
          trace = Some "both-tokens";
          source = "body";
        };
      Service.Stats;
      Service.Status;
      Service.Dashboard;
      Service.Ping;
    ]
  in
  List.iter
    (fun rq ->
      match Service.parse_request (Service.render_request rq) with
      | Ok rq' -> Alcotest.(check bool) "request survives" true (rq = rq')
      | Error e -> Alcotest.fail e)
    rqs;
  (match Service.parse_request "verb nobody knows" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk verb accepted");
  (match Service.parse_request "compile warp trace=\nbody" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace id accepted");
  (match Service.parse_request "compile warp color=red\nbody" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown request token accepted");
  List.iter
    (fun resp ->
      Alcotest.(check bool)
        "response survives" true
        (Service.parse_response (Service.render_response resp) = resp))
    [ Service.Ok "some\nbody"; Service.Err "message"; Service.Ok "" ]

let test_frame_roundtrip () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () ->
      Service.Frame.write a "hello frames";
      Service.Frame.write a "";
      Alcotest.(check (option string))
        "payload" (Some "hello frames") (Service.Frame.read b);
      Alcotest.(check (option string))
        "empty payload" (Some "") (Service.Frame.read b);
      Unix.close a;
      Alcotest.(check (option string)) "clean EOF" None (Service.Frame.read b))

let offline src =
  let p = Sp_lang.Lower.compile_source src in
  let r = C.program ~config:{ C.default with C.jobs = 1 } m p in
  Fmt.str "; %s: %d instructions for machine %s@." p.Sp_ir.Program.name
    r.C.code_size m.Sp_machine.Machine.name
  ^ Fmt.str "%a" Sp_vliw.Prog.pp r.C.code

let test_service_matches_offline () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  List.iter
    (fun src ->
      match
        Service.handle service
          (Service.Compile { machine = "warp"; inject = None; trace = None; source = src })
      with
      | Service.Ok body ->
        Alcotest.(check string) "matches w2c compile" (offline src) body
      | Service.Err e -> Alcotest.fail e)
    [ prog_a; prog_b; prog_a (* the warm repeat too *) ]

let test_service_error_paths () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp9000"; inject = None; trace = None; source = prog_a })
   with
  | Service.Err _ -> ()
  | Service.Ok _ -> Alcotest.fail "unknown machine accepted");
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = None;
            source = "program oops" })
   with
  | Service.Err _ -> ()
  | Service.Ok _ -> Alcotest.fail "syntax error compiled");
  match
    Service.handle service
      (Service.Compile
         {
           machine = "warp";
           inject = Some ("no.such.site", 1);
           trace = None;
           source = prog_a;
         })
  with
  | Service.Err msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "names the bad site" true
      (contains msg "no.such.site")
  | Service.Ok _ -> Alcotest.fail "unknown fault site accepted"

let test_stats_verb () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  ignore
    (Service.handle service
       (Service.Compile { machine = "warp"; inject = None; trace = None; source = prog_a }));
  match Service.handle service Service.Stats with
  | Service.Err e -> Alcotest.fail e
  | Service.Ok body -> (
    match Json.member "misses" (Json.of_string body) with
    | Some (Json.Int n) -> Alcotest.(check bool) "probed" true (n > 0)
    | _ -> Alcotest.fail "stats carry no miss counter")

(* ---- fault scoping across requests (the leak regression) ------------ *)

let test_inject_does_not_leak () =
  let service = Service.create ~cache_capacity:8 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let reference = offline prog_a in
  (* the armed cache probe raises; the compiler degrades that loop and
     the request still answers Ok *)
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp"; inject = Some (Cache.site, 1); trace = None;
            source = prog_a })
   with
  | Service.Ok body ->
    Alcotest.(check bool)
      "injected compile degrades (differs from clean)" false
      (body = reference)
  | Service.Err e -> Alcotest.fail ("injected request must degrade: " ^ e));
  Alcotest.(check bool)
    "site disarmed after the request" false (Fault.is_armed ());
  (* the degraded request must not have poisoned the cache: the next
     clean request compiles fresh and matches the offline compiler *)
  match
    Service.handle service
      (Service.Compile { machine = "warp"; inject = None; trace = None; source = prog_a })
  with
  | Service.Ok body ->
    Alcotest.(check string) "clean request after injection" reference body
  | Service.Err e -> Alcotest.fail e

let test_inject_in_batch_stays_scoped () =
  let service = Service.create ~cache_capacity:8 ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let reference = offline prog_b in
  let rq inject =
    Service.Compile { machine = "warp"; inject; trace = None; source = prog_b }
  in
  (* one armed request sandwiched between clean ones: the batch runs
     sequentially and only the armed request degrades *)
  match
    Service.handle_batch service
      [ rq None; rq (Some (Cache.site, 1)); rq None ]
  with
  | [ Service.Ok a; Service.Ok b; Service.Ok c ] ->
    Alcotest.(check string) "first clean" reference a;
    Alcotest.(check bool) "armed one degrades" false (b = reference);
    Alcotest.(check string) "third clean" reference c;
    Alcotest.(check bool) "disarmed afterwards" false (Fault.is_armed ())
  | rs ->
    Alcotest.fail
      (Printf.sprintf "expected 3 ok responses, got %d" (List.length rs))

(* ---- request-scoped tracing and telemetry --------------------------- *)

(** Names-and-nesting of a [trees_json] value — durations stripped, so
    two runs of the same request compare equal. *)
let rec skel (j : Json.t) : Json.t =
  match j with
  | Json.Obj kvs -> (
    let name =
      match List.assoc_opt "name" kvs with
      | Some (Json.Str s) -> s
      | _ -> "?"
    in
    match List.assoc_opt "children" kvs with
    | Some (Json.List kids) -> Json.Obj [ (name, Json.List (List.map skel kids)) ]
    | _ -> Json.Str name)
  | Json.List l -> Json.List (List.map skel l)
  | _ -> Json.Null

let test_traced_roundtrip () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let reference = offline prog_a in
  match
    Service.handle service
      (Service.Compile
         { machine = "warp"; inject = None; trace = Some "t-42";
           source = prog_a })
  with
  | Service.Err e -> Alcotest.fail e
  | Service.Ok body ->
    let env = Json.of_string body in
    Alcotest.(check bool)
      "envelope schema" true
      (Json.member "schema" env = Some (Json.Str Service.trace_schema));
    Alcotest.(check bool)
      "trace id echoed" true
      (Json.member "trace" env = Some (Json.Str "t-42"));
    Alcotest.(check bool)
      "first request is seq 0" true
      (Json.member "seq" env = Some (Json.Int 0));
    (match Json.member "output" env with
    | Some (Json.Str out) ->
      Alcotest.(check string) "output matches offline compiler" reference out
    | _ -> Alcotest.fail "envelope carries no output");
    (match Json.member "spans" env with
    | Some (Json.List (_ :: _ as spans)) ->
      (* the root request span must nest the protocol phases *)
      let s = Json.to_string (skel (Json.List spans)) in
      let contains needle =
        let nh = String.length s and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub s i nn = needle || go (i + 1))
        in
        go 0
      in
      List.iter
        (fun phase ->
          Alcotest.(check bool) (phase ^ " span present") true (contains phase))
        [ "request"; "request.decode"; "request.schedule"; "request.encode" ]
    | _ -> Alcotest.fail "envelope carries no spans");
    (* a traced request leaves global tracing alone *)
    Alcotest.(check bool) "tracing still off" false (Sp_obs.Trace.enabled ())

let test_error_identity () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let ends_with suffix s =
    let ns = String.length s and n = String.length suffix in
    ns >= n && String.sub s (ns - n) n = suffix
  in
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = None;
            source = "program oops" })
   with
  | Service.Err msg ->
    Alcotest.(check bool) "untraced error carries [req 0]" true
      (ends_with "[req 0]" msg)
  | Service.Ok _ -> Alcotest.fail "syntax error compiled");
  match
    Service.handle service
      (Service.Compile
         { machine = "warp"; inject = None; trace = Some "tid";
           source = "program oops" })
  with
  | Service.Err msg ->
    Alcotest.(check bool) "traced error carries seq and trace id" true
      (ends_with "[req 1 trace=tid]" msg)
  | Service.Ok _ -> Alcotest.fail "syntax error compiled"

let test_status_verb () =
  let service = Service.create ~cache_capacity:4 () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let compile src =
    Service.Compile { machine = "warp"; inject = None; trace = None; source = src }
  in
  ignore (Service.handle service (compile prog_a));
  ignore (Service.handle service (compile "program oops"));
  (match Service.handle service Service.Status with
  | Service.Err e -> Alcotest.fail e
  | Service.Ok body ->
    let j = Json.of_string body in
    Alcotest.(check bool)
      "status schema" true
      (Json.member "schema" j = Some (Json.Str Service.status_schema));
    Alcotest.(check bool)
      "telemetry on" true
      (Json.member "telemetry" j = Some (Json.Bool true));
    (* the status request is the third admitted request *)
    Alcotest.(check bool)
      "total counts every verb" true
      (Json.path [ "requests"; "total" ] j = Some (Json.Int 3));
    Alcotest.(check bool)
      "compile counter" true
      (Json.path [ "requests"; "compile" ] j = Some (Json.Int 2));
    Alcotest.(check bool)
      "error counter" true
      (Json.path [ "requests"; "error" ] j = Some (Json.Int 1));
    (match Json.path [ "series"; "latency_us"; "windows" ] j with
    | Some (Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "no latency windows after requests");
    match Json.path [ "error_budget"; "ok" ] j with
    | Some (Json.Bool _) -> ()
    | _ -> Alcotest.fail "no error budget verdict");
  (* the dashboard renders the same telemetry as self-contained HTML *)
  match Service.handle service Service.Dashboard with
  | Service.Err e -> Alcotest.fail e
  | Service.Ok html ->
    let contains needle =
      let nh = String.length html and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub html i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "html document" true (contains "</html>");
    List.iter
      (fun banned ->
        Alcotest.(check bool) ("no " ^ banned) false (contains banned))
      [ "http://"; "https://"; "<script src"; "<link" ]

let test_telemetry_disabled () =
  let service = Service.create ~cache_capacity:4 ~telemetry:false () in
  Fun.protect ~finally:(fun () -> Service.close service) @@ fun () ->
  let reference = offline prog_a in
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = None; source = prog_a })
   with
  | Service.Ok body ->
    Alcotest.(check string) "output unchanged without telemetry" reference body
  | Service.Err e -> Alcotest.fail e);
  Alcotest.(check int) "no sequence clock" 0 (Service.telemetry_seq service);
  (match
     Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = None;
            source = "program oops" })
   with
  | Service.Err msg ->
    (* no telemetry, no sequence number to stamp errors with *)
    let contains needle =
      let nh = String.length msg and nn = String.length needle in
      let rec go i =
        i + nn <= nh && (String.sub msg i nn = needle || go (i + 1))
      in
      go 0
    in
    Alcotest.(check bool) "no [req N] suffix" false (contains "[req ")
  | Service.Ok _ -> Alcotest.fail "syntax error compiled");
  match Service.handle service Service.Status with
  | Service.Err e -> Alcotest.fail e
  | Service.Ok body ->
    let j = Json.of_string body in
    Alcotest.(check bool)
      "status says telemetry off" true
      (Json.member "telemetry" j = Some (Json.Bool false));
    Alcotest.(check bool) "no series" true (Json.member "series" j = None)

let test_request_log () =
  let path = Filename.temp_file "w2cd_reqlog" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let oc = open_out path in
  let service = Service.create ~cache_capacity:4 ~log:oc () in
  ignore
    (Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = None; source = prog_a }));
  ignore
    (Service.handle service
       (Service.Compile
          { machine = "warp"; inject = None; trace = Some "lg";
            source = prog_a }));
  Service.close service;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  match List.rev_map Json.of_string !lines with
  | [ l0; l1 ] ->
    Alcotest.(check bool)
      "log schema" true
      (Json.member "schema" l0 = Some (Json.Str Service.reqlog_schema));
    Alcotest.(check bool)
      "seq 0 then 1" true
      (Json.member "seq" l0 = Some (Json.Int 0)
      && Json.member "seq" l1 = Some (Json.Int 1));
    Alcotest.(check bool)
      "untraced line has null trace, no spans" true
      (Json.member "trace" l0 = Some Json.Null
      && Json.member "spans" l0 = None);
    Alcotest.(check bool)
      "traced line carries id and spans" true
      (Json.member "trace" l1 = Some (Json.Str "lg")
      && Json.member "spans" l1 <> None)
  | ls ->
    Alcotest.fail
      (Printf.sprintf "expected 2 log lines, got %d" (List.length ls))

(** The determinism contract of traced requests: the span skeleton of a
    request depends only on the request itself (and the cache state
    admitted before it — disabled here), never on the pool width or on
    batch co-residents. *)
let prop_trace_skeleton_stable =
  QCheck2.Test.make
    ~name:"traced span skeleton independent of jobs and batch mix" ~count:10
    QCheck2.Gen.(pair (int_bound 2) (list_size (int_bound 4) (int_bound 2)))
    (fun (pi, mates) ->
      let progs = [| prog_a; prog_b; prog_c |] in
      let traced =
        Service.Compile
          { machine = "warp"; inject = None; trace = Some "t";
            source = progs.(pi) }
      in
      let plain j =
        Service.Compile
          { machine = "warp"; inject = None; trace = None; source = progs.(j) }
      in
      let skeleton_at ~jobs batch pick =
        let svc = Service.create ~cache_capacity:0 ~jobs () in
        Fun.protect ~finally:(fun () -> Service.close svc) @@ fun () ->
        match List.nth (Service.handle_batch svc batch) pick with
        | Service.Ok body -> (
          match Json.member "spans" (Json.of_string body) with
          | Some spans -> Json.to_string (skel spans)
          | None -> QCheck2.Test.fail_report "traced response without spans")
        | Service.Err e -> QCheck2.Test.fail_report e
      in
      let solo1 = skeleton_at ~jobs:1 [ traced ] 0 in
      let solo8 = skeleton_at ~jobs:8 [ traced ] 0 in
      let mixed =
        skeleton_at ~jobs:4
          (List.map plain mates @ [ traced ])
          (List.length mates)
      in
      if solo1 <> solo8 then
        QCheck2.Test.fail_reportf "jobs changed the skeleton:\n%s\n%s" solo1
          solo8;
      if solo1 <> mixed then
        QCheck2.Test.fail_reportf "co-residents changed the skeleton:\n%s\n%s"
          solo1 mixed;
      true)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    qt prop_reorder_invariant;
    qt prop_alpha_invariant;
    qt prop_perm_transfers_times;
    ("fingerprint delay sensitivity", `Quick, test_delay_sensitivity);
    ("fingerprint omega sensitivity", `Quick, test_omega_sensitivity);
    ("fingerprint reservation sensitivity", `Quick, test_resv_sensitivity);
    ("fingerprint machine sensitivity", `Quick, test_machine_sensitivity);
    ("hit verifier: dependences", `Quick, test_schedule_ok);
    ("hit verifier: resources", `Quick, test_schedule_ok_resources);
    ("hit verifier: barriers", `Quick, test_schedule_ok_barrier);
    ("cache keeps output identical", `Quick, test_cache_identity);
    ("capacity 0 disables the cache", `Quick, test_cache_disabled);
    ("bounded capacity evicts", `Quick, test_cache_eviction);
    ("hits refresh recency", `Quick, test_cache_lru_promotion);
    ("concurrent requests share the cache", `Quick, test_cache_concurrent);
    ("request/response codec", `Quick, test_codec_roundtrip);
    ("frame round trip", `Quick, test_frame_roundtrip);
    ("service matches offline compiler", `Quick, test_service_matches_offline);
    ("service error paths", `Quick, test_service_error_paths);
    ("stats verb", `Quick, test_stats_verb);
    ("injected fault stays in its request", `Quick, test_inject_does_not_leak);
    ("injection inside a batch", `Quick, test_inject_in_batch_stays_scoped);
    ("traced request round trip", `Quick, test_traced_roundtrip);
    ("errors carry request identity", `Quick, test_error_identity);
    ("status and dashboard verbs", `Quick, test_status_verb);
    ("telemetry disabled", `Quick, test_telemetry_disabled);
    ("request log", `Quick, test_request_log);
    qt prop_trace_skeleton_stable;
  ]
