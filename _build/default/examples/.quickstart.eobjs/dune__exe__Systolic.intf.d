examples/systolic.mli:
