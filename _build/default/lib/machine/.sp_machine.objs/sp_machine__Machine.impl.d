lib/machine/machine.ml: Array Hashtbl List Opkind Printf String
