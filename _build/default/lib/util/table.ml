(** Minimal aligned-column text tables, used by the benchmark harness to
    print the paper's tables. *)

type align = L | R

type t = { headers : string list; aligns : align list; rows : string list list ref }

let create ~headers ~aligns =
  if List.length headers <> List.length aligns then
    invalid_arg "Table.create: headers/aligns length mismatch";
  { headers; aligns; rows = ref [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: wrong arity";
  t.rows := row :: !(t.rows)

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else match align with
    | L -> s ^ String.make n ' '
    | R -> String.make n ' ' ^ s

let pp ppf t =
  let rows = List.rev !(t.rows) in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w r -> max w (String.length (List.nth r i)))
          (String.length h) rows)
      t.headers
  in
  let print_row r =
    let cells = List.map2 (fun (a, w) c -> pad a w c)
        (List.combine t.aligns widths) r in
    Fmt.pf ppf "  %s@." (String.concat "  " cells)
  in
  print_row t.headers;
  Fmt.pf ppf "  %s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter print_row rows
