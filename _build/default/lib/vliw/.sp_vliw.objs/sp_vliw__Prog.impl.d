lib/vliw/prog.ml: Array Fmt Inst List Printf
