(** Structural fingerprints of (innermost-loop DDG, machine) pairs.

    The fingerprint is a digest of a {e canonical form} of the graph:
    node numbering is recomputed from structure alone (iterated
    neighborhood refinement over units {e and} registers jointly,
    residual ties resolved by individualization-refinement taking the
    lexicographically least certificate), register names are replaced
    by first-occurrence indices in canonical order, and edges are
    sorted with their full (delay, omega) labels. Alpha-equivalent loops —
    renamed registers, reordered independent units — therefore collide,
    which is what makes the schedule cache effective across kernel
    families, while any difference in unit shapes, dependence
    structure, latencies, omegas or the machine's resource table
    changes the digest.

    Deliberately {e not} fingerprinted: immediate operands, memory
    segment identities and trip counts. The cache reuses only issue
    times; code is re-emitted from the loop's own payloads, so loops
    differing only in constants can safely share a schedule. *)

type canon = {
  fp : string;        (** hex digest of the canonical serialization *)
  perm : int array;   (** original unit index -> canonical position *)
}

val canon : Sp_core.Ddg.t -> Sp_machine.Machine.t -> canon
(** Canonicalize and digest. [perm] transfers issue-time arrays between
    original and canonical node spaces (store
    [canonical.(perm.(i)) <- times.(i)], reload
    [times.(i) <- canonical.(perm.(i))]). *)

val of_loop : Sp_core.Ddg.t -> Sp_machine.Machine.t -> string
(** Just the digest — [(canon g m).fp]. *)
