(** Strongly connected components (Tarjan 1972) — the preprocessing step
    of the paper's Section 2.2.2: cyclic dependence graphs are scheduled
    component by component, then condensed into an acyclic graph. *)

type t = {
  comp_of : int array;      (** node -> component index *)
  comps : int list array;   (** component -> member nodes, in input order *)
  nontrivial : bool array;  (** more than one node, or a self edge *)
}

val num_components : t -> int

val compute : n:int -> succs:(int -> int list) -> t
(** [compute ~n ~succs] where [succs i] lists the successors of node
    [i] (0-based). Component indices come out in reverse topological
    order of the condensed graph. *)

val topo_components : t -> int list
(** Component indices in topological order (sources first). *)
