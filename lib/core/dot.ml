(** Graphviz export of dependence graphs, for debugging schedules and
    for documentation.

    Nontrivial strongly connected components — the recurrences the
    scheduler places first (Section 2.2.2) — are drawn as
    [cluster_K] subgraphs, numbered in the condensation's topological
    order so the picture matches the decision log's "SCC scheduling
    order" line. Intra-iteration edges are solid; loop-carried edges
    ([omega > 0]) are dashed, colored, and labelled with their
    iteration distance. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let pp ?(name = "ddg") ppf (g : Ddg.t) =
  let scc =
    Scc.compute
      ~n:(Array.length g.Ddg.units)
      ~succs:(fun v -> List.map (fun (e : Ddg.edge) -> e.Ddg.dst) g.Ddg.succs.(v))
  in
  let node ppf i =
    Fmt.pf ppf "n%d [label=\"%s\"];" i
      (escape (Fmt.str "%a" Sunit.pp g.Ddg.units.(i)))
  in
  Fmt.pf ppf "digraph %s {@." name;
  Fmt.pf ppf "  rankdir=TB; node [shape=box, fontsize=10];@.";
  (* recurrences as clusters, in the scheduling (topological) order *)
  let k = ref 0 in
  let clustered = Array.make (Array.length g.Ddg.units) false in
  List.iter
    (fun c ->
      if scc.Scc.nontrivial.(c) then begin
        Fmt.pf ppf
          "  subgraph cluster_%d {@.    label=\"scc %d\"; style=filled; \
           color=gray80; fillcolor=gray95;@."
          !k !k;
        List.iter
          (fun v ->
            clustered.(v) <- true;
            Fmt.pf ppf "    %a@." node v)
          scc.Scc.comps.(c);
        Fmt.pf ppf "  }@.";
        incr k
      end)
    (Scc.topo_components scc);
  Array.iteri
    (fun i _ -> if not clustered.(i) then Fmt.pf ppf "  %a@." node i)
    g.Ddg.units;
  List.iter
    (fun (e : Ddg.edge) ->
      if e.Ddg.omega = 0 then
        Fmt.pf ppf "  n%d -> n%d [label=\"%d\"];@." e.Ddg.src e.Ddg.dst
          e.Ddg.delay
      else
        Fmt.pf ppf
          "  n%d -> n%d [label=\"%d,w%d\", style=dashed, color=\"#b03030\", \
           fontcolor=\"#b03030\", constraint=false];@."
          e.Ddg.src e.Ddg.dst e.Ddg.delay e.Ddg.omega)
    g.Ddg.edges;
  Fmt.pf ppf "}@."

let to_string ?name g = Fmt.str "%a" (pp ?name) g
