lib/vliw/prog.mli: Format Inst Sp_ir
