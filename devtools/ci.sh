#!/bin/sh
# Tier-1 verification in one command: build, unit/property tests, then a
# CLI smoke pass — every example must compile, validate, and match the
# sequential interpreter, and every expected failure must surface as a
# structured error (never an uncaught exception).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

W2C="dune exec --no-build bin/w2c.exe --"

echo "== example smoke: run --validate --verify"
for f in examples/*.w2; do
  echo "   $f"
  $W2C run --validate --verify "$f" >/dev/null
done

# Expected failures: each must exit nonzero with a clean one-line error.
expect_fail() {
  label="$1"; shift
  out=$("$@" 2>&1) && {
    echo "FAIL: $label: expected a nonzero exit"
    echo "$out"
    exit 1
  }
  case "$out" in
  *"Raised at"* | *"Fatal error"* | *backtrace*)
    echo "FAIL: $label: uncaught exception leaked:"
    echo "$out"
    exit 1
    ;;
  esac
  echo "   $label: ok"
}

echo "== expect-fail smoke"
expect_fail "missing file" \
  dune exec --no-build bin/w2c.exe -- run devtools/smoke/no_such_file.w2
expect_fail "parse error" \
  dune exec --no-build bin/w2c.exe -- run devtools/smoke/parse_error.w2
expect_fail "cycle limit" \
  dune exec --no-build bin/w2c.exe -- run --max-cycles 5 examples/saxpy.w2
expect_fail "unknown fault site" \
  dune exec --no-build bin/w2c.exe -- run --inject bogus.site@1 examples/saxpy.w2

echo "== degradation smoke: injected fault still runs and validates"
$W2C run --validate --verify --inject modsched.place@1 examples/saxpy.w2 \
  >/dev/null

echo "== exact-certifier smoke: bounded --opt exact over the examples"
for f in examples/*.w2; do
  echo "   $f"
  out=$($W2C schedule --opt exact --opt-fuel 200000 "$f")
  case "$out" in
  *"{cert:"*) ;;
  *)
    echo "FAIL: $f: schedule report carries no certificate"
    echo "$out"
    exit 1
    ;;
  esac
done
$W2C run --validate --verify --opt exact --opt-fuel 200000 \
  examples/conv1d.w2 >/dev/null

echo "== bench smoke: budget-capped optimality gap table"
dune exec --no-build bench/main.exe -- --table optimal-quick >/dev/null

echo "CI OK"
