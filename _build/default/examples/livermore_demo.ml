(** Scientific-computing scenario: a tour of Livermore kernels with
    opposite scheduling behaviours —

    - LFK7 (equation of state): wide intra-iteration parallelism, hits
      its resource-bound interval and runs near machine peak;
    - LFK5 (tri-diagonal elimination): a genuine first-order recurrence,
      pinned to its dependence-cycle bound no matter the resources;
    - LFK22 (Planckian distribution): the EXP expansion produces 19
      conditionals and a body beyond the pipelining threshold — the
      compiler declines, exactly like the paper's.

    Run with: [dune exec examples/livermore_demo.exe] *)

module C = Sp_core.Compile
module Kernel = Sp_kernels.Kernel
module Livermore = Sp_kernels.Livermore

let () =
  let m = Sp_machine.Machine.warp in
  List.iter
    (fun (k, commentary) ->
      let factor, piped, _ = Kernel.speedup m k in
      Fmt.pr "%s — %s@." k.Kernel.name k.Kernel.descr;
      List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) piped.Kernel.loops;
      Fmt.pr "  %.2f MFLOPS on one cell, %.2fx over local compaction, %s@."
        piped.Kernel.mflops factor
        (if piped.Kernel.sem_ok then "semantics verified" else "BROKEN");
      Fmt.pr "  %s@.@." commentary)
    [
      ( Livermore.k7_eos,
        "resource-bound: every unit busy, interval at the lower bound" );
      ( Livermore.k5_tridiag,
        "recurrence-bound: x[k] needs x[k-1] through a 15-cycle chain; \
         pipelining overlaps the bookkeeping but cannot break the cycle" );
      ( Livermore.k22_planckian,
        "rejected: the expanded EXP body exceeds the length threshold \
         (paper Section 4.2: 'the scheduler did not even attempt to \
         pipeline this loop')" );
    ]
