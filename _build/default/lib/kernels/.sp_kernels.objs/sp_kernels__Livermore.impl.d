lib/kernels/livermore.ml: Kernel List Printf Sp_ir
