(** Translation-validation tests.

    Two directions: {e soundness} — the validator accepts every
    schedule the compiler produces, across the whole kernel suite,
    machines and random programs — and {e sensitivity} — deliberately
    corrupted schedules are rejected. Each corruption class must find
    an applicable mutation site in real compiled code (the test fails
    if it cannot, guarding against vacuous passes). *)

module C = Sp_core.Compile
module V = Sp_vliw.Validate
module Inst = Sp_vliw.Inst
module Prog = Sp_vliw.Prog
module Machine = Sp_machine.Machine

let machines = [ Machine.warp; Machine.toy; Machine.serial ]

let compile ?(config = C.default) m (k : Sp_kernels.Kernel.t) =
  let p = Sp_kernels.Kernel.program k in
  (C.program ~config m p).C.code

let check_clean what m code =
  let rep = V.all m code in
  Alcotest.(check bool)
    (Fmt.str "%s: %a" what V.pp_report rep)
    true (V.ok rep)

let test_suite_clean () =
  List.iter
    (fun m ->
      List.iter
        (fun (e : Sp_kernels.Suite.entry) ->
          let k = e.Sp_kernels.Suite.kernel in
          check_clean
            (Printf.sprintf "%s on %s" k.Sp_kernels.Kernel.name
               m.Machine.name)
            m (compile m k))
        Sp_kernels.Suite.all)
    machines

let test_livermore_clean () =
  List.iter
    (fun k ->
      check_clean k.Sp_kernels.Kernel.name Machine.warp
        (compile Machine.warp k))
    Sp_kernels.Livermore.all

let test_configs_clean () =
  let k = Sp_kernels.Livermore.k7_eos in
  List.iter
    (fun (name, config) ->
      check_clean name Machine.warp (compile ~config Machine.warp k))
    [
      ("local-only", C.local_only);
      ("mve-lcm", { C.default with C.mve_mode = Sp_core.Mve.Lcm });
      ("mve-off", { C.default with C.mve_mode = Sp_core.Mve.Off });
      ("binary", { C.default with C.search = Sp_core.Modsched.Binary });
    ]

(* ---- property: random programs validate cleanly --------------------- *)

let prop_random_clean =
  QCheck2.Test.make ~count:120 ~name:"random programs validate cleanly"
    ~print:(Fmt.str "%a" Gen.pp_spec) Gen.spec_gen (fun sp ->
      let p, _, _ = Gen.build sp in
      List.for_all
        (fun m ->
          let r = C.program m p in
          let rep = V.all m r.C.code in
          V.ok rep
          || QCheck2.Test.fail_reportf "%s: %a" m.Machine.name V.pp_report
               rep)
        [ Machine.warp; Machine.toy ])

(* ---- sensitivity: corrupted schedules are rejected ------------------ *)

(** A small, definitely-pipelined kernel to corrupt. *)
let victim () =
  let k =
    Sp_kernels.Kernel.mk "victim"
      (Sp_kernels.Kernel.W2
         {|program s;
var x, y : array [0..127] of float; k : int;
begin for k := 0 to 127 do y[k] := 2.5 * x[k] + y[k]; end.|})
  in
  compile Machine.warp k

let copy (p : Prog.t) = { Prog.code = Array.map (fun i -> i) p.Prog.code }

(** Corruption class 1: displace a producer one cycle past its tightest
    consumer. We look — inside the entry stretch, where the validator
    can prove latency violations — for a register written exactly once
    whose first read sits exactly at the write's latency; delaying that
    write by one word makes the consumer read a value still in flight. *)
let test_mutation_delay_producer () =
  let p = victim () in
  let m = Machine.warp in
  let n = Array.length p.Prog.code in
  let stretch_end = ref n in
  (try
     Array.iteri
       (fun i (inst : Inst.t) ->
         match inst.Inst.ctl with
         | Inst.Jump _ | Inst.Halt ->
           stretch_end := i;
           raise Exit
         | _ -> ())
       p.Prog.code
   with Exit -> ());
  (* reg id -> Some (write index, latency) for once-written registers,
     None once a second write poisons the pair *)
  let writes : (int, (int * int) option) Hashtbl.t = Hashtbl.create 32 in
  let site = ref None in
  (try
     for i = 0 to !stretch_end - 1 do
       let inst = p.Prog.code.(i) in
       List.iter
         (fun (r : Sp_ir.Vreg.t) ->
           match Hashtbl.find_opt writes r.Sp_ir.Vreg.id with
           | Some (Some (w, lat))
             when lat >= 2 && i = w + lat
                  && w + 1 < !stretch_end
                  && p.Prog.code.(w).Inst.ctl = Inst.Next
                  && p.Prog.code.(w + 1).Inst.ctl = Inst.Next ->
             site := Some (w, i);
             raise Exit
           | _ -> ())
         (List.concat_map Sp_ir.Op.reads inst.Inst.ops);
       List.iter
         (fun (op : Sp_ir.Op.t) ->
           match op.Sp_ir.Op.dst with
           | None -> ()
           | Some d ->
             let id = d.Sp_ir.Vreg.id in
             if Hashtbl.mem writes id then Hashtbl.replace writes id None
             else
               Hashtbl.replace writes id
                 (Some
                    ( i,
                      max 1
                        (Sp_machine.Machine.latency m op.Sp_ir.Op.kind) )))
         inst.Inst.ops
     done
   with Exit -> ());
  match !site with
  | None -> Alcotest.fail "no tight producer/consumer pair found to corrupt"
  | Some (w, c) ->
    let q = copy p in
    let tmp = q.Prog.code.(w) in
    q.Prog.code.(w) <- q.Prog.code.(w + 1);
    q.Prog.code.(w + 1) <- tmp;
    let rep = V.all Machine.warp q in
    Alcotest.(check bool) "clean before corruption" true
      (V.ok (V.all Machine.warp p));
    Alcotest.(check bool)
      (Fmt.str "producer at %d delayed past its read at %d rejected" w c)
      true
      (List.exists (fun v -> v.V.rule = V.Latency) rep.V.timing)

(** Corruption class 2: drop the first counter set; a later counter
    loop then runs off an uninitialized counter. *)
let test_mutation_drop_counter_set () =
  let p = victim () in
  let q = copy p in
  let dropped = ref false in
  Array.iteri
    (fun i (inst : Inst.t) ->
      if not !dropped then
        match inst.Inst.ctl with
        | Inst.CtrSet _ | Inst.CtrSetR _ ->
          q.Prog.code.(i) <- { inst with Inst.ctl = Inst.Next };
          dropped := true
        | _ -> ())
    p.Prog.code;
  if not !dropped then Alcotest.fail "no counter set found to drop";
  let rep = V.all Machine.warp q in
  Alcotest.(check bool) "dropped counter set rejected" true
    (List.exists (fun v -> v.V.rule = V.Counter) rep.V.timing)

(** Corruption class 3: duplicate a word's operations in place — two
    writes to one register land in the same cycle (and the word
    double-books its resources). *)
let test_mutation_duplicate_ops () =
  let p = victim () in
  let site = ref None in
  Array.iteri
    (fun i (inst : Inst.t) ->
      if
        !site = None
        && List.exists (fun (o : Sp_ir.Op.t) -> o.Sp_ir.Op.dst <> None)
             inst.Inst.ops
      then site := Some i)
    p.Prog.code;
  match !site with
  | None -> Alcotest.fail "no writing word found to duplicate"
  | Some i ->
    let q = copy p in
    let inst = q.Prog.code.(i) in
    q.Prog.code.(i) <- { inst with Inst.ops = inst.Inst.ops @ inst.Inst.ops };
    let rep = V.all Machine.warp q in
    Alcotest.(check bool)
      (Fmt.str "duplicated word %d rejected" i)
      true
      (List.exists (fun v -> v.V.rule = V.Write_port) rep.V.timing
      || rep.V.resources <> [])

let suite =
  [
    ("whole suite validates cleanly (3 machines)", `Slow, test_suite_clean);
    ("livermore validates cleanly", `Quick, test_livermore_clean);
    ("ablation configs validate cleanly", `Quick, test_configs_clean);
    QCheck_alcotest.to_alcotest prop_random_clean;
    ("mutation: delayed producer", `Quick, test_mutation_delay_producer);
    ("mutation: dropped counter set", `Quick, test_mutation_drop_counter_set);
    ("mutation: duplicated ops", `Quick, test_mutation_duplicate_ops);
  ]
