(** Reusable fixed-size domain pool for deterministic fork/join batches.

    A pool of width [n] uses the calling domain plus [n - 1] spawned
    worker domains; [~jobs:1] spawns nothing and {!run} is a plain
    sequential [List.map]. Workers park between batches, so one pool
    can serve many small batches cheaply. *)

type t

val create : jobs:int -> t
(** [create ~jobs] builds a pool of width [max 1 jobs], spawning
    [jobs - 1] worker domains. With [~jobs:1] no domain is ever
    spawned. *)

val jobs : t -> int
(** Width the pool was created with (after clamping to [>= 1]). *)

val worker_counts : t -> int array
(** Tasks executed so far per slot — index 0 is the submitting domain
    (which works through each batch's queue too), indices 1.. the
    spawned workers. Length {!jobs}. Drivers surface this through
    [Sp_obs.Metrics] so shard skew shows up in status snapshots; the
    counts themselves are diagnostics, not part of any deterministic
    artifact. *)

val run : t -> (unit -> 'a) list -> 'a list
(** [run t tasks] executes every task (on the pool's domains plus the
    calling domain) and returns their results in submission order.
    Every task runs to completion even if some raise; if any raised,
    the exception of the lowest-indexed failing task is re-raised with
    its backtrace — matching what a sequential [List.map] would have
    surfaced first. All hand-off is mutex-synchronized: writes made by
    the caller before [run] are visible to tasks, and task writes are
    visible to the caller afterwards. *)

val try_run :
  t -> (unit -> 'a) list -> ('a, exn * Printexc.raw_backtrace) result list
(** Like {!run} but never raises from a task: each task's outcome —
    value or captured exception with backtrace — lands in its own slot
    of the returned list (submission order). This is the primitive
    {!run} is built on, and what batch drivers that must survive
    individual failures (the differential campaign) use directly. *)

val shutdown : t -> unit
(** Stop and join the worker domains. The pool must not be used after.
    Safe to call on a [~jobs:1] pool (a no-op). *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] over a fresh pool and shuts it down on
    every exit path, so an escaping exception cannot leak parked
    domains — the discipline long-lived drivers (the compile daemon)
    use. *)

val default_jobs : unit -> int
(** CLI default width: [SP_JOBS] when set to a positive integer, else
    [Domain.recommended_domain_count ()]. *)
