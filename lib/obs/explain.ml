(** Scheduler decision log; see the interface for the recording
    contract. Events carry only flat data (strings, ints) so the core
    scheduler layers can report decisions without this library knowing
    their types — the same layering as {!Profile}. *)

type fail =
  | Window_empty of { lo : int; hi : int }
  | No_slot of { lo : int; hi : int; resource : string; slot : int }
  | No_wrap of { lo : int; hi : int }

type event =
  | Bounds of {
      res_mii : int;
      rec_mii : int;
      ctl_bound : int;
      mii : int;
      seq_len : int;
      binding : string;
      critical : string;
    }
  | Scc_order of { comps : int list list }
  | Probe_fail of { s : int; unit_id : int; unit_desc : string; fail : fail }
  | Probe_ok of { s : int; span : int; sc : int }
  | Fuel_out of { s : int }
  | Compact_stall of {
      unit_id : int;
      unit_desc : string;
      est : int;
      placed : int;
      resource : string;
    }
  | Mve_lifetime of { reg : string; birth : int; death : int; q : int }
  | Mve_choice of {
      unroll : int;
      mode : string;
      binding_reg : string;
      binding_q : int;
      fits : bool;
    }
  | Exact_probe of {
      s : int;
      verdict : string;
      spent : int;
      pruned_window : int;
      pruned_resource : int;
      nodes : int;
      nogood_hits : int;
      backjumps : int;
      learned : int;
      reused : int;
    }
  | Outcome of { status : string; ii : int option; cert : string option }

let on = ref false
let buf : (int * event) list ref = ref [] (* newest first *)
let cur_loop = ref (-1)

(* Domain-local redirection for parallel compilation tasks: under
   {!collect} both the buffer and the loop stamp are private to the
   running task, so worker domains never race on the shared state and
   a task's [set_loop] cannot leak into other loops. The shared [on]
   flag is written before tasks are submitted (visibility via the
   pool's queue mutex). *)
type local = { l_buf : (int * event) list ref; l_loop : int ref }

let local : local option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let enabled () = !on

let enable () =
  buf := [];
  cur_loop := -1;
  on := true

let disable () = on := false
let clear () = buf := []

let set_loop l =
  match !(Domain.DLS.get local) with
  | Some { l_loop; _ } -> l_loop := l
  | None -> cur_loop := l

let current_loop () =
  match !(Domain.DLS.get local) with
  | Some { l_loop; _ } -> !l_loop
  | None -> !cur_loop

let record e =
  if !on then
    match !(Domain.DLS.get local) with
    | Some { l_buf; l_loop } -> l_buf := (!l_loop, e) :: !l_buf
    | None -> buf := (!cur_loop, e) :: !buf

let collect f =
  let cell = Domain.DLS.get local in
  let prev = !cell in
  let b = { l_buf = ref []; l_loop = ref (-1) } in
  cell := Some b;
  Fun.protect
    ~finally:(fun () -> cell := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !(b.l_buf)))

let inject evs =
  match !(Domain.DLS.get local) with
  | Some { l_buf; _ } -> List.iter (fun p -> l_buf := p :: !l_buf) evs
  | None -> List.iter (fun p -> buf := p :: !buf) evs

let events () = List.rev !buf

(* ---- JSON ---------------------------------------------------------- *)

let opt_int = function Some i -> Json.Int i | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null

let json_of_fail = function
  | Window_empty { lo; hi } ->
    [ ("fail", Json.Str "window-empty"); ("lo", Json.Int lo);
      ("hi", Json.Int hi) ]
  | No_slot { lo; hi; resource; slot } ->
    [ ("fail", Json.Str "no-slot"); ("lo", Json.Int lo); ("hi", Json.Int hi);
      ("resource", Json.Str resource); ("slot", Json.Int slot) ]
  | No_wrap { lo; hi } ->
    [ ("fail", Json.Str "no-wrap"); ("lo", Json.Int lo); ("hi", Json.Int hi) ]

let json_of_event (e : event) : Json.t =
  let k kind rest = Json.Obj (("kind", Json.Str kind) :: rest) in
  match e with
  | Bounds { res_mii; rec_mii; ctl_bound; mii; seq_len; binding; critical } ->
    k "bounds"
      [ ("res_mii", Json.Int res_mii); ("rec_mii", Json.Int rec_mii);
        ("ctl_bound", Json.Int ctl_bound); ("mii", Json.Int mii);
        ("seq_len", Json.Int seq_len); ("binding", Json.Str binding);
        ("critical", Json.Str critical) ]
  | Scc_order { comps } ->
    k "scc-order"
      [ ( "comps",
          Json.List
            (List.map
               (fun c -> Json.List (List.map (fun v -> Json.Int v) c))
               comps) ) ]
  | Probe_fail { s; unit_id; unit_desc; fail } ->
    k "probe-fail"
      ([ ("s", Json.Int s); ("unit", Json.Int unit_id);
         ("unit_desc", Json.Str unit_desc) ]
      @ json_of_fail fail)
  | Probe_ok { s; span; sc } ->
    k "probe-ok"
      [ ("s", Json.Int s); ("span", Json.Int span); ("sc", Json.Int sc) ]
  | Fuel_out { s } -> k "fuel-out" [ ("s", Json.Int s) ]
  | Compact_stall { unit_id; unit_desc; est; placed; resource } ->
    k "compact-stall"
      [ ("unit", Json.Int unit_id); ("unit_desc", Json.Str unit_desc);
        ("est", Json.Int est); ("placed", Json.Int placed);
        ("resource", Json.Str resource) ]
  | Mve_lifetime { reg; birth; death; q } ->
    k "mve-lifetime"
      [ ("reg", Json.Str reg); ("birth", Json.Int birth);
        ("death", Json.Int death); ("q", Json.Int q) ]
  | Mve_choice { unroll; mode; binding_reg; binding_q; fits } ->
    k "mve-choice"
      [ ("unroll", Json.Int unroll); ("mode", Json.Str mode);
        ("binding_reg", Json.Str binding_reg);
        ("binding_q", Json.Int binding_q); ("fits", Json.Bool fits) ]
  | Exact_probe
      { s; verdict; spent; pruned_window; pruned_resource; nodes;
        nogood_hits; backjumps; learned; reused } ->
    k "exact-probe"
      [ ("s", Json.Int s); ("verdict", Json.Str verdict);
        ("spent", Json.Int spent);
        ("pruned_window", Json.Int pruned_window);
        ("pruned_resource", Json.Int pruned_resource);
        ("nodes", Json.Int nodes);
        ("nogood_hits", Json.Int nogood_hits);
        ("backjumps", Json.Int backjumps);
        ("learned", Json.Int learned);
        ("reused", Json.Int reused) ]
  | Outcome { status; ii; cert } ->
    k "outcome"
      [ ("status", Json.Str status); ("ii", opt_int ii);
        ("certificate", opt_str cert) ]

(** Loop ids in order of first appearance (stamp [-1] = outside any
    loop, grouped last). *)
let loop_ids evs =
  let seen = Hashtbl.create 8 in
  let ids =
    List.filter_map
      (fun (l, _) ->
        if Hashtbl.mem seen l then None
        else begin
          Hashtbl.replace seen l ();
          Some l
        end)
      evs
  in
  let inside, outside = List.partition (fun l -> l >= 0) ids in
  inside @ outside

let to_json () : Json.t =
  let evs = events () in
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ( "loops",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("loop", Json.Int l);
                   ( "events",
                     Json.List
                       (List.filter_map
                          (fun (l', e) ->
                            if l' = l then Some (json_of_event e) else None)
                          evs) );
                 ])
             (loop_ids evs)) );
    ]

(* ---- human report -------------------------------------------------- *)

let pp_fail ppf = function
  | Window_empty { lo; hi } ->
    Fmt.pf ppf "precedence window emptied (lo %d > hi %d)" lo hi
  | No_slot { lo; hi; resource; slot } ->
    Fmt.pf ppf "no slot in window [%d..%d]: '%s' full at residue %d" lo hi
      resource slot
  | No_wrap { lo; hi } ->
    Fmt.pf ppf
      "no slot in window [%d..%d]: wrap constraint (reduced construct \
       must fit one window)"
      lo hi

let pp_event ppf = function
  | Bounds { res_mii; rec_mii; ctl_bound; mii; seq_len; binding; critical } ->
    Fmt.pf ppf "MII %d = max(res %d, rec %d, ctl %d) — %s-bound%s; serial \
                restart %d"
      mii res_mii rec_mii ctl_bound binding
      (if critical = "" then "" else Printf.sprintf " (%s)" critical)
      seq_len
  | Scc_order { comps } ->
    Fmt.pf ppf "SCC scheduling order:";
    List.iter
      (fun c ->
        Fmt.pf ppf " {%s}"
          (String.concat " " (List.map string_of_int c)))
      comps
  | Probe_fail { s; unit_id; unit_desc; fail } ->
    Fmt.pf ppf "II %d failed: u%d '%s' — %a" s unit_id unit_desc pp_fail fail
  | Probe_ok { s; span; sc } ->
    Fmt.pf ppf "II %d feasible (span %d, %d stages)" s span sc
  | Fuel_out { s } -> Fmt.pf ppf "II %d: placement budget exhausted" s
  | Compact_stall { unit_id; unit_desc; est; placed; resource } ->
    Fmt.pf ppf "compaction: u%d '%s' stalled %d -> %d on '%s'" unit_id
      unit_desc est placed resource
  | Mve_lifetime { reg; birth; death; q } ->
    Fmt.pf ppf "MVE: %s live [%d..%d] -> q=%d" reg birth death q
  | Mve_choice { unroll; mode; binding_reg; binding_q; fits } ->
    Fmt.pf ppf "MVE: unroll u=%d (%s)%s%s" unroll mode
      (if binding_reg = "" then ""
       else Printf.sprintf ", forced by %s (q=%d)" binding_reg binding_q)
      (if fits then "" else " — REGISTER OVERFLOW")
  | Exact_probe
      { s; verdict; spent; pruned_window; pruned_resource; nodes;
        nogood_hits; backjumps; learned; reused } ->
    Fmt.pf ppf
      "exact: II %d %s (%d nodes, prunes: %d window / %d resource / %d \
       nogood, %d backjumps, learned %d, reused %d, %d fuel)"
      s verdict nodes pruned_window pruned_resource nogood_hits backjumps
      learned reused spent
  | Outcome { status; ii; cert } ->
    Fmt.pf ppf "outcome: %s%s%s" status
      (match ii with
      | Some ii -> Printf.sprintf " at II %d" ii
      | None -> "")
      (match cert with
      | Some c -> Printf.sprintf "; certificate: %s" c
      | None -> "")

let pp ppf () =
  let evs = events () in
  if evs = [] then Fmt.pf ppf "explain: no scheduling decisions recorded@."
  else
    List.iter
      (fun l ->
        if l >= 0 then Fmt.pf ppf "loop %d:@." l
        else Fmt.pf ppf "outside loops:@.";
        List.iter
          (fun (l', e) -> if l' = l then Fmt.pf ppf "  %a@." pp_event e)
          evs)
      (loop_ids evs)

let report () = Fmt.str "%a" pp ()
