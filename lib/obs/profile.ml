(** Schedule-quality reports; see the interface for field semantics. *)

type loop = {
  lp_id : int;
  lp_depth : int;
  lp_status : string;
  lp_n_units : int;
  lp_res_mii : int;
  lp_rec_mii : int;
  lp_mii : int;
  lp_seq_len : int;
  lp_achieved_ii : int option;
  lp_optimal_ii : int option;
  lp_efficiency : float;
  lp_cert : string option;
  lp_sc : int;
  lp_unroll : int;
  lp_mve_fregs : int;
  lp_mve_iregs : int;
  lp_prolog_words : int;
  lp_epilog_words : int;
  lp_kernel_words : int;
  lp_overhead : float;
  lp_probed : int;
  lp_fuel_spent : int;
  lp_mrt : (string * float) list;
}

type report = {
  r_kernel : string;
  r_machine : string;
  r_code_size : int;
  r_loops : loop list;
  r_cycles : int option;
  r_flops : int option;
  r_mflops : float option;
  r_dyn_ops : int option;
  r_sem_ok : bool option;
  r_utilization : (string * float) list;
}

let opt_int = function Some i -> Json.Int i | None -> Json.Null
let opt_str = function Some s -> Json.Str s | None -> Json.Null
let opt_float = function Some x -> Json.Float x | None -> Json.Null
let opt_bool = function Some b -> Json.Bool b | None -> Json.Null

let json_of_named_floats l =
  Json.Obj (List.map (fun (k, x) -> (k, Json.Float x)) l)

let loop_to_json (l : loop) : Json.t =
  Json.Obj
    [
      ("loop", Json.Int l.lp_id);
      ("depth", Json.Int l.lp_depth);
      ("status", Json.Str l.lp_status);
      ("n_units", Json.Int l.lp_n_units);
      ("res_mii", Json.Int l.lp_res_mii);
      ("rec_mii", Json.Int l.lp_rec_mii);
      ("mii", Json.Int l.lp_mii);
      ("seq_len", Json.Int l.lp_seq_len);
      ("achieved_ii", opt_int l.lp_achieved_ii);
      ("optimal_ii", opt_int l.lp_optimal_ii);
      ("efficiency", Json.Float l.lp_efficiency);
      ("certificate", opt_str l.lp_cert);
      ("sc", Json.Int l.lp_sc);
      ("unroll", Json.Int l.lp_unroll);
      ("mve_fregs", Json.Int l.lp_mve_fregs);
      ("mve_iregs", Json.Int l.lp_mve_iregs);
      ("prolog_words", Json.Int l.lp_prolog_words);
      ("epilog_words", Json.Int l.lp_epilog_words);
      ("kernel_words", Json.Int l.lp_kernel_words);
      ("overhead", Json.Float l.lp_overhead);
      ("intervals_probed", Json.Int l.lp_probed);
      ("fuel_spent", Json.Int l.lp_fuel_spent);
      ("mrt_occupancy", json_of_named_floats l.lp_mrt);
    ]

let to_json (r : report) : Json.t =
  Json.Obj
    [
      ("schema_version", Json.Int 1);
      ("kernel", Json.Str r.r_kernel);
      ("machine", Json.Str r.r_machine);
      ("code_size", Json.Int r.r_code_size);
      ("cycles", opt_int r.r_cycles);
      ("flops", opt_int r.r_flops);
      ("mflops", opt_float r.r_mflops);
      ("dyn_ops", opt_int r.r_dyn_ops);
      ("sem_ok", opt_bool r.r_sem_ok);
      ("utilization", json_of_named_floats r.r_utilization);
      ("loops", Json.List (List.map loop_to_json r.r_loops));
    ]

(* ---- rendering ---------------------------------------------------- *)

let pp_pct ppf x = Fmt.pf ppf "%3.0f%%" (100. *. x)

let pp_loop ppf (l : loop) =
  Fmt.pf ppf "loop%d(depth %d) [%s]: " l.lp_id l.lp_depth l.lp_status;
  (match l.lp_achieved_ii with
  | Some ii ->
    Fmt.pf ppf "ii=%d (mii=%d: res %d, rec %d%s) eff=%.2f sc=%d u=%d" ii
      l.lp_mii l.lp_res_mii l.lp_rec_mii
      (match l.lp_optimal_ii with
      | Some o -> Printf.sprintf ", optimal %d" o
      | None -> "")
      l.lp_efficiency l.lp_sc l.lp_unroll;
    Fmt.pf ppf "@.    code: %d prolog + %d kernel + %d epilog words (overhead %.2f)"
      l.lp_prolog_words l.lp_kernel_words l.lp_epilog_words l.lp_overhead;
    Fmt.pf ppf "@.    mve: %d fregs, %d iregs" l.lp_mve_fregs l.lp_mve_iregs
  | None ->
    Fmt.pf ppf "not pipelined (mii=%d, serial restart %d)" l.lp_mii
      l.lp_seq_len);
  (match l.lp_cert with
  | Some c -> Fmt.pf ppf "@.    certificate: %s" c
  | None -> ());
  Fmt.pf ppf "@.    search: %d interval(s), %d fuel" l.lp_probed
    l.lp_fuel_spent;
  if l.lp_mrt <> [] then begin
    Fmt.pf ppf "@.    mrt occupancy:";
    List.iter (fun (n, x) -> Fmt.pf ppf " %s=%a" n pp_pct x) l.lp_mrt
  end

let pp ppf (r : report) =
  Fmt.pf ppf "profile: %s on %s — %d instructions" r.r_kernel r.r_machine
    r.r_code_size;
  (match (r.r_cycles, r.r_mflops) with
  | Some c, Some mf ->
    Fmt.pf ppf ", %d cycles, %.2f MFLOPS%s" c mf
      (match r.r_sem_ok with
      | Some false -> " [SEMANTICS MISMATCH]"
      | _ -> "")
  | _ -> ());
  Fmt.pf ppf "@.";
  if r.r_utilization <> [] then begin
    Fmt.pf ppf "  utilization:";
    List.iter (fun (n, x) -> Fmt.pf ppf " %s=%a" n pp_pct x) r.r_utilization;
    Fmt.pf ppf "@."
  end;
  List.iter (fun l -> Fmt.pf ppf "  %a@." pp_loop l) r.r_loops
