(** Deterministic fault injection.

    Compiler passes mark their interesting failure sites with
    {!point}[ "pass.site"]; a test (or [w2c --inject site@k]) arms one
    site so that its [k]-th execution raises {!Injected}. The
    degradation machinery in {!Sp_core.Compile} must catch the
    exception and revert the affected loop to its serial schedule —
    the property suite in [test/test_fault.ml] verifies that under
    every registered fault the compiler still terminates, validates
    and produces interpreter-identical code.

    Sites are registered at module-initialization time by the passes
    that own them, so {!sites} is complete as soon as the libraries
    are linked. All state is global and explicitly deterministic:
    arming, hit counting and firing depend only on the call sequence. *)

exception Injected of string
(** Raised by an armed {!point}. Carries the site name. *)

let registered : (string, unit) Hashtbl.t = Hashtbl.create 16
let armed : (string * int) option ref = ref None
let hit_counts : (string, int) Hashtbl.t = Hashtbl.create 16
let fired_site : string option ref = ref None

let register site = Hashtbl.replace registered site ()

let sites () =
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) registered [])

(** Arm [site]: its [after]-th subsequent execution (1-based) raises
    {!Injected}. Re-arming resets all hit counters; only one site is
    armed at a time. *)
let arm ~site ~after =
  if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  register site;
  Hashtbl.reset hit_counts;
  fired_site := None;
  armed := Some (site, after)

(** Disarm everything and clear counters. *)
let disarm () =
  armed := None;
  fired_site := None;
  Hashtbl.reset hit_counts

(** Executions of [site] since the last {!arm}/{!disarm}. *)
let hits site = Option.value ~default:0 (Hashtbl.find_opt hit_counts site)

(** The armed site, if it has fired since arming. *)
let fired () = !fired_site

(** The currently armed [(site, after)] specification, if any — lets a
    driver that must re-arm per work item (the campaign's inject mode)
    read back what the CLI armed. *)
let armed_spec () = !armed

(** Whether any site is currently armed. Hit counting is global and
    call-sequence-dependent, so parallel drivers (the batch scheduler
    in {!Sp_core.Compile}) check this and fall back to sequential
    execution while a fault is armed — keeping injection
    deterministic. *)
let is_armed () = !armed <> None

(** Mark a failure site. When any site is armed, counts the hit and
    raises {!Injected} on the armed site's [after]-th execution; when
    nothing is armed it costs a single [ref] read. *)
let point site =
  match !armed with
  | None -> ()
  | Some (s, after) ->
    let n = 1 + hits site in
    Hashtbl.replace hit_counts site n;
    if s = site && n = after then begin
      fired_site := Some site;
      raise (Injected site)
    end
