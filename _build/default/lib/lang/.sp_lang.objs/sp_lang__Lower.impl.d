lib/lang/lower.ml: Ast Builder Expand Fmt Hashtbl List Memseg Op Parser Program Region Sp_ir Sp_machine String Subscript Token Typecheck Vreg
