(** Static resource-discipline checker for assembled programs.

    Walks the code in layout order, projecting each operation's
    reservation onto the instructions it occupies, and verifies that no
    resource is oversubscribed in any instruction. Layout order is
    exact for the machines in this repository (all reservations are at
    offset 0, so nothing spans a branch); for hypothetical multi-cycle
    reservations the projection across taken branches would be
    path-dependent and this checker is conservative along fall-through
    only. *)

open Sp_machine

type violation = {
  at : int;            (** instruction index *)
  resource : string;
  used : int;
  avail : int;
}

let pp_violation ppf v =
  Fmt.pf ppf "instruction %d oversubscribes %s: %d used, %d available"
    v.at v.resource v.used v.avail

let check_prog (m : Machine.t) (p : Prog.t) : violation list =
  let n = Prog.length p in
  let nr = Machine.num_resources m in
  (* usage.(i).(r) = units of resource r used by instruction i *)
  let usage = Array.init n (fun _ -> Array.make nr 0) in
  Array.iteri
    (fun i (inst : Inst.t) ->
      List.iter
        (fun (op : Sp_ir.Op.t) ->
          List.iter
            (fun (off, rid) ->
              let j = i + off in
              if j >= 0 && j < n then usage.(j).(rid) <- usage.(j).(rid) + 1)
            (Machine.reservation m op.kind))
        inst.ops)
    p.code;
  let viols = ref [] in
  Array.iteri
    (fun i u ->
      Array.iteri
        (fun rid used ->
          let r = Machine.resource m rid in
          if used > r.count then
            viols :=
              { at = i; resource = r.rname; used; avail = r.count }
              :: !viols)
        u)
    usage;
  List.rev !viols

(** Raise on the first violation; for use in tests. *)
exception Oversubscribed of violation

let check_exn m p =
  match check_prog m p with [] -> () | v :: _ -> raise (Oversubscribed v)
