lib/core/dot.ml: Array Ddg Fmt List String Sunit
