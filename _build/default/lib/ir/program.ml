(** A whole IR program: memory segments plus a region tree, together
    with the register/operation supplies so later passes can create
    fresh names. *)

type t = {
  name : string;
  segs : Memseg.t list;
  body : Region.t;
  vregs : Vreg.Supply.supply;
  ops : Op.Supply.supply;
}

let num_vregs p = Vreg.Supply.count p.vregs
let num_ops p = Op.Supply.count p.ops

let find_seg p name =
  match List.find_opt (fun s -> String.equal s.Memseg.sname name) p.segs with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Program.find_seg: no segment %S" name)

let pp ppf p =
  Fmt.pf ppf "program %s@." p.name;
  List.iter
    (fun (s : Memseg.t) ->
      Fmt.pf ppf "  array %s[%d]%s@." s.sname s.size
        (if s.independent then " (independent)" else ""))
    p.segs;
  Region.pp ppf p.body

(** Structural statistics, used by the reporting harness. *)
type stats = {
  n_ops : int;
  n_loops : int;
  n_innermost : int;
  n_ifs : int;
}

let stats p =
  let n_loops = ref 0 and n_ifs = ref 0 in
  let rec go = function
    | Region.Ops _ -> ()
    | Region.Seq rs -> List.iter go rs
    | Region.If { then_; else_; _ } ->
      incr n_ifs;
      go then_;
      go else_
    | Region.For { body; _ } ->
      incr n_loops;
      go body
  in
  go p.body;
  {
    n_ops = Region.ops_count p.body;
    n_loops = !n_loops;
    n_innermost = List.length (Region.innermost_loops p.body);
    n_ifs = !n_ifs;
  }
