(** The regression bank: minimized failing programs as replayable
    [.w2] files.

    A banked file is ordinary W2 source preceded by [-- camp:] line
    comments carrying the replay metadata — the expected verdict kind
    and whatever trigger (fault injection, fuel, cycle watchdog)
    reproduces it. Line comments are already part of the W2 lexer, so
    every banked file is simultaneously a valid compiler input (the
    trigger-less replay must {e pass}) and a self-describing
    regression (the triggered replay must reproduce its kind). The
    campaign appends to the bank; the [test/campaign] runner replays
    every file on every [dune runtest] — the suite only ever grows
    stronger. *)

type entry = {
  kind : string;                  (** expected verdict under the trigger *)
  seed : int option;              (** generator seed it came from *)
  inject : (string * int) option; (** fault site to arm on replay *)
  fuel : int option;              (** compile-fuel cap on replay *)
  max_cycles : int option;        (** simulation watchdog on replay *)
  detail : string;                (** human note; not used on replay *)
  src : string;                   (** the W2 program text *)
}

let mk ?seed ?inject ?fuel ?max_cycles ?(detail = "") ~kind src =
  { kind; seed; inject; fuel; max_cycles; detail; src }

(* one [-- camp: key=value] line per present field, fixed order *)
let header (e : entry) =
  let b = Buffer.create 128 in
  let line k v = Buffer.add_string b (Printf.sprintf "-- camp: %s=%s\n" k v) in
  line "kind" e.kind;
  Option.iter (fun s -> line "seed" (string_of_int s)) e.seed;
  Option.iter (fun (s, k) -> line "inject" (Printf.sprintf "%s@%d" s k)) e.inject;
  Option.iter (fun f -> line "fuel" (string_of_int f)) e.fuel;
  Option.iter (fun c -> line "max_cycles" (string_of_int c)) e.max_cycles;
  if e.detail <> "" then
    line "detail" (String.map (function '\n' -> ' ' | c -> c) e.detail);
  Buffer.contents b

let to_string e = header e ^ e.src

(** Parse a banked file's text back into an entry. Unknown keys are
    ignored (forward compatibility); a missing [kind] is an error. *)
let of_string text : (entry, string) result =
  let prefix = "-- camp: " in
  let lines = String.split_on_char '\n' text in
  let rec go acc = function
    | l :: rest when String.length l >= String.length prefix
                     && String.sub l 0 (String.length prefix) = prefix ->
      let kv = String.sub l (String.length prefix)
                 (String.length l - String.length prefix) in
      (match String.index_opt kv '=' with
      | Some i ->
        let k = String.sub kv 0 i in
        let v = String.sub kv (i + 1) (String.length kv - i - 1) in
        go ((k, v) :: acc) rest
      | None -> go acc rest)
    | rest -> (List.rev acc, String.concat "\n" rest)
  in
  let kvs, src = go [] lines in
  let find k = List.assoc_opt k kvs in
  let int_of k =
    match find k with
    | None -> Ok None
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> Ok (Some n)
      | None -> Error (Printf.sprintf "bad %s=%s" k v))
  in
  match find "kind" with
  | None -> Error "missing '-- camp: kind=...' header"
  | Some kind -> (
    let inject =
      match find "inject" with
      | None -> Ok None
      | Some v -> (
        match String.index_opt v '@' with
        | Some i -> (
          let site = String.sub v 0 i in
          match
            int_of_string_opt (String.sub v (i + 1) (String.length v - i - 1))
          with
          | Some k when k >= 1 -> Ok (Some (site, k))
          | _ -> Error (Printf.sprintf "bad inject=%s" v))
        | None -> Error (Printf.sprintf "bad inject=%s" v))
    in
    match (int_of "seed", inject, int_of "fuel", int_of "max_cycles") with
    | Ok seed, Ok inject, Ok fuel, Ok max_cycles ->
      Ok
        {
          kind;
          seed;
          inject;
          fuel;
          max_cycles;
          detail = Option.value ~default:"" (find "detail");
          src;
        }
    | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e
      -> Error e)

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path : (entry, string) result =
  match of_string (read_file path) with
  | Ok e -> Ok e
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Sys_error msg -> Error msg

(** Banked [.w2] files of [dir], sorted by filename for deterministic
    replay order. Missing directory reads as empty. *)
let list_dir dir : string list =
  match Sys.readdir dir with
  | files ->
    Array.to_list files
    |> List.filter (fun f -> Filename.check_suffix f ".w2")
    |> List.sort compare
    |> List.map (fun f -> Filename.concat dir f)
  | exception Sys_error _ -> []

(** Deterministic filename for an entry: kind plus seed (or a digest
    of the source when no seed is known). *)
let filename (e : entry) =
  match e.seed with
  | Some s -> Printf.sprintf "%s_s%d.w2" e.kind s
  | None -> Printf.sprintf "%s_h%08x.w2" e.kind (Hashtbl.hash e.src)

(** Write [e] into [dir] (created if missing) under its deterministic
    {!filename}. Returns [Some path] when written, [None] when a file
    of that name already exists — the bank keeps the first repro and
    stays append-only. *)
let save ~dir (e : entry) : string option =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  if Sys.file_exists path then None
  else begin
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (to_string e));
    Some path
  end
