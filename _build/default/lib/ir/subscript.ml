(** Semantic array-subscript descriptors for dependence analysis.

    A memory access records, besides the registers used to compute its
    address, a best-effort algebraic description of the subscript:

    {v  subscript  =  coef * iv  +  syms  +  off  v}

    where [iv] is (usually) the induction variable of the innermost
    enclosing loop, [syms] is a multiset of loop-invariant registers,
    and [off] a compile-time constant. Two accesses with equal [iv],
    [coef] and [syms] differ by a constant, and their dependence
    distance in iterations is exact; anything else is treated
    conservatively (see {!Sp_core.Ddg}). *)

type t = {
  coef : int;              (** coefficient of the induction variable *)
  iv : Vreg.t option;      (** the induction variable, if any *)
  syms : int list;         (** sorted ids of invariant registers added in *)
  off : int;               (** constant part *)
}

let constant off = { coef = 0; iv = None; syms = []; off }

let of_iv ?(coef = 1) ?(off = 0) iv = { coef; iv = Some iv; syms = []; off }

let unknown = None

let add_sym t (v : Vreg.t) =
  { t with syms = List.sort compare (v.Vreg.id :: t.syms) }

let add_off t k = { t with off = t.off + k }

let pp ppf t =
  let iv_part =
    match t.iv with
    | None -> ""
    | Some v -> Printf.sprintf "%d*%s" t.coef (Vreg.to_string v)
  in
  let sym_part =
    String.concat "" (List.map (Printf.sprintf "+%%%d") t.syms)
  in
  Fmt.pf ppf "[%s%s%+d]" iv_part sym_part t.off

(** Same shape (same iv, coefficient and symbolic part), so that the
    two subscripts differ by the constant [off] only. *)
let comparable a b =
  a.coef = b.coef
  && (match (a.iv, b.iv) with
     | None, None -> true
     | Some u, Some v -> Vreg.equal u v
     | _ -> false)
  && List.equal Int.equal a.syms b.syms

(** [distance ~from ~to_] — if both subscripts are comparable and refer
    to the induction variable, the signed iteration distance [p] such
    that [from] in iteration [i] touches the element [to_] touches in
    iteration [i + p]; [None] when the accesses never alias or cannot be
    compared exactly.

    For subscripts [coef*i + c1] and [coef*i + c2]:
    [c1 = coef*p + c2], i.e. [p = (c1 - c2) / coef] when divisible. *)
type dist = Never | Exactly of int | Unknown

let distance ~from ~to_ =
  if not (comparable from to_) then Unknown
  else if from.coef = 0 then
    (* loop-invariant subscripts: alias iff equal constants, at every
       iteration distance *)
    if from.off = to_.off then Unknown else Never
  else
    let diff = from.off - to_.off in
    if diff mod from.coef = 0 then Exactly (diff / from.coef) else Never
