(** Exact modulo schedulability at a fixed initiation interval.

    The heuristic scheduler ({!Sp_core.Modsched}) can fail at an
    interval that is in fact schedulable; this module decides
    schedulability {e exactly}, with no external solver, by searching a
    finite constraint space that is provably equivalent to the infinite
    one over issue times.

    {2 The encoding}

    Write an issue time as [t(v) = s*k(v) + r(v)] with residue
    [r(v) = t(v) mod s]. The three constraint families of the paper's
    formulation then split cleanly:

    - {e modulo resources} (Section 2.1): the reservation of [v]
      occupies slot [(r(v) + off) mod s] — it depends on the residues
      only;
    - {e wrap windows}: a reduced construct carrying [no_wrap] must sit
      strictly inside one s-window, i.e. [r(v) + len(v) <= s - 1] —
      residues only;
    - {e dependences}: an edge [(u, v, d, w)] requires
      [t(v) - t(u) >= d - s*w], which given residues is equivalent to
      the integer difference constraint
      [k(v) - k(u) >= ceil((d + r(u) - r(v)) / s) - w].

    Difference constraints are satisfiable iff their constraint graph
    has no positive-weight cycle — and every cycle of the dependence
    graph lives inside one strongly connected component. So: a modulo
    schedule at interval [s] exists iff some residue assignment
    [r : nodes -> \[0, s)] satisfies resources and wrap windows and
    leaves every component's [k]-graph free of positive cycles. The
    residue space is finite ([s^n]); the search below enumerates it
    with pruning, so an exhausted search is a {e proof} of
    infeasibility at [s].

    {2 The search}

    Conflict-directed backjumping (CBJ) with nogood learning over the
    residue space, in a configurable variable order (components
    topologically; members permuted within their component only, so
    every component is still decided contiguously):

    - {e residue domains} are cut by the [no_wrap] cap up front;
    - {e nogood bank}: before any constraint work, a candidate is
      checked against the learned nogoods ({!Nogood.consult}) — each
      hit prunes the value and charges the nogood's other literals to
      the conflict set;
    - {e longest-path windows}: for two nodes of one component the
      symbolic closure ({!Sp_core.Spath}) bounds [t(v) - t(u)] into
      [\[L(u,v), -L(v,u)\]]; when that window is narrower than [s] it
      admits exactly one residue difference class, so a candidate
      residue is checked in O(1) against every placed peer — a
      violation names the peer (the conflict reason) and learns a
      binary window nogood;
    - {e resource pruning}: candidates are probed against the shared
      modulo reservation table ({!Sp_core.Mrt.Modulo}); on a conflict,
      {!Sp_core.Mrt.Modulo.last_conflict} names the oversubscribed
      (slot, resource) cell and a shadow occupancy map names the
      placed contributors — the shallowest subset whose demand still
      oversubscribes the cell becomes a resource nogood;
    - {e cycle check}: when a component's last member is placed, a
      Bellman–Ford longest-path pass with predecessor tracking decides
      the [k]-graph exactly; a positive cycle is extracted, its
      members become a cycle nogood, and if the just-placed node is
      not on the cycle the search backjumps past it non-chronologically;
    - {e domain wipeout} learns the accumulated conflict set as a
      derived nogood and backjumps to its deepest member;
    - {e rotation anchor}: when no unit carries [no_wrap], rotating all
      residues by a constant is a solution symmetry, so the first
      variable's residue is pinned to 0 (disabled under [?pin]).

    With [learn = false] the search degrades to the chronological
    branch and bound of the original implementation: no bank, no
    conflict sets, every wipeout backtracks one level.

    Every candidate probe and every Bellman–Ford edge relaxation
    {e per sweep} spends one unit of fuel; exhaustion aborts with
    {!Out_of_budget} — the same bounded-work discipline as the
    heuristic's [Fuel_exhausted]. *)

module Ddg = Sp_core.Ddg
module Scc = Sp_core.Scc
module Spath = Sp_core.Spath
module Mrt = Sp_core.Mrt
module Sunit = Sp_core.Sunit
module Machine = Sp_machine.Machine
module Intmath = Sp_util.Intmath
module Fault = Sp_util.Fault

exception Out_of_fuel

let m_solves = Sp_obs.Metrics.counter "exact.solves"
let m_nodes = Sp_obs.Metrics.counter "exact.nodes_expanded"
let m_pruned = Sp_obs.Metrics.counter "exact.pruned"
let m_cycle_checks = Sp_obs.Metrics.counter "exact.cycle_checks"
let m_fuel = Sp_obs.Metrics.counter "exact.fuel_spent"
let m_exhausted = Sp_obs.Metrics.counter "exact.fuel_exhausted"
let m_nogood_hits = Sp_obs.Metrics.counter "exact.nogood_hits"
let m_backjumps = Sp_obs.Metrics.counter "exact.backjumps"

(* Doctoring site: corrupts the learned-nogood bank so the divergence
   oracle and the portfolio cross-check can prove they would catch a
   learner bug. Never fires unless armed. *)
let nogood_site = "exact.nogood"
let () = Fault.register nogood_site

type meter = { mutable left : int }

let spend meter n =
  meter.left <- meter.left - n;
  if meter.left < 0 then raise Out_of_fuel

type verdict =
  | Feasible of int array
      (** least non-negative issue times of a valid schedule at [s] *)
  | Infeasible
      (** proof: the whole residue space was covered by the search *)
  | Out_of_budget

type var_order = O_program | O_most_constrained | O_busiest

type config = {
  learn : bool;
  order : var_order;
  seed : int;  (** rotates the residue probing order; 0 = ascending *)
}

let default_config = { learn = true; order = O_program; seed = 0 }

type stats = {
  nodes : int;
  pruned_window : int;
  pruned_resource : int;
  nogood_hits : int;
  backjumps : int;
  learned : int;   (** nogoods recorded by this solve *)
  reused : int;    (** nogoods already in the bank at entry *)
}

type result = {
  verdict : verdict;
  spent : int;  (** fuel units consumed *)
  stats : stats;
}

(* [k]-graph weight of an edge under the current residues. *)
let kweight ~s ~(res : int array) (e : Ddg.edge) =
  Intmath.ceil_div (e.Ddg.delay + res.(e.Ddg.src) - res.(e.Ddg.dst)) s
  - e.Ddg.omega

let order_name = function
  | O_program -> "program"
  | O_most_constrained -> "most-constrained"
  | O_busiest -> "busiest-resource"

(* What one component's exact cycle check found. *)
type cycle_check =
  | Acyclic
  | Positive_cycle of {
      members : int list;  (** global ids on the cycle *)
      edges : (int * int * int * int) list;
    }

let solve ?fuel ?(config = default_config) ?bank ?(pin = [])
    (m : Machine.t) (g : Ddg.t) ~(scc : Scc.t)
    ~(spaths : Spath.t option array) ~s : result =
  if s <= 0 then invalid_arg "Sp_opt.Exact.solve: s <= 0";
  Sp_obs.Metrics.incr m_solves;
  let units = g.Ddg.units in
  let n = Array.length units in
  let nres = Machine.num_resources m in
  let budget = Option.value ~default:max_int fuel in
  let meter = { left = budget } in
  let learn = config.learn && bank <> None in
  (* residue cap: a no_wrap unit must not touch the window boundary
     (see Modsched.wrap_ok) *)
  let cap =
    Array.map
      (fun (u : Sunit.t) ->
        if u.Sunit.no_wrap then s - 1 - u.Sunit.len else s - 1)
      units
  in
  let pinned = Array.make n (-1) in
  List.iter (fun (v, r) -> pinned.(v) <- r) pin;
  (* a self-dependence constrains no residue: ceil(d/s) - w <= 0 must
     hold outright or no assignment helps *)
  let self_ok =
    List.for_all
      (fun (e : Ddg.edge) ->
        e.Ddg.src <> e.Ddg.dst
        || Intmath.ceil_div e.Ddg.delay s - e.Ddg.omega <= 0)
      g.Ddg.edges
  in
  let pins_ok =
    Array.for_all2 (fun p c -> p <= c) pinned cap
  in
  let no_stats =
    { nodes = 0; pruned_window = 0; pruned_resource = 0; nogood_hits = 0;
      backjumps = 0; learned = 0;
      reused = (match bank with Some b -> Nogood.size b | None -> 0) }
  in
  if (not self_ok) || (not pins_ok) || Array.exists (fun c -> c < 0) cap then
    { verdict = Infeasible; spent = 0; stats = no_stats }
  else begin
    let nc = Scc.num_components scc in
    (* variable order: condensation topologically; members permuted
       within their component only, so components stay contiguous and
       the cycle check still fires exactly when a component closes *)
    let member_key =
      match config.order with
      | O_program -> fun _ -> 0
      | O_most_constrained -> fun v -> cap.(v) (* smallest domain first *)
      | O_busiest ->
        (* demand-to-capacity hottest resource; nodes reserving it
           first, heaviest reservation first *)
        let dem = Array.make (max 1 nres) 0 in
        Array.iter
          (fun (u : Sunit.t) ->
            List.iter (fun (_, rid) -> dem.(rid) <- dem.(rid) + 1)
              u.Sunit.resv)
          units;
        let busiest = ref 0 in
        for rid = 1 to nres - 1 do
          let better =
            dem.(rid) * (Machine.resource m !busiest).Machine.count
            > dem.(!busiest) * (Machine.resource m rid).Machine.count
          in
          if better then busiest := rid
        done;
        let hot = !busiest in
        fun v ->
          let uses =
            List.length
              (List.filter (fun (_, rid) -> rid = hot)
                 units.(v).Sunit.resv)
          in
          -uses
    in
    let order =
      Array.of_list
        (List.concat_map
           (fun c ->
             List.stable_sort
               (fun a b -> compare (member_key a) (member_key b))
               scc.Scc.comps.(c))
           (Scc.topo_components scc))
    in
    let depth = Array.make n 0 in
    Array.iteri (fun p v -> depth.(v) <- p) order;
    (* does position [p] place the last member of its component?
       (components are contiguous in [order] by construction) *)
    let closes =
      Array.mapi
        (fun p v ->
          p = n - 1 || scc.Scc.comp_of.(order.(p + 1)) <> scc.Scc.comp_of.(v))
        order
    in
    let local_of = Array.make n 0 in
    Array.iter
      (fun members -> List.iteri (fun k v -> local_of.(v) <- k) members)
      scc.Scc.comps;
    (* per node: the component closure and the peers it constrains *)
    let comp_sp = Array.make n None in
    let peers = Array.make n [] in
    Array.iteri
      (fun c members ->
        match spaths.(c) with
        | None -> ()
        | Some sp ->
          let idx = List.mapi (fun k v -> (v, k)) members in
          List.iter
            (fun (v, k) ->
              comp_sp.(v) <- Some (sp, k);
              peers.(v) <- List.filter (fun (w, _) -> w <> v) idx)
            idx)
      scc.Scc.comps;
    let intra = Array.make nc [] in
    List.iter
      (fun (e : Ddg.edge) ->
        let c = scc.Scc.comp_of.(e.Ddg.src) in
        if e.Ddg.src <> e.Ddg.dst && c = scc.Scc.comp_of.(e.Ddg.dst) then
          intra.(c) <- e :: intra.(c))
      g.Ddg.edges;
    let res = Array.make n (-1) in
    let table = Mrt.Modulo.create m ~s in
    (* shadow occupancy: which placed node contributed each unit of
       demand to each (slot, resource) cell — the conflict attribution
       behind resource nogoods *)
    let occ = Array.make (s * max 1 nres) [] in
    let cell ~at off rid = ((((at + off) mod s) + s) mod s * nres) + rid in
    let occ_add v r =
      List.iter
        (fun (off, rid) ->
          let c = cell ~at:r off rid in
          occ.(c) <- v :: occ.(c))
        units.(v).Sunit.resv
    in
    let occ_remove v r =
      List.iter
        (fun (off, rid) ->
          let c = cell ~at:r off rid in
          let rec drop1 = function
            | [] -> []
            | w :: rest -> if w = v then rest else w :: drop1 rest
          in
          occ.(c) <- drop1 occ.(c))
        units.(v).Sunit.resv
    in
    (* prune attribution for the decision log *)
    let pruned_window = ref 0
    and pruned_resource = ref 0
    and nodes_expanded = ref 0
    and nogood_hits = ref 0
    and backjumps = ref 0
    and learned = ref 0 in
    let reused = match bank with Some b -> Nogood.size b | None -> 0 in
    let learn_ng lits cert =
      match bank with
      | Some b when learn ->
        let lits =
          List.sort_uniq compare
            (List.map (fun v -> { Nogood.var = v; res = res.(v) }) lits)
        in
        if Nogood.add b { Nogood.lits = Array.of_list lits; cert } then
          incr learned
      | _ -> ()
    in
    (match bank with
    | Some b when learn ->
      Nogood.reindex b ~depth_of:(fun v -> depth.(v));
      (* doctored corruption: flood the bank with bogus unary nogoods
         covering the first variable's whole domain, silently flipping
         the verdict to Infeasible — the cross-checks must catch it *)
      (try Fault.point nogood_site
       with Fault.Injected _ ->
         let v0 = order.(0) in
         for r = 0 to cap.(v0) do
           ignore
             (Nogood.add b
                {
                  Nogood.lits = [| { Nogood.var = v0; res = r } |];
                  cert = Nogood.C_derived;
                })
         done)
    | _ -> ());
    let anchored =
      pin = []
      && not (Array.exists (fun (u : Sunit.t) -> u.Sunit.no_wrap) units)
    in
    (* residue window from the symbolic longest paths: t(v) - t(w) lies
       in [L(w,v), -L(v,w)]; a window narrower than s pins the residue
       difference to one class mod s. Returns the first violated placed
       peer — the conflict reason. *)
    let window_viol v r =
      match comp_sp.(v) with
      | None -> None
      | Some (sp, _) when s < sp.Spath.s_min || s > sp.Spath.s_max ->
        None (* closure not valid at this interval: skip the pruning *)
      | Some (sp, lv) ->
        List.find_map
          (fun (w, lw) ->
            if res.(w) < 0 then None
            else
              match (Spath.query sp ~s lw lv, Spath.query sp ~s lv lw) with
              | Some lo, Some neg_up ->
                let up = -neg_up in
                if up - lo + 1 >= s then None
                else
                  let dm = ((r - res.(w) - lo) mod s + s) mod s in
                  if dm <= up - lo then None else Some w
              | _ -> None)
          peers.(v)
    in
    (* minimal-ish resource conflict: the failed probe's cell, its
       placed contributors from the shadow occupancy, and the
       shallowest subset whose demand still oversubscribes the cell
       together with the candidate (shallow literals let the eventual
       wipeout backjump further) *)
    let resource_reason v r =
      match Mrt.Modulo.last_conflict table with
      | None -> []
      | Some (slot, rid) ->
        let cand =
          List.length
            (List.filter
               (fun (off, rid') ->
                 rid' = rid && (((r + off) mod s) + s) mod s = slot)
               units.(v).Sunit.resv)
        in
        let limit = (Machine.resource m rid).Machine.count in
        let by_var = Hashtbl.create 8 in
        List.iter
          (fun w ->
            Hashtbl.replace by_var w
              (1 + Option.value ~default:0 (Hashtbl.find_opt by_var w)))
          occ.((slot * nres) + rid);
        let contributors =
          List.sort
            (fun (a, _) (b, _) -> compare depth.(a) depth.(b))
            (Hashtbl.fold (fun w d acc -> (w, d) :: acc) by_var [])
        in
        let rec take need = function
          | _ when need <= 0 -> []
          | [] -> []
          | (w, d) :: rest -> w :: take (need - d) rest
        in
        (* need the taken demand to exceed limit - cand *)
        take (limit - cand + 1) contributors
    in
    (* exact feasibility of one component's k-graph: Bellman–Ford
       longest-path relaxation with predecessor tracking; any
       relaxation still possible after |members| sweeps exposes a
       positive cycle, which is walked out for the cycle nogood *)
    let comp_check c =
      Sp_obs.Metrics.incr m_cycle_checks;
      match intra.(c) with
      | [] -> Acyclic
      | edges ->
        let members = scc.Scc.comps.(c) in
        let nl = List.length members in
        let ne = List.length edges in
        let dist = Array.make nl 0 in
        let pred = Array.make nl None in
        let changed = ref true and sweeps = ref 0 and last = ref (-1) in
        while !changed && !sweeps <= nl do
          changed := false;
          incr sweeps;
          spend meter ne;
          List.iter
            (fun (e : Ddg.edge) ->
              let nd = dist.(local_of.(e.Ddg.src)) + kweight ~s ~res e in
              if nd > dist.(local_of.(e.Ddg.dst)) then begin
                dist.(local_of.(e.Ddg.dst)) <- nd;
                pred.(local_of.(e.Ddg.dst)) <- Some e;
                last := local_of.(e.Ddg.dst);
                changed := true
              end)
            edges
        done;
        if not !changed then Acyclic
        else begin
          (* walk predecessors nl steps to land on the positive cycle,
             then once around it to collect members and edges *)
          let glob = Array.of_list members in
          let step l =
            match pred.(l) with
            | Some e -> local_of.(e.Ddg.src)
            | None -> l
          in
          let x = ref !last in
          for _ = 1 to nl do
            x := step !x
          done;
          let start = !x in
          let rec collect l acc_m acc_e =
            match pred.(l) with
            | None -> (acc_m, acc_e) (* cannot happen on the cycle *)
            | Some e ->
              let l' = local_of.(e.Ddg.src) in
              let acc_m = glob.(l) :: acc_m
              and acc_e =
                (e.Ddg.src, e.Ddg.dst, e.Ddg.delay, e.Ddg.omega) :: acc_e
              in
              if l' = start then (acc_m, acc_e) else collect l' acc_m acc_e
          in
          let members, edges = collect start [] [] in
          Positive_cycle { members; edges }
        end
    in
    (* least non-negative solution of the full k-graph (cycles are
       non-positive once every component passed its check; cross-
       component edges cannot close a cycle) *)
    let reconstruct () =
      let k = Array.make n 0 in
      let changed = ref true and sweeps = ref 0 in
      while !changed do
        changed := false;
        incr sweeps;
        if !sweeps > n + 1 then
          failwith "Sp_opt.Exact: positive cycle escaped the search";
        List.iter
          (fun (e : Ddg.edge) ->
            let nd = k.(e.Ddg.src) + kweight ~s ~res e in
            if nd > k.(e.Ddg.dst) then begin
              k.(e.Ddg.dst) <- nd;
              changed := true
            end)
          g.Ddg.edges
      done;
      Array.init n (fun v -> (s * k.(v)) + res.(v))
    in
    (* CBJ: [place p] either solves the suffix, returns false
       (chronological failure), or raises [Backjump conf] carrying the
       set of shallower variables whose placements caused every
       failure it saw — ancestors outside the set skip their remaining
       values. With [learn = false] nothing is blamed and every
       wipeout backtracks one level, reproducing the original
       chronological branch and bound node for node. *)
    let exception Backjump of bool array in
    let rec place p =
      if p = n then true
      else begin
        let v = order.(p) in
        let u = units.(v) in
        let conf = Array.make n false in
        let blame w = if learn then conf.(w) <- true in
        let blame_all ws = List.iter blame ws in
        let hi = if depth.(v) = 0 && anchored then 0 else cap.(v) in
        let dom = hi + 1 in
        let rot = if dom > 0 then config.seed mod dom else 0 in
        let value i = (rot + i) mod dom in
        let rec try_r i =
          if i >= dom then false
          else begin
            let r = if pinned.(v) >= 0 then pinned.(v) else value i in
            let next () =
              if pinned.(v) >= 0 then false else try_r (i + 1)
            in
            spend meter 1;
            Sp_obs.Metrics.incr m_nodes;
            incr nodes_expanded;
            let banked =
              if not learn then None
              else
                match bank with
                | Some b -> Nogood.consult b ~var:v ~res:r ~assigned:res
                | None -> None
            in
            match banked with
            | Some ng ->
              Sp_obs.Metrics.incr m_nogood_hits;
              incr nogood_hits;
              Array.iter
                (fun (l : Nogood.lit) -> if l.Nogood.var <> v then blame l.Nogood.var)
                ng.Nogood.lits;
              next ()
            | None -> (
              match window_viol v r with
              | Some w ->
                incr pruned_window;
                Sp_obs.Metrics.incr m_pruned;
                blame w;
                (match bank with
                | Some b when learn ->
                  let lits =
                    List.sort_uniq compare
                      [
                        { Nogood.var = w; res = res.(w) };
                        { Nogood.var = v; res = r };
                      ]
                  in
                  if
                    Nogood.add b
                      {
                        Nogood.lits = Array.of_list lits;
                        cert = Nogood.C_window { u = w; v };
                      }
                  then incr learned
                | _ -> ());
                next ()
              | None ->
                if not (Mrt.Modulo.fits table ~at:r u.Sunit.resv) then begin
                  incr pruned_resource;
                  Sp_obs.Metrics.incr m_pruned;
                  let contributors = resource_reason v r in
                  blame_all contributors;
                  (match (bank, Mrt.Modulo.last_conflict table) with
                  | Some b, Some (_, rid) when learn ->
                    let lits =
                      List.sort_uniq compare
                        ({ Nogood.var = v; res = r }
                        :: List.map
                             (fun w -> { Nogood.var = w; res = res.(w) })
                             contributors)
                    in
                    if
                      Nogood.add b
                        {
                          Nogood.lits = Array.of_list lits;
                          cert = Nogood.C_resource { rid };
                        }
                    then incr learned
                  | _ -> ());
                  next ()
                end
                else begin
                  Mrt.Modulo.add table ~at:r u.Sunit.resv;
                  occ_add v r;
                  res.(v) <- r;
                  let undo () =
                    Mrt.Modulo.remove table ~at:r u.Sunit.resv;
                    occ_remove v r;
                    res.(v) <- -1
                  in
                  let cycle_conflict =
                    if not closes.(p) then None
                    else
                      match comp_check scc.Scc.comp_of.(v) with
                      | Acyclic -> None
                      | Positive_cycle { members; edges } ->
                        (match bank with
                        | Some b when learn ->
                          let lits =
                            List.sort_uniq compare
                              (List.map
                                 (fun w -> { Nogood.var = w; res = res.(w) })
                                 members)
                          in
                          if
                            Nogood.add b
                              {
                                Nogood.lits = Array.of_list lits;
                                cert = Nogood.C_cycle { edges };
                              }
                          then incr learned
                        | _ -> ());
                        Some members
                  in
                  match cycle_conflict with
                  | Some members when learn && not (List.mem v members) ->
                    (* no value of [v] can break a cycle it is not on:
                       backjump past it *)
                    undo ();
                    Sp_obs.Metrics.incr m_backjumps;
                    incr backjumps;
                    let c = Array.make n false in
                    List.iter (fun w -> if w <> v then c.(w) <- true) members;
                    raise_notrace (Backjump c)
                  | Some members ->
                    if learn then
                      List.iter (fun w -> if w <> v then blame w) members
                    else ignore members;
                    undo ();
                    next ()
                  | None -> (
                    match place (p + 1) with
                    | true -> true
                    | false ->
                      (* chronological child failure: in learning mode
                         children report through Backjump, so this is
                         the learn = false path (or a solved subtree
                         returning false never happens) *)
                      undo ();
                      next ()
                    | exception Backjump c ->
                      if c.(v) then begin
                        undo ();
                        Array.iteri
                          (fun w b -> if b && w <> v then blame w)
                          c;
                        next ()
                      end
                      else begin
                        undo ();
                        Sp_obs.Metrics.incr m_backjumps;
                        incr backjumps;
                        raise_notrace (Backjump c)
                      end)
                end)
          end
        in
        let exhausted = not (try_r 0) in
        if not exhausted then true
        else if not learn then false
        else begin
          (* domain wipeout: the conflict set is a nogood over the
             placed residues that caused every value to fail *)
          let members =
            Array.to_list
              (Array.of_seq
                 (Seq.filter (fun w -> conf.(w))
                    (Seq.init n (fun w -> w))))
          in
          if members <> [] then learn_ng members Nogood.C_derived;
          if p = 0 then false
          else if members = [] then
            (* nothing placed is to blame: infeasible outright *)
            raise_notrace (Backjump (Array.make n false))
          else raise_notrace (Backjump conf)
        end
      end
    in
    let run_search () =
      if learn then (
        match place 0 with
        | ok -> ok
        | exception Backjump _ -> false)
      else place 0
    in
    let finish verdict spent =
      Sp_obs.Metrics.incr ~by:spent m_fuel;
      if Sp_obs.Cost.enabled () then begin
        Sp_obs.Cost.add Sp_obs.Cost.Exact_node !nodes_expanded;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_prune_window !pruned_window;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_prune_resource !pruned_resource;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_nogood_hit !nogood_hits;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_backjump !backjumps
      end;
      let stats =
        {
          nodes = !nodes_expanded;
          pruned_window = !pruned_window;
          pruned_resource = !pruned_resource;
          nogood_hits = !nogood_hits;
          backjumps = !backjumps;
          learned = !learned;
          reused;
        }
      in
      if Sp_obs.Explain.enabled () then
        Sp_obs.Explain.record
          (Sp_obs.Explain.Exact_probe
             {
               s;
               verdict =
                 (match verdict with
                 | Feasible _ -> "feasible"
                 | Infeasible -> "infeasible"
                 | Out_of_budget -> "out-of-budget");
               spent;
               pruned_window = !pruned_window;
               pruned_resource = !pruned_resource;
               nodes = !nodes_expanded;
               nogood_hits = !nogood_hits;
               backjumps = !backjumps;
               learned = !learned;
               reused;
             });
      Sp_obs.Trace.instant "exact.solve"
        ~args:(fun () ->
          [
            ("s", Sp_obs.Trace.I s);
            ("spent", Sp_obs.Trace.I spent);
            ("order", Sp_obs.Trace.S (order_name config.order));
            ( "verdict",
              Sp_obs.Trace.S
                (match verdict with
                | Feasible _ -> "feasible"
                | Infeasible -> "infeasible"
                | Out_of_budget -> "out-of-budget") );
          ]);
      { verdict; spent; stats }
    in
    match run_search () with
    | true -> finish (Feasible (reconstruct ())) (budget - meter.left)
    | false -> finish Infeasible (budget - meter.left)
    | exception Out_of_fuel ->
      Sp_obs.Metrics.incr m_exhausted;
      finish Out_of_budget budget
  end
