(** Campaign-layer tests: the differential oracle, the delta-debugging
    minimizer, the regression bank (including replay of every banked
    [.w2] under [test/campaign/]), and the campaign driver's
    resumability and parallel-invariance contracts. *)

module Oracle = Sp_camp.Oracle
module Campaign = Sp_camp.Campaign
module Bank = Sp_camp.Bank
module Minimize = Sp_camp.Minimize
module Wgen = Sp_lang.Wgen
module Fault = Sp_util.Fault
module Pool = Sp_util.Pool
module Histogram = Sp_util.Histogram
module C = Sp_core.Compile

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)
(* ------------------------------------------------------------------ *)

let test_kind_roundtrip () =
  List.iter
    (fun k ->
      let s = Oracle.kind_to_string k in
      Alcotest.(check bool)
        (s ^ " round-trips") true
        (Oracle.kind_of_string s = Some k))
    Oracle.all_kinds;
  Alcotest.(check bool)
    "unknown kind rejected" true
    (Oracle.kind_of_string "bogus" = None)

(** A source that definitely pipelines on warp: a flat float update
    with enough latency to hide and no recurrence beyond the array. *)
let pipelined_src =
  "program t;\n\
   var\n\
  \  a : array [0..63] of float;\n\
  \  b : array [0..63] of float;\n\
   begin\n\
  \  for i := 0 to 40 do begin\n\
  \    a[i] := b[i] * 2.0 + 1.5;\n\
   end\n\
   end.\n"

let compile_src src =
  C.program Sp_machine.Machine.warp (Sp_lang.Lower.compile_source src)

let find_pipelined () =
  let r = compile_src pipelined_src in
  match List.find_opt (fun lr -> lr.C.ii <> None) r.C.loops with
  | Some lr -> lr
  | None -> Alcotest.fail "reference source did not pipeline"

let test_ii_violation () =
  let lr = find_pipelined () in
  Alcotest.(check bool)
    "achieved interval is sane" true
    (Oracle.ii_violation lr = None);
  Alcotest.(check bool)
    "ii below mii is impossible" true
    (Oracle.ii_violation { lr with C.ii = Some (lr.C.mii - 1) } <> None);
  Alcotest.(check bool)
    "ii above the serial restart is pointless" true
    (Oracle.ii_violation { lr with C.ii = Some (lr.C.seq_len + 1) } <> None)

let test_degradation () =
  let lr = find_pipelined () in
  Alcotest.(check bool)
    "pipelined loop is not degraded" true
    (Oracle.degradation lr = None);
  Alcotest.(check bool)
    "caught-error fallback is flagged" true
    (Oracle.degradation { lr with C.status = C.Degraded "boom" } <> None);
  Alcotest.(check bool)
    "budget exhaustion is flagged" true
    (Oracle.degradation { lr with C.status = C.Budget_exhausted } <> None)

(* ------------------------------------------------------------------ *)
(* Generator determinism                                               *)
(* ------------------------------------------------------------------ *)

let test_wgen_determinism () =
  List.iter
    (fun seed ->
      let a = Wgen.generate ~seed and b = Wgen.generate ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d regenerates identically" seed)
        true
        (Wgen.equal_program a b);
      (* print -> parse -> print is a fixpoint: banked repros are the
         printed form, so replay must see the very program minimized *)
      let s = Wgen.print a in
      Alcotest.(check string)
        (Printf.sprintf "seed %d print/parse round-trip" seed)
        s
        (Wgen.print (Sp_lang.Parser.parse s)))
    [ 1; 7; 42; 123; 999 ]

let test_compile_fingerprint_deterministic () =
  let src = Wgen.print (Wgen.generate ~seed:42) in
  Alcotest.(check string)
    "same source fingerprints equal"
    (C.fingerprint (compile_src src))
    (C.fingerprint (compile_src src))

(* ------------------------------------------------------------------ *)
(* Minimizer                                                           *)
(* ------------------------------------------------------------------ *)

(** First generated seed whose program degrades (rather than passes)
    when the placement fault is armed — i.e. one that actually reaches
    modulo scheduling. *)
let find_degrading_seed ocfg =
  let rec go seed =
    if seed > 100 then Alcotest.fail "no seed reaches the placement site"
    else begin
      Fault.arm ~site:"modsched.place" ~after:1;
      let k =
        Fun.protect ~finally:Fault.disarm (fun () ->
            Oracle.kind_of ocfg (Wgen.print (Wgen.generate ~seed)))
      in
      if k = Oracle.Degraded then seed else go (seed + 1)
    end
  in
  go 1

let test_minimizer () =
  let ocfg = { Oracle.default with Oracle.check_jobs = false } in
  let seed = find_degrading_seed ocfg in
  let ast = Wgen.generate ~seed in
  let budget = 60 in
  let evals = ref 0 in
  let predicate c =
    incr evals;
    Fault.arm ~site:"modsched.place" ~after:1;
    Fun.protect ~finally:Fault.disarm (fun () ->
        Oracle.kind_of ocfg (Wgen.print c))
    = Oracle.Degraded
  in
  let minimized, st = Minimize.minimize ~budget ~predicate ast in
  Alcotest.(check bool)
    "minimized program still fails the same way" true (predicate minimized);
  Alcotest.(check bool)
    "never larger than the input" true
    (Wgen.size minimized <= Wgen.size ast);
  Alcotest.(check bool)
    "respects the evaluation budget" true
    (st.Minimize.evals <= budget && st.Minimize.evals = !evals - 1)

(* ------------------------------------------------------------------ *)
(* Bank                                                                *)
(* ------------------------------------------------------------------ *)

let test_bank_roundtrip () =
  let e =
    Bank.mk ~seed:5 ~inject:("modsched.place", 2) ~fuel:9 ~max_cycles:777
      ~detail:"a note" ~kind:"crash" "program t;\nbegin\nend.\n"
  in
  (match Bank.of_string (Bank.to_string e) with
  | Error m -> Alcotest.fail ("round-trip parse failed: " ^ m)
  | Ok e' ->
    Alcotest.(check string) "kind" e.Bank.kind e'.Bank.kind;
    Alcotest.(check bool) "seed" true (e'.Bank.seed = Some 5);
    Alcotest.(check bool)
      "inject" true
      (e'.Bank.inject = Some ("modsched.place", 2));
    Alcotest.(check bool) "fuel" true (e'.Bank.fuel = Some 9);
    Alcotest.(check bool) "max_cycles" true (e'.Bank.max_cycles = Some 777);
    Alcotest.(check string) "detail" e.Bank.detail e'.Bank.detail;
    Alcotest.(check string) "source" e.Bank.src e'.Bank.src);
  Alcotest.(check string) "deterministic filename" "crash_s5.w2"
    (Bank.filename e)

let test_bank_append_only () =
  (* a unique path that does not exist yet; Bank.save creates it *)
  let dir =
    let f = Filename.temp_file "campbank" "" in
    Sys.remove f;
    f
  in
  let e = Bank.mk ~seed:3 ~kind:"mismatch" "program t;\nbegin\nend.\n" in
  (match Bank.save ~dir e with
  | None -> Alcotest.fail "first save must write"
  | Some path ->
    Alcotest.(check bool) "file exists" true (Sys.file_exists path);
    (match Bank.load_file path with
    | Error m -> Alcotest.fail ("banked file unreadable: " ^ m)
    | Ok e' -> Alcotest.(check string) "kind survives" "mismatch" e'.Bank.kind));
  Alcotest.(check bool)
    "second save keeps the first repro" true
    (Bank.save ~dir e = None);
  Alcotest.(check bool)
    "bank listing finds it" true
    (List.length (Bank.list_dir dir) = 1)

(** Every banked regression under [test/campaign/] must (a) reproduce
    its recorded verdict kind under its recorded trigger and (b) pass
    clean when replayed trigger-less — the bank is a set of fixed
    compiler bugs plus pinned pass-cases, not a set of open failures. *)
let test_bank_replay () =
  let files = Bank.list_dir "campaign" in
  Alcotest.(check bool)
    "bank is not empty" true
    (List.length files >= 6);
  List.iter
    (fun path ->
      match Bank.load_file path with
      | Error m -> Alcotest.fail (path ^ ": " ^ m)
      | Ok e ->
        let name = Filename.basename path in
        let expected =
          match Oracle.kind_of_string e.Bank.kind with
          | Some k -> k
          | None -> Alcotest.fail (name ^ ": unknown kind " ^ e.Bank.kind)
        in
        let ocfg =
          {
            Oracle.default with
            Oracle.fuel = e.Bank.fuel;
            Oracle.max_cycles =
              Option.value ~default:Oracle.default.Oracle.max_cycles
                e.Bank.max_cycles;
            Oracle.check_opt = (expected = Oracle.Opt_diverge);
          }
        in
        let triggered =
          match e.Bank.inject with
          | None -> Oracle.kind_of ocfg e.Bank.src
          | Some (site, k) ->
            Fault.arm ~site ~after:k;
            Fun.protect ~finally:Fault.disarm (fun () ->
                Oracle.kind_of ocfg e.Bank.src)
        in
        Alcotest.(check string)
          (name ^ " reproduces under its trigger")
          (Oracle.kind_to_string expected)
          (Oracle.kind_to_string triggered);
        Alcotest.(check string)
          (name ^ " passes trigger-less")
          (Oracle.kind_to_string Oracle.Pass)
          (Oracle.kind_to_string (Oracle.kind_of Oracle.default e.Bank.src)))
    files

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

let hist_sig h =
  ( Histogram.count h,
    Histogram.mean h,
    Histogram.minimum h,
    Histogram.maximum h )

let check_summaries_equal what (a : Campaign.summary) (b : Campaign.summary) =
  Alcotest.(check int) (what ^ ": total") a.Campaign.total b.Campaign.total;
  Alcotest.(check int) (what ^ ": pass") a.Campaign.pass b.Campaign.pass;
  Alcotest.(check bool)
    (what ^ ": verdicts") true
    (a.Campaign.verdicts = b.Campaign.verdicts);
  Alcotest.(check bool)
    (what ^ ": statuses") true
    (List.sort compare a.Campaign.statuses
    = List.sort compare b.Campaign.statuses);
  List.iter
    (fun (tag, ha, hb) ->
      Alcotest.(check bool) (what ^ ": " ^ tag) true (hist_sig ha = hist_sig hb))
    [
      ("gap", a.Campaign.gap, b.Campaign.gap);
      ("eff", a.Campaign.eff, b.Campaign.eff);
      ("csize", a.Campaign.csize, b.Campaign.csize);
    ];
  Alcotest.(check bool)
    (what ^ ": failing seeds") true
    (List.map (fun f -> f.Campaign.f_seed) a.Campaign.failures
    = List.map (fun f -> f.Campaign.f_seed) b.Campaign.failures);
  Alcotest.(check int)
    (what ^ ": unminimized")
    a.Campaign.unminimized b.Campaign.unminimized

let base_cfg = { Campaign.default with Campaign.lo = 1; hi = 24; jobs = 1 }

let test_campaign_shard_merge () =
  let full = Campaign.run base_cfg in
  let left = Campaign.run { base_cfg with Campaign.hi = 12 } in
  let right = Campaign.run { base_cfg with Campaign.lo = 13 } in
  check_summaries_equal "1..24 = merge(1..12, 13..24)" full
    (Campaign.merge left right);
  Alcotest.(check int) "covers the range" 24 full.Campaign.total

let test_campaign_jobs_invariant () =
  let cfg = { base_cfg with Campaign.hi = 16 } in
  let seq = Campaign.run cfg in
  let par = Campaign.run { cfg with Campaign.jobs = 3 } in
  check_summaries_equal "jobs=1 = jobs=3" seq par

(* ------------------------------------------------------------------ *)
(* Pool.try_run (the campaign's survival primitive)                    *)
(* ------------------------------------------------------------------ *)

let test_pool_try_run () =
  let pool = Pool.create ~jobs:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let results =
    Pool.try_run pool
      (List.init 5 (fun i () ->
           if i = 1 then failwith "one"
           else if i = 3 then failwith "three"
           else i * 10))
  in
  let describe = function
    | Ok v -> Printf.sprintf "ok:%d" v
    | Error (Failure m, _) -> "err:" ^ m
    | Error (e, _) -> "err:" ^ Printexc.to_string e
  in
  Alcotest.(check (list string))
    "each slot carries its own outcome"
    [ "ok:0"; "err:one"; "ok:20"; "err:three"; "ok:40" ]
    (List.map describe results)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ("oracle kind strings round-trip", `Quick, test_kind_roundtrip);
    ("oracle flags impossible intervals", `Quick, test_ii_violation);
    ("oracle flags degradations", `Quick, test_degradation);
    ("generator is deterministic by seed", `Quick, test_wgen_determinism);
    ( "compilation fingerprint is deterministic",
      `Quick,
      test_compile_fingerprint_deterministic );
    ("minimizer shrinks and preserves the kind", `Slow, test_minimizer);
    ("bank entry round-trips", `Quick, test_bank_roundtrip);
    ("bank is append-only", `Quick, test_bank_append_only);
    ("banked regressions replay", `Slow, test_bank_replay);
    ("campaign shard-merge resumability", `Slow, test_campaign_shard_merge);
    ("campaign summary is jobs-invariant", `Slow, test_campaign_jobs_invariant);
    ("pool try_run captures per-slot failures", `Quick, test_pool_try_run);
  ]
