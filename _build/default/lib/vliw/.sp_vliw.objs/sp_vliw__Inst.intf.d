lib/vliw/inst.mli: Format Sp_ir
