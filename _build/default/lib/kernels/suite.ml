(** The 72-program population for Figures 4-1 and 4-2.

    The paper evaluates 72 user programs (vision, signal processing,
    scientific code) and reports the distribution of array MFLOPS
    (Figure 4-1) and of speed-up over locally compacted code
    (Figure 4-2), noting that 42 of the 72 contain conditional
    statements and that those speed up more. The originals are
    proprietary Warp applications; we generate a population with the
    same structural mix — 12 kernel families spanning parallel loops,
    recurrences, reductions, stencils, streamed code and five flavours
    of data-dependent conditionals, 6 size/constant variants each,
    exactly 42 of 72 with conditionals. *)

type entry = { kernel : Kernel.t; family : string; has_cond : bool }

let w2 name fam has_cond ?(inputs = []) src =
  {
    kernel = Kernel.mk name ~init:(Kernel.init_all_arrays ~seed:7) ~inputs
        (Kernel.W2 src);
    family = fam;
    has_cond;
  }

(* one variant knob: problem size and a couple of constants *)
let sizes = [| 64; 96; 128; 160; 192; 224 |]
let consts = [| 1.5; 0.5; 2.25; 3.5; 0.75; 1.25 |]

let vadd v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "vadd.%d" v) "vadd" false
    (Printf.sprintf
       {|program vadd;
var x : array [0..%d] of float; k : int;
begin for k := 0 to %d do x[k] := x[k] + %g; end.|}
       n (n - 1) c)

let saxpy v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "saxpy.%d" v) "saxpy" false
    (Printf.sprintf
       {|program saxpy;
var x, y : array [0..%d] of float; k : int;
begin for k := 0 to %d do y[k] := %g * x[k] + y[k]; end.|}
       n (n - 1) c)

let dot v =
  let n = sizes.(v) in
  w2 (Printf.sprintf "dot.%d" v) "dot" false
    (Printf.sprintf
       {|program dot;
var x, y : array [0..%d] of float; s : float; k : int;
begin
  s := 0.0;
  for k := 0 to %d do s := s + x[k] * y[k];
  x[0] := s;
end.|}
       n (n - 1))

let conv1d v =
  let n = sizes.(v) in
  let taps = 3 + (v mod 3) in
  let terms =
    String.concat " + "
      (List.init taps (fun t ->
           Printf.sprintf "%g * x[k+%d]" (0.1 +. (0.2 *. float_of_int t)) t))
  in
  w2 (Printf.sprintf "conv1d.%d" v) "conv1d" false
    (Printf.sprintf
       {|program conv1d;
var x : array [0..%d] of float;
    y : array [0..%d] of float; k : int;
begin for k := 0 to %d do y[k] := %s; end.|}
       (n + taps) n (n - 1) terms)

let stencil v =
  let n = 16 + (2 * v) in
  w2 (Printf.sprintf "stencil.%d" v) "stencil" false
    (Printf.sprintf
       {|program stencil;
var p, o : array [0..%d, 0..%d] of float; i, j : int;
begin
  for i := 1 to %d do
    for j := 1 to %d do
      o[i,j] := 0.25 * (p[i-1,j] + p[i+1,j] + p[i,j-1] + p[i,j+1]);
end.|}
       (n + 1) (n + 1) n n)

(* --- conditional families ------------------------------------------ *)

let threshold v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "threshold.%d" v) "threshold" true
    (Printf.sprintf
       {|program threshold;
var x, y : array [0..%d] of float; t : float; k : int;
begin
  for k := 0 to %d do begin
    if x[k] > %g then t := x[k] * 2.0;
    else t := x[k] * 0.25;
    y[k] := t + 0.25 * (x[k+1] + x[k+2]) + 0.125 * x[k+3];
  end
end.|}
       (n + 3) (n - 1) c)

let clip v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "clip.%d" v) "clip" true
    (Printf.sprintf
       {|program clip;
var x : array [0..%d] of float; t : float; k : int;
begin
  for k := 0 to %d do begin
    t := x[k];
    if t > %g then t := %g;
    else begin
      if t < 0.5 then t := 0.5;
      else t := t;
    end
    x[k] := t;
  end
end.|}
       n (n - 1) c c)

let minscan v =
  let n = sizes.(v) in
  w2 (Printf.sprintf "minscan.%d" v) "minscan" true
    (Printf.sprintf
       {|program minscan;
var x, y : array [0..%d] of float; m : float; k : int;
begin
  m := x[0];
  for k := 0 to %d do begin
    if x[k] < m then m := x[k];
    else m := m;
    y[k] := m + 0.5 * x[k+1] * x[k+1] + 0.25 * x[k+2];
  end
end.|}
       (n + 2) (n - 1))

let smooth v =
  let n = sizes.(v) in
  w2 (Printf.sprintf "smooth.%d" v) "smooth" true
    (Printf.sprintf
       {|program smooth;
var x, y : array [0..%d] of float; d : float; k : int;
begin
  for k := 1 to %d do begin
    d := x[k+1] - x[k-1];
    if abs(d) < 0.5 then y[k] := 0.5 * (x[k-1] + x[k+1]);
    else y[k] := x[k];
  end
end.|}
       (n + 1) (n - 1))

let condsum v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "condsum.%d" v) "condsum" true
    (Printf.sprintf
       {|program condsum;
var x : array [0..%d] of float; s, t : float; k : int;
begin
  s := 0.0;
  for k := 0 to %d do begin
    t := x[k] * x[k] + 0.5 * x[k+1];
    if t > %g then s := s + t;
    else s := s;
  end
  x[0] := s;
end.|}
       (n + 1) (n - 1) c)

let condcopy v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "condcopy.%d" v) "condcopy" true
    (Printf.sprintf
       {|program condcopy;
var x, y, z : array [0..%d] of float; k : int;
begin
  for k := 0 to %d do begin
    if x[k] * y[k] > %g then z[k] := x[k] + y[k];
    else z[k] := x[k] - y[k];
  end
end.|}
       n (n - 1) c)

let branch2 v =
  let n = sizes.(v) and c = consts.(v) in
  w2 (Printf.sprintf "branch2.%d" v) "branch2" true
    (Printf.sprintf
       {|program branch2;
var x, y : array [0..%d] of float; t, u : float; k : int;
begin
  for k := 0 to %d do begin
    t := x[k];
    if t > %g then u := t * t;
    else u := t + t;
    if u > 4.0 then y[k] := u * 0.125;
    else y[k] := u;
  end
end.|}
       n (n - 1) c)

(* streamed signal processing, no conditionals *)
let stream v =
  let n = sizes.(v) and c = consts.(v) in
  let e =
    {
      kernel =
        Kernel.mk
          (Printf.sprintf "stream.%d" v)
          ~init:(Kernel.init_all_arrays ~seed:8)
          ~inputs:
            [ List.init n (fun i -> 1.0 +. (0.01 *. float_of_int (i mod 37))) ]
          (Kernel.W2
             (Printf.sprintf
                {|program stream;
var t : float; k : int;
begin
  for k := 0 to %d do begin
    receive(t, 0);
    send(%g * t * t + 0.5 * t + 0.125, 0);
  end
end.|}
                (n - 1) c));
      family = "stream";
      has_cond = false;
    }
  in
  e

let polyeval v =
  let n = sizes.(v) in
  w2 (Printf.sprintf "poly.%d" v) "poly" false
    (Printf.sprintf
       {|program poly;
var x, y : array [0..%d] of float; t : float; k : int;
begin
  for k := 0 to %d do begin
    t := x[k];
    y[k] := ((0.5 * t + 1.5) * t + 2.5) * t + 3.5;
  end
end.|}
       n (n - 1))

let families =
  [ vadd; saxpy; dot; conv1d; stencil; stream; polyeval;
    threshold; clip; minscan; smooth; condsum; condcopy; branch2 ]

(** The 72 programs: 12 families x 6 variants. We use the first 12 of
    the 14 generators above in a mix giving exactly 42 conditional
    programs, like the paper's population. *)
let all : entry list =
  let chosen =
    (* 5 unconditional + 7 conditional families *)
    [ vadd; saxpy; dot; conv1d; stencil;
      threshold; clip; minscan; smooth; condsum; condcopy; branch2 ]
  in
  List.concat_map (fun f -> List.init 6 f) chosen

(** Sanity totals (used in tests): 72 programs, 42 with conditionals. *)
let counts () =
  ( List.length all,
    List.length (List.filter (fun e -> e.has_cond) all) )
