(** Structured tracing: monotonic-clock spans and instant events with
    key/value attributes, buffered in memory and dumped as Chrome
    [trace_event] JSON (loadable in [chrome://tracing] / Perfetto) or
    as one-JSON-object-per-line JSONL.

    Tracing is process-global and {e off} by default. When disabled,
    {!span} costs one branch and a closure call, and {!instant} one
    branch — no clock read, no allocation of attribute lists (attribute
    thunks are only forced while enabled). The compiler hot paths are
    instrumented unconditionally on this basis. *)

type value = I of int | F of float | S of string | B of bool

type event =
  | Span of {
      name : string;
      ts : int64;   (** start, ns since {!enable} *)
      dur : int64;  (** ns *)
      args : (string * value) list;
    }
  | Instant of { name : string; ts : int64; args : (string * value) list }

val enabled : unit -> bool

val enable : unit -> unit
(** Switch tracing on; clears the buffer and rebases the clock. *)

val disable : unit -> unit
(** Switch tracing off; buffered events are kept until {!enable}. *)

val span : ?args:(unit -> (string * value) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracing is enabled, records a
    complete span covering it. An escaping exception is recorded as an
    ["error"] attribute and re-raised. [args] is forced only when
    enabled. *)

val instant : ?args:(unit -> (string * value) list) -> string -> unit

val collect : (unit -> 'a) -> 'a * event list
(** [collect f] runs [f] with this domain's recording redirected into a
    private buffer and returns [f]'s result with the events it recorded
    (oldest first). The shared buffer is untouched, so concurrent
    domains may each run under [collect] safely; re-entrant. Used by
    the parallel compilation driver, which {!inject}s each task's
    events back in deterministic loop order. *)

val inject : event list -> unit
(** Append previously collected events to the current buffer (the
    shared one, or the enclosing {!collect}'s), preserving their
    order. *)

val events : unit -> event list
(** Buffered events in start-time order. *)

val to_chrome : unit -> Json.t
(** The buffer as a Chrome [trace_event] document:
    [{"traceEvents": [...]}] with ["X"] (complete) and ["i"] (instant)
    phases, timestamps in microseconds. *)

val write_chrome : out_channel -> unit
val write_jsonl : out_channel -> unit
