test/test_machine.ml: Alcotest List Machine Opkind Printf Sp_machine
