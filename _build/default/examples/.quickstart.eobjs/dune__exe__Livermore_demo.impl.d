examples/livermore_demo.ml: Fmt List Sp_core Sp_kernels Sp_machine
