(** Tests for the scheduling substrates: strongly connected components,
    symbolic longest paths, reservation tables, list scheduling. *)

module Scc = Sp_core.Scc
module Spath = Sp_core.Spath
module Mrt = Sp_core.Mrt
module Listsched = Sp_core.Listsched
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
open Sp_ir

(* ---- SCC ------------------------------------------------------------ *)

let scc_of_edges n edges =
  let succs v = List.filter_map (fun (a, b) -> if a = v then Some b else None) edges in
  Scc.compute ~n ~succs

let test_scc_basic () =
  (* 0 -> 1 -> 2 -> 1, 2 -> 3 : components {0} {1,2} {3} *)
  let scc = scc_of_edges 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  Alcotest.(check int) "three components" 3 (Scc.num_components scc);
  Alcotest.(check bool) "1 and 2 together" true
    (scc.Scc.comp_of.(1) = scc.Scc.comp_of.(2));
  Alcotest.(check bool) "0 separate" true
    (scc.Scc.comp_of.(0) <> scc.Scc.comp_of.(1));
  Alcotest.(check bool) "{1,2} nontrivial" true
    scc.Scc.nontrivial.(scc.Scc.comp_of.(1));
  Alcotest.(check bool) "{0} trivial" false
    scc.Scc.nontrivial.(scc.Scc.comp_of.(0))

let test_scc_self_loop () =
  let scc = scc_of_edges 2 [ (0, 0) ] in
  Alcotest.(check bool) "self loop nontrivial" true
    scc.Scc.nontrivial.(scc.Scc.comp_of.(0));
  Alcotest.(check bool) "no self loop trivial" false
    scc.Scc.nontrivial.(scc.Scc.comp_of.(1))

let test_scc_topo_order () =
  let scc = scc_of_edges 4 [ (0, 1); (1, 2); (2, 1); (2, 3) ] in
  let order = Scc.topo_components scc in
  let pos c = Option.get (List.find_index (fun x -> x = c) order) in
  Alcotest.(check bool) "0 before {1,2}" true
    (pos scc.Scc.comp_of.(0) < pos scc.Scc.comp_of.(1));
  Alcotest.(check bool) "{1,2} before 3" true
    (pos scc.Scc.comp_of.(1) < pos scc.Scc.comp_of.(3))

(* random-graph property: mutual reachability = same component *)
let graph_gen =
  QCheck2.Gen.(
    let* n = int_range 1 8 in
    let* edges = list_size (int_bound 20) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, edges))

let reachable n edges =
  let r = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    r.(i).(i) <- true
  done;
  List.iter (fun (a, b) -> r.(a).(b) <- true) edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if r.(i).(k) && r.(k).(j) then r.(i).(j) <- true
      done
    done
  done;
  r

let prop_scc =
  QCheck2.Test.make ~name:"scc = mutual reachability" ~count:300 graph_gen
    (fun (n, edges) ->
      let scc = scc_of_edges n edges in
      let r = reachable n edges in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let same = scc.Scc.comp_of.(i) = scc.Scc.comp_of.(j) in
          let mutual = r.(i).(j) && r.(j).(i) in
          if same <> mutual then ok := false
        done
      done;
      !ok)

(* ---- Spath ----------------------------------------------------------- *)

(* brute force: longest constraint over all paths up to a length bound *)
let brute_query ~n ~edges ~s i j =
  let best = ref None in
  let rec go v acc len =
    if v = j && len > 0 then
      best :=
        Some (match !best with None -> acc | Some b -> max b acc);
    if len < 2 * n then
      List.iter
        (fun (a, b, d, w) -> if a = v then go b (acc + d - (s * w)) (len + 1))
        edges
  in
  go i 0 0;
  !best

let sedge_gen ~n =
  QCheck2.Gen.(
    let* src = int_bound (n - 1) in
    let* dst = int_bound (n - 1) in
    let* d = int_range (-3) 8 in
    let* w = int_bound 2 in
    return (src, dst, d, w))

let sgraph_gen =
  QCheck2.Gen.(
    let* n = int_range 2 5 in
    let* edges = list_size (int_range 1 8) (sedge_gen ~n) in
    return (n, edges))

let prop_spath_matches_bruteforce =
  QCheck2.Test.make ~name:"spath query = brute force (at s >= rec bound)"
    ~count:300 sgraph_gen (fun (n, edges) ->
      let s_max = 40 in
      let rec_b = Spath.rec_mii_bound ~n ~edges ~s_max in
      if rec_b > s_max then true (* out of range: nothing to check *)
      else begin
        let sp = Spath.compute ~n ~edges ~s_min:rec_b ~s_max in
        (* at s >= rec bound all cycles are <= 0, so path sups are
           finite and attained within bounded length *)
        List.for_all
          (fun s ->
            let ok = ref true in
            for i = 0 to n - 1 do
              for j = 0 to n - 1 do
                let q = Spath.query sp ~s i j in
                let b = brute_query ~n ~edges ~s i j in
                match (q, b) with
                | None, None -> ()
                | Some a, Some b -> if a < b then ok := false
                (* [query] may know longer paths than the brute-force
                   length bound explores, so only >= is required;
                   equality is checked via the constraint use below *)
                | None, Some _ -> ok := false
                | Some _, None -> ok := false
              done
            done;
            !ok)
          [ rec_b; min s_max (rec_b + 3) ]
      end)

let prop_rec_mii_is_threshold =
  QCheck2.Test.make ~name:"rec_mii_bound is the positivity threshold"
    ~count:300 sgraph_gen (fun (n, edges) ->
      let s_max = 40 in
      let b = Spath.rec_mii_bound ~n ~edges ~s_max in
      if b > s_max then Spath.has_positive_cycle ~n ~edges ~s:(s_max + 1)
      else
        (not (Spath.has_positive_cycle ~n ~edges ~s:b))
        && (b = 1 || Spath.has_positive_cycle ~n ~edges ~s:(b - 1)))

let test_spath_simple_cycle () =
  (* u -> v (d 7), v -> u (d 1, omega 1): RecMII = 8 *)
  let edges = [ (0, 1, 7, 0); (1, 0, 1, 1) ] in
  Alcotest.(check int) "recurrence bound" 8
    (Spath.rec_mii_bound ~n:2 ~edges ~s_max:100);
  let sp = Spath.compute ~n:2 ~edges ~s_min:8 ~s_max:100 in
  Alcotest.(check (option int)) "path 0->1 at s=8" (Some 7)
    (Spath.query sp ~s:8 0 1);
  Alcotest.(check (option int)) "cycle at s=8" (Some 0)
    (Spath.query sp ~s:8 0 0)

(* ---- Mrt -------------------------------------------------------------- *)

let test_modulo_table () =
  let m = Sp_machine.Machine.warp in
  let t = Mrt.Modulo.create m ~s:3 in
  let fadd = (Sp_machine.Machine.find_resource m "fadd").Sp_machine.Machine.rid in
  let resv = [ (0, fadd) ] in
  Alcotest.(check bool) "fits empty" true (Mrt.Modulo.fits t ~at:0 resv);
  Mrt.Modulo.add t ~at:0 resv;
  Alcotest.(check bool) "slot 0 full" false (Mrt.Modulo.fits t ~at:0 resv);
  Alcotest.(check bool) "slot 3 = slot 0 (mod)" false
    (Mrt.Modulo.fits t ~at:3 resv);
  Alcotest.(check bool) "slot 1 free" true (Mrt.Modulo.fits t ~at:1 resv);
  Mrt.Modulo.remove t ~at:0 resv;
  Alcotest.(check bool) "freed" true (Mrt.Modulo.fits t ~at:3 resv);
  (* multi-use within one reservation at congruent offsets *)
  let double = [ (0, fadd); (3, fadd) ] in
  Alcotest.(check bool) "double-booking detected" false
    (Mrt.Modulo.fits t ~at:0 double)

let test_linear_table () =
  let m = Sp_machine.Machine.warp in
  let t = Mrt.Linear.create m in
  let mem = (Sp_machine.Machine.find_resource m "mem").Sp_machine.Machine.rid in
  let resv = [ (0, mem) ] in
  Mrt.Linear.add t ~at:5 resv;
  Alcotest.(check bool) "occupied" false (Mrt.Linear.fits t ~at:5 resv);
  Alcotest.(check bool) "free elsewhere" true (Mrt.Linear.fits t ~at:6 resv);
  (* grows on demand *)
  Alcotest.(check bool) "far future" true (Mrt.Linear.fits t ~at:5000 resv)

let test_linear_growth_boundary () =
  let m = Sp_machine.Machine.warp in
  let t = Mrt.Linear.create m in
  let mem = (Sp_machine.Machine.find_resource m "mem").Sp_machine.Machine.rid in
  let resv = [ (0, mem) ] in
  (* fill every slot straight across the initial 16-slot capacity:
     occupancy (counters and bitword rows alike) must survive the
     amortized-doubling regrowth *)
  for at = 0 to 40 do
    Mrt.Linear.add t ~at resv
  done;
  for at = 0 to 40 do
    Alcotest.(check bool)
      (Printf.sprintf "slot %d occupied after growth" at)
      false
      (Mrt.Linear.fits t ~at resv)
  done;
  Alcotest.(check bool) "first free slot past the filled range" true
    (Mrt.Linear.fits t ~at:41 resv);
  (* a distant placement forces a second, larger regrowth *)
  Mrt.Linear.add t ~at:1000 resv;
  Alcotest.(check bool) "distant slot occupied" false
    (Mrt.Linear.fits t ~at:1000 resv);
  Alcotest.(check bool) "old-boundary slot still occupied" false
    (Mrt.Linear.fits t ~at:16 resv);
  Alcotest.(check bool) "gap stays free" true (Mrt.Linear.fits t ~at:999 resv)

(* ---- Listsched -------------------------------------------------------- *)

let test_compact_respects_dependences () =
  let m = Sp_machine.Machine.warp in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let a = Vreg.Supply.fresh sup Vreg.F and b = Vreg.Supply.fresh sup Vreg.F in
  let c = Vreg.Supply.fresh sup Vreg.F and d = Vreg.Supply.fresh sup Vreg.F in
  let o1 = Op.Supply.mk ops ~dst:c ~srcs:[ a; b ] Sp_machine.Opkind.Fmul in
  let o2 = Op.Supply.mk ops ~dst:d ~srcs:[ c; b ] Sp_machine.Opkind.Fadd in
  let units =
    Array.of_list
      (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) [ o1; o2 ])
  in
  let g = Ddg.build units in
  let p = Listsched.compact m g in
  Alcotest.(check int) "producer first" 0 p.Listsched.times.(0);
  Alcotest.(check int) "consumer waits out the latency" 7
    p.Listsched.times.(1);
  Alcotest.(check int) "length" 8 p.Listsched.len

let test_compact_resource_serialization () =
  (* two independent loads on a single memory port end up in different
     cycles *)
  let m = Sp_machine.Machine.warp in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh segs ~name:"a" ~size:8 () in
  let mk_load off =
    Op.Supply.mk ops
      ~dst:(Vreg.Supply.fresh sup Vreg.F)
      ~addr:{ Op.seg; base = None; idx = None; off; sub = Some (Subscript.constant off) }
      Sp_machine.Opkind.Load
  in
  let units =
    Array.of_list
      (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) [ mk_load 0; mk_load 1 ])
  in
  let g = Ddg.build units in
  let p = Listsched.compact m g in
  Alcotest.(check bool) "different cycles" true
    (p.Listsched.times.(0) <> p.Listsched.times.(1))

let test_restart_interval () =
  (* accumulator: restart >= latency even if the block is shorter *)
  let m = Sp_machine.Machine.warp in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let acc = Vreg.Supply.fresh sup Vreg.F in
  let x = Vreg.Supply.fresh sup Vreg.F in
  let add = Op.Supply.mk ops ~dst:acc ~srcs:[ acc; x ] Sp_machine.Opkind.Fadd in
  let units = [| Sunit.of_op m ~sid:0 add |] in
  let g = Ddg.build units in
  let p = Listsched.compact m g in
  Alcotest.(check int) "block length 1" 1 p.Listsched.len;
  Alcotest.(check int) "restart covers the carried latency" 7
    (Listsched.restart_interval g p)

let prop_spath_query_antitone =
  (* with non-negative iteration differences, the binding constraint
     only relaxes as the interval grows *)
  QCheck2.Test.make ~name:"spath query is antitone in s" ~count:200
    sgraph_gen (fun (n, edges) ->
      let s_max = 30 in
      let rec_b = Spath.rec_mii_bound ~n ~edges ~s_max in
      if rec_b > s_max - 1 then true
      else begin
        let sp = Spath.compute ~n ~edges ~s_min:rec_b ~s_max in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            for s = rec_b to s_max - 1 do
              match (Spath.query sp ~s i j, Spath.query sp ~s:(s + 1) i j) with
              | Some a, Some b -> if b > a then ok := false
              | None, None -> ()
              | _ -> ok := false
            done
          done
        done;
        !ok
      end)

let prop_mrt_add_remove =
  QCheck2.Test.make ~name:"modulo table add/remove cancel" ~count:200
    QCheck2.Gen.(
      let* s = int_range 1 8 in
      let* places = list_size (int_range 1 10) (int_bound 40) in
      return (s, places))
    (fun (s, places) ->
      let m = Sp_machine.Machine.warp in
      let t = Mrt.Modulo.create m ~s in
      let fadd =
        (Sp_machine.Machine.find_resource m "fadd").Sp_machine.Machine.rid
      in
      let resv = [ (0, fadd) ] in
      (* record which placements succeeded, then undo them all *)
      let done_ = List.filter (fun at ->
          if Mrt.Modulo.fits t ~at resv then (Mrt.Modulo.add t ~at resv; true)
          else false)
          places
      in
      List.iter (fun at -> Mrt.Modulo.remove t ~at resv) done_;
      (* empty again: every slot accepts a placement *)
      List.for_all
        (fun at -> Mrt.Modulo.fits t ~at resv)
        (List.init s (fun k -> k)))

let prop_mrt_conflict_accounting =
  (* per-resource conflict counters charge exactly one conflict per
     failed probe — the attribution the decision log and the --render
     occupancy grids rely on *)
  QCheck2.Test.make ~name:"conflict counters sum to failed probes" ~count:300
    QCheck2.Gen.(
      let m = Sp_machine.Machine.warp in
      let nres = Sp_machine.Machine.num_resources m in
      let* s = int_range 1 6 in
      let* acts =
        list_size (int_range 1 40)
          (pair (int_bound 11)
             (list_size (int_range 1 4) (pair (int_bound 6) (int_bound (nres - 1)))))
      in
      return (s, acts))
    (fun (s, acts) ->
      let m = Sp_machine.Machine.warp in
      let run fits add conflicts last_conflict =
        let failed = ref 0 in
        List.iter
          (fun (at, resv) -> if fits ~at resv then add ~at resv else incr failed)
          acts;
        Array.fold_left ( + ) 0 (conflicts ()) = !failed
        && (!failed > 0) = (last_conflict () <> None)
      in
      let mt = Mrt.Modulo.create m ~s in
      let lt = Mrt.Linear.create m in
      run (Mrt.Modulo.fits mt) (Mrt.Modulo.add mt)
        (fun () -> Mrt.Modulo.conflicts mt)
        (fun () -> Mrt.Modulo.last_conflict mt)
      && run (Mrt.Linear.fits lt) (Mrt.Linear.add lt)
           (fun () -> Mrt.Linear.conflicts lt)
           (fun () -> Mrt.Linear.last_conflict lt))

let prop_compact_valid =
  (* list scheduling respects every intra-iteration constraint and the
     resource limits, for arbitrary op soups *)
  QCheck2.Test.make ~name:"compaction satisfies constraints" ~count:200
    QCheck2.Gen.(pair (int_bound 10_000) (int_range 1 12))
    (fun (seed, k) ->
      let m = Sp_machine.Machine.warp in
      let units = Test_modsched.random_units seed k in
      let g = Ddg.build units in
      let p = Listsched.compact m g in
      List.for_all
        (fun (e : Ddg.edge) ->
          e.Ddg.omega > 0
          || p.Listsched.times.(e.Ddg.dst) - p.Listsched.times.(e.Ddg.src)
             >= e.Ddg.delay)
        g.Ddg.edges
      &&
      (* resources: rebuild a linear usage table *)
      let usage = Hashtbl.create 64 in
      Array.for_all2
        (fun (u : Sunit.t) t ->
          List.for_all
            (fun (off, rid) ->
              let key = (t + off, rid) in
              let c = 1 + Option.value ~default:0 (Hashtbl.find_opt usage key) in
              Hashtbl.replace usage key c;
              c <= (Sp_machine.Machine.resource m rid).Sp_machine.Machine.count)
            u.Sunit.resv)
        g.Ddg.units p.Listsched.times)

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("scc basics", `Quick, test_scc_basic);
    ("scc self loop", `Quick, test_scc_self_loop);
    ("scc topological order", `Quick, test_scc_topo_order);
    qt prop_scc;
    ("spath simple cycle", `Quick, test_spath_simple_cycle);
    qt prop_spath_matches_bruteforce;
    qt prop_rec_mii_is_threshold;
    qt prop_spath_query_antitone;
    qt prop_mrt_add_remove;
    qt prop_mrt_conflict_accounting;
    qt prop_compact_valid;
    ("modulo reservation table", `Quick, test_modulo_table);
    ("linear reservation table", `Quick, test_linear_table);
    ("linear table growth boundary", `Quick, test_linear_growth_boundary);
    ("compact: dependences", `Quick, test_compact_respects_dependences);
    ("compact: resources", `Quick, test_compact_resource_serialization);
    ("restart interval", `Quick, test_restart_interval);
  ]
