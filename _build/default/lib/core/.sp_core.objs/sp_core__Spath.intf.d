lib/core/spath.mli:
