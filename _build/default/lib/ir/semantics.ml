(** Operational semantics of individual operations.

    Shared between the sequential reference interpreter ({!Interp}) and
    the cycle-accurate VLIW simulator ({!Sp_vliw.Sim}), so that the two
    agree bit-for-bit and any divergence observed in tests is a
    scheduling bug, not a semantics mismatch. *)

module Opkind = Sp_machine.Opkind

type value = VF of float | VI of int

let pp_value ppf = function
  | VF f -> Fmt.pf ppf "%h" f
  | VI i -> Fmt.pf ppf "%d" i

let equal_value a b =
  match (a, b) with
  | VF x, VF y -> Float.equal x y (* exact, incl. NaN = NaN *)
  | VI x, VI y -> x = y
  | _ -> false

exception Type_error of string

let as_f = function
  | VF f -> f
  | VI _ -> raise (Type_error "expected float register")

let as_i = function
  | VI i -> i
  | VF _ -> raise (Type_error "expected int register")

(** Seed value for reciprocal / reciprocal-square-root: the exact value
    rounded to 8 mantissa bits, modeling a hardware lookup table. *)
let quantize8 x =
  if x = 0. || not (Float.is_finite x) then x
  else
    let m, e = Float.frexp x in
    Float.ldexp (Float.round (m *. 256.) /. 256.) e

let recip_seed x = quantize8 (1.0 /. x)
let rsqrt_seed x = quantize8 (1.0 /. Float.sqrt x)

(** Execution context: how to read registers and access memory and the
    communication channels. The caller owns all timing. *)
type ctx = {
  rd : Vreg.t -> value;
  ld : Memseg.t -> int -> value;
  st : Memseg.t -> int -> value -> unit;
  recv : int -> float;
  send : int -> float -> unit;
}

(** Effective address of a memory operation: sum of the optional base
    and index registers plus the constant offset. *)
let addr ctx (a : Op.addr) =
  let reg v = match v with None -> 0 | Some r -> as_i (ctx.rd r) in
  reg a.Op.base + reg a.Op.idx + a.Op.off

let bool_i b = VI (if b then 1 else 0)

let frel (r : Opkind.rel) (x : float) (y : float) =
  match r with
  | Opkind.Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

let irel (r : Opkind.rel) (x : int) (y : int) =
  match r with
  | Opkind.Eq -> x = y
  | Ne -> x <> y
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y

(** Execute one operation; returns the value to be written to the
    destination register (if the operation has one). Stores, sends and
    nops return [None]. *)
let exec ctx (op : Op.t) : value option =
  let f n = as_f (ctx.rd (List.nth op.srcs n)) in
  let i n = as_i (ctx.rd (List.nth op.srcs n)) in
  match op.kind with
  | Opkind.Fadd -> Some (VF (f 0 +. f 1))
  | Fsub -> Some (VF (f 0 -. f 1))
  | Fmul -> Some (VF (f 0 *. f 1))
  | Fneg -> Some (VF (-.f 0))
  | Fabs -> Some (VF (Float.abs (f 0)))
  | Fmin -> Some (VF (Float.min (f 0) (f 1)))
  | Fmax -> Some (VF (Float.max (f 0) (f 1)))
  | Fcmp r -> Some (bool_i (frel r (f 0) (f 1)))
  | Fmov -> Some (VF (f 0))
  | Fconst -> (
    match op.imm with
    | Some (Op.Fimm x) -> Some (VF x)
    | _ -> raise (Type_error "fconst without float immediate"))
  | Fsel -> Some (VF (if i 0 <> 0 then f 1 else f 2))
  | Frecs -> Some (VF (recip_seed (f 0)))
  | Frsqs -> Some (VF (rsqrt_seed (f 0)))
  | Iadd -> Some (VI (i 0 + i 1))
  | Isub -> Some (VI (i 0 - i 1))
  | Imul -> Some (VI (i 0 * i 1))
  | Iand -> Some (VI (i 0 land i 1))
  | Ior -> Some (VI (i 0 lor i 1))
  | Ixor -> Some (VI (i 0 lxor i 1))
  | Ishl -> Some (VI (i 0 lsl i 1))
  | Ishr -> Some (VI (i 0 asr i 1))
  | Idiv -> Some (VI (i 0 / i 1))
  | Imod -> Some (VI (i 0 mod i 1))
  | Icmp r -> Some (bool_i (irel r (i 0) (i 1)))
  | Imov | Amov -> Some (VI (i 0))
  | Aadd -> Some (VI (i 0 + i 1))
  | Iconst -> (
    match op.imm with
    | Some (Op.Iimm x) -> Some (VI x)
    | _ -> raise (Type_error "iconst without int immediate"))
  | Isel -> Some (VI (if i 0 <> 0 then i 1 else i 2))
  | Itof -> Some (VF (float_of_int (i 0)))
  | Ftoi -> Some (VI (int_of_float (f 0)))
  | Load -> (
    match op.addr with
    | Some a -> Some (ctx.ld a.Op.seg (addr ctx a))
    | None -> raise (Type_error "load without address"))
  | Store -> (
    match op.addr with
    | Some a ->
      ctx.st a.Op.seg (addr ctx a) (ctx.rd (List.hd op.srcs));
      None
    | None -> raise (Type_error "store without address"))
  | Recv ch -> Some (VF (ctx.recv ch))
  | Send ch ->
    ctx.send ch (f 0);
    None
  | Nop -> None
