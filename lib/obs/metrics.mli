(** A process-wide registry of named counters, gauges and histograms,
    snapshot-able to JSON.

    Instrumented code obtains a handle once (typically at module
    initialization) and bumps it on the hot path — an increment is a
    single mutable-field update, cheap enough to leave enabled
    unconditionally. The snapshot serializes entries sorted by name,
    so output is deterministic regardless of registration order.

    Metric naming scheme (see DESIGN.md §10): dot-separated
    [subsystem.quantity], e.g. [modsched.fuel_spent],
    [exact.nodes_expanded], [sim.cycles]. *)

type counter
type gauge

val counter : string -> counter
(** Get or create; the same name always yields the same handle.
    Raises [Invalid_argument] if the name is registered with a
    different metric type. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?lo:float -> ?width:float -> ?buckets:int -> string -> Sp_util.Histogram.t
(** Get or create a distribution metric (defaults: [lo 0.], [width 1.],
    [32] buckets); feed it with {!Sp_util.Histogram.add}. The creation
    parameters of an existing name win over later ones. *)

val snapshot : unit -> Json.t
(** [{"schema_version": 1, "metrics": { name: {...}, ... }}] with
    names sorted; counters as [{"type":"counter","value":n}], gauges
    as [{"type":"gauge","value":x}], histograms with count, mean,
    min/max and p50/p90/p99. *)

val write : out_channel -> unit

val reset : unit -> unit
(** Zero every registered metric (registrations survive — handles held
    by instrumented modules stay valid). For tests and for isolating
    per-run snapshots in long-lived processes. *)
