(** [w2c] — the W2-to-VLIW compiler driver.

    {v
      w2c compile prog.w2          compile and print the VLIW code
      w2c schedule prog.w2         per-loop scheduling report
      w2c run prog.w2              compile, simulate, report cycles/MFLOPS
      w2c ir prog.w2               dump the scheduling IR
    v}

    Common options: [--machine warp|toy|serial|warpNx],
    [--no-pipeline], [--mve max-q|lcm|off], [--search linear|binary],
    [--if-exclusive], [--threshold N], [--verify] (cross-check against
    the sequential interpreter). *)

open Cmdliner
module C = Sp_core.Compile
module Machine = Sp_machine.Machine

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let machine_of_string s =
  match s with
  | "warp" -> Ok Machine.warp
  | "toy" -> Ok Machine.toy
  | "serial" -> Ok Machine.serial
  | _ -> (
    try Scanf.sscanf s "warp%dx" (fun w -> Ok (Machine.warp_scaled ~width:w))
    with _ -> Error (`Msg (Printf.sprintf "unknown machine %S" s)))

let machine_conv =
  Arg.conv
    ( machine_of_string,
      fun ppf (m : Machine.t) -> Fmt.string ppf m.Machine.name )

let machine_arg =
  let doc = "Target machine: warp, toy, serial, or warpNx (scaled)." in
  Arg.(value & opt machine_conv Machine.warp & info [ "machine"; "m" ] ~doc)

let mve_conv =
  Arg.conv
    ( (function
      | "max-q" -> Ok Sp_core.Mve.Max_q
      | "lcm" -> Ok Sp_core.Mve.Lcm
      | "off" -> Ok Sp_core.Mve.Off
      | s -> Error (`Msg (Printf.sprintf "unknown mve mode %S" s))),
      fun ppf m ->
        Fmt.string ppf
          (match m with
          | Sp_core.Mve.Max_q -> "max-q"
          | Sp_core.Mve.Lcm -> "lcm"
          | Sp_core.Mve.Off -> "off") )

let search_conv =
  Arg.conv
    ( (function
      | "linear" -> Ok Sp_core.Modsched.Linear
      | "binary" -> Ok Sp_core.Modsched.Binary
      | s -> Error (`Msg (Printf.sprintf "unknown search %S" s))),
      fun ppf s ->
        Fmt.string ppf
          (match s with
          | Sp_core.Modsched.Linear -> "linear"
          | Sp_core.Modsched.Binary -> "binary") )

let config_term =
  let no_pipeline =
    Arg.(value & flag & info [ "no-pipeline" ]
           ~doc:"Local compaction only (the Figure 4-2 baseline).")
  in
  let mve =
    Arg.(value & opt mve_conv Sp_core.Mve.Max_q & info [ "mve" ]
           ~doc:"Modulo variable expansion mode: max-q, lcm, off.")
  in
  let search =
    Arg.(value & opt search_conv Sp_core.Modsched.Linear & info [ "search" ]
           ~doc:"Initiation interval search: linear (paper) or binary.")
  in
  let if_exclusive =
    Arg.(value & flag & info [ "if-exclusive" ]
           ~doc:"Reduce conditionals to all-resources-consumed nodes.")
  in
  let threshold =
    Arg.(value & opt int C.default.C.threshold & info [ "threshold" ]
           ~doc:"Maximum compacted body length considered for pipelining.")
  in
  let mk no_pipeline mve_mode search if_exclusive threshold =
    {
      C.pipeline = not no_pipeline;
      mve_mode;
      search;
      threshold;
      if_exclusive;
      pipeline_outer = true;
      profit_margin = C.default.C.profit_margin;
    }
  in
  Term.(const mk $ no_pipeline $ mve $ search $ if_exclusive $ threshold)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.w2")

let unroll_arg =
  Arg.(value & opt int 1 & info [ "unroll" ]
         ~doc:"Source-unroll constant-bound loops N times before \
               compilation (the Section 5.1 baseline transformation).")

let load ?(unroll = 1) path =
  if unroll <= 1 then Sp_lang.Lower.compile_source (read_file path)
  else Sp_lang.Unroll.compile_source ~k:unroll (read_file path)

let or_fail f =
  try f () with
  | Sp_lang.Lexer.Error (p, m) ->
    Fmt.epr "lexical error at %a: %s@." Sp_lang.Token.pp_pos p m;
    exit 1
  | Sp_lang.Parser.Error (p, m) ->
    Fmt.epr "syntax error at %a: %s@." Sp_lang.Token.pp_pos p m;
    exit 1
  | Sp_lang.Typecheck.Error (p, m) ->
    Fmt.epr "type error at %a: %s@." Sp_lang.Token.pp_pos p m;
    exit 1
  | Sp_lang.Lower.Error (p, m) ->
    Fmt.epr "lowering error at %a: %s@." Sp_lang.Token.pp_pos p m;
    exit 1

let cmd_ir =
  let run file =
    or_fail (fun () ->
        let p = load file in
        Fmt.pr "%a@." Sp_ir.Program.pp p)
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the scheduling IR")
    Term.(const run $ file_arg)

let cmd_dot =
  let run m file =
    or_fail (fun () ->
        let p = load file in
        List.iteri
          (fun i (iv, g) ->
            Fmt.pr "// innermost loop %d (counter %a)@.%s@." i
              Sp_ir.Vreg.pp iv
              (Sp_core.Dot.to_string ~name:(Printf.sprintf "loop%d" i) g))
          (C.innermost_ddgs m p))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz dependence graphs of the \
                          innermost loops")
    Term.(const run $ machine_arg $ file_arg)

let cmd_compile =
  let run m config unroll file =
    or_fail (fun () ->
        let p = load ~unroll file in
        let r = C.program ~config m p in
        Fmt.pr "; %s: %d instructions for machine %s@." p.Sp_ir.Program.name
          r.C.code_size m.Machine.name;
        Fmt.pr "%a" Sp_vliw.Prog.pp r.C.code;
        match Sp_vliw.Check.check_prog m r.C.code with
        | [] -> ()
        | vs ->
          List.iter
            (fun v -> Fmt.epr "warning: %a@." Sp_vliw.Check.pp_violation v)
            vs)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile and print the VLIW code")
    Term.(const run $ machine_arg $ config_term $ unroll_arg $ file_arg)

let cmd_schedule =
  let run m config file =
    or_fail (fun () ->
        let p = load file in
        let r = C.program ~config m p in
        Fmt.pr "%s on %s: %d instructions@." p.Sp_ir.Program.name
          m.Machine.name r.C.code_size;
        List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) r.C.loops)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print the per-loop scheduling report")
    Term.(const run $ machine_arg $ config_term $ file_arg)

let cmd_run =
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Cross-check the final state against the sequential \
                 interpreter.")
  in
  let run m config verify unroll file =
    or_fail (fun () ->
        let p = load ~unroll file in
        let r = C.program ~config m p in
        let init st = Sp_kernels.Kernel.init_all_arrays st p in
        let sim = Sp_vliw.Sim.run ~init m p r.C.code in
        Fmt.pr "%s on %s: %d cycles, %d flops, %.2f MFLOPS (cell), %d words@."
          p.Sp_ir.Program.name m.Machine.name sim.Sp_vliw.Sim.cycles
          sim.Sp_vliw.Sim.flops
          (Sp_vliw.Sim.mflops m sim)
          r.C.code_size;
        List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) r.C.loops;
        Fmt.pr "  %a" Sp_vliw.Stats.pp (Sp_vliw.Stats.compute m r.C.code);
        if verify then begin
          let o = Sp_ir.Interp.run ~init p in
          if
            Sp_ir.Machine_state.observably_equal o.Sp_ir.Interp.state
              sim.Sp_vliw.Sim.state
          then Fmt.pr "verify: schedule preserves sequential semantics@."
          else begin
            Fmt.epr "verify: FINAL STATE MISMATCH@.";
            exit 2
          end
        end)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, simulate and report performance")
    Term.(const run $ machine_arg $ config_term $ verify $ unroll_arg
          $ file_arg)

let () =
  let doc = "software-pipelining compiler for a Warp-like VLIW cell" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "w2c" ~version:"1.0" ~doc)
          [ cmd_ir; cmd_compile; cmd_schedule; cmd_run; cmd_dot ]))
