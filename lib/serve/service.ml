(** See the mli for the protocol contract. *)

module Compile = Sp_core.Compile
module Machine = Sp_machine.Machine
module Pool = Sp_util.Pool
module Fault = Sp_util.Fault
module Json = Sp_obs.Json

type request =
  | Compile of {
      machine : string;
      inject : (string * int) option;
      source : string;
    }
  | Stats
  | Ping

type response = Ok of string | Err of string

(* ---- payload codec -------------------------------------------------- *)

let render_request = function
  | Compile { machine; inject; source } ->
    let inj =
      match inject with
      | None -> ""
      | Some (site, k) -> Printf.sprintf " inject=%s@%d" site k
    in
    Printf.sprintf "compile %s%s\n%s" machine inj source
  | Stats -> "stats"
  | Ping -> "ping"

let parse_inject_token tok =
  match String.index_opt tok '=' with
  | Some 6 when String.sub tok 0 6 = "inject" -> (
    let spec = String.sub tok 7 (String.length tok - 7) in
    match String.rindex_opt spec '@' with
    | Some i when i > 0 -> (
      let site = String.sub spec 0 i in
      match
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      with
      | Some k when k >= 1 -> Some (site, k)
      | _ -> None)
    | _ -> None)
  | _ -> None

let parse_request payload =
  let head, body =
    match String.index_opt payload '\n' with
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )
    | None -> (payload, "")
  in
  match String.split_on_char ' ' head with
  | [ "compile"; machine ] ->
    Result.Ok (Compile { machine; inject = None; source = body })
  | [ "compile"; machine; tok ] -> (
    match parse_inject_token tok with
    | Some inject ->
      Result.Ok (Compile { machine; inject = Some inject; source = body })
    | None -> Result.Error (Printf.sprintf "bad request token %S" tok))
  | [ "stats" ] -> Result.Ok Stats
  | [ "ping" ] -> Result.Ok Ping
  | verb :: _ -> Result.Error (Printf.sprintf "unknown request verb %S" verb)
  | [] -> Result.Error "empty request"

let render_response = function
  | Ok body -> "ok\n" ^ body
  | Err msg -> "error\n" ^ msg

let parse_response payload =
  let prefixed p =
    let n = String.length p in
    if String.length payload >= n && String.sub payload 0 n = p then
      Some (String.sub payload n (String.length payload - n))
    else None
  in
  match prefixed "ok\n" with
  | Some body -> Ok body
  | None -> (
    match prefixed "error\n" with
    | Some msg -> Err msg
    | None -> Err (Printf.sprintf "malformed response payload %S" payload))

(* ---- frame I/O ------------------------------------------------------ *)

module Frame = struct
  let max_len = 16 * 1024 * 1024

  let rec write_all fd b off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      write_all fd b (off + n) (len - n)
    end

  let write fd payload =
    let len = String.length payload in
    if len > max_len then failwith "Frame.write: payload too large";
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    Bytes.blit_string payload 0 b 4 len;
    write_all fd b 0 (4 + len)

  (* [None] only on EOF at byte 0 of the read — EOF mid-object is a
     truncated frame and raises. *)
  let read_exact fd len =
    let b = Bytes.create len in
    let rec go off =
      if off = len then Some b
      else
        match Unix.read fd b off (len - off) with
        | 0 -> if off = 0 then None else failwith "Frame.read: truncated frame"
        | n -> go (off + n)
    in
    go 0

  let read fd =
    match read_exact fd 4 with
    | None -> None
    | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_len then
        failwith "Frame.read: bad frame length"
      else (
        match read_exact fd len with
        | None -> failwith "Frame.read: truncated frame"
        | Some b -> Some (Bytes.to_string b))
end

(* ---- the engine ----------------------------------------------------- *)

type t = {
  pool : Pool.t;
  cache : Cache.t option;
  hook : Compile.cache option;
}

let machine_of_string s =
  match s with
  | "warp" -> Result.Ok Machine.warp
  | "toy" -> Result.Ok Machine.toy
  | "serial" -> Result.Ok Machine.serial
  | _ -> (
    try Scanf.sscanf s "warp%dx" (fun w -> Result.Ok (Machine.warp_scaled ~width:w))
    with _ -> Result.Error (Printf.sprintf "unknown machine %S" s))

let create ?(cache_capacity = 256) ?(jobs = 1) () =
  let cache = if cache_capacity > 0 then Some (Cache.create ~capacity:cache_capacity) else None in
  {
    pool = Pool.create ~jobs;
    cache;
    hook = Option.map Cache.hook cache;
  }

let close t = Pool.shutdown t.pool
let cache t = t.cache

let stats_json t =
  let s =
    match t.cache with
    | Some c -> Cache.stats c
    | None ->
      { Cache.hits = 0; misses = 0; rejects = 0; inserts = 0; evictions = 0;
        entries = 0 }
  in
  Json.to_string ~pretty:true
    (Json.Obj
       [
         ( "capacity",
           Json.Int (match t.cache with Some c -> Cache.capacity c | None -> 0)
         );
         ("entries", Json.Int s.Cache.entries);
         ("hits", Json.Int s.Cache.hits);
         ("misses", Json.Int s.Cache.misses);
         ("rejects", Json.Int s.Cache.rejects);
         ("inserts", Json.Int s.Cache.inserts);
         ("evictions", Json.Int s.Cache.evictions);
       ])

let describe_exn = function
  | Sp_lang.Lexer.Error (p, m) ->
    Fmt.str "lexical error at %a: %s" Sp_lang.Token.pp_pos p m
  | Sp_lang.Parser.Error (p, m) ->
    Fmt.str "syntax error at %a: %s" Sp_lang.Token.pp_pos p m
  | Sp_lang.Typecheck.Error (p, m) ->
    Fmt.str "type error at %a: %s" Sp_lang.Token.pp_pos p m
  | Fault.Injected site -> "fault injected at " ^ site
  | e -> Printexc.to_string e

(* One compile, cache attached, response text byte-identical to offline
   [w2c compile]: the header comment plus the pretty-printed program.
   Requests compile at [jobs = 1] — parallelism lives across requests
   (the pool), not inside one. *)
let compile_body t ~machine ~source =
  match machine_of_string machine with
  | Result.Error msg -> Err msg
  | Result.Ok m -> (
    match
      let p = Sp_lang.Lower.compile_source source in
      let config = { Compile.default with Compile.cache = t.hook } in
      (p, Compile.program ~config m p)
    with
    | exception e -> Err (describe_exn e)
    | p, r ->
      Ok
        (Fmt.str "; %s: %d instructions for machine %s@." p.Sp_ir.Program.name
           r.Compile.code_size m.Machine.name
        ^ Fmt.str "%a" Sp_vliw.Prog.pp r.Compile.code))

(* Sequential request execution — the only context where arming a fault
   is legal. The arm/disarm window is scoped to this one request
   ([Fault.with_armed]), so an armed site can never leak into a later
   request served from the same (or a cached) compile. *)
let run_one t = function
  | Compile { machine; inject = None; source } -> compile_body t ~machine ~source
  | Compile { machine; inject = Some (site, k); source } ->
    if not (List.mem site (Fault.sites ())) then
      Err
        (Printf.sprintf "unknown fault site %S (available: %s)" site
           (String.concat ", " (Fault.sites ())))
    else
      Fault.with_armed ~site ~after:k (fun () ->
          compile_body t ~machine ~source)
  | Stats -> Ok (stats_json t)
  | Ping -> Ok "pong"

let handle t rq = run_one t rq

let handle_batch t rqs =
  let arms_fault = function
    | Compile { inject = Some _; _ } -> true
    | _ -> false
  in
  if List.exists arms_fault rqs then
    (* a batch that injects runs whole on the calling domain: hit
       counting is global, so the armed window must not overlap any
       concurrent compile *)
    List.map (run_one t) rqs
  else
    Pool.try_run t.pool (List.map (fun rq () -> run_one t rq) rqs)
    |> List.map (function
         | Result.Ok r -> r
         | Result.Error (e, _) -> Err (describe_exn e))
