(** See the mli for the contract. Implementation notes:

    - One mutex guards the table; probes take it only for the table
      read, verification runs outside the lock on the caller's data.
    - Recency is a monotonic commit sequence number, not lookup time:
      promotions happen only through the sequential commit path, so two
      runs that compile the same loops in the same order end with the
      same cache contents whatever the job count or thread timing.
    - Eviction scans for the minimum sequence number — O(capacity),
      fine for the few-hundred-entry caches a compile service runs. *)

module Compile = Sp_core.Compile
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
module Modsched = Sp_core.Modsched
module Machine = Sp_machine.Machine
module Metrics = Sp_obs.Metrics
module Trace = Sp_obs.Trace

let site = "serve.cache.lookup"
let () = Sp_util.Fault.register site

let m_hit = Metrics.counter "serve.cache.hit"
let m_miss = Metrics.counter "serve.cache.miss"
let m_reject = Metrics.counter "serve.cache.reject"
let m_insert = Metrics.counter "serve.cache.insert"
let m_evict = Metrics.counter "serve.cache.evict"

type entry = {
  en_ii : int;
  en_times : int array;    (** issue times in canonical node space *)
  en_probed : int;
  en_fuel : int;
  en_cert : Compile.certification option;
}

type slot = { entry : entry; mutable seq : int }

type t = {
  cap : int;
  lock : Mutex.t;
  tbl : (string, slot) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable rejects : int;
  mutable inserts : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    cap = capacity;
    lock = Mutex.create ();
    tbl = Hashtbl.create (max 16 capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    rejects = 0;
    inserts = 0;
    evictions = 0;
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

type stats = {
  hits : int;
  misses : int;
  rejects : int;
  inserts : int;
  evictions : int;
  entries : int;
}

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        rejects = t.rejects;
        inserts = t.inserts;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
      })

let reset t =
  locked t (fun () ->
      Hashtbl.reset t.tbl;
      t.tick <- 0;
      t.hits <- 0;
      t.misses <- 0;
      t.rejects <- 0;
      t.inserts <- 0;
      t.evictions <- 0)

(* ---- hit-side verification ----------------------------------------- *)

let schedule_ok (m : Machine.t) (g : Ddg.t) ~s ~(times : int array) =
  if Sp_obs.Cost.enabled () then
    Sp_obs.Cost.add Sp_obs.Cost.Cache_verify_edge (List.length g.Ddg.edges);
  let units = g.Ddg.units in
  let n = Array.length units in
  s >= 1
  && Array.length times = n
  && Array.for_all (fun tm -> tm >= 0) times
  && Array.for_all (fun (u : Sunit.t) -> not u.Sunit.barrier) units
  && List.for_all
       (fun (e : Ddg.edge) ->
         times.(e.Ddg.dst) - times.(e.Ddg.src)
         >= e.Ddg.delay - (s * e.Ddg.omega))
       g.Ddg.edges
  && (let ok = ref true in
      Array.iteri
        (fun i (u : Sunit.t) ->
          if u.Sunit.no_wrap && not (Modsched.wrap_ok ~s u ~at:times.(i)) then
            ok := false)
        units;
      !ok)
  &&
  (* modulo reservation table: per (residue slot, resource) occupancy
     must respect the machine's unit counts *)
  let nres = Machine.num_resources m in
  let occ = Array.make (s * nres) 0 in
  let ok = ref true in
  Array.iteri
    (fun i (u : Sunit.t) ->
      List.iter
        (fun (off, rid) ->
          let slot = (times.(i) + off) mod s in
          let k = (slot * nres) + rid in
          occ.(k) <- occ.(k) + 1;
          if occ.(k) > (Machine.resource m rid).Machine.count then ok := false)
        u.Sunit.resv)
    units;
  !ok

(* ---- probe ---------------------------------------------------------- *)

let find t fp = locked t (fun () -> Hashtbl.find_opt t.tbl fp)

(* Commit (sequential finish phase): insert on a miss, refresh the
   sequence number on a hit — identical entry contents either way, the
   committed schedule IS the adopted one. *)
let commit t fp (entry : entry) =
  if t.cap > 0 then
    locked t (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.tbl fp with
        | Some slot -> slot.seq <- t.tick
        | None ->
          Hashtbl.replace t.tbl fp { entry; seq = t.tick };
          t.inserts <- t.inserts + 1;
          Metrics.incr m_insert;
          if Hashtbl.length t.tbl > t.cap then begin
            let victim =
              Hashtbl.fold
                (fun k (s : slot) acc ->
                  match acc with
                  | Some (_, best) when best <= s.seq -> acc
                  | _ -> Some (k, s.seq))
                t.tbl None
            in
            match victim with
            | Some (k, _) ->
              Hashtbl.remove t.tbl k;
              t.evictions <- t.evictions + 1;
              Metrics.incr m_evict
            | None -> ()
          end)

let note_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let note_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let note_reject t =
  locked t (fun () ->
      t.rejects <- t.rejects + 1;
      t.misses <- t.misses + 1)

let hook t : Compile.cache =
  let cache_probe m (g : Ddg.t) ~mii ~max_ii : Compile.cache_probe =
    Sp_util.Fault.point site;
    if t.cap = 0 then begin
      note_miss t;
      Metrics.incr m_miss;
      { Compile.cp_hit = None; cp_commit = ignore }
    end
    else begin
      let c = Trace.span "cache.fingerprint" (fun () -> Fingerprint.canon g m) in
      let n = Array.length g.Ddg.units in
      let cp_commit (cs : Compile.cached_sched) =
        let times = cs.Compile.cs_schedule.Modsched.times in
        let en_times = Array.make n 0 in
        Array.iteri (fun i tm -> en_times.(c.Fingerprint.perm.(i)) <- tm) times;
        commit t c.Fingerprint.fp
          {
            en_ii = cs.Compile.cs_schedule.Modsched.s;
            en_times;
            en_probed = cs.Compile.cs_stats.Modsched.intervals_probed;
            en_fuel = cs.Compile.cs_stats.Modsched.fuel_spent;
            en_cert = cs.Compile.cs_cert;
          }
      in
      let hit =
        Trace.span "cache.probe" (fun () ->
        match find t c.Fingerprint.fp with
        | None ->
          note_miss t;
          Metrics.incr m_miss;
          None
        | Some slot ->
          let e = slot.entry in
          let s = e.en_ii in
          if s < mii || s > max_ii || Array.length e.en_times <> n then begin
            (* the fingerprint matched but the stored interval falls
               outside this loop's legal window (the window depends on
               the full graph, not just the pipelining graph) — or the
               digest collided outright *)
            note_reject t;
            Metrics.incr m_reject;
            Metrics.incr m_miss;
            None
          end
          else begin
            let times =
              Array.init n (fun i -> e.en_times.(c.Fingerprint.perm.(i)))
            in
            if
              Trace.span "cache.verify" (fun () ->
                  Sp_obs.Cost.with_phase Sp_obs.Cost.P_cache (fun () ->
                      schedule_ok m g ~s ~times))
            then begin
              note_hit t;
              Metrics.incr m_hit;
              Some
                {
                  Compile.cs_schedule =
                    Modsched.mk_schedule g.Ddg.units ~s times;
                  cs_stats =
                    {
                      Modsched.intervals_probed = e.en_probed;
                      fuel_spent = e.en_fuel;
                    };
                  cs_cert = e.en_cert;
                }
            end
            else begin
              note_reject t;
              Metrics.incr m_reject;
              Metrics.incr m_miss;
              None
            end
          end)
      in
      { Compile.cp_hit = hit; cp_commit }
    end
  in
  { Compile.cache_probe }
