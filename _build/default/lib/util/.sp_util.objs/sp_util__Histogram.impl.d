lib/util/histogram.ml: Array Float Fmt List Printf String
