test/test_sched.ml: Alcotest Array Hashtbl List Memseg Op Option QCheck2 QCheck_alcotest Sp_core Sp_ir Sp_machine Subscript Test_modsched Vreg
