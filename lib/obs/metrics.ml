(** Process-wide metric registry; see the interface for the contract.

    Domain-safety: counters and gauges are atomics, so increments from
    parallel compilation workers ([Sp_core.Compile] over a
    [Sp_util.Pool]) never lose updates, and counter sums are
    order-independent — a parallel run snapshots identically to a
    sequential one. Registration (get-or-create) is serialized by a
    mutex. Histograms remain single-domain: no compiler hot path
    records into one from a worker. *)

module Histogram = Sp_util.Histogram

type counter = { c_name : string; c : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histo of Histogram.t ref
      (** a [ref] so {!reset} can swap in a fresh same-shaped histogram
          while {!histogram} callers keep observing through the
          registry *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_m = Mutex.create ()

let locked f =
  Mutex.lock registry_m;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_m) f

let mismatch name =
  invalid_arg
    (Printf.sprintf "Sp_obs.Metrics: %S already registered with another type"
       name)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some _ -> mismatch name
      | None ->
        let c = { c_name = name; c = Atomic.make 0 } in
        Hashtbl.replace registry name (Counter c);
        c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c by)
let counter_value c = Atomic.get c.c

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g
      | Some _ -> mismatch name
      | None ->
        let g = { g_name = name; g = Atomic.make 0. } in
        Hashtbl.replace registry name (Gauge g);
        g)

let set g x = Atomic.set g.g x
let gauge_value g = Atomic.get g.g

let histogram ?(lo = 0.) ?(width = 1.) ?(buckets = 32) name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histo h) -> !h
      | Some _ -> mismatch name
      | None ->
        let h = Histogram.create ~lo ~width ~buckets in
        Hashtbl.replace registry name (Histo (ref h));
        h)

(* ---- snapshot ----------------------------------------------------- *)

let json_of_metric = function
  | Counter c ->
    Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int (Atomic.get c.c)) ]
  | Gauge g ->
    Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float (Atomic.get g.g)) ]
  | Histo h ->
    let h = !h in
    let q p =
      match Histogram.quantile h p with
      | Some x -> Json.Float x
      | None -> Json.Null
    in
    let extremum v = match v with Some x -> Json.Float x | None -> Json.Null in
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int (Histogram.count h));
        ("mean", Json.Float (Histogram.mean h));
        ("min", extremum (Histogram.minimum h));
        ("max", extremum (Histogram.maximum h));
        ("p50", q 0.5);
        ("p90", q 0.9);
        ("p99", q 0.99);
      ]

let snapshot () =
  let entries =
    locked (fun () ->
        Hashtbl.fold
          (fun name m acc -> (name, json_of_metric m) :: acc)
          registry [])
  in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Json.Obj [ ("schema_version", Json.Int 1); ("metrics", Json.Obj entries) ]

let write oc = Json.to_channel oc (snapshot ())

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c 0
          | Gauge g -> Atomic.set g.g 0.
          | Histo h ->
            let old = !h in
            h :=
              Histogram.create ~lo:old.Histogram.lo ~width:old.Histogram.width
                ~buckets:(Array.length old.Histogram.counts))
        registry)
