(** [w2cd] — the W2 compile daemon.

    {v
      w2cd serve SOCKET [--cache N] [-j N] [--log FILE]
      w2cd request SOCKET FILE.w2 [-m MACHINE] [--inject SITE@K] [--trace ID]
      w2cd stats SOCKET                        cache statistics (JSON)
      w2cd status SOCKET                       health snapshot (JSON)
      w2cd dashboard SOCKET                    telemetry dashboard (HTML)
      w2cd ping SOCKET                         liveness probe
    v}

    The daemon listens on a Unix-domain socket and speaks the framed
    protocol of {!Sp_serve.Service}: 4-byte big-endian length prefix
    per message, one response frame per request frame, in request
    order. Requests that arrive back-to-back on a connection are
    batched onto the worker pool; a compile response body is
    byte-identical to offline [w2c compile] stdout.

    A stale socket file left by a killed daemon is reclaimed
    automatically — binding fails only if a live daemon still answers
    on the path. *)

open Cmdliner
module Service = Sp_serve.Service

let socket_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET"
         ~doc:"Path of the Unix-domain socket.")

(* ---- client side ---------------------------------------------------- *)

let with_client socket f =
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (match Unix.connect fd (ADDR_UNIX socket) with
      | () -> ()
      | exception Unix.Unix_error (e, _, _) ->
        Fmt.epr "w2cd: cannot connect to %s: %s@." socket
          (Unix.error_message e);
        exit 1);
      f fd)

let roundtrip socket rq =
  with_client socket (fun fd ->
      Service.Frame.write fd (Service.render_request rq);
      match Service.Frame.read fd with
      | None ->
        Fmt.epr "w2cd: connection closed without a response@.";
        exit 1
      | Some payload -> Service.parse_response payload)

let print_or_die = function
  | Service.Ok body ->
    print_string body;
    (* compile bodies end in a newline; short bodies (pong) don't *)
    if body = "" || body.[String.length body - 1] <> '\n' then
      print_newline ();
    `Ok ()
  | Service.Err msg ->
    Fmt.epr "w2cd: %s@." msg;
    exit 1

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let cmd_request =
  let machine =
    Arg.(value & opt string "warp" & info [ "machine"; "m" ] ~docv:"MACHINE"
           ~doc:"Target machine: warp, toy, serial, or warpNx (scaled).")
  in
  let inject =
    Arg.(value & opt (some string) None & info [ "inject" ] ~docv:"SITE@K"
           ~doc:"Arm deterministic fault injection for this request \
                 only: the K-th execution of the named compiler site \
                 raises on the server, exercising its degradation \
                 path.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"ID"
           ~doc:"Client-supplied trace id: the response becomes a JSON \
                 envelope carrying the request's span tree (phase \
                 latencies) alongside the compile output.")
  in
  let file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"FILE.w2")
  in
  let run socket machine inject trace file =
    let inject =
      match inject with
      | None -> None
      | Some spec -> (
        match String.rindex_opt spec '@' with
        | Some i when i > 0 -> (
          match
            int_of_string_opt
              (String.sub spec (i + 1) (String.length spec - i - 1))
          with
          | Some k when k >= 1 -> Some (String.sub spec 0 i, k)
          | _ ->
            Fmt.epr "w2cd: bad injection spec %S (want SITE@@K)@." spec;
            exit 2)
        | _ ->
          Fmt.epr "w2cd: bad injection spec %S (want SITE@@K)@." spec;
          exit 2)
    in
    let source =
      match read_file file with
      | s -> s
      | exception Sys_error m ->
        Fmt.epr "w2cd: %s@." m;
        exit 1
    in
    (match trace with
    | Some id
      when id = "" || String.exists (fun c -> c = ' ' || c = '\n') id ->
      Fmt.epr "w2cd: bad trace id %S (no spaces or newlines)@." id;
      exit 2
    | _ -> ());
    print_or_die
      (roundtrip socket (Service.Compile { machine; inject; trace; source }))
  in
  Cmd.v
    (Cmd.info "request" ~doc:"Compile one W2 file through the daemon")
    Term.(ret (const run $ socket_arg $ machine $ inject $ trace $ file))

let cmd_stats =
  let run socket =
    match roundtrip socket Service.Stats with
    | Service.Ok body ->
      print_string body;
      print_newline ();
      `Ok ()
    | r -> print_or_die r
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print the daemon's cache statistics as JSON")
    Term.(ret (const run $ socket_arg))

let cmd_status =
  let run socket =
    match roundtrip socket Service.Status with
    | Service.Ok body ->
      print_string body;
      print_newline ();
      `Ok ()
    | r -> print_or_die r
  in
  Cmd.v
    (Cmd.info "status"
       ~doc:"Print the daemon's telemetry health snapshot as JSON")
    Term.(ret (const run $ socket_arg))

let cmd_dashboard =
  let run socket =
    match roundtrip socket Service.Dashboard with
    | Service.Ok body ->
      print_string body;
      `Ok ()
    | r -> print_or_die r
  in
  Cmd.v
    (Cmd.info "dashboard"
       ~doc:"Print the daemon's self-contained HTML telemetry dashboard")
    Term.(ret (const run $ socket_arg))

let cmd_ping =
  let run socket = print_or_die (roundtrip socket Service.Ping) in
  Cmd.v (Cmd.info "ping" ~doc:"Liveness probe")
    Term.(ret (const run $ socket_arg))

(* ---- server side ---------------------------------------------------- *)

(** Reclaim [socket] if it is a stale file from a dead daemon; refuse
    if a live one still answers on it. *)
let claim_socket socket =
  if Sys.file_exists socket then begin
    let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then begin
      Fmt.epr "w2cd: %s is in use by a running daemon@." socket;
      exit 1
    end;
    (* dead socket: a daemon was killed without cleanup — reclaim *)
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  end

(** Read every request already queued on [fd]: the first blocks, the
    rest drain while more frames are immediately readable, so
    back-to-back requests from one client become one pool batch.
    Returns the batch in arrival order; [] on end of stream. *)
let read_batch fd =
  match Service.Frame.read fd with
  | None -> []
  | Some first ->
    let rec drain acc =
      match Unix.select [ fd ] [] [] 0.0 with
      | [ _ ], _, _ -> (
        match Service.Frame.read fd with
        | None -> List.rev acc
        | Some payload -> drain (payload :: acc))
      | _ -> List.rev acc
    in
    drain [ first ]

let serve_connection service fd =
  let rec loop () =
    match read_batch fd with
    | [] -> ()
    | payloads ->
      let slots =
        List.map
          (fun payload ->
            match Service.parse_request payload with
            | Ok rq -> Either.Left rq
            | Error msg -> Either.Right msg)
          payloads
      in
      let ok_requests =
        List.filter_map
          (function Either.Left rq -> Some rq | Either.Right _ -> None)
          slots
      in
      let responses = ref (Service.handle_batch service ok_requests) in
      List.iter
        (fun slot ->
          let resp =
            match slot with
            | Either.Right msg -> Service.Err msg
            | Either.Left _ -> (
              match !responses with
              | r :: rest ->
                responses := rest;
                r
              | [] -> Service.Err "internal: response count mismatch")
          in
          Service.Frame.write fd (Service.render_response resp))
        slots;
      loop ()
  in
  match loop () with
  | () -> ()
  | exception Failure _ -> () (* malformed frame: drop the connection *)
  | exception Unix.Unix_error _ -> ()

let cmd_serve =
  let cache =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N"
           ~doc:"Schedule-cache capacity (0 disables caching).")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for batched requests.")
  in
  let log =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE"
           ~doc:"Append one JSON line per request (sequence number, \
                 verb, trace id, outcome, latency, span tree when \
                 traced) to FILE.")
  in
  let run socket cache jobs log =
    if jobs < 1 then begin
      Fmt.epr "w2cd: --jobs must be >= 1 (got %d)@." jobs;
      exit 2
    end;
    if cache < 0 then begin
      Fmt.epr "w2cd: --cache must be >= 0 (got %d)@." cache;
      exit 2
    end;
    claim_socket socket;
    let listen_fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
    Unix.bind listen_fd (ADDR_UNIX socket);
    Unix.listen listen_fd 16;
    let cleanup () = try Unix.unlink socket with Unix.Unix_error _ -> () in
    at_exit cleanup;
    let on_signal _ = exit 0 in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let log_oc =
      match log with
      | None -> None
      | Some path -> (
        match
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
        with
        | oc ->
          at_exit (fun () -> try close_out oc with Sys_error _ -> ());
          Some oc
        | exception Sys_error m ->
          Fmt.epr "w2cd: cannot open log %s: %s@." path m;
          exit 1)
    in
    let service = Service.create ~cache_capacity:cache ~jobs ?log:log_oc () in
    (* deterministic work counting feeds the status/dashboard cost
       section; captures are per-request domain-local, so this costs
       one branch per instrumented site on the compile path *)
    Sp_obs.Cost.enable ();
    Fmt.epr "w2cd: serving on %s (cache=%d, jobs=%d)@." socket cache jobs;
    let rec accept_loop () =
      (match Unix.accept listen_fd with
      | fd, _ ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> serve_connection service fd)
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      accept_loop ()
    in
    accept_loop ()
  in
  Cmd.v
    (Cmd.info "serve" ~doc:"Run the compile daemon on a Unix socket")
    Term.(const run $ socket_arg $ cache $ jobs $ log)

let () =
  let doc = "compile service for the W2-to-VLIW compiler" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "w2cd" ~version:"1.0" ~doc)
          [
            cmd_serve; cmd_request; cmd_stats; cmd_status; cmd_dashboard;
            cmd_ping;
          ]))
