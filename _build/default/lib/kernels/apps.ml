(** The application programs of the paper's Table 4-1, scaled for
    cycle-accurate simulation.

    The paper's numbers are for the full 10-cell Warp array running
    homogeneous code; per its own accounting, "the computation rate for
    each cell is simply one-tenth of the reported rate for the array",
    so we simulate one cell and multiply by ten. Systolic programs
    (matrix multiplication) are written as the per-cell program with
    the neighbour traffic supplied on the communication queues, which
    is exactly what a middle cell of the array sees. Image sizes are
    reduced from 512x512 to 32x32 (MFLOPS is steady-state-dominated and
    insensitive to this; the harness also reports cycles so the scaling
    is visible). *)

let img = 32 (* image side; paper used 512 *)

(* ------------------------------------------------------------------ *)

(** Matrix multiplication, the systolic cell program: A elements
    stream past on channel 0 (each cell forwards them to its right
    neighbour), partial results accumulate along channel 1; the cell
    owns a block of B in local memory. One multiply-add per element per
    cycle in the steady state — and the program runs unchanged on the
    single-cell simulator (for the oracle check) and on the real
    10-cell co-simulator ({!Sp_vliw.Array_sim}). *)
let matmul_cell ~n =
  let name = "matmul" in
  (* the cell's B block is addressed linearly — one flat n*n loop keeps
     the whole computation in a single software pipeline *)
  let src =
    Printf.sprintf
      {|
program matmul;
var b : array [0..%d] of float;
    a, c : float;
    t : int;
begin
  for t := 0 to %d do begin
    receive(a, 0);
    receive(c, 1);
    send(a, 0);
    send(c + a * b[t], 1);
  end
end.
|}
      ((n * n) - 1) ((n * n) - 1)
  in
  let stream = List.init (n * n) (fun k -> 0.5 +. (0.125 *. float_of_int (k mod 31))) in
  Kernel.mk name ~descr:"systolic matrix multiplication (cell program)"
    ~init:(Kernel.init_all_arrays ~seed:41)
    ~inputs:[ stream; List.map (fun x -> x *. 0.25) stream ]
    (Kernel.W2 src)

(** One radix-2 FFT butterfly pass over [n] butterflies, streamed the
    way the Warp FFT runs: the two operand points arrive on the input
    queues, twiddles come from local memory, and the two results leave
    on the output queues (the real/imaginary halves of each point are
    sent back to back). The full 512-point transform runs log2(512)
    such passes; cycle cost and MFLOPS per pass are identical, see
    EXPERIMENTS.md. *)
let fft_stage ~n =
  let src =
    Printf.sprintf
      {|
program fft;
var wr, wi : array [0..%d] of float;
    ar, ai, br, bi, tr, ti : float;
    k : int;
begin
  for k := 0 to %d do begin
    receive(ar, 0);
    receive(ai, 1);
    receive(br, 0);
    receive(bi, 1);
    tr := wr[k] * br - wi[k] * bi;
    ti := wr[k] * bi + wi[k] * br;
    send(ar + tr, 0);
    send(ai + ti, 1);
    send(ar - tr, 0);
    send(ai - ti, 1);
  end
end.
|}
      (n - 1) (n - 1)
  in
  let stream ph =
    List.concat
      (List.init n (fun k ->
           let x = float_of_int ((k * 13 mod 40) + ph) *. 0.05 in
           [ x; x +. 0.25 ]))
  in
  Kernel.mk "fft" ~descr:"radix-2 FFT butterfly stage (streamed, 512-point scaled)"
    ~init:(Kernel.init_all_arrays ~seed:42)
    ~inputs:[ stream 1; stream 7 ]
    (Kernel.W2 src)

(** 3x3 convolution, direct form: nine loads, nine multiplies, eight
    adds per output pixel. Memory-port bound at one load per cycle. *)
let conv3x3 ~n =
  let src =
    Printf.sprintf
      {|
program conv3x3;
var p : array [0..%d, 0..%d] of float;
    o : array [0..%d, 0..%d] of float;
    i, j : int;
begin
  for i := 0 to %d do
    for j := 0 to %d do
      o[i,j] := 0.1*p[i,j]   + 0.2*p[i,j+1]   + 0.1*p[i,j+2]
              + 0.2*p[i+1,j] + 0.4*p[i+1,j+1] + 0.2*p[i+1,j+2]
              + 0.1*p[i+2,j] + 0.2*p[i+2,j+1] + 0.1*p[i+2,j+2];
end.
|}
      (n + 1) (n + 1) (n - 1) (n - 1) (n - 1) (n - 1)
  in
  Kernel.mk "conv3x3" ~descr:"3x3 convolution, direct form"
    ~init:(Kernel.init_all_arrays ~seed:43)
    (Kernel.W2 src)

(** Hough transform: threshold each pixel; edge pixels vote into an
    accumulator line per angle (table-driven sin/cos). Conditional,
    integer-address-heavy — the low-MFLOPS end of Table 4-1. *)
let hough ~n ~angles =
  let src =
    Printf.sprintf
      {|
program hough;
var p : array [0..%d, 0..%d] of float;
    acc : independent array [0..%d] of float;
    sins, coss : array [0..%d] of float;
    rho, v : float;
    i, j, t, r : int;
begin
  for i := 0 to %d do
    for j := 0 to %d do begin
      v := p[i,j];
      if v > 1.4 then begin
        for t := 0 to %d do begin
          rho := float(i) * coss[t] + float(j) * sins[t];
          r := int(rho);
          acc[t * %d + r] := acc[t * %d + r] + v;
        end
      end
      else v := 0.0;
    end
end.
|}
      (n - 1) (n - 1)
      ((angles * 2 * n) - 1)
      (angles - 1) (n - 1) (n - 1) (angles - 1) (2 * n) (2 * n)
  in
  Kernel.mk "hough" ~descr:"Hough transform (thresholded voting)"
    ~init:(fun st p ->
      Kernel.init_all_arrays ~seed:44 st p;
      (* sin/cos tables in [0,1) so rho stays in range *)
      let sins = Sp_ir.Program.find_seg p "sins" in
      let coss = Sp_ir.Program.find_seg p "coss" in
      Sp_ir.Machine_state.init_farray st sins (fun t ->
          Float.abs (sin (float_of_int t *. 0.3)) *. 0.49);
      Sp_ir.Machine_state.init_farray st coss (fun t ->
          Float.abs (cos (float_of_int t *. 0.3)) *. 0.49);
      let acc = Sp_ir.Program.find_seg p "acc" in
      Sp_ir.Machine_state.init_farray st acc (fun _ -> 0.0))
    (Kernel.W2 src)

(** Local selective averaging: average each pixel with those 4-neighbours
    that are within a threshold of it (data-dependent conditionals in
    the innermost loop). *)
let local_average ~n =
  let src =
    Printf.sprintf
      {|
program lsavg;
var p : array [0..%d, 0..%d] of float;
    o : array [0..%d, 0..%d] of float;
    c, s, cnt, d : float;
    i, j : int;
begin
  for i := 1 to %d do
    for j := 1 to %d do begin
      c := p[i,j];
      s := c;
      cnt := 1.0;
      d := p[i-1,j] - c;
      if abs(d) < 0.3 then begin s := s + p[i-1,j]; cnt := cnt + 1.0; end
      else s := s;
      d := p[i+1,j] - c;
      if abs(d) < 0.3 then begin s := s + p[i+1,j]; cnt := cnt + 1.0; end
      else s := s;
      d := p[i,j-1] - c;
      if abs(d) < 0.3 then begin s := s + p[i,j-1]; cnt := cnt + 1.0; end
      else s := s;
      d := p[i,j+1] - c;
      if abs(d) < 0.3 then begin s := s + p[i,j+1]; cnt := cnt + 1.0; end
      else s := s;
      o[i,j] := s * inverse(cnt);
    end
end.
|}
      (n + 1) (n + 1) (n + 1) (n + 1) (n - 1) (n - 1)
  in
  Kernel.mk "lsavg" ~descr:"local selective averaging (conditional smoothing)"
    ~init:(Kernel.init_all_arrays ~seed:45)
    (Kernel.W2 src)

(** All-pairs shortest path, one Warshall sweep (the paper ran 10
    iterations over 350 nodes; we run one sweep over a smaller graph —
    the inner loop is identical). *)
let warshall ~n =
  let src =
    Printf.sprintf
      {|
program warshall;
var d : independent array [0..%d, 0..%d] of float;
    dik : float;
    k, i, j : int;
begin
  for k := 0 to %d do
    for i := 0 to %d do begin
      dik := d[i,k];
      for j := 0 to %d do
        d[i,j] := min(d[i,j], dik + d[k,j]);
    end
end.
|}
      (n - 1) (n - 1) (n - 1) (n - 1) (n - 1)
  in
  Kernel.mk "warshall" ~descr:"Warshall all-pairs shortest path"
    ~init:(Kernel.init_all_arrays ~seed:46)
    (Kernel.W2 src)

(** Roberts edge operator: cross-difference gradient magnitude. *)
let roberts ~n =
  let src =
    Printf.sprintf
      {|
program roberts;
var p : array [0..%d, 0..%d] of float;
    o : array [0..%d, 0..%d] of float;
    i, j : int;
begin
  for i := 0 to %d do
    for j := 0 to %d do
      o[i,j] := abs(p[i,j] - p[i+1,j+1]) + abs(p[i+1,j] - p[i,j+1]);
end.
|}
      n n (n - 1) (n - 1) (n - 1) (n - 1)
  in
  Kernel.mk "roberts" ~descr:"Roberts edge operator"
    ~init:(Kernel.init_all_arrays ~seed:47)
    (Kernel.W2 src)

(* ------------------------------------------------------------------ *)

(** The Table 4-1 programs, with the paper's array-level MFLOPS
    reference where the scan is legible. *)
let all =
  [
    (matmul_cell ~n:48, Some 79.4);
    (fft_stage ~n:128, Some 104.0);
    (conv3x3 ~n:img, Some 71.9);
    (hough ~n:16 ~angles:8, Some 24.3);
    (local_average ~n:img, Some 39.2);
    (warshall ~n:20, Some 15.2);
    (roberts ~n:img, Some 42.2);
  ]
