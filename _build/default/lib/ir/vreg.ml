(** Virtual registers.

    Registers are typed by class — [F] (floating point) or [I]
    (integer) — matching the split register files of the Warp cell.
    Register allocation proper is not performed (the paper's compiler
    assumes the files are large enough, Section 2.3); instead modulo
    variable expansion checks expanded counts against file capacities. *)

type cls = F | I

type t = { id : int; cls : cls; name : string }

let compare a b = compare a.id b.id
let equal a b = a.id = b.id
let hash a = a.id

let cls_to_string = function F -> "f" | I -> "i"

let to_string v =
  if String.equal v.name "" then Printf.sprintf "%%%s%d" (cls_to_string v.cls) v.id
  else Printf.sprintf "%%%s%d:%s" (cls_to_string v.cls) v.id v.name

let pp ppf v = Fmt.string ppf (to_string v)

let is_float v = v.cls = F

(** Fresh-register supply. A supply is local to a program under
    construction; ids are dense from 0 so downstream passes can use
    arrays indexed by register id. *)
module Supply = struct
  type supply = { mutable next : int }

  let create () = { next = 0 }
  let count s = s.next

  let fresh s ?(name = "") cls =
    let id = s.next in
    s.next <- id + 1;
    { id; cls; name }
end

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)
