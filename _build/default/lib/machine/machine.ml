(** Parametric VLIW machine descriptions.

    A machine is a set of {e resources} (functional-unit issue slots,
    memory ports, the sequencer, …), a mapping from {!Opkind.t} to a
    latency and a {e reservation} (which resources the operation holds,
    at which cycle offsets relative to issue), register-file capacities,
    and a clock rate for MFLOPS accounting.

    All scheduling in {!module:Sp_core} is expressed against this
    interface, so the same pipeliner drives the Warp-like cell of the
    paper, the toy machine of the paper's Section 2 example, and the
    scaled datapaths used for the Section 6 scalability experiment. *)

type resource = {
  rid : int;          (** dense index, [0 .. num_resources-1] *)
  rname : string;
  count : int;        (** available units per instruction *)
}

(** A reservation: the resource units an operation occupies, as
    [(cycle offset relative to issue, resource id)] pairs. Most units
    are fully pipelined and appear only at offset 0. *)
type reservation = (int * int) list

type opinfo = {
  latency : int;          (** result readable [latency] cycles after issue *)
  reservation : reservation;
}

type t = {
  name : string;
  resources : resource array;
  info : Opkind.t -> opinfo;
  clock_mhz : float;          (** for MFLOPS accounting *)
  fregs : int;                (** FP register-file capacity *)
  iregs : int;                (** integer register-file capacity *)
}

let num_resources m = Array.length m.resources
let resource m rid = m.resources.(rid)

let find_resource m name =
  match
    Array.find_opt (fun r -> String.equal r.rname name) m.resources
  with
  | Some r -> r
  | None ->
    invalid_arg
      (Printf.sprintf "Machine.find_resource: no resource %S in %s" name
         m.name)

let latency m k = (m.info k).latency
let reservation m k = (m.info k).reservation

(** Seconds per cycle. *)
let cycle_time m = 1e-6 /. m.clock_mhz

(** MFLOPS for [flops] floating-point operations over [cycles] cycles. *)
let mflops m ~flops ~cycles =
  if cycles = 0 then 0.
  else float_of_int flops /. (float_of_int cycles /. m.clock_mhz)

(* ------------------------------------------------------------------ *)
(* Description builder                                                *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable rs : resource list;  (* reversed *)
  mutable next : int;
  tbl : (Opkind.t, opinfo) Hashtbl.t;
  mutable dflt : (Opkind.t -> opinfo) option;
}

let builder () = { rs = []; next = 0; tbl = Hashtbl.create 31; dflt = None }

let add_resource b ~name ~count =
  let r = { rid = b.next; rname = name; count } in
  b.rs <- r :: b.rs;
  b.next <- b.next + 1;
  r

let def_op b kind ~latency ~reservation =
  Hashtbl.replace b.tbl kind { latency; reservation }

let def_default b f = b.dflt <- Some f

let seal b ~name ~clock_mhz ~fregs ~iregs =
  let resources = Array.of_list (List.rev b.rs) in
  let info k =
    match Hashtbl.find_opt b.tbl k with
    | Some i -> i
    | None -> (
      match b.dflt with
      | Some f -> f k
      | None ->
        invalid_arg
          (Printf.sprintf "Machine %s: no opinfo for %s" name
             (Opkind.to_string k)))
  in
  { name; resources; info; clock_mhz; fregs; iregs }

(* ------------------------------------------------------------------ *)
(* The Warp-like cell                                                 *)
(* ------------------------------------------------------------------ *)

(** A Warp-like cell (Annaratone et al. 1987, as summarized in the
    paper): a 5-stage pipelined floating-point multiplier and adder
    whose results, through the 2-cycle register-file delay, appear
    7 cycles after issue; an integer ALU; a single-ported data memory;
    two input and two output communication queues; and a sequencer.
    Peak rate 10 MFLOPS at a 5 MHz clock (one add and one multiply per
    cycle).

    [width] scales the number of adders, multipliers, ALUs and memory
    ports, for the scalability experiment of the paper's Section 6. *)
let warp_scaled ~width =
  if width < 1 then invalid_arg "Machine.warp_scaled: width < 1";
  let b = builder () in
  let fadd = add_resource b ~name:"fadd" ~count:width in
  let fmul = add_resource b ~name:"fmul" ~count:width in
  let alu = add_resource b ~name:"alu" ~count:width in
  let mem = add_resource b ~name:"mem" ~count:width in
  let agu = add_resource b ~name:"agu" ~count:(2 * width) in
  let qin0 = add_resource b ~name:"qin0" ~count:1 in
  let qin1 = add_resource b ~name:"qin1" ~count:1 in
  let qout0 = add_resource b ~name:"qout0" ~count:1 in
  let qout1 = add_resource b ~name:"qout1" ~count:1 in
  let seq = add_resource b ~name:"seq" ~count:1 in
  ignore seq;
  let on r lat k = def_op b k ~latency:lat ~reservation:[ (0, r.rid) ] in
  (* adder pipeline: 5 stages + 2-cycle register-file delay *)
  List.iter (on fadd 7)
    [ Opkind.Fadd; Fsub; Fmin; Fmax; Fneg; Fabs; Fmov; Fsel; Frecs; Frsqs ];
  List.iter (fun rel -> on fadd 7 (Opkind.Fcmp rel))
    [ Opkind.Eq; Ne; Lt; Le; Gt; Ge ];
  on fmul 7 Opkind.Fmul;
  List.iter (on alu 1)
    [ Opkind.Iadd; Isub; Imul; Iand; Ior; Ixor; Ishl; Ishr; Imov; Iconst;
      Isel; Itof; Ftoi; Fconst ];
  List.iter (on alu 17) [ Opkind.Idiv; Imod ];
  List.iter (on agu 1) [ Opkind.Amov; Aadd ];
  List.iter (fun rel -> on alu 1 (Opkind.Icmp rel))
    [ Opkind.Eq; Ne; Lt; Le; Gt; Ge ];
  on mem 3 Opkind.Load;
  def_op b Opkind.Store ~latency:0 ~reservation:[ (0, mem.rid) ];
  def_op b (Opkind.Recv 0) ~latency:1 ~reservation:[ (0, qin0.rid) ];
  def_op b (Opkind.Recv 1) ~latency:1 ~reservation:[ (0, qin1.rid) ];
  def_op b (Opkind.Send 0) ~latency:0 ~reservation:[ (0, qout0.rid) ];
  def_op b (Opkind.Send 1) ~latency:0 ~reservation:[ (0, qout1.rid) ];
  def_op b Opkind.Nop ~latency:0 ~reservation:[];
  let name = if width = 1 then "warp" else Printf.sprintf "warp%dx" width in
  (* two 31-word FP files (adder + multiplier) and a 64-word ALU file,
     replicated with the datapath when scaling *)
  seal b ~name ~clock_mhz:5.0 ~fregs:(62 * width) ~iregs:(64 * width)

let warp = warp_scaled ~width:1

(* ------------------------------------------------------------------ *)
(* The toy machine of the paper's Section 2 example                   *)
(* ------------------------------------------------------------------ *)

(** The datapath of the worked example in Section 2 of the paper:
    a memory read port, a one-stage-pipelined adder whose result is
    written two cycles after issue, and a memory write port, all
    independently controllable. An iteration of [a(i) := a(i) + K]
    occupies one instruction on each of read/add/write, and the loop
    pipelines with an initiation interval of 1. *)
let toy =
  let b = builder () in
  let rd = add_resource b ~name:"rd" ~count:1 in
  let add = add_resource b ~name:"add" ~count:1 in
  let wr = add_resource b ~name:"wr" ~count:1 in
  let alu = add_resource b ~name:"alu" ~count:1 in
  let agu = add_resource b ~name:"agu" ~count:2 in
  let seq = add_resource b ~name:"seq" ~count:1 in
  ignore seq;
  let on r lat k = def_op b k ~latency:lat ~reservation:[ (0, r.rid) ] in
  on rd 1 Opkind.Load;
  def_op b Opkind.Store ~latency:0 ~reservation:[ (0, wr.rid) ];
  List.iter (on add 2)
    [ Opkind.Fadd; Fsub; Fmul; Fmin; Fmax; Fneg; Fabs; Fmov; Fsel; Frecs;
      Frsqs ];
  List.iter (fun rel -> on add 2 (Opkind.Fcmp rel))
    [ Opkind.Eq; Ne; Lt; Le; Gt; Ge ];
  List.iter (on alu 1)
    [ Opkind.Iadd; Isub; Imul; Iand; Ior; Ixor; Ishl; Ishr; Imov; Iconst;
      Isel; Itof; Ftoi; Fconst ];
  List.iter (on alu 17) [ Opkind.Idiv; Imod ];
  List.iter (on agu 1) [ Opkind.Amov; Aadd ];
  List.iter (fun rel -> on alu 1 (Opkind.Icmp rel))
    [ Opkind.Eq; Ne; Lt; Le; Gt; Ge ];
  def_op b (Opkind.Recv 0) ~latency:1 ~reservation:[ (0, rd.rid) ];
  def_op b (Opkind.Recv 1) ~latency:1 ~reservation:[ (0, rd.rid) ];
  def_op b (Opkind.Send 0) ~latency:0 ~reservation:[ (0, wr.rid) ];
  def_op b (Opkind.Send 1) ~latency:0 ~reservation:[ (0, wr.rid) ];
  def_op b Opkind.Nop ~latency:0 ~reservation:[];
  seal b ~name:"toy" ~clock_mhz:10.0 ~fregs:32 ~iregs:32

(* ------------------------------------------------------------------ *)
(* A strictly sequential machine, for baseline sanity checks           *)
(* ------------------------------------------------------------------ *)

(** One universal issue slot, unit latencies: an entirely sequential
    processor. Useful in tests: any legal schedule on [serial] is a
    permutation of the operations, one per cycle. *)
let serial =
  let b = builder () in
  let u = add_resource b ~name:"u" ~count:1 in
  let seq = add_resource b ~name:"seq" ~count:1 in
  ignore seq;
  def_default b (fun k ->
      match k with
      | Opkind.Nop -> { latency = 0; reservation = [] }
      | Opkind.Store | Opkind.Send _ ->
        { latency = 0; reservation = [ (0, u.rid) ] }
      | _ -> { latency = 1; reservation = [ (0, u.rid) ] });
  seal b ~name:"serial" ~clock_mhz:10.0 ~fregs:1024 ~iregs:1024
