(** The compiler: hierarchical reduction driving software pipelining.

    Programs are scheduled bottom-up (paper Section 3): innermost
    constructs first, each scheduled construct reduced to a single
    {!Sunit.t} that the enclosing construct schedules like an ordinary
    operation. Conditionals are reduced to the union of their branches'
    constraints; loops are software pipelined and reduced to nodes
    exposing their prolog/epilog for overlap with surrounding code,
    with the steady state's resources marked consumed (Section 3.2).

    Per-loop decisions mirror the paper's compiler:
    - pipelining is skipped when the locally compacted body is longer
      than a threshold (Section 4.2: the 331-instruction EXP loop of
      LFK 22 "was beyond the threshold that it used to decide if
      pipelining was feasible");
    - pipelining is abandoned when no initiation interval below the
      locally compacted restart interval is schedulable (LFK 16 and 20:
      "the calculated lower bound on the initiation interval were
      within 99% of the length of the unpipelined loop");
    - when modulo variable expansion overflows the register files, the
      loop reverts to the serial schedule (Section 2.3);
    - a compile-time trip count too small to reach the steady state
      selects the unpipelined version outright (Section 2.4). *)

open Sp_ir
open Sp_machine

(** Verdict of an optional exact-scheduling oracle on a heuristic
    result (see [Sp_opt.Certify]). [spent] is the oracle's fuel cost. *)
type certification =
  | Cert_optimal of { spent : int }
      (** exact search proved every interval below the heuristic's
          infeasible — the heuristic result is optimal *)
  | Cert_improved of { heur_ii : int; spent : int }
      (** the exact search found (and the compiler adopted) a schedule
          at a smaller interval than the heuristic's [heur_ii]; the
          adopted interval is itself proven optimal *)
  | Cert_unknown of { spent : int; proven_below : int }
      (** budget exhausted: intervals in [\[mii, proven_below)] are
          proven infeasible, the rest undecided *)

(** An optimality oracle the compiler can consult after the heuristic
    interval search succeeds. It receives the pipelining dependence
    graph, the shared search {!Modsched.analysis}, the interval lower
    bound and the heuristic schedule, and returns the schedule to adopt
    (the heuristic's, or a validated better one) with its certificate.
    Runs inside the per-loop degradation guard: an escaping exception
    reverts the loop to its serial schedule. *)
type certifier =
  Machine.t ->
  Ddg.t ->
  analysis:Modsched.analysis ->
  mii:int ->
  Modsched.schedule ->
  Modsched.schedule * certification

(** What a schedule cache stores and replays for one pipelined loop:
    the adopted schedule, the search stats that produced it (replayed
    into the loop report so a cache hit is byte-identical to the cold
    compile), and its certificate. MVE is deliberately absent — the
    expansion draws fresh registers from the program's own supply, so
    it is recomputed per program in the finish phase. *)
type cached_sched = {
  cs_schedule : Modsched.schedule;
  cs_stats : Modsched.stats;
  cs_cert : certification option;
}

(** One consultation of a schedule cache for one loop. [cp_hit] is the
    verified reusable result, if any. [cp_commit] must be called at
    most once, from the sequential finish phase, with the schedule the
    loop actually adopted and validated — it inserts on a miss and
    refreshes recency on a hit. Keeping every mutation in the
    sequential phase (probes during the parallel analyze phase are
    read-only) makes the cache's evolution — and therefore the output
    — independent of the job count. *)
type cache_probe = {
  cp_hit : cached_sched option;
  cp_commit : cached_sched -> unit;
}

(** A schedule cache, as the compiler sees it: one probe function,
    called upstream of the interval search with the pipelining graph
    and the search window. Implementations ({!Sp_serve.Cache}) must
    verify any candidate against the graph's own constraints before
    returning it as a hit; the finish phase re-validates the expanded
    fragments regardless, so a defective hit can only cost work, never
    correctness. Runs inside the per-loop degradation guard. *)
type cache = {
  cache_probe : Machine.t -> Ddg.t -> mii:int -> max_ii:int -> cache_probe;
}

type config = {
  pipeline : bool;          (** false = local compaction only (baseline) *)
  mve_mode : Mve.mode;
  search : Modsched.search;
  threshold : int;          (** max compacted body length for pipelining *)
  if_exclusive : bool;
      (** reduce conditionals to all-resources-consumed nodes
          (Section 3.1 fallback policy) instead of the branch union *)
  pipeline_outer : bool;    (** attempt pipelining of non-innermost loops *)
  profit_margin : float;
      (** decline pipelining when the interval lower bound is already
          within this fraction of the serial restart length (paper
          Section 4.2 on LFK 16/20: "the calculated lower bound on the
          initiation interval were within 99%% of the length of the
          unpipelined loop"); 1.0 accepts any nominal gain *)
  fuel : int option;
      (** placement-probe budget per loop for the interval search
          ([Modsched.schedule_with_budget]); exhaustion degrades the
          loop to its serial schedule. [None] = unlimited. *)
  certifier : certifier option;
      (** optional optimality oracle consulted on every heuristic
          success; [None] = heuristic results are reported uncertified *)
  cache : cache option;
      (** optional content-addressed schedule cache consulted before
          the interval search (and before the certifier); [None] = every
          loop is scheduled from scratch *)
  jobs : int;
      (** domain-pool width for compiling independent innermost loops
          concurrently (sibling loops batch; results merge in loop
          order, so output is byte-identical for any width). [1] =
          fully sequential, no domain is ever spawned. *)
}

let default =
  {
    pipeline = true;
    mve_mode = Mve.Max_q;
    search = Modsched.Linear;
    threshold = 300;
    if_exclusive = false;
    pipeline_outer = true;
    profit_margin = 0.95;
    fuel = None;
    certifier = None;
    cache = None;
    jobs = 1;
  }

(** The Figure 4-2 baseline: individual basic blocks compacted, no
    pipelining, and no motion of operations into or around conditionals
    (a reduced conditional consumes every resource, so nothing
    co-schedules with it — the paper's "only compacting individual
    basic blocks"). *)
let local_only = { default with pipeline = false; if_exclusive = true }

(* ------------------------------------------------------------------ *)

type status =
  | Pipelined
  | Disabled            (** config requested local compaction only *)
  | Over_threshold
  | Not_profitable      (** no interval below the serial restart length *)
  | Register_overflow
  | Trip_too_small
  | Budget_exhausted    (** the interval search ran out of fuel *)
  | Degraded of string
      (** an internal error (or injected fault) was caught during the
          pipelining attempt, or the pipelined fragments failed
          validation; the loop reverted to its serial schedule *)

let status_to_string = function
  | Pipelined -> "pipelined"
  | Disabled -> "disabled"
  | Over_threshold -> "over-threshold"
  | Not_profitable -> "not-profitable"
  | Register_overflow -> "register-overflow"
  | Trip_too_small -> "trip-too-small"
  | Budget_exhausted -> "budget-exhausted"
  | Degraded msg -> "degraded: " ^ msg

(** Did the loop fall back to its serial schedule because of an error
    or an exhausted budget (as opposed to a policy decision)? *)
let is_degraded = function
  | Degraded _ | Budget_exhausted -> true
  | Pipelined | Disabled | Over_threshold | Not_profitable
  | Register_overflow | Trip_too_small -> false

type loop_report = {
  l_id : int;
  l_depth : int;             (** 0 = innermost *)
  n_units : int;
  has_if : bool;
  has_scc : bool;            (** a recurrence beyond the induction update *)
  res_mii : int;
  rec_mii : int;
  mii : int;
  seq_len : int;             (** restart interval of the compacted body *)
  ii : int option;           (** achieved initiation interval *)
  sc : int;                  (** stage count (0 when not pipelined) *)
  unroll : int;
  mve_fregs : int;
  mve_iregs : int;
  probed : int;              (** candidate intervals tried by the search *)
  fuel_spent : int;          (** placement probes the search cost *)
  res_use : (string * int) list;
      (** reservation-slot demand of one iteration per resource
          ({!Mii.per_resource}) — the numerator of MRT occupancy *)
  cert : certification option;
      (** optimality certificate, when a certifier was configured and
          the loop pipelined *)
  status : status;
  view : Sp_obs.Render.loop_view option;
      (** visual-artifact data (Gantt, MRT grid, lifetimes), populated
          only when {!Sp_obs.Render} is enabled and the loop pipelined *)
}

(** Lower bound on pipelining efficiency, the paper's Table 4-2 metric:
    achieved interval vs. the computed lower bound. 1.0 when optimal. *)
let efficiency r =
  match r.ii with
  | Some ii when ii > 0 -> float_of_int r.mii /. float_of_int ii
  | _ -> 1.0

let cert_to_string = function
  | Cert_optimal { spent } -> Printf.sprintf "optimal (exact, %d fuel)" spent
  | Cert_improved { heur_ii; spent } ->
    Printf.sprintf "improved from heuristic ii=%d (exact, %d fuel)" heur_ii
      spent
  | Cert_unknown { spent; proven_below } ->
    Printf.sprintf "unknown (intervals < %d infeasible, budget out at %d)"
      proven_below spent

let pp_loop_report ppf r =
  Fmt.pf ppf
    "loop%d(depth %d): %d units%s%s mii=%d (res %d, rec %d) seq=%d %s%s%s"
    r.l_id r.l_depth r.n_units
    (if r.has_if then " +if" else "")
    (if r.has_scc then " +rec" else "")
    r.mii r.res_mii r.rec_mii r.seq_len
    (match r.ii with
    | Some ii -> Printf.sprintf "ii=%d sc=%d u=%d" ii r.sc r.unroll
    | None -> "not pipelined")
    (Printf.sprintf " [%s]" (status_to_string r.status))
    (match r.cert with
    | None -> ""
    | Some c -> Printf.sprintf " {cert: %s}" (cert_to_string c))

type result = {
  code : Sp_vliw.Prog.t;
  loops : loop_report list;
  code_size : int;
}

(** A stable textual digest of a compilation result: full generated
    code plus each loop's id/ii/mii/status. Two results fingerprint
    equal iff they emitted the same instructions and reached the same
    per-loop scheduling outcome — the determinism witness used by both
    the compile-speed benchmark (jobs=1 vs jobs=N) and the campaign's
    parallel-divergence oracle. *)
let fingerprint (r : result) =
  Fmt.str "%a|%s" Sp_vliw.Prog.pp r.code
    (String.concat ";"
       (List.map
          (fun lr ->
            Printf.sprintf "%d:%s:%d:%s" lr.l_id
              (match lr.ii with Some s -> string_of_int s | None -> "-")
              lr.mii (status_to_string lr.status))
          r.loops))

(* ------------------------------------------------------------------ *)

type ctx = {
  m : Machine.t;
  cfg : config;
  vregs : Vreg.Supply.supply;
  ops : Op.Supply.supply;
  global_uses : (int, int) Hashtbl.t;
  global_defs : (int, int) Hashtbl.t;
  mutable reports : loop_report list;
  mutable next_loop : int;
  seq_rid : int;
  all_resources : (int * int) list;
      (** one entry per resource unit, at offset 0 *)
  pool : Sp_util.Pool.t option;
      (** worker domains for the analysis phase of sibling innermost
          loops; [None] when [cfg.jobs = 1] *)
}

let count_uses tbl (r : Region.t) =
  let bump (v : Vreg.t) =
    Hashtbl.replace tbl v.Vreg.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.Vreg.id))
  in
  let rec go = function
    | Region.Ops ops -> List.iter (fun op -> List.iter bump (Op.reads op)) ops
    | Region.Seq rs -> List.iter go rs
    | Region.If { cond; then_; else_ } ->
      bump cond;
      go then_;
      go else_
    | Region.For { n; body; _ } ->
      (match n with Region.Reg v -> bump v | Region.Const _ -> ());
      go body
  in
  go r

let count_defs tbl (r : Region.t) =
  let bump (v : Vreg.t) =
    Hashtbl.replace tbl v.Vreg.id
      (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.Vreg.id))
  in
  let rec go = function
    | Region.Ops ops -> List.iter (fun op -> List.iter bump (Op.writes op)) ops
    | Region.Seq rs -> List.iter go rs
    | Region.If { then_; else_; _ } ->
      go then_;
      go else_
    | Region.For { iv; body; _ } ->
      (* the synthesized counter init and per-iteration update *)
      bump iv;
      bump iv;
      go body
  in
  go r

let make_ctx ?pool (m : Machine.t) cfg (p : Program.t) =
  let global_uses = Hashtbl.create 256 in
  count_uses global_uses p.Program.body;
  let global_defs = Hashtbl.create 256 in
  count_defs global_defs p.Program.body;
  let seq_rid = (Machine.find_resource m "seq").Machine.rid in
  (* every datapath resource unit (at offset 0), excluding the
     sequencer — control constructs claim the sequencer separately for
     their whole length, and must not double-book it *)
  let all_resources =
    List.concat
      (List.init (Machine.num_resources m) (fun rid ->
           if rid = seq_rid then []
           else
             List.init (Machine.resource m rid).Machine.count (fun _ ->
                 (0, rid))))
  in
  {
    m;
    cfg;
    vregs = p.Program.vregs;
    ops = p.Program.ops;
    global_uses;
    global_defs;
    reports = [];
    next_loop = 0;
    seq_rid;
    all_resources;
    pool;
  }

let renumber units =
  Array.of_list (List.mapi (fun i (u : Sunit.t) -> { u with Sunit.sid = i }) units)

(** Conservative memory summary of a scheduled construct for the
    enclosing level: reads at entry, writes at entry and exit, unknown
    subscripts. *)
let summarize_mems (units : Sunit.t array) ~len =
  let segs = Hashtbl.create 8 in
  let by_sid = Hashtbl.create 8 in
  Array.iter
    (fun u ->
      List.iter
        (fun (e : Sunit.mem_eff) ->
          let sid = e.Sunit.seg.Memseg.sid in
          if not (Hashtbl.mem by_sid sid) then
            Hashtbl.replace by_sid sid e.Sunit.seg;
          let r, w =
            Option.value ~default:(false, false) (Hashtbl.find_opt segs sid)
          in
          Hashtbl.replace segs sid
            (r || not e.Sunit.write, w || e.Sunit.write))
        (Ddg.effects u))
    units;
  Hashtbl.fold
    (fun sid (r, w) acc ->
      let seg = Hashtbl.find by_sid sid in
      let base =
        if r then
          [ { Sunit.seg; write = false; sub = None; at = 0; summary = true };
            { Sunit.seg; write = false; sub = None; at = max 0 (len - 1);
              summary = true } ]
        else []
      in
      let wr =
        if w then
          [ { Sunit.seg; write = true; sub = None; at = 0; summary = true };
            { Sunit.seg; write = true; sub = None; at = max 0 (len - 1);
              summary = true } ]
        else []
      in
      base @ wr @ acc)
    segs []

(* ------------------------------------------------------------------ *)
(* Reduction of conditionals                                           *)
(* ------------------------------------------------------------------ *)

(** Schedule a straight-line unit list as a basic block and produce its
    fragment, reservation profile and length. *)
let compact_units ctx units ~pad_to =
  let arr = renumber units in
  let g = Ddg.build ~mve:false arr in
  let p = Listsched.compact ctx.m g in
  let r = Listsched.restart_interval g p in
  let len = max p.Listsched.len pad_to in
  let frag, resv = Emit.seq_frag arr p ~r_len:len in
  (arr, p, frag, resv, len, r)

let reduce_if ctx ~cond ~(then_units : Sunit.t list) ~(else_units : Sunit.t list)
    : Sunit.t =
  let t_arr, t_pl, t_frag, t_resv, t_len, _ =
    compact_units ctx then_units ~pad_to:1
  in
  let e_arr, e_pl, e_frag, e_resv, e_len, _ =
    compact_units ctx else_units ~pad_to:1
  in
  let lb = max t_len e_len in
  let len = 1 + lb in
  let exclusive_resv () =
    List.concat
      (List.init len (fun o ->
           (o, ctx.seq_rid)
           :: List.map (fun (_, r) -> (o, r)) ctx.all_resources))
  in
  let exact () =
    (* A branch that contains a loop expands at emission beyond its
       static length; every static operand/effect time inside it then
       under-approximates the dynamic one. Live-ins must stay valid
       until the construct's end, defs land only after it, and memory
       effects are pinned to both ends. *)
    let expanding =
      List.exists Sunit.expands then_units
      || List.exists Sunit.expands else_units
    in
    (* register uses/defs of a scheduled branch, shifted past the test
       slot *)
    let side (arr : Sunit.t array) (pl : Listsched.placement) =
      let uses = ref [] and defs = ref [] and mems = ref [] in
      Array.iteri
        (fun i (u : Sunit.t) ->
          let base = 1 + pl.Listsched.times.(i) in
          List.iter
            (fun (r, t) ->
              uses := (r, base + t) :: !uses;
              (* pinned past the end plus the maximum write latency: an
                 overwriting operation from another iteration must ISSUE
                 after the construct's last slot — its write lands a
                 dynamic latency after issue, and only issue order
                 survives the emission-time expansion *)
              if expanding then uses := (r, len + 7) :: !uses)
            u.Sunit.uses;
          List.iter
            (fun (r, t) ->
              let t' =
                if expanding then len + max 0 (t - (u.Sunit.len - 1))
                else base + t
              in
              defs := (r, t') :: !defs)
            u.Sunit.defs;
          List.iter
            (fun (e : Sunit.mem_eff) ->
              mems := { e with Sunit.at = base + e.Sunit.at } :: !mems;
              if expanding then
                mems := { e with Sunit.at = len - 1 } :: !mems)
            (Ddg.effects u))
        arr;
      (!uses, !defs, !mems)
    in
    let t_uses, t_defs, t_mems = side t_arr t_pl in
    let e_uses, e_defs, e_mems = side e_arr e_pl in
    (* a register defined on one side only must stay valid across the
       other path: record it as used at entry as well *)
    let one_sided =
      let ids l = List.map (fun ((r : Vreg.t), _) -> r.Vreg.id) l in
      let t_ids = ids t_defs and e_ids = ids e_defs in
      List.filter (fun (r, _) -> not (List.mem r.Vreg.id e_ids)) t_defs
      @ List.filter (fun (r, _) -> not (List.mem r.Vreg.id t_ids)) e_defs
    in
    let uses =
      ((cond, 0) :: t_uses)
      @ e_uses
      @ List.map (fun (r, _) -> (r, 0)) one_sided
    in
    (* A definition lands at a different time on each path; record it
       at both bounds, earliest first: output- and anti-dependences
       into the construct are drawn to a unit's first-listed def (the
       earliest any path's write can land), flow edges out of it from
       the last-listed (the latest). A single max-merged time would let
       a co-scheduled earlier write land inside the faster branch after
       that branch's own write. *)
    let defs =
      let h = Hashtbl.create 16 in
      List.iter
        (fun ((r : Vreg.t), t) ->
          match Hashtbl.find_opt h r.Vreg.id with
          | Some (_, lo, hi) ->
            Hashtbl.replace h r.Vreg.id (r, min lo t, max hi t)
          | None -> Hashtbl.replace h r.Vreg.id (r, t, t))
        (t_defs @ e_defs);
      Hashtbl.fold
        (fun _ (r, lo, hi) acc ->
          if lo = hi then (r, hi) :: acc else (r, lo) :: (r, hi) :: acc)
        h []
    in
    let shift l = List.map (fun (o, r) -> (o + 1, r)) l in
    let resv =
      if ctx.cfg.if_exclusive then exclusive_resv ()
      else
        (* the construct claims the sequencer for its whole length; any
           sequencer claims inside the branches (nested constructs) are
           subsumed, and must not double-book the single unit *)
        List.filter
          (fun (_, r) -> r <> ctx.seq_rid)
          (Sunit.union_resv (shift t_resv) (shift e_resv))
        @ List.init len (fun o -> (o, ctx.seq_rid))
    in
    (uses, defs, t_mems @ e_mems, resv)
  in
  (* Degraded decoration: every register either branch touches is live
     at entry and pinned past the construct's (dynamic) end, every def
     lands only after it, memory effects are summarized at both ends,
     and the construct claims every resource — nothing co-schedules
     with it, so the timing of whatever is inside cannot be violated
     by the surrounding schedule. *)
  let conservative msg =
    Sp_util.Log.info "loop-free if-reduction degraded: %s" msg;
    let both = Array.append t_arr e_arr in
    let regs = Hashtbl.create 32 in
    Array.iter
      (fun (u : Sunit.t) ->
        List.iter
          (fun ((r : Vreg.t), _) -> Hashtbl.replace regs r.Vreg.id r)
          (u.Sunit.uses @ u.Sunit.defs))
      both;
    let uses =
      (cond, 0)
      :: Hashtbl.fold (fun _ r acc -> (r, 0) :: (r, len + 7) :: acc) regs []
    in
    let defs =
      let h = Hashtbl.create 32 in
      Array.iter
        (fun (u : Sunit.t) ->
          List.iter
            (fun ((r : Vreg.t), _) -> Hashtbl.replace h r.Vreg.id r)
            u.Sunit.defs)
        both;
      Hashtbl.fold (fun _ r acc -> (r, len + 7) :: acc) h []
    in
    (uses, defs, summarize_mems both ~len, exclusive_resv ())
  in
  let uses, defs, mems, resv =
    try exact ()
    with e ->
      conservative
        (match e with
        | Sp_util.Fault.Injected site -> "fault injected at " ^ site
        | e -> Printexc.to_string e)
  in
  {
    Sunit.sid = 0;
    len;
    uses;
    defs;
    mems;
    resv;
    payload = Sunit.P_if { cond; then_ = t_frag; else_ = e_frag };
    no_wrap = true;
    barrier = false;
  }

(* ------------------------------------------------------------------ *)
(* Reduction of loops                                                  *)
(* ------------------------------------------------------------------ *)

let iconst_kinds = [ Sp_machine.Opkind.Iconst; Sp_machine.Opkind.Fconst ]

let is_hoistable (u : Sunit.t) =
  match u.Sunit.payload with
  | Sunit.P_op op ->
    List.mem op.Op.kind iconst_kinds && op.Op.srcs = [] && op.Op.addr = None
  | _ -> false

(** Validate a pipelined loop's fragments against the timing contract
    before committing to them. The linearized prolog ++ kernel ++
    epilog is exactly the dynamic instruction stream of a minimal-trip
    execution (one kernel pass), so checking it as a straight-line
    pseudo-program is sound. Fragments holding nested constructs
    (slots with control payloads) are skipped — their expansion is not
    straight-line, and the inner construct was already checked when it
    was reduced. *)
let validate_frags ctx (units : Sunit.t array) (pf : Emit.pipe_frags) :
    string option =
  (* Registers the loop reads before its first definition of them (in
     program order) enter the fragments holding a landed value from the
     enclosing level; without declaring them the straight-line check
     mistakes iteration-0 reads that legally overlap the first carried
     definition for displaced producers. *)
  let live_in =
    let decided = Hashtbl.create 16 and acc = ref [] in
    Array.iter
      (fun (u : Sunit.t) ->
        List.iter
          (fun ((r : Vreg.t), _) ->
            if not (Hashtbl.mem decided r.Vreg.id) then begin
              Hashtbl.replace decided r.Vreg.id ();
              acc := r :: !acc
            end)
          u.Sunit.uses;
        List.iter
          (fun ((r : Vreg.t), _) ->
            if not (Hashtbl.mem decided r.Vreg.id) then
              Hashtbl.replace decided r.Vreg.id ())
          u.Sunit.defs)
      units;
    !acc
  in
  let frags = [ pf.Emit.f_prolog; pf.Emit.f_kernel; pf.Emit.f_epilog ] in
  let straight =
    List.for_all
      (fun (f : Sunit.frag) ->
        Array.for_all (fun s -> Option.is_none s.Sunit.sctl) f)
      frags
  in
  if not straight then None
  else
    let code =
      Array.concat
        (List.map
           (fun (f : Sunit.frag) ->
             Array.map
               (fun s ->
                 { Sp_vliw.Inst.ops = List.rev s.Sunit.sops;
                   ctl = Sp_vliw.Inst.Next })
               f)
           frags)
    in
    match
      Sp_vliw.Validate.check_timing ~live_in ctx.m { Sp_vliw.Prog.code }
    with
    | [] -> None
    | v :: _ -> Some (Fmt.str "%a" Sp_vliw.Validate.pp_violation v)

(** Flat visual-artifact record for {!Sp_obs.Render}: Gantt rows from
    the flat schedule, MRT occupancy by folding every reservation entry
    to its residue, lifetimes from the MVE allocations. *)
let render_view (m : Machine.t) ~l_id (units : Sunit.t array)
    (sched : Modsched.schedule) (mve : Mve.t) : Sp_obs.Render.loop_view =
  let s = sched.Modsched.s in
  let nres = Machine.num_resources m in
  let grid = Array.make_matrix nres s 0 in
  Array.iteri
    (fun i (u : Sunit.t) ->
      List.iter
        (fun (off, rid) ->
          let slot = ((sched.Modsched.times.(i) + off) mod s + s) mod s in
          grid.(rid).(slot) <- grid.(rid).(slot) + 1)
        u.Sunit.resv)
    units;
  let v_mrt =
    List.init nres (fun rid ->
        let r = Machine.resource m rid in
        {
          Sp_obs.Render.rr_name = r.Machine.rname;
          rr_limit = r.Machine.count;
          rr_counts = grid.(rid);
        })
  in
  let v_ops =
    Array.to_list
      (Array.mapi
         (fun i (u : Sunit.t) ->
           let t = sched.Modsched.times.(i) in
           {
             Sp_obs.Render.op_id = i;
             op_desc = Fmt.str "%a" Sunit.pp u;
             op_time = t;
             op_len = u.Sunit.len;
             op_stage = t / s;
           })
         units)
  in
  let v_lifetimes =
    List.map
      (fun (a : Mve.alloc) ->
        {
          Sp_obs.Render.lf_reg = Vreg.to_string a.Mve.reg;
          lf_birth = a.Mve.birth;
          lf_death = a.Mve.death;
          lf_q = a.Mve.q;
        })
      mve.Mve.allocs
  in
  {
    Sp_obs.Render.v_loop = l_id;
    v_ii = s;
    v_span = sched.Modsched.span;
    v_sc = sched.Modsched.sc;
    v_unroll = mve.Mve.unroll;
    v_ops;
    v_mrt;
    v_lifetimes;
  }

(* The per-loop pipeline is split into three phases so sibling
   innermost loops can be analyzed in parallel without perturbing any
   observable output:

   - {b prelude} (sequential, at discovery): allocate the loop id and
     the synthesized induction ops — everything that draws from the
     shared vreg/op supplies before analysis;
   - {b analysis} ([loop_analyze], parallelizable): dependence graphs,
     serial compaction, interval bounds, the fueled interval search and
     the optional certifier — pure with respect to the supplies, so
     sibling loops can run it on worker domains;
   - {b finish} (sequential, in loop order): modulo variable expansion
     (which allocates expanded registers), fragment emission,
     validation, reporting and unit construction.

   The supplies are only touched in preludes (discovery order) and
   finishes (loop order), both fixed by the program shape — so
   register/op numbering, and with it every byte of emitted code and
   every report, is identical for any pool width. *)

type prelude = {
  pr_l_id : int;
  pr_iv : Vreg.t;
  pr_n : Region.bound;
  pr_depth : int;
  pr_units : Sunit.t array;
  pr_hoisted : Sunit.t list;
  pr_one_op : Op.t;
  pr_body_uses : (int, int) Hashtbl.t;
      (** AST-level use counts of the loop's body region — same walker
          as [ctx.global_uses], so comparing the two is well-defined.
          Unit-level counting would disagree: reductions add synthetic
          use entries (live-in pins, one-sided-branch keeps) that
          inflate a register's local count past its real one, hiding
          outside uses from the live-out test. *)
}

(** Outcome of the analysis phase's interval search. *)
type searched =
  | S_fail of status * Modsched.stats option
  | S_sched of Modsched.schedule * Modsched.stats * certification option

(** Everything the finish phase needs from the analysis phase. *)
type staged = {
  sg_seq_len : int;
  sg_seq_body : Sunit.frag;
  sg_g_mve : Ddg.t;
  sg_mii : Mii.t;
  sg_res_use : (string * int) list;
  sg_has_if : bool;
  sg_has_scc : bool;
  sg_has_inner_loop : bool;
  sg_search : searched;
  sg_commit : (cached_sched -> unit) option;
      (** schedule-cache commit for this loop, to be called once from
          the sequential finish phase if the loop pipelines *)
}

let loop_prelude ctx ~(iv : Vreg.t) ~(n : Region.bound) ~(body : Region.t)
    ~depth (body_units : Sunit.t list) : prelude =
  let l_id = ctx.next_loop in
  ctx.next_loop <- l_id + 1;
  (* Hoist loop-invariant constants to the enclosing level. Moving a
     body definition [r := const] before the loop is only sound when
     every execution observes the same values it did in place:
       - [r] has no other definition in the body (an inner loop's
         counter is initialized by a constant yet redefined by its
         update, and must be re-initialized every iteration);
       - no body unit before the definition reads [r] — otherwise
         iteration 0 must see the pre-loop value, not the constant;
       - [r] has no definition elsewhere in the program, and either the
         loop is statically known to run at least once or every read of
         [r] in the whole program happens inside this body — otherwise
         a zero-trip execution would leak the constant to code after
         the loop. Registers synthesized after the whole-program count
         (inner-loop plumbing) are local by construction and pass. *)
  let def_counts = Hashtbl.create 32 in
  List.iter
    (fun (u : Sunit.t) ->
      List.iter
        (fun ((r : Vreg.t), _) ->
          Hashtbl.replace def_counts r.Vreg.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt def_counts r.Vreg.id)))
        u.Sunit.defs)
    body_units;
  let body_uses = Hashtbl.create 32 in
  let first_use = Hashtbl.create 32 in
  List.iteri
    (fun i (u : Sunit.t) ->
      List.iter
        (fun ((r : Vreg.t), _) ->
          Hashtbl.replace body_uses r.Vreg.id
            (1 + Option.value ~default:0 (Hashtbl.find_opt body_uses r.Vreg.id));
          if not (Hashtbl.mem first_use r.Vreg.id) then
            Hashtbl.replace first_use r.Vreg.id i)
        u.Sunit.uses)
    body_units;
  let trip_ge_1 = match n with Region.Const k -> k >= 1 | Region.Reg _ -> false in
  let safe_to_hoist i (u : Sunit.t) =
    is_hoistable u
    && List.for_all
         (fun ((r : Vreg.t), _) ->
           let id = r.Vreg.id in
           Hashtbl.find_opt def_counts id = Some 1
           && (match Hashtbl.find_opt first_use id with
              | Some j -> j >= i
              | None -> true)
           &&
           match
             (Hashtbl.find_opt ctx.global_defs id,
              Hashtbl.find_opt ctx.global_uses id)
           with
           | None, None -> true
           | gdefs, guses ->
             Option.value ~default:0 gdefs = 1
             && (trip_ge_1
                || Option.value ~default:0 guses
                   = Option.value ~default:0 (Hashtbl.find_opt body_uses id)))
         u.Sunit.defs
  in
  let hoisted, body_units =
    let hp, bp =
      List.partition
        (fun (i, u) -> safe_to_hoist i u)
        (List.mapi (fun i u -> (i, u)) body_units)
    in
    (List.map snd hp, List.map snd bp)
  in
  (* synthesize the induction update: iv := iv + 1 *)
  let one = Vreg.Supply.fresh ctx.vregs ~name:"one" Vreg.I in
  let one_op =
    Op.Supply.mk ctx.ops ~dst:one ~imm:(Op.Iimm 1) Sp_machine.Opkind.Iconst
  in
  let upd_op =
    Op.Supply.mk ctx.ops ~dst:iv ~srcs:[ iv; one ] Sp_machine.Opkind.Aadd
  in
  let body_units = body_units @ [ Sunit.of_op ctx.m ~sid:0 upd_op ] in
  let units = renumber body_units in
  let ast_uses = Hashtbl.create 64 in
  count_uses ast_uses body;
  {
    pr_l_id = l_id;
    pr_iv = iv;
    pr_n = n;
    pr_depth = depth;
    pr_units = units;
    pr_hoisted = hoisted;
    pr_one_op = one_op;
    pr_body_uses = ast_uses;
  }

let loop_analyze ctx (pre : prelude) : staged =
  let l_id = pre.pr_l_id in
  let units = pre.pr_units in
  if Sp_obs.Explain.enabled () then Sp_obs.Explain.set_loop l_id;
  Sp_obs.Cost.set_loop l_id;
  Sp_util.Log.debug "loop%d: enter, %d units" l_id (Array.length units - 1);
  (* live-out test: used more often in the whole program than inside
     the loop's body region — both counts taken by the same AST walker
     ([count_uses]), so the comparison is exact *)
  let live_out (r : Vreg.t) =
    let g = Option.value ~default:0 (Hashtbl.find_opt ctx.global_uses r.Vreg.id) in
    let l = Option.value ~default:0 (Hashtbl.find_opt pre.pr_body_uses r.Vreg.id) in
    g > l
  in
  let loop_args () = [ ("loop", Sp_obs.Trace.I l_id) ] in
  (* full dependence graph: serial restart interval and fallback body *)
  Sp_util.Log.debug "loop%d: building full ddg" l_id;
  let g_full =
    Sp_obs.Trace.span ~args:loop_args "compile.ddg" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_ddg (fun () ->
            Ddg.build ~mve:false units))
  in
  Sp_util.Log.debug "loop%d: compacting (%d edges)" l_id
    (List.length g_full.Ddg.edges);
  let pl =
    Sp_obs.Trace.span ~args:loop_args "compile.compact" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_compact (fun () ->
            Listsched.compact ctx.m g_full))
  in
  let seq_len = Listsched.restart_interval g_full pl in
  Sp_util.Log.debug "loop%d: seq_len=%d" l_id seq_len;
  let seq_body, _ = Emit.seq_frag units pl ~r_len:seq_len in
  (* pipelining graph: carried deps on expandable variables removed *)
  let g_mve =
    Sp_obs.Trace.span ~args:loop_args "compile.ddg" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_ddg (fun () ->
            Ddg.build ~mve:(ctx.cfg.mve_mode <> Mve.Off) ~live_out units))
  in
  Sp_util.Log.debug "loop%d: analyzing" l_id;
  let analysis, mii =
    Sp_obs.Trace.span ~args:loop_args "compile.mii" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_bounds (fun () ->
            let analysis = Modsched.analyze ~s_max:seq_len g_mve in
            ( analysis,
              Mii.compute ctx.m units ~rec_mii:analysis.Modsched.a_rec_mii )))
  in
  let scc = analysis.Modsched.a_scc in
  Sp_util.Log.debug "loop%d: analysis done" l_id;
  (* a reduced control construct must fit strictly inside one s-window
     (see Modsched.wrap_ok), so its length + 1 is a genuine lower bound
     on the initiation interval for this machine *)
  let ctl_bound =
    Array.fold_left
      (fun acc (u : Sunit.t) ->
        if u.Sunit.no_wrap then max acc (u.Sunit.len + 1) else acc)
      1 units
  in
  let mii = { mii with Mii.mii = max mii.Mii.mii ctl_bound } in
  let res_use = Mii.per_resource ctx.m units in
  if Sp_obs.Explain.enabled () then begin
    Sp_obs.Explain.set_loop l_id;
    let binding =
      if mii.Mii.mii = ctl_bound && ctl_bound > mii.Mii.res_mii
         && ctl_bound > mii.Mii.rec_mii
      then "control"
      else if mii.Mii.rec_mii > mii.Mii.res_mii then "recurrence"
      else "resource"
    in
    let critical =
      (* busiest resource: the one whose per-iteration demand, divided
         by its unit count, is largest — the numerator of res_mii *)
      match
        List.sort (fun (_, a) (_, b) -> compare b a) res_use
      with
      | (r, u) :: _ -> Printf.sprintf "%s (%d slots/iter)" r u
      | [] -> "none"
    in
    Sp_obs.Explain.record
      (Sp_obs.Explain.Bounds
         {
           res_mii = mii.Mii.res_mii;
           rec_mii = mii.Mii.rec_mii;
           ctl_bound;
           mii = mii.Mii.mii;
           seq_len;
           binding;
           critical;
         });
    let comps =
      List.filter_map
        (fun c ->
          if scc.Scc.nontrivial.(c) then Some scc.Scc.comps.(c) else None)
        (Scc.topo_components scc)
    in
    if comps <> [] then
      Sp_obs.Explain.record (Sp_obs.Explain.Scc_order { comps })
  end;
  let has_if =
    Array.exists
      (fun (u : Sunit.t) ->
        match u.Sunit.payload with Sunit.P_if _ -> true | _ -> false)
      units
  in
  let has_inner_loop =
    Array.exists
      (fun (u : Sunit.t) ->
        match u.Sunit.payload with Sunit.P_loop _ -> true | _ -> false)
      units
  in
  let has_scc =
    (* a genuine recurrence: a dependence cycle involving something
       other than the counter bookkeeping (the address-unit copy and
       update every loop carries) *)
    let bookkeeping v =
      match units.(v).Sunit.payload with
      | Sunit.P_op op -> (
        match op.Op.kind with
        | Sp_machine.Opkind.Aadd | Sp_machine.Opkind.Amov -> true
        | _ -> false)
      | _ -> false
    in
    Array.exists2
      (fun nontrivial members ->
        nontrivial && List.exists (fun v -> not (bookkeeping v)) members)
      scc.Scc.nontrivial scc.Scc.comps
  in
  (* ---- pipelining decision: interval search ----------------------- *)
  (* Every step of the attempt — interval search, certification, and
     later modulo variable expansion, fragment expansion and fragment
     validation in the finish phase — runs inside a guard: whatever
     goes wrong (an exhausted budget, an injected fault, an internal
     error, fragments that fail the timing contract), this loop alone
     degrades to the serial schedule already in hand and compilation
     continues. *)
  let search, commit =
    if not ctx.cfg.pipeline then (S_fail (Disabled, None), None)
    else if has_inner_loop && not ctx.cfg.pipeline_outer then
      (S_fail (Disabled, None), None)
    else if seq_len > ctx.cfg.threshold then
      (S_fail (Over_threshold, None), None)
    else if
      float_of_int mii.Mii.mii
      >= ctx.cfg.profit_margin *. float_of_int seq_len
    then (S_fail (Not_profitable, None), None)
    else
      try
        (* schedule cache: a read-only probe — eligible loops ask the
           cache for a previously adopted schedule of a structurally
           identical (DDG, machine) pair before paying for the interval
           search. Probes may run concurrently (the analyze phase is
           parallel); the matching commit is deferred to the sequential
           finish phase, so the cache's contents evolve in loop order
           and the output stays byte-identical at any job count.
           Explain mode bypasses the cache: a replayed schedule records
           no probe events, and the decision log must not depend on
           what some earlier compilation happened to insert. *)
        let probe =
          match ctx.cfg.cache with
          | Some c when not (Sp_obs.Explain.enabled ()) ->
            Some
              (Sp_obs.Cost.with_phase Sp_obs.Cost.P_cache (fun () ->
                   c.cache_probe ctx.m g_mve ~mii:mii.Mii.mii
                     ~max_ii:(seq_len - 1)))
          | _ -> None
        in
        let commit = Option.map (fun p -> p.cp_commit) probe in
        match probe with
        | Some { cp_hit = Some cs; _ }
          when (cs.cs_cert = None) = (ctx.cfg.certifier = None) ->
          (* replay only when the cached certification level matches the
             requested one — a certified run must not report an entry
             cached without a certificate, nor vice versa *)
          Sp_util.Log.debug "loop%d: schedule cache hit ii=%d" l_id
            cs.cs_schedule.Modsched.s;
          (S_sched (cs.cs_schedule, cs.cs_stats, cs.cs_cert), commit)
        | _ -> (
          Sp_util.Log.debug "loop%d: searching ii in [%d,%d]" l_id mii.Mii.mii
            (seq_len - 1);
          match
            Sp_obs.Trace.span ~args:loop_args "compile.modsched" (fun () ->
                Sp_obs.Cost.with_phase Sp_obs.Cost.P_search (fun () ->
                    Modsched.schedule_with_budget ~search:ctx.cfg.search
                      ~analysis ?fuel:ctx.cfg.fuel ctx.m g_mve ~mii:mii.Mii.mii
                      ~max_ii:(seq_len - 1)))
          with
          | Modsched.No_interval stats ->
            (S_fail (Not_profitable, Some stats), None)
          | Modsched.Fuel_exhausted stats ->
            (S_fail (Budget_exhausted, Some stats), None)
          | Modsched.Scheduled (sched, stats) ->
            Sp_util.Log.debug "loop%d: scheduled ii=%d sc=%d span=%d" l_id
              sched.Modsched.s sched.Modsched.sc sched.Modsched.span;
            (* optimality oracle: may replace the heuristic schedule with
               a proven-better one; either way the adopted schedule flows
               through the same MVE / emission / validation path in the
               finish phase *)
            let sched, cert =
              match ctx.cfg.certifier with
              | None -> (sched, None)
              | Some certify ->
                let sched', c =
                  Sp_obs.Trace.span ~args:loop_args "compile.certify"
                    (fun () ->
                      Sp_obs.Cost.with_phase Sp_obs.Cost.P_certify (fun () ->
                          certify ctx.m g_mve ~analysis ~mii:mii.Mii.mii sched))
                in
                Sp_util.Log.debug "loop%d: certificate: %s" l_id
                  (cert_to_string c);
                (sched', Some c)
            in
            (S_sched (sched, stats, cert), commit))
      with
      | Sp_util.Fault.Injected site ->
        (S_fail (Degraded ("fault injected at " ^ site), None), None)
      | e -> (S_fail (Degraded (Printexc.to_string e), None), None)
  in
  {
    sg_seq_len = seq_len;
    sg_seq_body = seq_body;
    sg_g_mve = g_mve;
    sg_mii = mii;
    sg_res_use = res_use;
    sg_has_if = has_if;
    sg_has_scc = has_scc;
    sg_has_inner_loop = has_inner_loop;
    sg_search = search;
    sg_commit = commit;
  }

let loop_finish ctx (pre : prelude) (sg : staged) : Sunit.t list =
  let l_id = pre.pr_l_id in
  let units = pre.pr_units in
  let n = pre.pr_n in
  let g_mve = sg.sg_g_mve in
  let mii = sg.sg_mii in
  let seq_len = sg.sg_seq_len in
  let seq_body = sg.sg_seq_body in
  let has_if = sg.sg_has_if in
  let has_scc = sg.sg_has_scc in
  let res_use = sg.sg_res_use in
  if Sp_obs.Explain.enabled () then Sp_obs.Explain.set_loop l_id;
  Sp_obs.Cost.set_loop l_id;
  let loop_args () = [ ("loop", Sp_obs.Trace.I l_id) ] in
  (* ---- pipelining decision: expansion and validation --------------- *)
  let attempt =
    match sg.sg_search with
    | S_fail (status, stats) -> Error (status, stats)
    | S_sched (sched, stats, cert) -> (
      try
        let mve =
          Sp_obs.Trace.span ~args:loop_args "compile.mve" (fun () ->
              Sp_obs.Cost.with_phase Sp_obs.Cost.P_mve (fun () ->
                  Mve.compute ~mode:ctx.cfg.mve_mode ctx.m g_mve sched
                    ~supply:ctx.vregs))
        in
        Sp_util.Log.debug "loop%d: mve u=%d" l_id mve.Mve.unroll;
        if sg.sg_has_inner_loop && mve.Mve.unroll > 1 then
          (* pipelining around an inner loop only overlaps the outer
             bookkeeping with the inner prolog/epilog; replicating the
             whole inner loop per kernel copy is never worth the code
             size (Section 2.4's concern) *)
          Error (Not_profitable, Some stats)
        else if not mve.Mve.fits then Error (Register_overflow, Some stats)
        else
          match n with
          | Region.Const k when k - (sched.Modsched.sc - 1) < mve.Mve.unroll ->
            Error (Trip_too_small, Some stats)
          | _ -> (
            let pf =
              Sp_obs.Trace.span ~args:loop_args "compile.emit" (fun () ->
                  Sp_obs.Cost.with_phase Sp_obs.Cost.P_emit (fun () ->
                      Emit.pipe_frags units sched mve))
            in
            Sp_util.Log.debug "loop%d: frags built" l_id;
            match
              Sp_obs.Trace.span ~args:loop_args "compile.validate" (fun () ->
                  Sp_obs.Cost.with_phase Sp_obs.Cost.P_validate (fun () ->
                      validate_frags ctx units pf))
            with
            | Some msg -> Error (Degraded msg, Some stats)
            | None -> Ok (sched, mve, pf, stats, cert))
      with
      | Sp_util.Fault.Injected site ->
        Error (Degraded ("fault injected at " ^ site), None)
      | e -> Error (Degraded (Printexc.to_string e), None))
  in
  (match attempt with
  | Error (((Degraded _ | Budget_exhausted) as st), _) ->
    Sp_util.Log.info "loop%d reverts to its serial schedule [%s]" l_id
      (status_to_string st)
  | _ -> ());
  (* ---- payload construction --------------------------------------- *)
  let seq_count =
    match n with
    | Region.Const k -> Emit.Known k
    | Region.Reg v -> Emit.Runtime v
  in
  (* Empty words separating two schedules stitched back to back (the
     drained pipeline and the serial remainder, or the peeled serial
     iterations and the prolog). Each schedule is internally
     latency-correct, but a write issued near the end of the first may
     still be in flight when the second begins reading; the pad covers
     the longest write latency any body unit can leave in flight. *)
  let drain_pad =
    let d =
      Array.fold_left
        (fun acc (u : Sunit.t) ->
          List.fold_left (fun a ((_ : Vreg.t), t) -> max a t) acc u.Sunit.defs)
        1 units
    in
    d - 1
  in
  let emit_drain asm =
    for _ = 1 to drain_pad do
      Sp_vliw.Prog.Asm.inst asm []
    done
  in
  let mk_unit ~prolog ~epilog ~prolog_resv ~epilog_resv ~(mid : Sunit.mid_emit)
      : Sunit.t =
    let plen = Array.length prolog and elen = Array.length epilog in
    let len = plen + 1 + elen in
    let uses =
      let h = Hashtbl.create 32 in
      Array.iter
        (fun (u : Sunit.t) ->
          List.iter
            (fun ((r : Vreg.t), _) ->
              if not (Vreg.Set.mem r g_mve.Ddg.mve_candidates) then
                Hashtbl.replace h r.Vreg.id r)
            u.Sunit.uses)
        units;
      (match n with Region.Reg v -> Hashtbl.replace h v.Vreg.id v | _ -> ());
      (* live-ins are needed from the start and must survive until the
         dynamic end of the loop (plus the maximum write latency, so
         overwriters from other iterations issue after the node) *)
      Hashtbl.fold
        (fun _ r acc -> (r, 0) :: (r, len + 7) :: acc)
        h []
    in
    let defs =
      (* Each register the body defines is recorded at two times. The
         late bound: a value may land in the register file up to its
         write latency after the loop's final instruction, and code
         after the loop must not read a stale value, so the def carries
         that overhang past the node's length. The early bound: the
         loop's first pass can land the write as soon as the def's
         unit-relative latency after the node begins, so preceding
         in-flight writes (write-port conflicts) and preceding reads
         (anti-dependences) at the enclosing level must resolve before
         that — the static length of the node understates its dynamic
         expansion, which makes the late bound alone unsound for
         those edges. *)
      let h = Hashtbl.create 32 in
      Array.iter
        (fun (u : Sunit.t) ->
          List.iter
            (fun ((r : Vreg.t), t) ->
              let over = max 0 (t - u.Sunit.len + 1) in
              match Hashtbl.find_opt h r.Vreg.id with
              | Some (_, o, e) ->
                Hashtbl.replace h r.Vreg.id (r, max o over, min e t)
              | None -> Hashtbl.replace h r.Vreg.id (r, over, t))
            u.Sunit.defs)
        units;
      (* The early entry must precede the late one in the access
         stream: the dependence builder draws output and anti edges to
         a unit's first-listed def, and flow edges from its last. *)
      Hashtbl.fold
        (fun _ (r, over, early) acc ->
          (r, early) :: (r, len + over) :: acc)
        h []
    in
    let mems = summarize_mems units ~len in
    let resv =
      (* nested constructs' sequencer claims are subsumed by this
         node's blanket claim *)
      List.filter
        (fun (_, r) -> r <> ctx.seq_rid)
        (prolog_resv
        @ List.map (fun (o, r) -> (o + plen + 1, r)) epilog_resv)
      @ List.map (fun (_, r) -> (plen, r)) ctx.all_resources
      @ List.init len (fun o -> (o, ctx.seq_rid))
    in
    {
      Sunit.sid = 0;
      len;
      uses;
      defs;
      mems;
      resv;
      payload =
        Sunit.P_loop
          { prolog = (if plen = 0 then [||] else prolog);
            epilog = (if elen = 0 then [||] else epilog);
            mid };
      no_wrap = true;
      barrier = false;
    }
  in
  let report ?cert ?view
      ?(stats = { Modsched.intervals_probed = 0; fuel_spent = 0 })
      ~ii ~sc ~unroll ~mf ~mi status =
    if Sp_obs.Explain.enabled () then begin
      Sp_obs.Explain.set_loop l_id;
      Sp_obs.Explain.record
        (Sp_obs.Explain.Outcome
           {
             status = status_to_string status;
             ii;
             cert = Option.map cert_to_string cert;
           })
    end;
    ctx.reports <-
      {
        l_id;
        l_depth = pre.pr_depth;
        n_units = Array.length units;
        has_if;
        has_scc;
        res_mii = mii.Mii.res_mii;
        rec_mii = mii.Mii.rec_mii;
        mii = mii.Mii.mii;
        seq_len;
        ii;
        sc;
        unroll;
        mve_fregs = mf;
        mve_iregs = mi;
        probed = stats.Modsched.intervals_probed;
        fuel_spent = stats.Modsched.fuel_spent;
        res_use;
        cert;
        status;
        view;
      }
      :: ctx.reports
  in
  let loop_unit =
    match attempt with
    | Error (status, stats) ->
      report ?stats ~ii:None ~sc:0 ~unroll:1 ~mf:0 ~mi:0 status;
      let mid =
        {
          Sunit.emit_mid =
            (fun ~rename ~depth asm ->
              Emit.emit_counted_loop asm ~rename ~depth ~count:seq_count
                seq_body);
        }
      in
      mk_unit ~prolog:[||] ~epilog:[||] ~prolog_resv:[] ~epilog_resv:[] ~mid
    | Ok (sched, mve, pf, stats, cert) ->
      let view =
        if Sp_obs.Render.enabled () then
          Some (render_view ctx.m ~l_id units sched mve)
        else None
      in
      report ?cert ?view ~stats
        ~ii:(Some sched.Modsched.s)
        ~sc:sched.Modsched.sc ~unroll:mve.Mve.unroll ~mf:mve.Mve.fregs
        ~mi:mve.Mve.iregs Pipelined;
      (* the loop pipelined and its fragments validated: commit the
         adopted schedule to the cache (insert on a miss, refresh
         recency on a hit). Runs here — in the sequential finish phase,
         in loop order — so cache evolution is job-count-independent.
         A cache failure must never break a compilation that already
         succeeded. *)
      (match sg.sg_commit with
      | None -> ()
      | Some commit -> (
        try
          commit
            { cs_schedule = sched; cs_stats = stats; cs_cert = cert }
        with e ->
          Sp_util.Log.info "loop%d: schedule-cache commit failed: %s" l_id
            (Printexc.to_string e)));
      let sc = pf.Emit.sc and u = pf.Emit.unroll in
      (match n with
      | Region.Const k ->
        let r = (k - (sc - 1)) mod u in
        let nn = k - r in
        let passes = (nn - (sc - 1)) / u in
        if r = 0 then
          (* clean split: expose prolog and epilog for overlap *)
          let mid =
            {
              Sunit.emit_mid =
                (fun ~rename ~depth asm ->
                  Emit.emit_kernel asm ~rename ~depth ~passes:(Emit.Known passes)
                    pf.Emit.f_kernel);
            }
          in
          mk_unit ~prolog:pf.Emit.f_prolog ~epilog:pf.Emit.f_epilog
            ~prolog_resv:pf.Emit.prolog_resv ~epilog_resv:pf.Emit.epilog_resv
            ~mid
        else
          (* remainder iterations run serially after the drained pipeline *)
          let mid =
            {
              Sunit.emit_mid =
                (fun ~rename ~depth asm ->
                  Emit.emit_slots asm ~rename ~depth pf.Emit.f_prolog
                    ~extras:Emit.no_extras;
                  Emit.emit_kernel asm ~rename ~depth ~passes:(Emit.Known passes)
                    pf.Emit.f_kernel;
                  Emit.emit_slots asm ~rename ~depth pf.Emit.f_epilog
                    ~extras:Emit.no_extras;
                  emit_drain asm;
                  Emit.emit_counted_loop asm ~rename ~depth ~count:(Emit.Known r)
                    seq_body);
            }
          in
          mk_unit ~prolog:[||] ~epilog:[||] ~prolog_resv:[] ~epilog_resv:[]
            ~mid
      | Region.Reg nreg ->
        (* run-time two-version scheme (Section 2.4) *)
        let mk k ?dst ?srcs ?imm () = Op.Supply.mk ctx.ops ?dst ?srcs ?imm k in
        let fresh nm = Vreg.Supply.fresh ctx.vregs ~name:nm Vreg.I in
        let c_sc1 = fresh "sc1" and c_u = fresh "u" in
        let t1 = fresh "t1" and cflag = fresh "small" in
        let rrem = fresh "rem" and qpass = fresh "passes" in
        let setup1 =
          [
            mk Sp_machine.Opkind.Iconst ~dst:c_sc1 ~imm:(Op.Iimm (sc - 1)) ();
            mk Sp_machine.Opkind.Iconst ~dst:c_u ~imm:(Op.Iimm u) ();
            mk Sp_machine.Opkind.Isub ~dst:t1 ~srcs:[ nreg; c_sc1 ] ();
            mk (Sp_machine.Opkind.Icmp Sp_machine.Opkind.Lt) ~dst:cflag
              ~srcs:[ t1; c_u ] ();
          ]
        in
        let setup2 =
          [
            mk Sp_machine.Opkind.Imod ~dst:rrem ~srcs:[ t1; c_u ] ();
            mk Sp_machine.Opkind.Idiv ~dst:qpass ~srcs:[ t1; c_u ] ();
          ]
        in
        let mid =
          {
            Sunit.emit_mid =
              (fun ~rename ~depth asm ->
                let module A = Sp_vliw.Prog.Asm in
                let l_seq = A.fresh_label asm in
                let l_done = A.fresh_label asm in
                Emit.emit_op_chain asm ctx.m ~rename setup1;
                (* the flag lands one cycle after the compare issues:
                   the branch must sit in a later instruction *)
                A.inst asm
                  ~ctl:
                    (Sp_vliw.Inst.CJump
                       { cond = rename cflag; if_zero = false; target = l_seq })
                  [];
                Emit.emit_op_chain asm ctx.m ~rename setup2;
                (* peel (n - (sc-1)) mod u iterations serially first *)
                Emit.emit_counted_loop asm ~rename ~depth
                  ~count:(Emit.Runtime rrem) seq_body;
                emit_drain asm;
                (* the pass counter is loaded before the prolog: the
                   prolog->kernel seam is part of the modulo timeline
                   and must not gain an extra instruction *)
                Emit.preset_counter asm ~rename ~depth
                  ~passes:(Emit.Runtime qpass);
                Emit.emit_slots asm ~rename ~depth pf.Emit.f_prolog
                  ~extras:Emit.no_extras;
                Emit.emit_kernel ~preset:true asm ~rename ~depth
                  ~passes:(Emit.Runtime qpass) pf.Emit.f_kernel;
                Emit.emit_slots asm ~rename ~depth pf.Emit.f_epilog
                  ~extras:Emit.no_extras;
                A.attach_ctl asm (Sp_vliw.Inst.Jump l_done);
                A.place asm l_seq;
                Emit.emit_counted_loop asm ~rename ~depth
                  ~count:(Emit.Runtime nreg) seq_body;
                A.place asm l_done);
          }
        in
        mk_unit ~prolog:[||] ~epilog:[||] ~prolog_resv:[] ~epilog_resv:[]
          ~mid)
  in
  (* the induction variable starts at zero; initialization happens at
     the enclosing level, before the loop node *)
  let init_op =
    Op.Supply.mk ctx.ops ~dst:pre.pr_iv ~imm:(Op.Iimm 0)
      Sp_machine.Opkind.Iconst
  in
  (* whatever is scheduled next belongs to the enclosing level *)
  if Sp_obs.Explain.enabled () then Sp_obs.Explain.set_loop (-1);
  Sp_obs.Cost.set_loop (-1);
  List.map (Sunit.of_op ctx.m ~sid:0) [ pre.pr_one_op; init_op ]
  @ pre.pr_hoisted
  @ [ loop_unit ]

(** Reduce one loop fully inline (prelude, analysis, finish on the
    calling domain, recording straight into the ambient observability
    buffers). Used for non-innermost loops — their bodies were already
    reduced, so there is nothing to overlap them with. *)
let reduce_loop ctx ~iv ~n ~body ~depth (body_units : Sunit.t list) :
    Sunit.t list =
  let pre = loop_prelude ctx ~iv ~n ~body ~depth body_units in
  loop_finish ctx pre (loop_analyze ctx pre)

(* ------------------------------------------------------------------ *)
(* Region recursion                                                    *)
(* ------------------------------------------------------------------ *)

(* Innermost loops are not reduced at discovery: their prelude runs
   immediately (fixing the loop id and the supply draw order), and the
   analysis is deferred into a batch so independent sibling loops can
   run it concurrently. A batch is flushed — analyses executed, then
   finishes applied in loop order — whenever an enclosing construct
   needs the reduced units. *)
type item = Now of Sunit.t list | Later of prelude

let flush_items ctx (items : item list) : Sunit.t list =
  let pendings =
    List.filter_map (function Later p -> Some p | Now _ -> None) items
  in
  match pendings with
  | [] ->
    List.concat_map (function Now us -> us | Later _ -> assert false) items
  | _ ->
    (* Each analysis task runs with captured observability (log lines,
       trace events, explain events, cost profile): the captures are
       re-emitted in loop order below, so the buffers end up
       byte-identical to a fully sequential run — whether the tasks ran
       on one domain or many. An analysis that raises is captured as
       [Error] so its partial observability survives: the merge loop
       injects everything recorded up to and including the failing loop
       before re-raising, leaving failed loops attributable instead of
       blank. *)
    let task (pre : prelude) () =
      Sp_util.Log.with_local_capture (fun () ->
          Sp_obs.Trace.collect (fun () ->
              Sp_obs.Explain.collect (fun () ->
                  Sp_obs.Cost.collect (fun () ->
                      match loop_analyze ctx pre with
                      | sg -> Ok sg
                      | exception e ->
                        Error (e, Printexc.get_raw_backtrace ())))))
    in
    let tasks = List.map (fun p -> task p) pendings in
    let staged =
      match ctx.pool with
      | Some pool
        when List.compare_length_with pendings 1 > 0
             && not (Sp_util.Fault.is_armed ()) ->
        (* fault injection counts hits globally in call order; keep it
           deterministic by running armed batches sequentially *)
        Sp_util.Pool.run pool tasks
      | _ -> List.map (fun f -> f ()) tasks
    in
    let results = Hashtbl.create 8 in
    List.iter2
      (fun (p : prelude) r -> Hashtbl.replace results p.pr_l_id r)
      pendings staged;
    List.concat_map
      (function
        | Now us -> us
        | Later pre -> (
          let (((outcome, cost), explain_evs), trace_evs), log_lines =
            Hashtbl.find results pre.pr_l_id
          in
          Sp_util.Log.replay log_lines;
          Sp_obs.Trace.inject trace_evs;
          Sp_obs.Explain.inject explain_evs;
          Sp_obs.Cost.inject cost;
          match outcome with
          | Ok sg -> loop_finish ctx pre sg
          | Error (e, bt) -> Printexc.raise_with_backtrace e bt))
      items

let rec items_of_region ctx ~depth (r : Region.t) : item list =
  match r with
  | Region.Ops ops -> [ Now (List.map (Sunit.of_op ctx.m ~sid:0) ops) ]
  | Region.Seq rs -> List.concat_map (items_of_region ctx ~depth) rs
  | Region.If { cond; then_; else_ } ->
    let then_units = flush_items ctx (items_of_region ctx ~depth then_) in
    let else_units = flush_items ctx (items_of_region ctx ~depth else_) in
    [ Now [ reduce_if ctx ~cond ~then_units ~else_units ] ]
  | Region.For { iv; n; body } ->
    let inner_items = items_of_region ctx ~depth:(depth + 1) body in
    if Region.contains_loop body then
      [ Now (reduce_loop ctx ~iv ~n ~body ~depth (flush_items ctx inner_items)) ]
    else
      (* innermost: bodies hold no pendings (nested Ifs were flushed),
         so this flush is a plain concatenation *)
      [
        Later (loop_prelude ctx ~iv ~n ~body ~depth (flush_items ctx inner_items));
      ]

let units_of_region ctx ~depth (r : Region.t) : Sunit.t list =
  flush_items ctx (items_of_region ctx ~depth r)

(** Debug/visualization aid: the dependence graph of each innermost
    loop body (without the synthesized induction update — the loops as
    the front end wrote them). Pair each with its induction register. *)
let innermost_ddgs ?(config = default) (m : Machine.t) (p : Program.t) :
    (Vreg.t * Ddg.t) list =
  let ctx = make_ctx m config p in
  let out = ref [] in
  let rec go = function
    | Region.Ops _ -> ()
    | Region.Seq rs -> List.iter go rs
    | Region.If { then_; else_; _ } ->
      go then_;
      go else_
    | Region.For { iv; body; _ } ->
      if Region.contains_loop body then go body
      else begin
        let units = renumber (units_of_region ctx ~depth:0 body) in
        out := (iv, Ddg.build units) :: !out
      end
  in
  go p.Program.body;
  List.rev !out

let program ?(config = default) (m : Machine.t) (p : Program.t) : result =
  Sp_obs.Trace.span "compile" @@ fun () ->
  let pool =
    if config.jobs > 1 then Some (Sp_util.Pool.create ~jobs:config.jobs)
    else None
  in
  Fun.protect ~finally:(fun () -> Option.iter Sp_util.Pool.shutdown pool)
  @@ fun () ->
  let ctx = make_ctx ?pool m config p in
  let units = units_of_region ctx ~depth:0 p.Program.body in
  Sp_util.Log.debug "top: %d units" (List.length units);
  let arr = renumber units in
  let g =
    Sp_obs.Trace.span "compile.ddg" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_ddg (fun () ->
            Ddg.build ~mve:false arr))
  in
  let pl =
    Sp_obs.Trace.span "compile.compact" (fun () ->
        Sp_obs.Cost.with_phase Sp_obs.Cost.P_compact (fun () ->
            Listsched.compact ctx.m g))
  in
  let code =
    Sp_obs.Trace.span "compile.emit" @@ fun () ->
    Sp_obs.Cost.with_phase Sp_obs.Cost.P_emit @@ fun () ->
    let frag, _ = Emit.seq_frag arr pl ~r_len:pl.Listsched.len in
    let asm = Sp_vliw.Prog.Asm.create () in
    Sp_util.Log.debug "top: emitting";
    Emit.emit_slots asm ~rename:Emit.identity_rename ~depth:0 frag
      ~extras:Emit.no_extras;
    Sp_util.Log.debug "top: emitted";
    Sp_vliw.Prog.Asm.inst asm ~ctl:Sp_vliw.Inst.Halt [];
    Sp_vliw.Prog.Asm.finish asm
  in
  {
    code;
    loops = List.rev ctx.reports;
    code_size = Sp_vliw.Prog.size code;
  }

(* ------------------------------------------------------------------ *)
(* Schedule-quality profile                                            *)
(* ------------------------------------------------------------------ *)

(** Convert a loop report into the flat observability currency. MRT
    occupancy divides the per-iteration reservation-slot demand by the
    slots available per window: the achieved interval for a pipelined
    loop, the serial restart interval otherwise. *)
let profile_loop (m : Machine.t) (r : loop_report) : Sp_obs.Profile.loop =
  let window = match r.ii with Some ii -> ii | None -> max 1 r.seq_len in
  let mrt =
    List.map
      (fun (name, use) ->
        let count = (Machine.find_resource m name).Machine.count in
        (name, float_of_int use /. float_of_int (window * count)))
      r.res_use
  in
  let prolog, kernel, epilog, overhead =
    match r.ii with
    | Some ii ->
      let p = (r.sc - 1) * ii in
      let k = r.unroll * ii in
      (p, k, p, if k > 0 then float_of_int (2 * p) /. float_of_int k else 0.)
    | None -> (0, 0, 0, 0.)
  in
  {
    Sp_obs.Profile.lp_id = r.l_id;
    lp_depth = r.l_depth;
    lp_status = status_to_string r.status;
    lp_n_units = r.n_units;
    lp_res_mii = r.res_mii;
    lp_rec_mii = r.rec_mii;
    lp_mii = r.mii;
    lp_seq_len = r.seq_len;
    lp_achieved_ii = r.ii;
    lp_optimal_ii =
      (match (r.cert, r.ii) with
      | Some (Cert_optimal _), Some ii | Some (Cert_improved _), Some ii ->
        Some ii
      | _ -> None);
    lp_efficiency = efficiency r;
    lp_cert = Option.map cert_to_string r.cert;
    lp_sc = r.sc;
    lp_unroll = r.unroll;
    lp_mve_fregs = r.mve_fregs;
    lp_mve_iregs = r.mve_iregs;
    lp_prolog_words = prolog;
    lp_epilog_words = epilog;
    lp_kernel_words = kernel;
    lp_overhead = overhead;
    lp_probed = r.probed;
    lp_fuel_spent = r.fuel_spent;
    lp_mrt = mrt;
  }
