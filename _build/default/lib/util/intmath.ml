(** Small integer-math helpers used throughout the scheduler. *)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

let lcm_list = function [] -> 1 | x :: xs -> List.fold_left lcm x xs

(** [ceil_div a b] is [ceil (a / b)] for [b > 0]; correct for negative
    [a] as well. *)
let ceil_div a b =
  if b <= 0 then invalid_arg "Intmath.ceil_div: non-positive divisor";
  if a >= 0 then (a + b - 1) / b
  else -((-a) / b)

(** [floor_div a b] is [floor (a / b)] for [b > 0]. *)
let floor_div a b =
  if b <= 0 then invalid_arg "Intmath.floor_div: non-positive divisor";
  if a >= 0 then a / b else -(ceil_div (-a) b)

(** Positive divisors of [n], in increasing order. *)
let divisors n =
  if n <= 0 then invalid_arg "Intmath.divisors: non-positive argument";
  let rec go d acc = if d > n then List.rev acc
    else go (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  go 1 []

(** Smallest divisor of [u] that is [>= q]; exists whenever [1 <= q <= u].
    This is the register-count rounding rule of Lam Section 2.3. *)
let smallest_divisor_geq ~u ~q =
  if q > u then invalid_arg "Intmath.smallest_divisor_geq: q > u";
  List.find (fun d -> d >= q) (divisors u)

let clamp ~lo ~hi x = max lo (min hi x)

let sum = List.fold_left ( + ) 0

let max_list = function
  | [] -> invalid_arg "Intmath.max_list: empty"
  | x :: xs -> List.fold_left max x xs

let min_list = function
  | [] -> invalid_arg "Intmath.min_list: empty"
  | x :: xs -> List.fold_left min x xs

(** [range lo hi] is [lo; lo+1; ...; hi-1]. Empty when [hi <= lo]. *)
let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []
