(** Tests for dependence-graph construction: edge kinds, delays,
    iteration distances, disambiguation, channel ordering, MVE
    candidate detection. *)

open Sp_ir
module Opkind = Sp_machine.Opkind
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit

let m = Sp_machine.Machine.warp

(* build units straight from ops *)
let units_of ops =
  Array.of_list (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) ops)

let find_edge g ~src ~dst ~omega =
  List.find_opt
    (fun (e : Ddg.edge) -> e.Ddg.src = src && e.Ddg.dst = dst && e.Ddg.omega = omega)
    g.Ddg.edges

let edge_exn g ~src ~dst ~omega =
  match find_edge g ~src ~dst ~omega with
  | Some e -> e
  | None ->
    Alcotest.failf "missing edge u%d -> u%d (omega %d)" src dst omega

type setup = {
  sup : Vreg.Supply.supply;
  ops : Op.Supply.supply;
  segs : Memseg.Supply.supply;
}

let setup () =
  {
    sup = Vreg.Supply.create ();
    ops = Op.Supply.create ();
    segs = Memseg.Supply.create ();
  }

let freg s n = Vreg.Supply.fresh s.sup ~name:n Vreg.F

let test_flow_delay () =
  let s = setup () in
  let a = freg s "a" and b = freg s "b" and c = freg s "c" in
  let mul = Op.Supply.mk s.ops ~dst:c ~srcs:[ a; b ] Opkind.Fmul in
  let add = Op.Supply.mk s.ops ~dst:a ~srcs:[ c; b ] Opkind.Fadd in
  let g = Ddg.build (units_of [ mul; add ]) in
  (* flow c: delay = multiplier latency *)
  let e = edge_exn g ~src:0 ~dst:1 ~omega:0 in
  Alcotest.(check int) "flow delay = latency" 7 e.Ddg.delay

let test_anti_delay () =
  let s = setup () in
  let a = freg s "a" and b = freg s "b" and c = freg s "c" in
  (* use of a, then redefinition of a *)
  let use = Op.Supply.mk s.ops ~dst:c ~srcs:[ a; b ] Opkind.Fadd in
  let def = Op.Supply.mk s.ops ~dst:a ~srcs:[ b; b ] Opkind.Fmul in
  let g = Ddg.build (units_of [ use; def ]) in
  (* anti: read at issue, write lands at +7 => delay 0 - 7 + 1 = -6 *)
  let e = edge_exn g ~src:0 ~dst:1 ~omega:0 in
  Alcotest.(check int) "anti delay = 1 - latency" (-6) e.Ddg.delay

let test_output_delay () =
  let s = setup () in
  let a = freg s "a" and b = freg s "b" in
  let d1 = Op.Supply.mk s.ops ~dst:a ~srcs:[ b; b ] Opkind.Fadd in
  let d2 = Op.Supply.mk s.ops ~dst:a ~srcs:[ b; b ] Opkind.Fmul in
  let g = Ddg.build ~mve:false (units_of [ d1; d2 ]) in
  let e = edge_exn g ~src:0 ~dst:1 ~omega:0 in
  Alcotest.(check int) "output delay" 1 e.Ddg.delay

let test_carried_accumulator () =
  let s = setup () in
  let acc = freg s "acc" and x = freg s "x" in
  (* acc := acc + x : carried flow with distance 1, delay = latency *)
  let add = Op.Supply.mk s.ops ~dst:acc ~srcs:[ acc; x ] Opkind.Fadd in
  let g = Ddg.build (units_of [ add ]) in
  let e = edge_exn g ~src:0 ~dst:0 ~omega:1 in
  Alcotest.(check int) "self flow delay" 7 e.Ddg.delay;
  (* not an MVE candidate: first access is a use *)
  Alcotest.(check bool) "accumulator not expandable" false
    (Vreg.Set.mem acc g.Ddg.mve_candidates)

let test_mve_candidate () =
  let s = setup () in
  let t = freg s "t" and x = freg s "x" and y = freg s "y" in
  (* t defined at top of every iteration, then used: a candidate;
     without MVE there would be a carried anti t(use)->t(def) *)
  let def = Op.Supply.mk s.ops ~dst:t ~srcs:[ x; x ] Opkind.Fmul in
  let use = Op.Supply.mk s.ops ~dst:y ~srcs:[ t; x ] Opkind.Fadd in
  let g = Ddg.build (units_of [ def; use ]) in
  Alcotest.(check bool) "t is a candidate" true
    (Vreg.Set.mem t g.Ddg.mve_candidates);
  Alcotest.(check bool) "carried anti removed" true
    (find_edge g ~src:1 ~dst:0 ~omega:1 = None);
  (* with expansion disabled the carried edges come back *)
  let g0 = Ddg.build ~mve:false (units_of [ def; use ]) in
  Alcotest.(check bool) "no candidates" true
    (Vreg.Set.is_empty g0.Ddg.mve_candidates);
  Alcotest.(check bool) "carried anti present" true
    (find_edge g0 ~src:1 ~dst:0 ~omega:1 <> None)

let test_live_out_excluded () =
  let s = setup () in
  let t = freg s "t" and x = freg s "x" in
  let def = Op.Supply.mk s.ops ~dst:t ~srcs:[ x; x ] Opkind.Fmul in
  let g =
    Ddg.build ~live_out:(fun r -> Vreg.equal r t) (units_of [ def ])
  in
  Alcotest.(check bool) "live-out not expandable" false
    (Vreg.Set.mem t g.Ddg.mve_candidates)

let mem_ops s ?(independent = false) () =
  let seg =
    Memseg.Supply.fresh s.segs ~independent ~name:"a" ~size:100 ()
  in
  let iv = Vreg.Supply.fresh s.sup ~name:"i" Vreg.I in
  let v = freg s "v" in
  let load off =
    Op.Supply.mk s.ops ~dst:(freg s "l")
      ~addr:
        { Op.seg; base = None; idx = Some iv; off;
          sub = Some (Subscript.of_iv ~off iv) }
      Opkind.Load
  in
  let store off =
    Op.Supply.mk s.ops ~srcs:[ v ]
      ~addr:
        { Op.seg; base = None; idx = Some iv; off;
          sub = Some (Subscript.of_iv ~off iv) }
      Opkind.Store
  in
  (load, store)

let test_memory_distance () =
  let s = setup () in
  let load, store = mem_ops s () in
  (* store a[i], load a[i-2]: the load reads what was stored 2
     iterations ago: flow edge with omega 2 *)
  let st = store 0 and ld = load (-2) in
  let g = Ddg.build (units_of [ st; ld ]) in
  let e = edge_exn g ~src:0 ~dst:1 ~omega:2 in
  Alcotest.(check int) "store->load delay" 1 e.Ddg.delay;
  (* and no same-iteration edge: distinct addresses *)
  Alcotest.(check bool) "no omega-0 edge" true
    (find_edge g ~src:0 ~dst:1 ~omega:0 = None)

let test_memory_same_iteration () =
  let s = setup () in
  let load, store = mem_ops s () in
  let ld = load 0 and st = store 0 in
  (* load then store, same address: anti, same iteration *)
  let g = Ddg.build (units_of [ ld; st ]) in
  let e = edge_exn g ~src:0 ~dst:1 ~omega:0 in
  Alcotest.(check int) "load->store anti delay" 0 e.Ddg.delay

let test_memory_never_alias () =
  let s = setup () in
  let load, store = mem_ops s () in
  (* stride-1 accesses at different offsets never... they alias at
     distance 3; but a backwards distance (load ahead of the store)
     means the store never feeds the load *)
  let st = store 0 and ld = load 3 in
  (* store a[i] iter i; load a[i+3]: the load of iteration j reads
     a[j+3], written by the store of iteration j+3: dependence goes
     load -> store with omega 3 *)
  let g = Ddg.build (units_of [ st; ld ]) in
  Alcotest.(check bool) "load->store anti carried" true
    (find_edge g ~src:1 ~dst:0 ~omega:3 <> None);
  Alcotest.(check bool) "no store->load flow" true
    (List.for_all
       (fun (e : Ddg.edge) -> not (e.Ddg.src = 0 && e.Ddg.dst = 1))
       g.Ddg.edges)

let test_independent_directive () =
  let s = setup () in
  (* opaque subscripts on an independent segment: no cross-iteration
     edges; on a normal segment: conservative both ways *)
  let mk_opaque independent =
    let seg =
      Memseg.Supply.fresh s.segs ~independent
        ~name:(if independent then "ind" else "dep")
        ~size:100 ()
    in
    let idx = Vreg.Supply.fresh s.sup ~name:"x" Vreg.I in
    let v = freg s "v" in
    let ld =
      Op.Supply.mk s.ops ~dst:(freg s "l")
        ~addr:{ Op.seg; base = None; idx = Some idx; off = 0; sub = None }
        Opkind.Load
    in
    let st =
      Op.Supply.mk s.ops ~srcs:[ v ]
        ~addr:{ Op.seg; base = None; idx = Some idx; off = 0; sub = None }
        Opkind.Store
    in
    Ddg.build (units_of [ ld; st ])
  in
  let g_dep = mk_opaque false in
  Alcotest.(check bool) "conservative carried edge" true
    (find_edge g_dep ~src:1 ~dst:0 ~omega:1 <> None);
  let g_ind = mk_opaque true in
  Alcotest.(check bool) "directive removes carried edges" true
    (find_edge g_ind ~src:1 ~dst:0 ~omega:1 = None);
  Alcotest.(check bool) "program order kept" true
    (find_edge g_ind ~src:0 ~dst:1 ~omega:0 = None)

let test_channel_ordering () =
  let s = setup () in
  let r1 = Op.Supply.mk s.ops ~dst:(freg s "a") (Opkind.Recv 0) in
  let r2 = Op.Supply.mk s.ops ~dst:(freg s "b") (Opkind.Recv 0) in
  let r_other = Op.Supply.mk s.ops ~dst:(freg s "c") (Opkind.Recv 1) in
  let g = Ddg.build (units_of [ r1; r2; r_other ]) in
  Alcotest.(check bool) "same channel ordered" true
    (find_edge g ~src:0 ~dst:1 ~omega:0 <> None);
  Alcotest.(check bool) "carried order back" true
    (find_edge g ~src:1 ~dst:0 ~omega:1 <> None);
  Alcotest.(check bool) "self across iterations" true
    (find_edge g ~src:0 ~dst:0 ~omega:1 <> None);
  Alcotest.(check bool) "different channels independent" true
    (List.for_all
       (fun (e : Ddg.edge) ->
         (* the self ordering across iterations remains; no cross edges *)
         e.Ddg.src = e.Ddg.dst || not (e.Ddg.src = 2 || e.Ddg.dst = 2))
       g.Ddg.edges)

let test_intra_edges_forward () =
  (* intra-iteration edges always point forward in program order (the
     property the list scheduler's reverse sweep relies on) *)
  let s = setup () in
  let load, store = mem_ops s () in
  let a = freg s "a" and b = freg s "b" in
  let ops =
    [ load 0;
      Op.Supply.mk s.ops ~dst:a ~srcs:[ b; b ] Opkind.Fadd;
      Op.Supply.mk s.ops ~dst:b ~srcs:[ a; a ] Opkind.Fmul;
      store 1 ]
  in
  let g = Ddg.build ~mve:false (units_of ops) in
  List.iter
    (fun (e : Ddg.edge) ->
      if e.Ddg.omega = 0 then
        Alcotest.(check bool) "forward" true (e.Ddg.src < e.Ddg.dst))
    g.Ddg.edges

(* ---- Graphviz export ------------------------------------------------ *)

(** Golden-file check of the dot export: the accumulator recurrence is
    clustered as [scc 0], the carried edge is dashed and labelled with
    its iteration distance, and the independent multiply stays outside
    the cluster. Regenerate [golden/dot_recurrence.golden] by pasting
    the new output when the format changes deliberately. *)
let test_dot_golden () =
  let s = setup () in
  let acc = freg s "acc" and x = freg s "x" in
  let y = freg s "y" and k = freg s "k" in
  let mul = Op.Supply.mk s.ops ~dst:y ~srcs:[ x; k ] Opkind.Fmul in
  let add = Op.Supply.mk s.ops ~dst:acc ~srcs:[ acc; y ] Opkind.Fadd in
  let g = Ddg.build (units_of [ mul; add ]) in
  let got = Sp_core.Dot.to_string ~name:"recurrence" g in
  let ic = open_in "golden/dot_recurrence.golden" in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "dot export" expected got

let suite =
  [
    ("flow delay", `Quick, test_flow_delay);
    ("anti delay", `Quick, test_anti_delay);
    ("output delay", `Quick, test_output_delay);
    ("carried accumulator", `Quick, test_carried_accumulator);
    ("mve candidate", `Quick, test_mve_candidate);
    ("live-out excluded from mve", `Quick, test_live_out_excluded);
    ("memory distance", `Quick, test_memory_distance);
    ("memory same-iteration anti", `Quick, test_memory_same_iteration);
    ("memory backward distance", `Quick, test_memory_never_alias);
    ("independent directive", `Quick, test_independent_directive);
    ("channel ordering", `Quick, test_channel_ordering);
    ("intra edges forward", `Quick, test_intra_edges_forward);
    ("dot export golden", `Quick, test_dot_golden);
  ]
