test/test_kernels.ml: Alcotest List Printf Sp_core Sp_kernels Sp_machine
