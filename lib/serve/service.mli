(** The compile service: request/response model, wire framing and the
    in-process engine the [w2cd] daemon and [bench --table serve] share.

    Wire protocol (over a Unix-domain stream socket): each message is
    one {e frame} — a 4-byte big-endian payload length followed by the
    payload bytes. Requests and responses are framed identically; a
    connection carries any number of request frames and receives
    exactly one response frame per request, {e in request order}.

    Request payloads (first line is the verb; the rest is the body):
    - [compile MACHINE[ inject=SITE@K]\n<W2 source>] — compile the
      source for MACHINE (warp, toy, serial, warpNx); the optional
      inject token arms a deterministic fault for this request only.
    - [stats] — cache statistics as JSON.
    - [ping] — liveness probe; answers [pong].

    Response payloads: [ok\n<body>] or [error\n<message>]. A compile
    body is byte-identical to offline [w2c compile FILE] stdout — the
    CI round-trip smoke compares them with [cmp]. *)

type request =
  | Compile of {
      machine : string;
      inject : (string * int) option;
      source : string;
    }
  | Stats
  | Ping

type response = Ok of string | Err of string

(** {1 Payload codec} (pure, unit-testable without sockets) *)

val render_request : request -> string
val parse_request : string -> (request, string) result
val render_response : response -> string
val parse_response : string -> response
(** A malformed response payload parses as [Err]. *)

(** {1 Frame I/O} *)

module Frame : sig
  val max_len : int
  (** Refuse frames above this (16 MiB) — a corrupt length prefix must
      not allocate unboundedly. *)

  val write : Unix.file_descr -> string -> unit
  val read : Unix.file_descr -> string option
  (** [None] on clean EOF before the first length byte; raises
      [Failure] on a truncated or oversized frame. *)
end

(** {1 The engine} *)

type t

val create : ?cache_capacity:int -> ?jobs:int -> unit -> t
(** [cache_capacity] defaults to 256 ([0] disables the schedule cache);
    [jobs] is the domain-pool width requests batch onto (default 1). *)

val close : t -> unit
(** Shut the pool down. The service must not be used afterwards. *)

val cache : t -> Cache.t option
(** The underlying schedule cache ([None] when disabled), for harnesses
    that read hit rates directly. *)

val handle : t -> request -> response

val handle_batch : t -> request list -> response list
(** Responses in request order. Requests run concurrently on the pool —
    except when any request of the batch arms a fault, in which case the
    whole batch runs sequentially on the calling domain so the armed
    site cannot leak into (or crash) a sibling request; the arm/disarm
    window is scoped to the one requesting compile. *)

val stats_json : t -> string
(** The [stats] response body. *)
