(** Resource reservation tables.

    {!Modulo} is the modulo resource reservation table of the paper's
    Section 2.1: "the resource usage of time t is mapped to that of
    time [t mod s]". {!Linear} is the unbounded table used when
    compacting straight-line code (no wrap-around). Both support
    tentative placement (check without committing).

    Representation: demand counters live in a flat slot-major int
    array ([slot * nres + rid] — one cache line covers a whole slot),
    and each resource additionally keeps a {e bitword occupancy row}
    with one bit per slot, set exactly when that (slot, resource) pair
    is at its limit. The conflict test on the scheduler's hot probe
    path is then a single load-and-mask per reservation entry instead
    of a counter/limit comparison through two levels of indirection.
    The counters remain authoritative: bits are maintained on every
    increment/decrement, so tentative probes and removals keep the
    invariant [bit set <=> count >= limit].

    A failed [fits] probe additionally records its {e conflict}: the
    first (slot, resource) pair whose limit the reservation would
    exceed, scanning the reservation in list order — deterministic, so
    the explainability layer can name the binding resource. Exactly one
    conflict is charged per failed probe (the property the qcheck suite
    checks), accumulated per resource in {!Modulo.conflicts}. *)

open Sp_machine

(* 63 usable bits per OCaml int word *)
let bits = 63
let words_for slots = (slots + bits - 1) / bits

module Modulo = struct
  type t = {
    s : int;
    nres : int;
    counts : int array; (* slot-major: [slot * nres + rid] *)
    full : int array;   (* per-resource bitword rows: [rid * words + slot/63] *)
    words : int;        (* bitwords per resource row *)
    limits : int array;
    conflicts : int array; (* failed probes charged per resource *)
    mutable last_conflict : (int * int) option; (* (slot, rid) *)
  }

  let create (m : Machine.t) ~s =
    if s <= 0 then invalid_arg "Mrt.Modulo.create: s <= 0";
    let nres = Machine.num_resources m in
    let words = words_for s in
    let limits = Array.map (fun r -> r.Machine.count) m.resources in
    let full = Array.make (nres * words) 0 in
    (* a zero-limit resource is full from the start *)
    Array.iteri
      (fun rid limit ->
        if limit <= 0 then
          for w = 0 to words - 1 do
            full.((rid * words) + w) <- -1
          done)
      limits;
    {
      s;
      nres;
      counts = Array.make (s * nres) 0;
      full;
      words;
      limits;
      conflicts = Array.make nres 0;
      last_conflict = None;
    }

  let[@inline] is_full t slot rid =
    t.full.((rid * t.words) + (slot / bits)) land (1 lsl (slot mod bits)) <> 0

  let[@inline] bump t slot rid =
    let i = (slot * t.nres) + rid in
    let v = t.counts.(i) + 1 in
    t.counts.(i) <- v;
    if v >= t.limits.(rid) then begin
      let w = (rid * t.words) + (slot / bits) in
      t.full.(w) <- t.full.(w) lor (1 lsl (slot mod bits))
    end

  let[@inline] unbump t slot rid =
    let i = (slot * t.nres) + rid in
    let v = t.counts.(i) - 1 in
    t.counts.(i) <- v;
    if v < t.limits.(rid) then begin
      let w = (rid * t.words) + (slot / bits) in
      t.full.(w) <- t.full.(w) land lnot (1 lsl (slot mod bits))
    end

  (* A reservation may use one resource several times at offsets
     congruent mod s (e.g. a reduced construct), so demand accumulates
     per (slot, resource) as the reservation is scanned; the first
     entry that pushes a pair over its limit is the conflict. The scan
     tentatively increments the live counters and undoes them before
     returning, which keeps the check O(|resv|) without a side table. *)
  let fits t ~at resv =
    Sp_obs.Cost.incr Sp_obs.Cost.Mrt_probe;
    let undo added =
      List.iter (fun (slot, rid) -> unbump t slot rid) added
    in
    let rec go added = function
      | [] ->
        undo added;
        true
      | (off, rid) :: rest ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        if not (is_full t slot rid) then begin
          bump t slot rid;
          go ((slot, rid) :: added) rest
        end
        else begin
          t.conflicts.(rid) <- t.conflicts.(rid) + 1;
          t.last_conflict <- Some (slot, rid);
          undo added;
          false
        end
    in
    go [] resv

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        bump t slot rid)
      resv

  let remove t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        unbump t slot rid)
      resv

  let conflicts t = Array.copy t.conflicts
  let last_conflict t = t.last_conflict
end

module Linear = struct
  type t = {
    mutable cap : int;          (* slots allocated *)
    mutable counts : int array; (* slot-major, grows on demand *)
    mutable full : int array;   (* per-resource bitword rows *)
    mutable words : int;        (* bitwords per resource row *)
    limits : int array;
    nres : int;
    conflicts : int array;
    mutable last_conflict : (int * int) option; (* (slot, rid) *)
  }

  let init_cap = 16

  let fill_zero_limit_bits full ~words ~limits =
    Array.iteri
      (fun rid limit ->
        if limit <= 0 then
          for w = 0 to words - 1 do
            full.((rid * words) + w) <- -1
          done)
      limits

  let create (m : Machine.t) =
    let nres = Machine.num_resources m in
    let limits = Array.map (fun r -> r.Machine.count) m.resources in
    let words = words_for init_cap in
    let full = Array.make (nres * words) 0 in
    fill_zero_limit_bits full ~words ~limits;
    {
      cap = init_cap;
      counts = Array.make (init_cap * nres) 0;
      full;
      words;
      limits;
      nres;
      conflicts = Array.make nres 0;
      last_conflict = None;
    }

  (* amortized-doubling growth: never less than twice the current
     capacity, so n placements cost O(n) total regrowth work *)
  let ensure t len =
    if len > t.cap then begin
      let cap = max len (2 * t.cap) in
      let counts = Array.make (cap * t.nres) 0 in
      Array.blit t.counts 0 counts 0 (t.cap * t.nres);
      let words = words_for cap in
      let full = Array.make (t.nres * words) 0 in
      fill_zero_limit_bits full ~words ~limits:t.limits;
      for rid = 0 to t.nres - 1 do
        Array.blit t.full (rid * t.words) full (rid * words) t.words
      done;
      t.cap <- cap;
      t.counts <- counts;
      t.full <- full;
      t.words <- words
    end

  let[@inline] is_full t slot rid =
    t.full.((rid * t.words) + (slot / bits)) land (1 lsl (slot mod bits)) <> 0

  let[@inline] bump t slot rid =
    let i = (slot * t.nres) + rid in
    let v = t.counts.(i) + 1 in
    t.counts.(i) <- v;
    if v >= t.limits.(rid) then begin
      let w = (rid * t.words) + (slot / bits) in
      t.full.(w) <- t.full.(w) lor (1 lsl (slot mod bits))
    end

  let[@inline] unbump t slot rid =
    let i = (slot * t.nres) + rid in
    let v = t.counts.(i) - 1 in
    t.counts.(i) <- v;
    if v < t.limits.(rid) then begin
      let w = (rid * t.words) + (slot / bits) in
      t.full.(w) <- t.full.(w) land lnot (1 lsl (slot mod bits))
    end

  let fits t ~at resv =
    Sp_obs.Cost.incr Sp_obs.Cost.Mrt_probe;
    let undo added =
      List.iter (fun (slot, rid) -> unbump t slot rid) added
    in
    let rec go added = function
      | [] ->
        undo added;
        true
      | (off, rid) :: rest ->
        let slot = at + off in
        if
          slot >= 0
          && (ensure t (slot + 1);
              not (is_full t slot rid))
        then begin
          bump t slot rid;
          go ((slot, rid) :: added) rest
        end
        else begin
          t.conflicts.(rid) <- t.conflicts.(rid) + 1;
          t.last_conflict <- Some (max 0 slot, rid);
          undo added;
          false
        end
    in
    go [] resv

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        ensure t (at + off + 1);
        bump t (at + off) rid)
      resv

  let conflicts t = Array.copy t.conflicts
  let last_conflict t = t.last_conflict
end
