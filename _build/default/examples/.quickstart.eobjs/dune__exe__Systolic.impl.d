examples/systolic.ml: Fmt Interp List Machine_state Printf Program Sp_core Sp_ir Sp_lang Sp_machine Sp_vliw
