test/test_compile.ml: Alcotest Builder Fmt Gen Interp List Machine_state Printf QCheck2 QCheck_alcotest Region Sp_core Sp_ir Sp_kernels Sp_lang Sp_machine Sp_vliw String
