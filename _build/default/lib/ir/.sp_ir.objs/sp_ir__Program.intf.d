lib/ir/program.mli: Format Memseg Op Region Vreg
