(** Hierarchical program regions — the block-structured constructs the
    paper's hierarchical reduction schedules from the inside out. *)

(** Trip count: a compile-time constant, or a register read once at
    loop entry (the run-time case that triggers the Section 2.4
    two-version scheme). *)
type bound = Const of int | Reg of Vreg.t

type t =
  | Ops of Op.t list        (** straight-line code *)
  | Seq of t list
  | If of { cond : Vreg.t; then_ : t; else_ : t }
      (** two-way conditional on an integer register ([<> 0] = then) *)
  | For of { iv : Vreg.t; n : bound; body : t }
      (** [for iv = 0 to n-1]; front ends normalize loops to base 0,
          step 1 *)

val iter_ops : (Op.t -> unit) -> t -> unit
val ops_count : t -> int

val innermost_loops : t -> t list
(** The [For] regions containing no other loop. *)

val contains_loop : t -> bool
val contains_if : t -> bool

val pp_bound : Format.formatter -> bound -> unit
val pp : Format.formatter -> t -> unit
