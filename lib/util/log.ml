(** Leveled diagnostic logging shared by the compiler passes and the
    driver/benchmark tools.

    Replaces the ad-hoc [SP_DEBUG] [Printf.eprintf] tracing that used
    to be sprinkled through {!Sp_core.Compile}: one switch, three
    levels — and exactly {e one sink}. Every enabled line is formatted
    to a string first and handed whole to the sink, so concurrent
    writers of the same [stderr] (tracing dumps, benchmark progress,
    the test runner) can never interleave with a log line mid-way; the
    default sink writes the line and flushes in a single call. Tests
    swap the sink with {!with_capture} instead of scraping [stderr].

    The level comes from the [SP_LOG] environment variable ([quiet],
    [info] or [debug]; [SP_DEBUG] being set at all still selects
    [debug], for compatibility with old invocations) and can be
    overridden programmatically with {!set_level}. *)

type level = Quiet | Info | Debug

let int_of_level = function Quiet -> 0 | Info -> 1 | Debug -> 2

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current =
  ref
    (match Option.bind (Sys.getenv_opt "SP_LOG") level_of_string with
    | Some l -> l
    | None -> if Sys.getenv_opt "SP_DEBUG" <> None then Debug else Quiet)

let set_level l = current := l
let level () = !current
let enabled l = int_of_level l <= int_of_level !current

(* ---- the sink ----------------------------------------------------- *)

(** The single output point: receives one complete line (no trailing
    newline). The default writes ["line\n"] to stderr in one buffered
    call and flushes. *)
let default_sink line = Printf.eprintf "%s\n%!" line

let sink = ref default_sink

let set_sink f = sink := f

(* Domain-local sink overlay. Parallel compilation tasks (see
   [Sp_util.Pool] and [Sp_core.Compile]) run with a private collector
   installed here, so their diagnostics never interleave with other
   domains' lines; the driver replays each task's lines through the
   process-wide sink afterwards, in deterministic loop order. The
   overlay also makes [set_sink] swaps safe under concurrency: worker
   domains only ever write through their own overlay. *)
let local_sink : (string -> unit) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(** Emit one complete line through the domain-local sink when one is
    installed, else through the process-wide sink. *)
let emit line =
  match !(Domain.DLS.get local_sink) with
  | Some f -> f line
  | None -> !sink line

(** [with_local_capture f] runs [f] with a domain-local collector
    overlaying the sink (on this domain only) and returns [f]'s result
    with the captured lines in emission order. Nestable and safe to
    run concurrently on several domains. *)
let with_local_capture f =
  let captured = ref [] in
  let cell = Domain.DLS.get local_sink in
  let prev = !cell in
  cell := Some (fun line -> captured := line :: !captured);
  Fun.protect
    ~finally:(fun () -> cell := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !captured))

(** Re-emit previously captured lines, in order, through the current
    sink (honoring any local overlay). *)
let replay lines = List.iter emit lines

(** [with_capture f] runs [f] with the sink replaced by an in-memory
    collector and returns [f]'s result with the captured lines in
    emission order. The previous sink is restored even when [f]
    raises. Intended for tests asserting on diagnostics. *)
let with_capture f =
  let captured = ref [] in
  let prev = !sink in
  sink := (fun line -> captured := line :: !captured);
  Fun.protect
    ~finally:(fun () -> sink := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !captured))

(** [logf level fmt ...] emits one line through the sink when [level]
    is enabled; a disabled level costs only the format dispatch. *)
let logf l fmt =
  if enabled l then Printf.ksprintf (fun s -> emit ("[sp] " ^ s)) fmt
  else Printf.ikfprintf (fun () -> ()) () fmt

let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
