(** Tests for the multi-cell array co-simulator: queue plumbing,
    blocking semantics, and the paper's no-stall claim for homogeneous
    systolic programs. *)

module C = Sp_core.Compile
module Array_sim = Sp_vliw.Array_sim

let warp = Sp_machine.Machine.warp

(* each cell adds a constant to everything passing through channel 0 *)
let passthrough_add ~n ~k =
  Sp_lang.Lower.compile_source
    (Printf.sprintf
       {|program cell;
var t : float;
begin
  for i := 0 to %d do begin
    receive(t, 0);
    send(t + %f, 0);
  end
end.|}
       (n - 1) k)

let test_pipeline_of_cells () =
  let n = 40 in
  let p = passthrough_add ~n ~k:1.5 in
  let r = C.program warp p in
  let feed = [ List.init n (fun i -> float_of_int i); [] ] in
  let res = Array_sim.run ~cells:4 ~feed warp p [| r.C.code |] in
  (* 4 cells each add 1.5 *)
  Alcotest.(check int) "all values arrive" n
    (List.length res.Array_sim.outputs.(0));
  List.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "out[%d]" i)
        (float_of_int i +. 6.0)
        v)
    res.Array_sim.outputs.(0)

let test_blocking_no_deadlock () =
  (* a tiny queue forces back-pressure; everything still flows *)
  let n = 30 in
  let p = passthrough_add ~n ~k:0.5 in
  let r = C.program warp p in
  let feed = [ List.init n (fun i -> 0.1 *. float_of_int i); [] ] in
  let res =
    Array_sim.run ~cells:3 ~queue_capacity:2 ~feed warp p [| r.C.code |]
  in
  Alcotest.(check int) "all values arrive" n
    (List.length res.Array_sim.outputs.(0));
  Alcotest.(check bool) "back-pressure produced stalls" true
    (Array.exists (fun s -> s > 0) res.Array_sim.per_cell_stalls)

let test_steady_state_no_stalls () =
  (* the paper's claim: homogeneous programs "never stall on input or
     output" except at setup — with the real 512-word queues, stalls
     per cell stay a small fraction of the cycles *)
  let n = 200 in
  let p = passthrough_add ~n ~k:1.0 in
  let r = C.program warp p in
  let feed = [ List.init n (fun i -> float_of_int i); [] ] in
  let res = Array_sim.run ~cells:10 ~feed warp p [| r.C.code |] in
  let max_stalls = Array.fold_left max 0 res.Array_sim.per_cell_stalls in
  Alcotest.(check bool)
    (Printf.sprintf "max stalls %d small vs %d cycles" max_stalls
       res.Array_sim.cycles)
    true
    (float_of_int max_stalls < 0.30 *. float_of_int res.Array_sim.cycles)

let test_heterogeneous_codes () =
  (* different programs per cell: first adds, second doubles *)
  let n = 10 in
  let adder = passthrough_add ~n ~k:3.0 in
  let r1 = C.program warp adder in
  let doubler =
    Sp_lang.Lower.compile_source
      (Printf.sprintf
         {|program cell;
var t : float;
begin
  for i := 0 to %d do begin
    receive(t, 0);
    send(t * 2.0, 0);
  end
end.|}
         (n - 1))
  in
  let r2 = C.program warp doubler in
  let feed = [ List.init n (fun i -> float_of_int i); [] ] in
  let res =
    Array_sim.run ~cells:2 ~feed warp adder [| r1.C.code; r2.C.code |]
  in
  List.iteri
    (fun i v ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "out[%d]" i)
        ((float_of_int i +. 3.0) *. 2.0)
        v)
    res.Array_sim.outputs.(0)

let test_matmul_array_rate () =
  (* the systolic matmul cell on a real 10-cell array: the rate is
     within a small factor of 10x the single-cell rate (Table 4-1's
     accounting), not degraded by stalls *)
  let k, _ = List.hd Sp_kernels.Apps.all in
  let p = Sp_kernels.Kernel.program k in
  let r = C.program warp p in
  let n = 48 * 48 in
  let feed =
    [ List.init n (fun i -> 0.5 +. (0.125 *. float_of_int (i mod 31)));
      List.init n (fun i -> 0.125 *. (0.5 +. (0.125 *. float_of_int (i mod 31)))) ]
  in
  let init _k st = Sp_kernels.Kernel.init_all_arrays ~seed:41 st p in
  let res = Array_sim.run ~cells:10 ~feed ~init warp p [| r.C.code |] in
  let array_mflops = Array_sim.mflops warp res in
  Alcotest.(check bool)
    (Printf.sprintf "array rate %.1f MFLOPS in [50, 100]" array_mflops)
    true
    (array_mflops > 50.0 && array_mflops <= 100.0)

let suite =
  [
    ("pipeline of cells", `Quick, test_pipeline_of_cells);
    ("blocking without deadlock", `Quick, test_blocking_no_deadlock);
    ("steady state barely stalls", `Slow, test_steady_state_no_stalls);
    ("heterogeneous cell programs", `Quick, test_heterogeneous_codes);
    ("matmul on a real 10-cell array", `Slow, test_matmul_array_rate);
  ]
