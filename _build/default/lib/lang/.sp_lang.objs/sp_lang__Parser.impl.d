lib/lang/parser.ml: Ast Fmt Lexer List Token
