lib/core/modsched.mli: Ddg Machine Scc Sp_machine Spath Sunit
