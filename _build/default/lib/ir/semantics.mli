(** Operational semantics of individual operations, shared between the
    sequential interpreter and the cycle-accurate simulators so the two
    agree bit-for-bit — any divergence observed in tests is a
    scheduling bug, not a semantics mismatch. *)

type value = VF of float | VI of int

val pp_value : Format.formatter -> value -> unit
val equal_value : value -> value -> bool

exception Type_error of string

val as_f : value -> float
val as_i : value -> int

val quantize8 : float -> float
(** Round to 8 mantissa bits — the model of a hardware seed table. *)

val recip_seed : float -> float
val rsqrt_seed : float -> float

(** Execution context: how to read registers and reach memory and the
    communication channels. The caller owns all timing. *)
type ctx = {
  rd : Vreg.t -> value;
  ld : Memseg.t -> int -> value;
  st : Memseg.t -> int -> value -> unit;
  recv : int -> float;
  send : int -> float -> unit;
}

val addr : ctx -> Op.addr -> int
(** Effective address: base + index + constant offset. *)

val exec : ctx -> Op.t -> value option
(** Execute one operation; the returned value goes to the destination
    register if the operation has one. *)
