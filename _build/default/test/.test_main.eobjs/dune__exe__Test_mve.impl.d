test/test_mve.ml: Alcotest Array List Memseg Op Printf Sp_core Sp_ir Sp_machine Subscript Vreg
