(** Tests for the exact modulo scheduler and the optimality certifier
    ([Sp_opt]): the exact interval is bracketed by the lower bound and
    the heuristic's interval, exact search never refutes an interval
    the heuristic scheduled, improved schedules survive the full
    compile–simulate–verify pass, and certification is deterministic
    under a fixed budget. *)

module C = Sp_core.Compile
module Ddg = Sp_core.Ddg
module Mii = Sp_core.Mii
module Listsched = Sp_core.Listsched
module Modsched = Sp_core.Modsched
module Exact = Sp_opt.Exact
module Certify = Sp_opt.Certify
module Kernel = Sp_kernels.Kernel

let m = Sp_machine.Machine.warp

(* random DDG with its heuristic scheduling context, shared by the
   properties below *)
let setup seed k =
  let units = Test_modsched.random_units seed k in
  let g = Ddg.build units in
  let pl = Listsched.compact m g in
  let seq_len = Listsched.restart_interval g pl in
  let analysis = Modsched.analyze ~s_max:seq_len g in
  let mii = (Mii.compute m units ~rec_mii:analysis.Modsched.a_rec_mii).Mii.mii in
  (units, g, analysis, mii, seq_len)

let edges_ok (g : Ddg.t) ~s times =
  List.for_all
    (fun (e : Ddg.edge) ->
      times.(e.Ddg.dst) - times.(e.Ddg.src) >= e.Ddg.delay - (s * e.Ddg.omega))
    g.Ddg.edges

let spec_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let* k = int_range 1 8 in
    return (seed, k))

(* certifier budget for the random properties: ample for DDGs of <= 10
   nodes, and any overrun shows up as Unknown, never as a wrong answer *)
let prop_fuel = 400_000

let prop_exact_between_bounds =
  QCheck2.Test.make ~name:"mii <= exact II <= heuristic II" ~count:120 spec_gen
    (fun (seed, k) ->
      let units, g, analysis, mii, seq_len = setup seed k in
      match Modsched.schedule ~analysis m g ~mii ~max_ii:seq_len with
      | None -> true
      | Some heur -> (
        let o = Certify.run ~fuel:prop_fuel ~analysis m g ~mii ~ii:heur.Modsched.s in
        match o.Certify.cert with
        | Certify.Optimal -> true (* exact II = heuristic II *)
        | Certify.Unknown { proven_below } ->
          proven_below >= mii && proven_below <= heur.Modsched.s
        | Certify.Improved sched ->
          (* strictly better, still above the lower bound, and a valid
             schedule by independent re-checking *)
          sched.Modsched.s >= mii
          && sched.Modsched.s < heur.Modsched.s
          && Array.for_all (fun t -> t >= 0) sched.Modsched.times
          && edges_ok g ~s:sched.Modsched.s sched.Modsched.times
          && Test_modsched.resources_ok units sched.Modsched.times
               ~s:sched.Modsched.s))

let prop_exact_complete =
  (* completeness: an interval the heuristic scheduled can never be
     refuted by the exact search *)
  QCheck2.Test.make ~name:"exact search never refutes a scheduled interval"
    ~count:120 spec_gen (fun (seed, k) ->
      let units, g, analysis, mii, seq_len = setup seed k in
      ignore units;
      match Modsched.schedule ~analysis m g ~mii ~max_ii:seq_len with
      | None -> true
      | Some heur -> (
        let r =
          Exact.solve ~fuel:prop_fuel m g ~scc:analysis.Modsched.a_scc
            ~spaths:analysis.Modsched.a_spaths ~s:heur.Modsched.s
        in
        match r.Exact.verdict with
        | Exact.Infeasible -> false
        | Exact.Feasible times ->
          Array.for_all (fun t -> t >= 0) times
          && edges_ok g ~s:heur.Modsched.s times
        | Exact.Out_of_budget -> true))

let prop_certify_deterministic =
  QCheck2.Test.make ~name:"certification is deterministic under a fixed budget"
    ~count:60 spec_gen (fun (seed, k) ->
      let _, g, analysis, mii, seq_len = setup seed k in
      match Modsched.schedule ~analysis m g ~mii ~max_ii:seq_len with
      | None -> true
      | Some heur ->
        let run () =
          Certify.run ~fuel:10_000 ~analysis m g ~mii ~ii:heur.Modsched.s
        in
        let a = run () and b = run () in
        a.Certify.spent = b.Certify.spent
        && a.Certify.intervals = b.Certify.intervals
        &&
        (match (a.Certify.cert, b.Certify.cert) with
        | Certify.Optimal, Certify.Optimal -> true
        | Certify.Unknown { proven_below = x }, Certify.Unknown { proven_below = y }
          -> x = y
        | Certify.Improved x, Certify.Improved y ->
          x.Modsched.s = y.Modsched.s && x.Modsched.times = y.Modsched.times
        | _ -> false))

let prop_nogood_sound =
  (* soundness of the learner: any assignment covered by a learned
     primitive nogood must be infeasible when replayed against the raw
     constraints — pin the nogood's literals, disable learning, and
     search the rest of the space *)
  QCheck2.Test.make ~name:"learned nogoods replay as infeasible pins" ~count:80
    spec_gen (fun (seed, k) ->
      let _, g, analysis, mii, seq_len = setup seed k in
      ignore seq_len;
      let scc = analysis.Modsched.a_scc
      and spaths = analysis.Modsched.a_spaths in
      let s = max 1 (max mii analysis.Modsched.a_rec_mii) in
      let bank = Sp_opt.Nogood.create () in
      let (_ : Exact.result) =
        Exact.solve ~fuel:prop_fuel ~bank m g ~scc ~spaths ~s
      in
      let rec take n = function
        | x :: rest when n > 0 -> x :: take (n - 1) rest
        | _ -> []
      in
      List.for_all
        (fun (ng : Sp_opt.Nogood.nogood) ->
          match ng.Sp_opt.Nogood.cert with
          | Sp_opt.Nogood.C_derived ->
            true (* anchor-dependent; not replayable under a pin *)
          | _ -> (
            let pin =
              Array.to_list
                (Array.map
                   (fun (l : Sp_opt.Nogood.lit) ->
                     (l.Sp_opt.Nogood.var, l.Sp_opt.Nogood.res))
                   ng.Sp_opt.Nogood.lits)
            in
            let r =
              Exact.solve ~fuel:prop_fuel
                ~config:{ Exact.default_config with Exact.learn = false }
                ~pin m g ~scc ~spaths ~s
            in
            match r.Exact.verdict with
            | Exact.Feasible _ -> false
            | Exact.Infeasible | Exact.Out_of_budget -> true))
        (take 20 (Sp_opt.Nogood.entries bank)))

let prop_portfolio_deterministic =
  (* the proof portfolio is determinized: with ample fuel, K members
     commit exactly what the single default member produces *)
  QCheck2.Test.make ~name:"portfolio 4 outcome equals portfolio 1" ~count:40
    spec_gen (fun (seed, k) ->
      let _, g, analysis, mii, seq_len = setup seed k in
      match Modsched.schedule ~analysis m g ~mii ~max_ii:seq_len with
      | None -> true
      | Some heur ->
        let run p =
          Certify.run ~fuel:prop_fuel ~analysis ~portfolio:p m g ~mii
            ~ii:heur.Modsched.s
        in
        let a = run 1 and b = run 4 in
        (match (a.Certify.cert, b.Certify.cert) with
        | Certify.Unknown _, _ | _, Certify.Unknown _ ->
          true (* budget ran out somewhere; equivalence is about proofs *)
        | Certify.Optimal, Certify.Optimal -> true
        | Certify.Improved x, Certify.Improved y ->
          x.Modsched.s = y.Modsched.s && x.Modsched.times = y.Modsched.times
        | _ -> false)
        && a.Certify.intervals = b.Certify.intervals)

let prop_carry_invariant =
  (* carrying a learned bank across the II scan must never change a
     verdict: nogoods only prune assignments that are infeasible, so
     the scan's outcome — including the schedule found — equals a
     fresh chronological solve per interval *)
  QCheck2.Test.make ~name:"carried bank never changes a verdict" ~count:60
    spec_gen (fun (seed, k) ->
      let _, g, analysis, mii, seq_len = setup seed k in
      match Modsched.schedule ~analysis m g ~mii ~max_ii:seq_len with
      | None -> true
      | Some heur -> (
        let scc = analysis.Modsched.a_scc
        and spaths = analysis.Modsched.a_spaths in
        let o =
          Certify.run ~fuel:prop_fuel ~analysis ~learn:true m g ~mii
            ~ii:heur.Modsched.s
        in
        let lo = max 1 (max mii analysis.Modsched.a_rec_mii) in
        let rec scan s =
          if s >= heur.Modsched.s then `Optimal
          else
            let r =
              Exact.solve ~fuel:prop_fuel
                ~config:{ Exact.default_config with Exact.learn = false }
                m g ~scc ~spaths ~s
            in
            match r.Exact.verdict with
            | Exact.Feasible times -> `Feasible (s, times)
            | Exact.Infeasible -> scan (s + 1)
            | Exact.Out_of_budget -> `Budget
        in
        match (o.Certify.cert, scan lo) with
        | _, `Budget | Certify.Unknown _, _ -> true
        | Certify.Optimal, `Optimal -> true
        | Certify.Improved sched, `Feasible (s, times) ->
          sched.Modsched.s = s && sched.Modsched.times = times
        | _ -> false))

let prop_certified_compile_equivalent =
  (* the central property, with the certifier in the loop: improved
     schedules flow through MVE and emission and must still compute
     exactly what the sequential interpreter computes *)
  QCheck2.Test.make ~name:"certified compilation preserves semantics" ~count:60
    Gen.spec_gen (fun sp ->
      let config =
        { C.default with C.certifier = Some (Certify.hook ~fuel:prop_fuel ()) }
      in
      match Gen.check_equivalence ~config m sp with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_reportf "%a: %s" Gen.pp_spec sp e)

(* ---- deterministic cases -------------------------------------------- *)

let cert_of_config config k =
  let meas = Kernel.run ~config m k in
  List.filter_map (fun (lr : C.loop_report) -> lr.C.cert) meas.Kernel.loops

let test_optimal_at_bound () =
  (* a loop the heuristic schedules at mii: the scan range is empty and
     the certificate is free *)
  let config = { C.default with C.certifier = Some (Certify.hook ()) } in
  let k =
    Kernel.mk "saxpy" ~init:(Kernel.init_all_arrays ~seed:1)
      (Kernel.W2
         {|program s;
var x, y : array [0..127] of float; k : int;
begin for k := 0 to 127 do y[k] := 2.5 * x[k] + y[k]; end.|})
  in
  match cert_of_config config k with
  | [ C.Cert_optimal { spent } ] ->
    Alcotest.(check int) "empty scan costs nothing" 0 spent
  | _ -> Alcotest.fail "expected a single optimal certificate"

let test_improves_lfk16 () =
  (* LFK16's heuristic interval is above the optimum; the exact
     certifier closes the gap and the improved kernel still simulates
     correctly *)
  let config = { C.default with C.certifier = Some (Certify.hook ()) } in
  let meas = Kernel.run ~config m Sp_kernels.Livermore.k16_monte_carlo in
  Alcotest.(check bool) "semantics preserved" true meas.Kernel.sem_ok;
  Alcotest.(check bool) "resources clean" true meas.Kernel.resource_ok;
  match
    List.filter_map (fun (lr : C.loop_report) -> lr.C.cert) meas.Kernel.loops
  with
  | [ C.Cert_improved { heur_ii; _ } ] ->
    let ii =
      List.find_map (fun (lr : C.loop_report) -> lr.C.ii) meas.Kernel.loops
    in
    Alcotest.(check bool) "adopted interval below heuristic" true
      (match ii with Some s -> s < heur_ii | None -> false)
  | _ -> Alcotest.fail "expected LFK16 to improve"

let test_unknown_under_tiny_fuel () =
  (* same kernel, starved certifier: the outcome degrades to Unknown
     with the infeasibility frontier recorded, never to an error *)
  let config = { C.default with C.certifier = Some (Certify.hook ~fuel:3 ()) } in
  match cert_of_config config Sp_kernels.Livermore.k16_monte_carlo with
  | [ C.Cert_unknown { proven_below; spent } ] ->
    Alcotest.(check bool) "frontier within scan range" true (proven_below >= 1);
    Alcotest.(check bool) "spent bounded by budget" true (spent <= 3)
  | _ -> Alcotest.fail "expected an unknown certificate under tiny fuel"

let test_infeasible_below_mii () =
  (* resource-bound case: three loads through one port cannot fit in
     s = 2, and the exact search proves it *)
  let open Sp_ir in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh segs ~name:"a" ~size:64 () in
  let iv = Vreg.Supply.fresh sup ~name:"i" Vreg.I in
  let mk off =
    Op.Supply.mk ops
      ~dst:(Vreg.Supply.fresh sup Vreg.F)
      ~addr:
        { Op.seg; base = None; idx = Some iv; off;
          sub = Some (Subscript.of_iv ~off iv) }
      Sp_machine.Opkind.Load
  in
  let units =
    Array.of_list
      (List.mapi
         (fun i op -> Sp_core.Sunit.of_op m ~sid:i op)
         [ mk 0; mk 1; mk 2 ])
  in
  let g = Ddg.build units in
  let analysis = Modsched.analyze ~s_max:10 g in
  let r =
    Exact.solve m g ~scc:analysis.Modsched.a_scc
      ~spaths:analysis.Modsched.a_spaths ~s:2
  in
  match r.Exact.verdict with
  | Exact.Infeasible -> ()
  | Exact.Feasible _ -> Alcotest.fail "three loads cannot share two slots"
  | Exact.Out_of_budget -> Alcotest.fail "unlimited fuel cannot run out"

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    qt prop_exact_between_bounds;
    qt prop_exact_complete;
    qt prop_certify_deterministic;
    qt prop_nogood_sound;
    qt prop_portfolio_deterministic;
    qt prop_carry_invariant;
    qt prop_certified_compile_equivalent;
    ("optimal certificate at the bound", `Quick, test_optimal_at_bound);
    ("LFK16 improves and stays correct", `Quick, test_improves_lfk16);
    ("unknown under tiny fuel", `Quick, test_unknown_under_tiny_fuel);
    ("exact infeasibility below mii", `Quick, test_infeasible_below_mii);
  ]
