let () =
  let file = Sys.argv.(1) in
  let src = In_channel.with_open_text file In_channel.input_all in
  let p = Sp_lang.Lower.compile_source src in
  let m = Sp_machine.Machine.warp in
  let r = Sp_core.Compile.program m p in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  let sim = Sp_vliw.Sim.run ~init m p r.Sp_core.Compile.code in
  let o = Sp_ir.Interp.run ~init p in
  let ist = o.Sp_ir.Interp.state and sst = sim.Sp_vliw.Sim.state in
  List.iter
    (fun (seg : Sp_ir.Memseg.t) ->
      match seg.Sp_ir.Memseg.elt with
      | Sp_ir.Memseg.Float_elt ->
        let a = Sp_ir.Machine_state.get_farray ist seg in
        let b = Sp_ir.Machine_state.get_farray sst seg in
        Array.iteri
          (fun i x ->
            if x <> b.(i) && not (Float.is_nan x && Float.is_nan b.(i)) then
              Printf.printf "%s[%d]: interp=%h sim=%h\n" seg.Sp_ir.Memseg.sname i x b.(i))
          a
      | _ ->
        let a = Sp_ir.Machine_state.get_iarray ist seg in
        let b = Sp_ir.Machine_state.get_iarray sst seg in
        Array.iteri
          (fun i x ->
            if x <> b.(i) then
              Printf.printf "%s[%d]: interp=%d sim=%d\n" seg.Sp_ir.Memseg.sname i x b.(i))
          a)
    p.Sp_ir.Program.segs
