lib/ir/vreg.mli: Format Map Set
