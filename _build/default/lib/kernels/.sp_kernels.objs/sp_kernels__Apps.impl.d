lib/kernels/apps.ml: Float Kernel List Printf Sp_ir
