lib/vliw/sim.ml: Array Hashtbl Inst List Machine_state Memseg Op Option Printf Prog Program Semantics Sp_ir Sp_machine Vreg
