lib/core/emit.ml: Array List Listsched Machine Modsched Mve Op Sp_ir Sp_machine Sp_vliw Sunit Vreg
