lib/core/mve.ml: Array Ddg Hashtbl List Machine Modsched Option Printf Sp_ir Sp_machine Sp_util Sunit Sys Vreg
