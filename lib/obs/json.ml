(** Minimal JSON values: deterministic serializer, strict parser. See
    the interface for the determinism contract. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---- serialization ------------------------------------------------ *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* a float must round-trip and must not be mistaken for an int *)
let float_repr x =
  if not (Float.is_finite x) then
    invalid_arg "Json: non-finite float has no JSON representation";
  let s = Printf.sprintf "%.12g" x in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let to_buffer ?(pretty = false) buf (v : t) =
  let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_repr x)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List l ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i e ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) e)
        l;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, e) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) e)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v

let to_string ?pretty v =
  let buf = Buffer.create 256 in
  to_buffer ?pretty buf v;
  Buffer.contents buf

let to_channel ?pretty oc v =
  output_string oc (to_string ?pretty v);
  output_char oc '\n'

(* ---- parsing ------------------------------------------------------ *)

exception Parse_error of string

let of_string (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        (* 1-based line/column of the failure offset, so errors in
           hand-edited baselines point at the offending line *)
        let stop = min !pos n in
        let line = ref 1 and bol = ref 0 in
        for i = 0 to stop - 1 do
          if s.[i] = '\n' then begin
            incr line;
            bol := i + 1
          end
        done;
        raise
          (Parse_error
             (Printf.sprintf "line %d, column %d: %s" !line
                (stop - !bol + 1) m)))
      fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, found %C" c c'
    | None -> fail "expected %C, found end of input" c
  in
  let literal word (v : t) =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal (wanted %s)" word
  in
  let utf8_of_code buf u =
    (* BMP only: \uXXXX escapes; surrogate pairs are combined *)
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          let u = hex4 () in
          let u =
            (* high surrogate must be followed by \uDC00-\uDFFF *)
            if u >= 0xD800 && u <= 0xDBFF then begin
              expect '\\';
              expect 'u';
              let lo = hex4 () in
              if lo < 0xDC00 || lo > 0xDFFF then fail "lone high surrogate";
              0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
            end
            else u
          in
          utf8_of_code buf u
        | Some c -> fail "bad escape \\%C" c
        | None -> fail "truncated escape");
        go ()
      | Some c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let d = ref 0 in
      while (match peek () with Some ('0' .. '9') -> true | _ -> false) do
        advance ();
        incr d
      done;
      if !d = 0 then fail "malformed number"
    in
    digits ();
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let elems = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          elems := parse_value () :: !elems;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !elems)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail "unexpected %C" c
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---- accessors ---------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path keys v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) keys
