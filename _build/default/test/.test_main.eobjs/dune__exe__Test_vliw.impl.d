test/test_vliw.ml: Alcotest Array Builder List Machine_state Memseg Op Program Sp_ir Sp_machine Sp_vliw Vreg
