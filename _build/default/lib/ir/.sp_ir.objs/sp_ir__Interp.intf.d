lib/ir/interp.mli: Machine_state Program
