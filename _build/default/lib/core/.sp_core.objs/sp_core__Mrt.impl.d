lib/core/mrt.ml: Array Hashtbl List Machine Option Sp_machine
