(** Delta-debugging minimizer for failing W2 programs: greedy one-point
    shrinking rewrites (drop statements at any depth, inline
    conditional arms, halve constant trip counts, promote operands
    over compound expressions, drop unused declarations) accepted iff
    the failure predicate still holds and the lexicographic measure
    (node count, integer-literal weight) strictly decreases; iterated
    to fixpoint under an evaluation budget. Deterministic: fixed
    candidate order, first improvement restarts the scan. *)

val measure : Sp_lang.Ast.program -> int * int
(** (AST node count, sum of integer-literal magnitudes) — strictly
    decreasing along accepted rewrites. *)

val candidates : Sp_lang.Ast.program -> Sp_lang.Ast.program list
(** All one-point shrinks, in the fixed scan order. Every candidate
    measures strictly smaller than the input or is filtered out by the
    caller's measure check. *)

type stats = { evals : int; rounds : int }

val minimize :
  ?budget:int ->
  predicate:(Sp_lang.Ast.program -> bool) ->
  Sp_lang.Ast.program ->
  Sp_lang.Ast.program * stats
(** [minimize ~predicate p] with [predicate c] = "c still fails the
    same way". Returns [p] itself when nothing smaller reproduces.
    [budget] (default 400) caps predicate evaluations. *)
