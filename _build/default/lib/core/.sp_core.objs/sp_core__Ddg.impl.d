lib/core/ddg.ml: Array Fmt Hashtbl List Memseg Op Option Sp_ir Sp_machine Subscript Sunit Vreg
