(** List scheduling of acyclic code (basic-block compaction, Fisher
    1979): the scheduler used for conditional branches, straight-line
    code, the unpipelined loop bodies, and the "local compaction only"
    baseline of the paper's Figure 4-2. *)

type placement = {
  times : int array;  (** issue time per unit *)
  len : int;          (** schedule length in instructions *)
}

val heights : Ddg.t -> int array
(** Critical-path priority over intra-iteration edges. *)

val compact : Sp_machine.Machine.t -> Ddg.t -> placement
(** Schedule every unit at the earliest slot satisfying the
    intra-iteration precedence constraints and the resource limits,
    highest critical path first. *)

val restart_interval : Ddg.t -> placement -> int
(** The interval at which the compacted body may be re-entered
    sequentially: covers the schedule length and every loop-carried
    dependence. This "length of a locally compacted iteration" is the
    paper's upper bound for the initiation-interval search and the
    baseline for its speed-up figures. *)
