(** Parametric VLIW machine descriptions: resources, per-operation
    latencies and reservations, register-file capacities, clock rate.
    The same scheduler drives the Warp-like cell of the paper, the toy
    machine of its Section 2 example, and scaled datapaths for the
    Section 6 experiment. *)

type resource = {
  rid : int;          (** dense index, [0 .. num_resources-1] *)
  rname : string;
  count : int;        (** available units per instruction *)
}

type reservation = (int * int) list
(** Resource units an operation occupies: [(cycle offset, resource id)]
    pairs. All machines in this repository reserve at offset 0 only
    (fully pipelined units). *)

type opinfo = {
  latency : int;   (** result readable [latency] cycles after issue *)
  reservation : reservation;
}

type t = {
  name : string;
  resources : resource array;
  info : Opkind.t -> opinfo;
  clock_mhz : float;
  fregs : int;  (** FP register-file capacity *)
  iregs : int;  (** integer register-file capacity *)
}

val num_resources : t -> int
val resource : t -> int -> resource

val find_resource : t -> string -> resource
(** Raises [Invalid_argument] for an unknown name. *)

val latency : t -> Opkind.t -> int
val reservation : t -> Opkind.t -> reservation
val cycle_time : t -> float

val mflops : t -> flops:int -> cycles:int -> float
(** Achieved MFLOPS for a measured run; 0 when [cycles = 0]. *)

(** {1 Building descriptions} *)

type builder

val builder : unit -> builder
val add_resource : builder -> name:string -> count:int -> resource
val def_op : builder -> Opkind.t -> latency:int -> reservation:reservation -> unit
val def_default : builder -> (Opkind.t -> opinfo) -> unit

val seal :
  builder -> name:string -> clock_mhz:float -> fregs:int -> iregs:int -> t

(** {1 Stock machines} *)

val warp : t
(** The Warp-like cell: 7-cycle FP add/mul (5 pipeline stages + 2-cycle
    register-file delay), integer ALU, dedicated address unit,
    single-ported memory, two I/O queue pairs, one sequencer; 5 MHz,
    10 MFLOPS peak; 62 FP / 64 integer registers. *)

val warp_scaled : width:int -> t
(** [width] replicates adders, multipliers, ALUs, memory ports, address
    units and register files (the sequencer stays single) — the
    Section 6 scalability experiment. *)

val toy : t
(** The datapath of the paper's Section 2 worked example: independent
    memory-read, add and memory-write units; 1-cycle loads, 2-cycle
    adds. [a(i) := a(i) + K] pipelines at an initiation interval of 1. *)

val serial : t
(** One universal issue slot, unit latencies: any legal schedule is a
    permutation of the operations. For baseline sanity checks. *)
