lib/core/modsched.ml: Array Ddg Hashtbl List Machine Mrt Scc Sp_machine Sp_util Spath Sunit
