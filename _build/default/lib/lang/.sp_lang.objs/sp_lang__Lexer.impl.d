lib/lang/lexer.ml: List Option Printf String Token
