(** Imperative construction of IR programs.

    The builder keeps a stack of open regions; operations are appended
    to the innermost one. Loops and conditionals are built with
    higher-order functions:

    {[
      let b = Builder.create "saxpy" in
      let x = Builder.farray b "x" 128 in
      let y = Builder.farray b "y" 128 in
      let a = Builder.fconst b 3.0 in
      Builder.for_ b (Const 128) (fun i ->
          let xi = Builder.load_iv b x i 0 in
          let yi = Builder.load_iv b y i 0 in
          let t = Builder.fmul b a xi in
          let s = Builder.fadd b t yi in
          Builder.store_iv b y i 0 s);
      let prog = Builder.finish b
    ]} *)

module Opkind = Sp_machine.Opkind

type item = I_op of Op.t | I_region of Region.t

type frame = { mutable items : item list (* reversed *) }

type t = {
  name : string;
  vregs : Vreg.Supply.supply;
  ops : Op.Supply.supply;
  segsupply : Memseg.Supply.supply;
  mutable segs : Memseg.t list; (* reversed *)
  mutable stack : frame list;   (* innermost first *)
}

let create name =
  {
    name;
    vregs = Vreg.Supply.create ();
    ops = Op.Supply.create ();
    segsupply = Memseg.Supply.create ();
    segs = [];
    stack = [ { items = [] } ];
  }

let top b =
  match b.stack with
  | f :: _ -> f
  | [] -> invalid_arg "Builder: empty region stack"

let push_item b it =
  let f = top b in
  f.items <- it :: f.items

let close_frame (f : frame) : Region.t =
  (* collapse runs of consecutive ops into single Ops regions *)
  let items = List.rev f.items in
  let flush run acc =
    match run with [] -> acc | _ -> Region.Ops (List.rev run) :: acc
  in
  let rec go items run acc =
    match items with
    | [] -> List.rev (flush run acc)
    | I_op op :: rest -> go rest (op :: run) acc
    | I_region r :: rest -> go rest [] (r :: flush run acc)
  in
  match go items [] [] with
  | [ r ] -> r
  | rs -> Region.Seq rs

(* ---- registers and segments -------------------------------------- *)

let fresh_f ?(name = "") b = Vreg.Supply.fresh b.vregs ~name Vreg.F
let fresh_i ?(name = "") b = Vreg.Supply.fresh b.vregs ~name Vreg.I

let seg b ?(independent = false) ?(elt = Memseg.Float_elt) ~name ~size () =
  let s = Memseg.Supply.fresh b.segsupply ~independent ~elt ~name ~size () in
  b.segs <- s :: b.segs;
  s

let farray ?independent b name size =
  seg b ?independent ~elt:Memseg.Float_elt ~name ~size ()

let iarray ?independent b name size =
  seg b ?independent ~elt:Memseg.Int_elt ~name ~size ()

(* ---- raw op emission ---------------------------------------------- *)

let emit b ?dst ?(srcs = []) ?imm ?addr kind =
  let op = Op.Supply.mk b.ops ?dst ~srcs ?imm ?addr kind in
  push_item b (I_op op);
  op

let emit_d b ?(srcs = []) ?imm ?addr ~cls kind =
  let dst = Vreg.Supply.fresh b.vregs ~name:"" cls in
  ignore (emit b ~dst ~srcs ?imm ?addr kind);
  dst

(* ---- constants, moves, arithmetic --------------------------------- *)

let fconst b x = emit_d b ~cls:Vreg.F ~imm:(Op.Fimm x) Opkind.Fconst
let iconst b n = emit_d b ~cls:Vreg.I ~imm:(Op.Iimm n) Opkind.Iconst
let fmov b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Fmov
let imov b x = emit_d b ~cls:Vreg.I ~srcs:[ x ] Opkind.Imov

let fbin b kind x y = emit_d b ~cls:Vreg.F ~srcs:[ x; y ] kind
let ibin b kind x y = emit_d b ~cls:Vreg.I ~srcs:[ x; y ] kind

let fadd b x y = fbin b Opkind.Fadd x y
let fsub b x y = fbin b Opkind.Fsub x y
let fmul b x y = fbin b Opkind.Fmul x y
let fmin b x y = fbin b Opkind.Fmin x y
let fmax b x y = fbin b Opkind.Fmax x y
let fneg b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Fneg
let fabs b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Fabs
let frecs b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Frecs
let frsqs b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Frsqs

let iadd b x y = ibin b Opkind.Iadd x y
let isub b x y = ibin b Opkind.Isub x y
let imul b x y = ibin b Opkind.Imul x y

let iaddk b x k =
  let kreg = iconst b k in
  iadd b x kreg

let fcmp b rel x y = emit_d b ~cls:Vreg.I ~srcs:[ x; y ] (Opkind.Fcmp rel)
let icmp b rel x y = emit_d b ~cls:Vreg.I ~srcs:[ x; y ] (Opkind.Icmp rel)

let fsel b c x y = emit_d b ~cls:Vreg.F ~srcs:[ c; x; y ] Opkind.Fsel
let isel b c x y = emit_d b ~cls:Vreg.I ~srcs:[ c; x; y ] Opkind.Isel
let itof b x = emit_d b ~cls:Vreg.F ~srcs:[ x ] Opkind.Itof
let ftoi b x = emit_d b ~cls:Vreg.I ~srcs:[ x ] Opkind.Ftoi

(* ---- memory -------------------------------------------------------- *)

let elt_cls (seg : Memseg.t) =
  match seg.elt with Memseg.Float_elt -> Vreg.F | Memseg.Int_elt -> Vreg.I

let load b ?base ?idx ?(off = 0) ?sub seg =
  emit_d b ~cls:(elt_cls seg)
    ~addr:{ Op.seg; base; idx; off; sub }
    Opkind.Load

let store b ?base ?idx ?(off = 0) ?sub seg v =
  ignore
    (emit b ~srcs:[ v ] ~addr:{ Op.seg; base; idx; off; sub } Opkind.Store)

(** [load_iv b seg iv off] — load [seg\[iv + off\]] with an exact
    subscript descriptor (the common affine access). *)
let load_iv b seg iv off =
  load b ~idx:iv ~off ~sub:(Subscript.of_iv ~off iv) seg

let store_iv b seg iv off v =
  store b ~idx:iv ~off ~sub:(Subscript.of_iv ~off iv) seg v

(** Load at a loop-invariant register subscript [base + off]. *)
let load_sym b seg base off =
  load b ~base ~off
    ~sub:(Subscript.add_sym (Subscript.constant off) base)
    seg

let store_sym b seg base off v =
  store b ~base ~off
    ~sub:(Subscript.add_sym (Subscript.constant off) base)
    seg v

(** Load at [base + iv + off] where [base] is loop-invariant (the
    manually hoisted row-major 2-D access pattern). *)
let load_sym_iv b seg base iv off =
  load b ~base ~idx:iv ~off
    ~sub:(Subscript.add_sym (Subscript.of_iv ~off iv) base)
    seg

let store_sym_iv b seg base iv off v =
  store b ~base ~idx:iv ~off
    ~sub:(Subscript.add_sym (Subscript.of_iv ~off iv) base)
    seg v

(* ---- channels ------------------------------------------------------ *)

let recv b ch = emit_d b ~cls:Vreg.F (Opkind.Recv ch)
let send b ch v = ignore (emit b ~srcs:[ v ] (Opkind.Send ch))

(* ---- control constructs -------------------------------------------- *)

let in_frame b f =
  b.stack <- { items = [] } :: b.stack;
  f ();
  match b.stack with
  | fr :: rest ->
    b.stack <- rest;
    close_frame fr
  | [] -> assert false

let if_ b cond ~then_ ~else_ =
  let t = in_frame b then_ in
  let e = in_frame b else_ in
  push_item b (I_region (Region.If { cond; then_ = t; else_ = e }))

(** Counted loop. The body receives a {e per-iteration copy} of the
    induction variable, written at the top of every iteration by an
    address-unit move. The copy is redefined before use each iteration,
    so it qualifies for modulo variable expansion; the loop counter
    itself stays a plain carried register updated once per iteration
    (the paper's Warp keeps addressing on dedicated address-generation
    hardware for the same reason — otherwise every address would hang
    off the single live counter register and serialize the pipeline). *)
let for_ b ?(name = "i") n body =
  let iv = Vreg.Supply.fresh b.vregs ~name Vreg.I in
  let r =
    in_frame b (fun () ->
        let i_loc =
          emit_d b ~cls:Vreg.I ~srcs:[ iv ] Opkind.Amov
        in
        body i_loc)
  in
  push_item b (I_region (Region.For { iv; n; body = r }))

(** A loop whose trip count lives in a register (unknown at compile
    time). *)
let for_reg b ?name nreg body = for_ b ?name (Region.Reg nreg) body

let finish b : Program.t =
  match b.stack with
  | [ f ] ->
    {
      Program.name = b.name;
      segs = List.rev b.segs;
      body = close_frame f;
      vregs = b.vregs;
      ops = b.ops;
    }
  | _ -> invalid_arg "Builder.finish: unclosed region"
