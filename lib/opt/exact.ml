(** Exact modulo schedulability at a fixed initiation interval.

    The heuristic scheduler ({!Sp_core.Modsched}) can fail at an
    interval that is in fact schedulable; this module decides
    schedulability {e exactly}, with no external solver, by searching a
    finite constraint space that is provably equivalent to the infinite
    one over issue times.

    {2 The encoding}

    Write an issue time as [t(v) = s*k(v) + r(v)] with residue
    [r(v) = t(v) mod s]. The three constraint families of the paper's
    formulation then split cleanly:

    - {e modulo resources} (Section 2.1): the reservation of [v]
      occupies slot [(r(v) + off) mod s] — it depends on the residues
      only;
    - {e wrap windows}: a reduced construct carrying [no_wrap] must sit
      strictly inside one s-window, i.e. [r(v) + len(v) <= s - 1] —
      residues only;
    - {e dependences}: an edge [(u, v, d, w)] requires
      [t(v) - t(u) >= d - s*w], which given residues is equivalent to
      the integer difference constraint
      [k(v) - k(u) >= ceil((d + r(u) - r(v)) / s) - w].

    Difference constraints are satisfiable iff their constraint graph
    has no positive-weight cycle — and every cycle of the dependence
    graph lives inside one strongly connected component. So: a modulo
    schedule at interval [s] exists iff some residue assignment
    [r : nodes -> \[0, s)] satisfies resources and wrap windows and
    leaves every component's [k]-graph free of positive cycles. The
    residue space is finite ([s^n]); the search below enumerates it
    with pruning, so an exhausted search is a {e proof} of
    infeasibility at [s].

    {2 The search}

    Depth-first branch and bound in dominance order (components
    topologically, members in program order — the heuristic's own
    traversal, and deterministic):

    - {e residue domains} are cut by the [no_wrap] cap up front;
    - {e longest-path windows}: for two nodes of one component the
      symbolic closure ({!Sp_core.Spath}) bounds [t(v) - t(u)] into
      [\[L(u,v), -L(v,u)\]]; when that window is narrower than [s] it
      admits exactly one residue difference class, so a candidate
      residue is checked in O(1) against every placed peer;
    - {e resource pruning}: candidates are probed against the shared
      modulo reservation table ({!Sp_core.Mrt.Modulo}), with tentative
      add/remove on backtrack;
    - {e cycle check}: when a component's last member is placed, a
      Bellman–Ford longest-path pass over its internal edges decides
      the [k]-graph exactly;
    - {e rotation anchor}: when no unit carries [no_wrap], rotating all
      residues by a constant is a solution symmetry, so the first
      node's residue is pinned to 0.

    Every candidate probe and every relaxation edge spends one unit of
    fuel; exhaustion aborts with {!Out_of_budget} — the same bounded-
    work discipline as the heuristic's [Fuel_exhausted]. *)

module Ddg = Sp_core.Ddg
module Scc = Sp_core.Scc
module Spath = Sp_core.Spath
module Mrt = Sp_core.Mrt
module Sunit = Sp_core.Sunit
module Machine = Sp_machine.Machine
module Intmath = Sp_util.Intmath

exception Out_of_fuel

let m_solves = Sp_obs.Metrics.counter "exact.solves"
let m_nodes = Sp_obs.Metrics.counter "exact.nodes_expanded"
let m_pruned = Sp_obs.Metrics.counter "exact.pruned"
let m_cycle_checks = Sp_obs.Metrics.counter "exact.cycle_checks"
let m_fuel = Sp_obs.Metrics.counter "exact.fuel_spent"
let m_exhausted = Sp_obs.Metrics.counter "exact.fuel_exhausted"

type meter = { mutable left : int }

let spend meter n =
  meter.left <- meter.left - n;
  if meter.left < 0 then raise Out_of_fuel

type verdict =
  | Feasible of int array
      (** least non-negative issue times of a valid schedule at [s] *)
  | Infeasible
      (** proof: the whole residue space was covered by the search *)
  | Out_of_budget

type result = {
  verdict : verdict;
  spent : int;  (** fuel units consumed *)
}

(* [k]-graph weight of an edge under the current residues. *)
let kweight ~s ~(res : int array) (e : Ddg.edge) =
  Intmath.ceil_div (e.Ddg.delay + res.(e.Ddg.src) - res.(e.Ddg.dst)) s
  - e.Ddg.omega

let solve ?fuel (m : Machine.t) (g : Ddg.t) ~(scc : Scc.t)
    ~(spaths : Spath.t option array) ~s : result =
  if s <= 0 then invalid_arg "Sp_opt.Exact.solve: s <= 0";
  Sp_obs.Metrics.incr m_solves;
  let units = g.Ddg.units in
  let n = Array.length units in
  let budget = Option.value ~default:max_int fuel in
  let meter = { left = budget } in
  (* residue cap: a no_wrap unit must not touch the window boundary
     (see Modsched.wrap_ok) *)
  let cap =
    Array.map
      (fun (u : Sunit.t) ->
        if u.Sunit.no_wrap then s - 1 - u.Sunit.len else s - 1)
      units
  in
  (* a self-dependence constrains no residue: ceil(d/s) - w <= 0 must
     hold outright or no assignment helps *)
  let self_ok =
    List.for_all
      (fun (e : Ddg.edge) ->
        e.Ddg.src <> e.Ddg.dst
        || Intmath.ceil_div e.Ddg.delay s - e.Ddg.omega <= 0)
      g.Ddg.edges
  in
  if (not self_ok) || Array.exists (fun c -> c < 0) cap then
    { verdict = Infeasible; spent = 0 }
  else begin
    let nc = Scc.num_components scc in
    (* dominance order: condensation topologically, members in program
       order *)
    let order =
      Array.of_list
        (List.concat_map (fun c -> scc.Scc.comps.(c)) (Scc.topo_components scc))
    in
    (* does position [p] place the last member of its component? *)
    let closes =
      Array.mapi
        (fun p v ->
          p = n - 1 || scc.Scc.comp_of.(order.(p + 1)) <> scc.Scc.comp_of.(v))
        order
    in
    let local_of = Array.make n 0 in
    Array.iter
      (fun members -> List.iteri (fun k v -> local_of.(v) <- k) members)
      scc.Scc.comps;
    (* per node: the component closure and the peers it constrains *)
    let comp_sp = Array.make n None in
    let peers = Array.make n [] in
    Array.iteri
      (fun c members ->
        match spaths.(c) with
        | None -> ()
        | Some sp ->
          let idx = List.mapi (fun k v -> (v, k)) members in
          List.iter
            (fun (v, k) ->
              comp_sp.(v) <- Some (sp, k);
              peers.(v) <- List.filter (fun (w, _) -> w <> v) idx)
            idx)
      scc.Scc.comps;
    let intra = Array.make nc [] in
    List.iter
      (fun (e : Ddg.edge) ->
        let c = scc.Scc.comp_of.(e.Ddg.src) in
        if e.Ddg.src <> e.Ddg.dst && c = scc.Scc.comp_of.(e.Ddg.dst) then
          intra.(c) <- e :: intra.(c))
      g.Ddg.edges;
    let res = Array.make n (-1) in
    let table = Mrt.Modulo.create m ~s in
    (* prune attribution for the decision log *)
    let pruned_window = ref 0
    and pruned_resource = ref 0
    and nodes_expanded = ref 0 in
    let anchored =
      not (Array.exists (fun (u : Sunit.t) -> u.Sunit.no_wrap) units)
    in
    (* residue window from the symbolic longest paths: t(v) - t(w) lies
       in [L(w,v), -L(v,w)]; a window narrower than s pins the residue
       difference to one class mod s *)
    let window_ok v r =
      match comp_sp.(v) with
      | None -> true
      | Some (sp, _) when s < sp.Spath.s_min || s > sp.Spath.s_max ->
        true (* closure not valid at this interval: skip the pruning *)
      | Some (sp, lv) ->
        List.for_all
          (fun (w, lw) ->
            res.(w) < 0
            ||
            match (Spath.query sp ~s lw lv, Spath.query sp ~s lv lw) with
            | Some lo, Some neg_up ->
              let up = -neg_up in
              up - lo + 1 >= s
              ||
              let dm = ((r - res.(w) - lo) mod s + s) mod s in
              dm <= up - lo
            | _ -> true)
          peers.(v)
    in
    (* exact feasibility of one component's k-graph: Bellman–Ford
       longest-path relaxation; any relaxation still possible after
       |members| sweeps exposes a positive cycle *)
    let comp_feasible c =
      Sp_obs.Metrics.incr m_cycle_checks;
      match intra.(c) with
      | [] -> true
      | edges ->
        let nl = List.length scc.Scc.comps.(c) in
        spend meter (List.length edges);
        let dist = Array.make nl 0 in
        let changed = ref true and sweeps = ref 0 in
        while !changed && !sweeps <= nl do
          changed := false;
          incr sweeps;
          List.iter
            (fun (e : Ddg.edge) ->
              let nd = dist.(local_of.(e.Ddg.src)) + kweight ~s ~res e in
              if nd > dist.(local_of.(e.Ddg.dst)) then begin
                dist.(local_of.(e.Ddg.dst)) <- nd;
                changed := true
              end)
            edges
        done;
        not !changed
    in
    (* least non-negative solution of the full k-graph (cycles are
       non-positive once every component passed its check; cross-
       component edges cannot close a cycle) *)
    let reconstruct () =
      let k = Array.make n 0 in
      let changed = ref true and sweeps = ref 0 in
      while !changed do
        changed := false;
        incr sweeps;
        if !sweeps > n + 1 then
          failwith "Sp_opt.Exact: positive cycle escaped the search";
        List.iter
          (fun (e : Ddg.edge) ->
            let nd = k.(e.Ddg.src) + kweight ~s ~res e in
            if nd > k.(e.Ddg.dst) then begin
              k.(e.Ddg.dst) <- nd;
              changed := true
            end)
          g.Ddg.edges
      done;
      Array.init n (fun v -> (s * k.(v)) + res.(v))
    in
    let rec place p =
      p = n
      ||
      let v = order.(p) in
      let u = units.(v) in
      let hi = if p = 0 && anchored then 0 else cap.(v) in
      let rec try_r r =
        r <= hi
        &&
        begin
          spend meter 1;
          Sp_obs.Metrics.incr m_nodes;
          incr nodes_expanded;
          if
            (window_ok v r
            || (incr pruned_window;
                false))
            && (Mrt.Modulo.fits table ~at:r u.Sunit.resv
               || (incr pruned_resource;
                   false))
          then begin
            Mrt.Modulo.add table ~at:r u.Sunit.resv;
            res.(v) <- r;
            if
              ((not closes.(p)) || comp_feasible scc.Scc.comp_of.(v))
              && place (p + 1)
            then true
            else begin
              Mrt.Modulo.remove table ~at:r u.Sunit.resv;
              res.(v) <- -1;
              try_r (r + 1)
            end
          end
          else begin
            Sp_obs.Metrics.incr m_pruned;
            try_r (r + 1)
          end
        end
      in
      try_r 0
    in
    let finish verdict spent =
      Sp_obs.Metrics.incr ~by:spent m_fuel;
      if Sp_obs.Cost.enabled () then begin
        Sp_obs.Cost.add Sp_obs.Cost.Exact_node !nodes_expanded;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_prune_window !pruned_window;
        Sp_obs.Cost.add Sp_obs.Cost.Exact_prune_resource !pruned_resource
      end;
      if Sp_obs.Explain.enabled () then
        Sp_obs.Explain.record
          (Sp_obs.Explain.Exact_probe
             {
               s;
               verdict =
                 (match verdict with
                 | Feasible _ -> "feasible"
                 | Infeasible -> "infeasible"
                 | Out_of_budget -> "out-of-budget");
               spent;
               pruned_window = !pruned_window;
               pruned_resource = !pruned_resource;
               nodes = !nodes_expanded;
             });
      Sp_obs.Trace.instant "exact.solve"
        ~args:(fun () ->
          [
            ("s", Sp_obs.Trace.I s);
            ("spent", Sp_obs.Trace.I spent);
            ( "verdict",
              Sp_obs.Trace.S
                (match verdict with
                | Feasible _ -> "feasible"
                | Infeasible -> "infeasible"
                | Out_of_budget -> "out-of-budget") );
          ]);
      { verdict; spent }
    in
    match place 0 with
    | true -> finish (Feasible (reconstruct ())) (budget - meter.left)
    | false -> finish Infeasible (budget - meter.left)
    | exception Out_of_fuel ->
      Sp_obs.Metrics.incr m_exhausted;
      finish Out_of_budget budget
  end
