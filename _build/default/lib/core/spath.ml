(** All-points longest paths with a symbolic initiation interval.

    The paper (Section 2.2.2) computes the closure of the precedence
    constraints in each strongly connected component {e once}, "using a
    symbolic value to stand for the initiation interval", so that the
    iterative search over candidate intervals pays no recomputation.

    A path with accumulated delay [d] and accumulated iteration
    difference [w] constrains [sigma(dst) - sigma(src) >= d - s*w]. We
    represent the closure as, per node pair, the Pareto frontier of
    [(d, w)] pairs. The initiation interval only ever ranges over
    [1 .. s_max] (the upper bound is the length of the locally
    compacted iteration, which always schedules), so the exact
    dominance order is: [a] dominates [b] iff [a.d - s*a.w >= b.d -
    s*b.w] at both endpoints [s = 1] and [s = s_max] — both sides are
    linear in [s], so dominance at the endpoints is dominance
    throughout. This keeps each frontier at the lower convex hull of
    the path set (a handful of pairs) where the naive
    for-all-[s >= 0] order can blow up combinatorially on graphs with
    many parallel incomparable paths.

    The recurrence-constrained lower bound on the initiation interval
    (paper Section 2.2.1) is the maximum over closed paths of
    [ceil(d(c) / p(c))], read off the diagonal of the closure. *)

type pair = { d : int; w : int }

type t = {
  n : int;
  s_min : int;
  s_max : int;
  paths : pair list array array; (* paths.(i).(j): Pareto frontier i->j *)
}

let dominates ~s_min ~s_max a b =
  a.d - (s_min * a.w) >= b.d - (s_min * b.w)
  && a.d - (s_max * a.w) >= b.d - (s_max * b.w)

(** Insert [p] into frontier [l], dropping dominated elements. *)
let insert ~s_min ~s_max p l =
  if List.exists (fun q -> dominates ~s_min ~s_max q p) l then l
  else p :: List.filter (fun q -> not (dominates ~s_min ~s_max p q)) l

let merge ~s_min ~s_max a b =
  List.fold_left (fun acc p -> insert ~s_min ~s_max p acc) a b

let combine a b =
  List.concat_map
    (fun p -> List.map (fun q -> { d = p.d + q.d; w = p.w + q.w }) b)
    a

(** [compute ~n ~edges ~s_min ~s_max] over node-local indices; edges
    are [(src, dst, delay, omega)]. Queries are valid for initiation
    intervals in [s_min .. s_max]. Callers pass [s_min >=] the
    component's recurrence bound, where every dependence cycle has
    non-positive weight — then going around a cycle only ever produces
    dominated pairs and the frontiers stay at hull size. *)
let compute ~n ~edges ~s_min ~s_max =
  let s_min = max 1 s_min in
  let s_max = max s_min s_max in
  let paths = Array.make_matrix n n [] in
  List.iter
    (fun (src, dst, delay, omega) ->
      paths.(src).(dst) <-
        insert ~s_min ~s_max { d = delay; w = omega } paths.(src).(dst))
    edges;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if paths.(i).(k) <> [] then
        for j = 0 to n - 1 do
          if paths.(k).(j) <> [] then
            paths.(i).(j) <-
              merge ~s_min ~s_max paths.(i).(j)
                (combine paths.(i).(k) paths.(k).(j))
        done
    done
  done;
  { n; s_min; s_max; paths }

(** Maximum over the frontier of [d - s*w]: the binding precedence
    constraint from [i] to [j] at initiation interval [s]. [None] when
    no path exists. Requires [s_min <= s <= s_max]. *)
let query t ~s i j =
  if s < t.s_min || s > t.s_max then
    invalid_arg "Spath.query: s out of range";
  match t.paths.(i).(j) with
  | [] -> None
  | l -> Some (List.fold_left (fun m p -> max m (p.d - (s * p.w))) min_int l)

(* ------------------------------------------------------------------ *)
(* Recurrence bound, computed independently of the closure              *)
(* ------------------------------------------------------------------ *)

(** Does the graph contain a cycle of positive weight under
    [weight e = d(e) - s * omega(e)]? Bellman–Ford longest-path
    relaxation from an all-zero potential: any relaxation still
    possible after [n] sweeps exposes a positive cycle. *)
let has_positive_cycle ~n ~edges ~s =
  let dist = Array.make n 0 in
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed && !sweeps <= n do
    changed := false;
    incr sweeps;
    List.iter
      (fun (u, v, d, w) ->
        let nd = dist.(u) + d - (s * w) in
        if nd > dist.(v) then begin
          dist.(v) <- nd;
          changed := true
        end)
      edges
  done;
  !changed

(** The recurrence-constrained lower bound on the initiation interval
    (paper Section 2.2.1): the smallest [s] at which no dependence
    cycle has positive weight — equivalently
    [max over cycles ceil(d(c)/p(c))]. Cycle weight is decreasing in
    [s], so binary search applies. Returns [s_max + 2] when even
    [s_max + 1] leaves a positive cycle (a bound beyond the serial
    restart length — not pipelinable in range — or an illegal
    zero-omega positive cycle). *)
let rec_mii_bound ~n ~edges ~s_max =
  if not (has_positive_cycle ~n ~edges ~s:1) then 1
  else if has_positive_cycle ~n ~edges ~s:(s_max + 1) then s_max + 2
  else begin
    (* invariant: positive cycle exists at lo - 1, none at hi *)
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if has_positive_cycle ~n ~edges ~s:mid then bs (mid + 1) hi
        else bs lo mid
    in
    bs 2 (s_max + 1)
  end
