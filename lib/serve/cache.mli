(** Domain-safe content-addressed schedule cache.

    Maps a {!Fingerprint} of an (innermost-loop DDG, machine) pair to
    the schedule the compiler last adopted for it: initiation interval,
    canonical-space issue times, the search stats that produced it and
    its optimality certificate. Bounded capacity with
    least-recently-committed eviction.

    Soundness: a candidate entry is re-verified against the requesting
    loop's {e own} edges, resource table and no-wrap constraints before
    it is returned as a hit ({!schedule_ok}); failures count as misses.
    Downstream, the compiler re-runs MVE, emission and the [Validate]
    pass on every pipelined loop, cached or not — so a fingerprint
    collision can waste a lookup but never ship a wrong schedule.

    Determinism: lookups are read-only and may run concurrently
    (compile's parallel analyze phase); every mutation — insertion and
    recency update — happens through {!Sp_core.Compile.cache_probe}'s
    commit callback, which the compiler invokes from its sequential
    finish phase in loop order. Metrics mirror into the process-wide
    [Sp_obs.Metrics] registry as [serve.cache.{hit,miss,reject,insert,
    evict}]. *)

type t

val create : capacity:int -> t
(** A cache holding at most [capacity] schedules. [capacity = 0] is a
    disabled cache: it never stores and never hits (every probe is a
    miss with a no-op commit). *)

val capacity : t -> int

type stats = {
  hits : int;       (** verified hits returned to the compiler *)
  misses : int;     (** probes that found nothing reusable *)
  rejects : int;    (** found entries that failed re-verification or
                        fell outside the requested interval window
                        (counted in [misses] too) *)
  inserts : int;    (** entries committed *)
  evictions : int;  (** entries dropped to respect [capacity] *)
  entries : int;    (** current population *)
}

val stats : t -> stats

val reset : t -> unit
(** Drop every entry and zero the per-cache counters (the process-wide
    metrics registry is not touched). *)

val schedule_ok :
  Sp_machine.Machine.t ->
  Sp_core.Ddg.t ->
  s:int ->
  times:int array ->
  bool
(** The hit-side verifier, exposed for direct testing: do these issue
    times respect every dependence edge ([t(dst) - t(src) >= delay -
    s*omega]), the machine's per-slot resource limits modulo [s], and
    each unit's no-wrap requirement? Graphs containing barrier units
    are rejected wholesale (a barrier must not overlap anything; such
    loops never profit from reuse). *)

val site : string
(** ["serve.cache.lookup"] — fault-injection site hit once per probe,
    so the campaign and the tests can prove a cache failure degrades
    the loop instead of crashing the compile. *)

val hook : t -> Sp_core.Compile.cache
(** Package the cache as a {!Sp_core.Compile.config} hook. *)
