lib/ir/memseg.mli: Format
