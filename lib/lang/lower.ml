(** Lowering from the W2-like AST to the scheduling IR.

    The interesting part is {e subscript analysis}: integer expressions
    are tracked as affine forms

    {v   coef * iv  +  sum(mult_k * sym_k)  +  const   v}

    relative to the innermost loop (where [iv] is the loop's
    per-iteration counter copy and the [sym_k] are registers invariant
    in that loop). Affine subscripts produce exact {!Sp_ir.Subscript}
    descriptors, which is what lets the dependence analysis compute
    exact inter-iteration distances for the paper's kernels; anything
    non-affine falls back to an opaque register with conservative
    dependences.

    Symbolic bases ([i*W] in a row-major 2-D access, outer loop
    variables, invariant scalars) are materialized once per loop body
    and {e memoized}, so that two accesses to [a\[base + j + c\]] share
    one base register and stay comparable. Multi-dimensional arrays are
    linearized row-major. A scalar integer variable counts as invariant
    only if no statement of the current innermost loop assigns it. *)

open Sp_ir
module Opkind = Sp_machine.Opkind

exception Error of Token.pos * string

let err p fmt = Fmt.kstr (fun s -> raise (Error (p, s))) fmt

(* ------------------------------------------------------------------ *)
(* Affine integer values                                               *)
(* ------------------------------------------------------------------ *)

type affine = {
  coef : int;                         (* of the innermost loop counter *)
  syms : (int * Vreg.t * int) list;   (* (reg id, reg, multiplier), sorted *)
  const : int;
}

type ival = Aff of affine | Opaque of Vreg.t

let aff_const c = Aff { coef = 0; syms = []; const = c }

let norm_syms syms =
  syms
  |> List.filter (fun (_, _, m) -> m <> 0)
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let aff_add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (ia, ra, ma) :: xs', (ib, _, mb) :: ys' when ia = ib ->
      (ia, ra, ma + mb) :: merge xs' ys'
    | ((ia, _, _) as x) :: xs', (((ib, _, _) :: _) as ys') when ia < ib ->
      x :: merge xs' ys'
    | xs', y :: ys' -> y :: merge xs' ys'
  in
  {
    coef = a.coef + b.coef;
    syms = norm_syms (merge (norm_syms a.syms) (norm_syms b.syms));
    const = a.const + b.const;
  }

let aff_scale k a =
  {
    coef = k * a.coef;
    syms = norm_syms (List.map (fun (i, r, m) -> (i, r, k * m)) a.syms);
    const = k * a.const;
  }

let aff_neg a = aff_scale (-1) a

let aff_of_sym (r : Vreg.t) = { coef = 0; syms = [ (r.Vreg.id, r, 1) ]; const = 0 }

(* ------------------------------------------------------------------ *)

type binding =
  | Bscalar of Ast.ty * Vreg.t
  | Barray of Memseg.t * Ast.ty * (int * int) list
  | Bloop of loopctx

and loopctx = {
  l_iv : Vreg.t;                 (* per-iteration counter copy *)
  l_base : affine_outer;         (* user lower bound, from outside *)
  mutable l_cse : (cse_key * Vreg.t) list;
  l_assigned : (string, unit) Hashtbl.t;
      (* scalar variables assigned somewhere inside this loop *)
}

(* an affine value as seen from outside the loop, to be re-read inside:
   either a constant or a snapshot register *)
and affine_outer = Abase_const of int | Abase_reg of Vreg.t

and cse_key =
  | K_symsum of (int * int) list     (* (reg id, mult) list *)
  | K_scaled_iv of int               (* coef * iv *)

type env = {
  b : Builder.t;
  vars : (string, binding) Hashtbl.t;
  mutable loops : loopctx list;      (* innermost first *)
  if_convert : bool;
      (* lower two-sided single-assignment conditionals to selects
         instead of branches — an extension ablated in the bench (the
         paper's compiler, and our default, keep real branches) *)
}

let innermost env = match env.loops with [] -> None | l :: _ -> Some l

(** Scalar variables assigned anywhere in a statement list (including
    nested constructs) — used to decide loop-invariance. *)
let assigned_vars stmts =
  let tbl = Hashtbl.create 16 in
  let lv = function
    | Ast.Lvar (n, _) -> Hashtbl.replace tbl n ()
    | Ast.Lindex _ -> ()
  in
  let rec go (s : Ast.stmt) =
    match s.Ast.s with
    | Ast.Sassign (l, _) -> lv l
    | Ast.Sif (_, t, e) ->
      List.iter go t;
      List.iter go e
    | Ast.Sfor { body; _ } -> List.iter go body
    | Ast.Ssend _ -> ()
    | Ast.Sreceive (l, _) -> lv l
  in
  List.iter go stmts;
  tbl

(* ------------------------------------------------------------------ *)
(* Materialization                                                      *)
(* ------------------------------------------------------------------ *)

let cse env key (mk : unit -> Vreg.t) =
  match innermost env with
  | None -> mk ()
  | Some l -> (
    match List.assoc_opt key l.l_cse with
    | Some r -> r
    | None ->
      let r = mk () in
      l.l_cse <- (key, r) :: l.l_cse;
      r)

(** Materialize the symbolic part of an affine form into one register,
    memoized per loop body so equal bases share a register (and the
    subscripts stay comparable). *)
let materialize_symsum env (syms : (int * Vreg.t * int) list) : Vreg.t option
    =
  match syms with
  | [] -> None
  | [ (_, r, 1) ] -> Some r
  | _ ->
    let key = K_symsum (List.map (fun (i, _, m) -> (i, m)) syms) in
    Some
      (cse env key (fun () ->
           let b = env.b in
           let term (_, r, m) =
             if m = 1 then r
             else
               let mr = Builder.iconst b m in
               Builder.imul b r mr
           in
           match List.map term syms with
           | [] -> assert false
           | t :: ts -> List.fold_left (fun acc x -> Builder.iadd b acc x) t ts))

let materialize_scaled_iv env (l : loopctx) coef : Vreg.t =
  if coef = 1 then l.l_iv
  else
    cse env (K_scaled_iv coef) (fun () ->
        let c = Builder.iconst env.b coef in
        Builder.imul env.b l.l_iv c)

(** Materialize any integer value into a plain register. *)
let materialize env (v : ival) : Vreg.t =
  match v with
  | Opaque r -> r
  | Aff a -> (
    let b = env.b in
    let parts =
      (match (a.coef, innermost env) with
      | 0, _ -> []
      | c, Some l -> [ materialize_scaled_iv env l c ]
      | _, None -> assert false (* nonzero coef outside any loop *))
      @ (match materialize_symsum env a.syms with
        | Some r -> [ r ]
        | None -> [])
    in
    match (parts, a.const) with
    | [], c -> Builder.iconst b c
    | [ r ], 0 -> r
    | r :: rest, c ->
      let sum = List.fold_left (fun acc x -> Builder.iadd b acc x) r rest in
      if c = 0 then sum
      else
        let cr = Builder.iconst b c in
        Builder.iadd b sum cr)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let lookup env p name =
  match Hashtbl.find_opt env.vars name with
  | Some b -> b
  | None -> err p "undeclared identifier %s" name

(** Is scalar [name] invariant in the current innermost loop? *)
let invariant_here env name =
  match innermost env with
  | None -> true
  | Some l -> not (Hashtbl.mem l.l_assigned name)

let rec lower_int env (e : Ast.expr) : ival =
  let p = e.Ast.e_pos in
  match e.Ast.e with
  | Ast.Eint n -> aff_const n
  | Ast.Evar name -> (
    match lookup env p name with
    | Bscalar (Ast.Tint, r) ->
      if invariant_here env name then Aff (aff_of_sym r) else Opaque r
    | Bloop l ->
      (* user variable = base + counter copy *)
      let base =
        match l.l_base with
        | Abase_const c -> { coef = 0; syms = []; const = c }
        | Abase_reg r -> aff_of_sym r
      in
      (* only affine w.r.t. the *innermost* loop; an outer loop variable
         read from an inner loop is affine in the outer counter, which
         the inner loop sees as an invariant symbol *)
      let is_innermost =
        match innermost env with Some l' -> l' == l | None -> false
      in
      if is_innermost then
        Aff (aff_add base { coef = 1; syms = []; const = 0 })
      else Aff (aff_add base (aff_of_sym l.l_iv))
    | Bscalar (Ast.Tfloat, _) -> err p "%s is a float" name
    | Barray _ -> err p "array %s in scalar context" name)
  | Ast.Eindex _ -> Opaque (lower_int_opaque env e)
  | Ast.Ebin (op, a, b) -> (
    match op with
    | Ast.Add -> (
      match (lower_int env a, lower_int env b) with
      | Aff x, Aff y -> Aff (aff_add x y)
      | x, y -> Opaque (bin_int env Opkind.Iadd x y))
    | Ast.Sub -> (
      match (lower_int env a, lower_int env b) with
      | Aff x, Aff y -> Aff (aff_add x (aff_neg y))
      | x, y -> Opaque (bin_int env Opkind.Isub x y))
    | Ast.Mul -> (
      match (lower_int env a, lower_int env b) with
      | Aff { coef = 0; syms = []; const = k }, v
      | v, Aff { coef = 0; syms = []; const = k } -> (
        match v with
        | Aff x -> Aff (aff_scale k x)
        | Opaque _ ->
          Opaque (bin_int env Opkind.Imul (aff_const k) v))
      | x, y -> Opaque (bin_int env Opkind.Imul x y))
    | Ast.Div -> Opaque (bin_int env Opkind.Idiv (lower_int env a) (lower_int env b))
    | Ast.And -> Opaque (bin_int env Opkind.Iand (lower_int env a) (lower_int env b))
    | Ast.Or -> Opaque (bin_int env Opkind.Ior (lower_int env a) (lower_int env b))
    | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      Opaque (lower_cmp env p op a b))
  | Ast.Eun (Ast.Neg, a) -> (
    match lower_int env a with
    | Aff x -> Aff (aff_neg x)
    | Opaque _ as v -> Opaque (bin_int env Opkind.Isub (aff_const 0) v))
  | Ast.Eun (Ast.Not, a) ->
    let r = materialize env (lower_int env a) in
    let z = Builder.iconst env.b 0 in
    Opaque (Builder.icmp env.b Opkind.Eq r z)
  | Ast.Ecall ("int", [ a ]) ->
    Opaque (Builder.ftoi env.b (lower_float env a))
  | Ast.Ecall (name, _) -> err p "%s does not return int here" name
  | Ast.Efloat _ -> err p "float literal in int context"

and lower_int_opaque env e = materialize env (lower_int env e)

and bin_int env kind a b =
  let ra = materialize env a and rb = materialize env b in
  Builder.ibin env.b kind ra rb

and lower_cmp env p op a b =
  (* comparisons work on both int and float operands *)
  let rel =
    match op with
    | Ast.Eq -> Opkind.Eq
    | Ast.Ne -> Opkind.Ne
    | Ast.Lt -> Opkind.Lt
    | Ast.Le -> Opkind.Le
    | Ast.Gt -> Opkind.Gt
    | Ast.Ge -> Opkind.Ge
    | _ -> assert false
  in
  match expr_ty env a with
  | Ast.Tint ->
    let ra = lower_int_opaque env a and rb = lower_int_opaque env b in
    Builder.icmp env.b rel ra rb
  | Ast.Tfloat ->
    ignore p;
    let ra = lower_float env a and rb = lower_float env b in
    Builder.fcmp env.b rel ra rb

(* minimal type reconstruction (the program has already been checked) *)
and expr_ty env (e : Ast.expr) : Ast.ty =
  match e.Ast.e with
  | Ast.Eint _ -> Ast.Tint
  | Ast.Efloat _ -> Ast.Tfloat
  | Ast.Evar name -> (
    match lookup env e.Ast.e_pos name with
    | Bscalar (t, _) -> t
    | Bloop _ -> Ast.Tint
    | Barray _ -> err e.Ast.e_pos "array in scalar context")
  | Ast.Eindex (name, _) -> (
    match lookup env e.Ast.e_pos name with
    | Barray (_, t, _) -> t
    | _ -> err e.Ast.e_pos "%s is not an array" name)
  | Ast.Ebin ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div), a, _) -> expr_ty env a
  | Ast.Ebin _ -> Ast.Tint
  | Ast.Eun (Ast.Neg, a) -> expr_ty env a
  | Ast.Eun (Ast.Not, _) -> Ast.Tint
  | Ast.Ecall (("sqrt" | "inverse" | "exp" | "abs" | "min" | "max" | "float"), _)
    -> Ast.Tfloat
  | Ast.Ecall _ -> Ast.Tint

(* ---- array addressing --------------------------------------------- *)

(** Linearized affine subscript of an array access, with dimension
    lower bounds folded in. *)
and linearize env p name (idx : Ast.expr list) :
    Memseg.t * ival =
  match lookup env p name with
  | Barray (seg, _, dims) ->
    if List.length idx <> List.length dims then
      err p "wrong number of subscripts for %s" name;
    let widths =
      (* row-major: weight of dimension k is the product of the sizes
         of dimensions k+1.. *)
      let sizes = List.map (fun (lo, hi) -> hi - lo + 1) dims in
      let rec go = function
        | [] -> []
        | _ :: rest -> List.fold_left ( * ) 1 rest :: go rest
      in
      go sizes
    in
    let v =
      List.fold_left2
        (fun acc (e, (lo, _)) w ->
          let part = lower_int env e in
          let part =
            match part with
            | Aff a -> Aff (aff_scale w (aff_add a { coef = 0; syms = []; const = -lo }))
            | Opaque r ->
              if w = 1 && lo = 0 then Opaque r
              else begin
                let lo_r = Builder.iconst env.b lo in
                let d = Builder.isub env.b r lo_r in
                let wr = Builder.iconst env.b w in
                Opaque (Builder.imul env.b d wr)
              end
          in
          match (acc, part) with
          | Aff x, Aff y -> Aff (aff_add x y)
          | x, y -> Opaque (bin_int env Opkind.Iadd x y))
        (aff_const 0)
        (List.combine idx dims)
        widths
    in
    (seg, v)
  | _ -> err p "%s is not an array" name

(** Address operands and subscript descriptor for a memory access. *)
and addressing env (seg : Memseg.t) (v : ival) :
    Vreg.t option * Vreg.t option * int * Subscript.t option =
  ignore seg;
  match v with
  | Opaque r -> (None, Some r, 0, None)
  | Aff a -> (
    let base = materialize_symsum env a.syms in
    let sub_syms =
      match base with Some r -> [ r.Vreg.id ] | None -> []
    in
    match (a.coef, innermost env) with
    | 0, _ ->
      ( base,
        None,
        a.const,
        Some { Subscript.coef = 0; iv = None; syms = sub_syms; off = a.const }
      )
    | c, Some l ->
      let idx = materialize_scaled_iv env l c in
      ( base,
        Some idx,
        a.const,
        Some
          {
            Subscript.coef = c;
            iv = Some l.l_iv;
            syms = sub_syms;
            off = a.const;
          } )
    | _, None -> assert false)

and lower_load env p name idx : Vreg.t =
  let seg, v = linearize env p name idx in
  let base, ix, off, sub = addressing env seg v in
  Builder.load env.b ?base ?idx:ix ~off ?sub seg

(* ---- float expressions -------------------------------------------- *)

(** Flatten a maximal tree of float additions into its terms, in source
    order. Used to build balanced reduction trees: the paper's machine
    has 7-cycle adds, and a left-associated chain of [k] additions
    serializes [7k] cycles of critical path (and stretches every
    operand's lifetime accordingly), where a balanced tree costs
    [7*ceil(log2 k)]. Floating-point reassociation changes results in
    general, but both the reference interpreter and the generated code
    execute the {e same} reassociated IR, so validation stays exact. *)
and add_terms (e : Ast.expr) : Ast.expr list =
  match e.Ast.e with
  | Ast.Ebin (Ast.Add, a, b) -> add_terms a @ add_terms b
  | _ -> [ e ]

and balanced_fadd env (terms : Vreg.t list) : Vreg.t =
  match terms with
  | [] -> assert false
  | [ r ] -> r
  | _ ->
    let rec level = function
      | [] -> []
      | [ x ] -> [ x ]
      | x :: y :: rest -> Builder.fadd env.b x y :: level rest
    in
    balanced_fadd env (level terms)

and lower_float env (e : Ast.expr) : Vreg.t =
  let p = e.Ast.e_pos in
  match e.Ast.e with
  | Ast.Efloat f -> Builder.fconst env.b f
  | Ast.Evar name -> (
    match lookup env p name with
    | Bscalar (Ast.Tfloat, r) -> r
    | _ -> err p "%s is not a float scalar" name)
  | Ast.Eindex (name, idx) -> lower_load env p name idx
  | Ast.Ebin (op, a, b) -> (
    match op with
    | Ast.Add ->
      let terms = add_terms e in
      balanced_fadd env (List.map (lower_float env) terms)
    | Ast.Sub -> Builder.fsub env.b (lower_float env a) (lower_float env b)
    | Ast.Mul -> Builder.fmul env.b (lower_float env a) (lower_float env b)
    | Ast.Div ->
      (* expanded via the reciprocal sequence (INVERSE): 8 flops *)
      let ra = lower_float env a in
      let inv = Expand.inverse env.b (lower_float env b) in
      Builder.fmul env.b ra inv
    | _ -> err p "operator yields an int, not a float")
  | Ast.Eun (Ast.Neg, a) -> Builder.fneg env.b (lower_float env a)
  | Ast.Eun (Ast.Not, _) -> err p "'not' yields an int"
  | Ast.Ecall ("sqrt", [ a ]) -> Expand.sqrt_ env.b (lower_float env a)
  | Ast.Ecall ("inverse", [ a ]) -> Expand.inverse env.b (lower_float env a)
  | Ast.Ecall ("exp", [ a ]) -> Expand.exp_ env.b (lower_float env a)
  | Ast.Ecall ("abs", [ a ]) -> Builder.fabs env.b (lower_float env a)
  | Ast.Ecall ("min", [ a; b ]) ->
    Builder.fmin env.b (lower_float env a) (lower_float env b)
  | Ast.Ecall ("max", [ a; b ]) ->
    Builder.fmax env.b (lower_float env a) (lower_float env b)
  | Ast.Ecall ("float", [ a ]) ->
    Builder.itof env.b (lower_int_opaque env a)
  | Ast.Ecall (name, _) -> err p "unknown float function %s" name
  | Ast.Eint _ -> err p "int literal in float context (use a float literal)"

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(** Lower [e] targeting register [dst] when profitable (avoids a move
    on the critical path of accumulator recurrences). *)
let lower_float_to env dst (e : Ast.expr) =
  let b = env.b in
  let emit_to kind srcs = ignore (Builder.emit b ~dst ~srcs kind) in
  match e.Ast.e with
  | Ast.Ebin (Ast.Add, _, _) -> (
    match List.map (lower_float env) (add_terms e) with
    | [ x; y ] -> emit_to Opkind.Fadd [ x; y ]
    | terms -> (
      (* balance all but the final combine, which targets [dst] *)
      let rec split_last = function
        | [] -> assert false
        | [ x ] -> ([], x)
        | x :: rest ->
          let init, last = split_last rest in
          (x :: init, last)
      in
      let init, last = split_last terms in
      match init with
      | [] -> emit_to Opkind.Fmov [ last ]
      | _ -> emit_to Opkind.Fadd [ balanced_fadd env init; last ]))
  | Ast.Ebin (Ast.Sub, x, y) ->
    emit_to Opkind.Fsub [ lower_float env x; lower_float env y ]
  | Ast.Ebin (Ast.Mul, x, y) ->
    emit_to Opkind.Fmul [ lower_float env x; lower_float env y ]
  | Ast.Efloat f -> ignore (Builder.emit b ~dst ~imm:(Op.Fimm f) Opkind.Fconst)
  | _ -> emit_to Opkind.Fmov [ lower_float env e ]

let lower_int_to env dst (e : Ast.expr) =
  let b = env.b in
  let r = lower_int_opaque env e in
  ignore (Builder.emit b ~dst ~srcs:[ r ] Opkind.Imov)

let rec lower_stmt env (s : Ast.stmt) =
  let p = s.Ast.s_pos in
  match s.Ast.s with
  | Ast.Sassign (Ast.Lvar (name, vp), e) -> (
    match lookup env vp name with
    | Bscalar (Ast.Tfloat, r) -> lower_float_to env r e
    | Bscalar (Ast.Tint, r) -> lower_int_to env r e
    | Bloop _ -> err vp "cannot assign loop variable %s" name
    | Barray _ -> err vp "array %s assigned without subscript" name)
  | Ast.Sassign (Ast.Lindex (name, idx, vp), e) -> (
    let seg, v = linearize env vp name idx in
    let base, ix, off, sub = addressing env seg v in
    match expr_ty env e with
    | Ast.Tfloat ->
      let r = lower_float env e in
      Builder.store env.b ?base ?idx:ix ~off ?sub seg r
    | Ast.Tint ->
      let r = lower_int_opaque env e in
      Builder.store env.b ?base ?idx:ix ~off ?sub seg r)
  | Ast.Sif (c, t, e)
    when env.if_convert
         && (match (t, e) with
            | ( [ { Ast.s = Ast.Sassign (Ast.Lvar (n1, _), _); _ } ],
                [ { Ast.s = Ast.Sassign (Ast.Lvar (n2, _), _); _ } ] ) ->
              String.equal n1 n2
              && (match Hashtbl.find_opt env.vars n1 with
                 | Some (Bscalar (Ast.Tfloat, _)) -> true
                 | _ -> false)
            | _ -> false) -> (
    (* if-conversion: both sides assign the same float scalar; compute
       both values and select — no branch, no sequencer serialization *)
    match (t, e) with
    | ( [ { Ast.s = Ast.Sassign (Ast.Lvar (n, vp), et); _ } ],
        [ { Ast.s = Ast.Sassign (Ast.Lvar (_, _), ee); _ } ] ) -> (
      let cr = lower_int_opaque env c in
      let vt = lower_float env et in
      let ve = lower_float env ee in
      match lookup env vp n with
      | Bscalar (Ast.Tfloat, dst) ->
        ignore
          (Builder.emit env.b ~dst ~srcs:[ cr; vt; ve ]
             Sp_machine.Opkind.Fsel)
      | _ -> assert false)
    | _ -> assert false)
  | Ast.Sif (c, t, e) ->
    let cr = lower_int_opaque env c in
    (* each branch gets a private CSE scope: registers materialized on
       one path are not valid on the other *)
    let with_branch stmts () =
      let saved =
        List.map (fun (l : loopctx) -> (l, l.l_cse)) env.loops
      in
      List.iter (lower_stmt env) stmts;
      List.iter (fun ((l : loopctx), c) -> l.l_cse <- c) saved
    in
    Builder.if_ env.b cr ~then_:(with_branch t) ~else_:(with_branch e)
  | Ast.Sfor { var; lo; hi; body } ->
    let lo_v = lower_int env lo in
    let hi_v = lower_int env hi in
    let const_of = function
      | Aff { coef = 0; syms = []; const = c } -> Some c
      | _ -> None
    in
    let bound, l_base =
      match (const_of lo_v, const_of hi_v) with
      | Some l, Some h -> (Region.Const (max 0 (h - l + 1)), Abase_const l)
      | _ ->
        (* snapshot the bounds; trip count = hi - lo + 1 *)
        let lo_r = materialize env lo_v in
        let hi_r = materialize env hi_v in
        let d = Builder.isub env.b hi_r lo_r in
        let one = Builder.iconst env.b 1 in
        let n = Builder.iadd env.b d one in
        (Region.Reg n, Abase_reg lo_r)
    in
    ignore p;
    Builder.for_ env.b ~name:var bound (fun i_loc ->
        let lctx =
          {
            l_iv = i_loc;
            l_base;
            l_cse = [];
            l_assigned = assigned_vars body;
          }
        in
        let saved_binding = Hashtbl.find_opt env.vars var in
        Hashtbl.replace env.vars var (Bloop lctx);
        env.loops <- lctx :: env.loops;
        List.iter (lower_stmt env) body;
        env.loops <- List.tl env.loops;
        (match saved_binding with
        | Some b -> Hashtbl.replace env.vars var b
        | None -> Hashtbl.remove env.vars var))
  | Ast.Ssend (e, ch) -> Builder.send env.b ch (lower_float env e)
  | Ast.Sreceive (Ast.Lvar (name, vp), ch) -> (
    match lookup env vp name with
    | Bscalar (Ast.Tfloat, r) ->
      ignore (Builder.emit env.b ~dst:r (Opkind.Recv ch))
    | _ -> err vp "receive target %s must be a float scalar" name)
  | Ast.Sreceive (Ast.Lindex (name, idx, vp), ch) ->
    let seg, v = linearize env vp name idx in
    let base, ix, off, sub = addressing env seg v in
    let r = Builder.recv env.b ch in
    Builder.store env.b ?base ?idx:ix ~off ?sub seg r

(* ------------------------------------------------------------------ *)

(** Lower a checked program to IR. [if_convert] enables the
    select-based lowering of two-sided single-assignment conditionals
    (an extension; off by default to match the paper). *)
let lower ?(if_convert = false) (p : Ast.program) : Program.t =
  let b = Builder.create p.Ast.p_name in
  let env = { b; vars = Hashtbl.create 32; loops = []; if_convert } in
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.d_kind with
      | Ast.Dscalar Ast.Tfloat ->
        Hashtbl.replace env.vars d.Ast.d_name
          (Bscalar (Ast.Tfloat, Builder.fresh_f ~name:d.Ast.d_name b))
      | Ast.Dscalar Ast.Tint ->
        Hashtbl.replace env.vars d.Ast.d_name
          (Bscalar (Ast.Tint, Builder.fresh_i ~name:d.Ast.d_name b))
      | Ast.Darray { elem; dims; independent } ->
        let size =
          List.fold_left (fun acc (lo, hi) -> acc * (hi - lo + 1)) 1 dims
        in
        let elt =
          match elem with
          | Ast.Tfloat -> Memseg.Float_elt
          | Ast.Tint -> Memseg.Int_elt
        in
        let seg =
          Builder.seg b ~independent ~elt ~name:d.Ast.d_name ~size ()
        in
        Hashtbl.replace env.vars d.Ast.d_name (Barray (seg, elem, dims)))
    p.Ast.p_decls;
  List.iter (lower_stmt env) p.Ast.p_body;
  Builder.finish b

(** Front door: parse, check, lower. *)
let compile_source ?if_convert src =
  let ast = Sp_obs.Trace.span "compile.parse" (fun () -> Parser.parse src) in
  Sp_obs.Trace.span "compile.typecheck" (fun () -> ignore (Typecheck.check ast));
  Sp_obs.Trace.span "compile.lower" (fun () -> lower ?if_convert ast)
