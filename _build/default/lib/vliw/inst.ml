(** Very long instruction words.

    One instruction issues every cycle. It carries any number of
    micro-operations (the resource checker enforces the machine's
    per-cycle capacities) plus one control field for the sequencer.
    Hardware loop counters model Warp's sequencer-side looping support:
    they live in the sequencer, not the register files, so loop control
    never competes with the datapath (see DESIGN.md Section 6). *)

type label = int
(** Symbolic until {!Prog.Asm.finish}; instruction index afterwards. *)

type ctl =
  | Next
  | Halt
  | Jump of label
  | CJump of { cond : Sp_ir.Vreg.t; if_zero : bool; target : label }
      (** branch when [cond <> 0] (or [= 0] when [if_zero]) *)
  | CtrSet of { ctr : int; value : int }
      (** load an immediate into hardware loop counter [ctr] *)
  | CtrSetR of { ctr : int; reg : Sp_ir.Vreg.t }
      (** load a register into a loop counter *)
  | CtrLoop of { ctr : int; target : label }
      (** decrement counter; jump if still positive *)
  | CtrJumpLt of { ctr : int; bound : int; target : label }
      (** jump when the counter is below an immediate bound *)

type t = { ops : Sp_ir.Op.t list; ctl : ctl }

let empty = { ops = []; ctl = Next }

let pp_ctl ppf = function
  | Next -> ()
  | Halt -> Fmt.pf ppf " halt"
  | Jump l -> Fmt.pf ppf " jump L%d" l
  | CJump { cond; if_zero; target } ->
    Fmt.pf ppf " cjump%s %a L%d"
      (if if_zero then ".z" else ".nz")
      Sp_ir.Vreg.pp cond target
  | CtrSet { ctr; value } -> Fmt.pf ppf " ctr%d := %d" ctr value
  | CtrSetR { ctr; reg } -> Fmt.pf ppf " ctr%d := %a" ctr Sp_ir.Vreg.pp reg
  | CtrLoop { ctr; target } -> Fmt.pf ppf " ctrloop%d L%d" ctr target
  | CtrJumpLt { ctr; bound; target } ->
    Fmt.pf ppf " if ctr%d < %d jump L%d" ctr bound target

let pp ppf i =
  Fmt.pf ppf "[%a]%a"
    (Fmt.list ~sep:(Fmt.any "; ") Sp_ir.Op.pp)
    i.ops pp_ctl i.ctl
