lib/core/listsched.mli: Ddg Sp_machine
