(** Optimality certification of heuristic modulo schedules.

    The heuristic ({!Sp_core.Modsched}) finds {e an} interval; the
    paper's Section 4.1 claims it is near-optimal in practice. This
    module measures that claim per loop: it scans candidate intervals
    upward from the lower bound, deciding each one {e exactly} with
    {!Exact.solve}, and returns

    - {!Optimal} when every interval below the heuristic's is proved
      infeasible (the heuristic already achieved the optimum),
    - {!Improved} when some smaller interval is feasible — together
      with a validated schedule at the smallest such interval (exact
      feasibility is not monotonic in [s], so the upward scan's first
      hit {e is} the optimum),
    - {!Unknown} when the fuel budget runs out, recording how far the
      infeasibility proof got.

    Every schedule handed back is re-verified here against the raw
    dependence, resource, and wrap constraints before anyone builds on
    it — the certifier must never be able to make the compiler emit a
    worse-than-checked kernel. *)

module Ddg = Sp_core.Ddg
module Mrt = Sp_core.Mrt
module Sunit = Sp_core.Sunit
module Modsched = Sp_core.Modsched
module Machine = Sp_machine.Machine

type certificate =
  | Optimal
  | Improved of Modsched.schedule
  | Unknown of { proven_below : int }

type outcome = {
  cert : certificate;
  spent : int;      (** total fuel across all intervals probed *)
  intervals : int;  (** number of intervals decided (or attempted) *)
}

let default_fuel = 2_000_000

(* Independent re-check of a schedule produced by the exact solver:
   dependences, resource limits, wrap windows, non-negativity. Raises
   on violation — a bug in the solver, not an input condition. *)
let check_schedule (m : Machine.t) (g : Ddg.t) (sched : Modsched.schedule) =
  let s = sched.Modsched.s and times = sched.Modsched.times in
  Array.iter
    (fun t -> if t < 0 then failwith "Sp_opt.Certify: negative issue time")
    times;
  List.iter
    (fun (e : Ddg.edge) ->
      if times.(e.Ddg.dst) - times.(e.Ddg.src) < e.Ddg.delay - (s * e.Ddg.omega)
      then failwith "Sp_opt.Certify: dependence violated")
    g.Ddg.edges;
  let table = Mrt.Modulo.create m ~s in
  Array.iteri
    (fun v (u : Sunit.t) ->
      if not (Mrt.Modulo.fits table ~at:times.(v) u.Sunit.resv) then
        failwith "Sp_opt.Certify: resource conflict";
      Mrt.Modulo.add table ~at:times.(v) u.Sunit.resv;
      if not (Modsched.wrap_ok ~s u ~at:times.(v)) then
        failwith "Sp_opt.Certify: wrap window violated")
    g.Ddg.units

let run ?(fuel = default_fuel) ?analysis (m : Machine.t) (g : Ddg.t) ~mii ~ii :
    outcome =
  let a =
    match analysis with
    | Some a -> a
    | None -> Modsched.analyze ~s_max:(max 1 (max mii ii)) g
  in
  let lo = max 1 (max mii a.Modsched.a_rec_mii) in
  let rec go s ~spent ~intervals =
    if s >= ii then { cert = Optimal; spent; intervals }
    else
      let r =
        Exact.solve ~fuel:(fuel - spent) m g ~scc:a.Modsched.a_scc
          ~spaths:a.Modsched.a_spaths ~s
      in
      let spent = spent + r.Exact.spent and intervals = intervals + 1 in
      match r.Exact.verdict with
      | Exact.Infeasible -> go (s + 1) ~spent ~intervals
      | Exact.Out_of_budget ->
        { cert = Unknown { proven_below = s }; spent; intervals }
      | Exact.Feasible times ->
        let sched = Modsched.mk_schedule g.Ddg.units ~s times in
        check_schedule m g sched;
        { cert = Improved sched; spent; intervals }
  in
  go lo ~spent:0 ~intervals:0

let hook ?fuel () : Sp_core.Compile.certifier =
 fun m g ~analysis ~mii heur ->
  let module C = Sp_core.Compile in
  let o = run ?fuel ~analysis m g ~mii ~ii:heur.Modsched.s in
  match o.cert with
  | Optimal -> (heur, C.Cert_optimal { spent = o.spent })
  | Improved sched ->
    (sched, C.Cert_improved { heur_ii = heur.Modsched.s; spent = o.spent })
  | Unknown { proven_below } ->
    (heur, C.Cert_unknown { spent = o.spent; proven_below })
