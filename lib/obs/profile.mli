(** Schedule-quality profiles: the numbers Lam's evaluation argues
    with (paper Section 4 — achieved initiation interval against the
    resource/recurrence lower bounds, utilization on real kernels),
    plus the certification gap from the exact scheduler, as one plain
    report that serializes to a stable JSON schema.

    The types here are deliberately flat (strings, ints, floats): the
    observability layer sits {e below} the compiler in the dependency
    order, so the compiler ([Sp_core.Compile.profile_loop]), simulator
    statistics ([Sp_vliw.Stats.utilization]) and measurement harness
    ([Sp_kernels.Kernel.profile]) each convert their own structures
    into this currency. *)

type loop = {
  lp_id : int;
  lp_depth : int;                  (** 0 = innermost *)
  lp_status : string;              (** [Compile.status_to_string] *)
  lp_n_units : int;
  lp_res_mii : int;
  lp_rec_mii : int;
  lp_mii : int;
  lp_seq_len : int;                (** serial restart interval *)
  lp_achieved_ii : int option;     (** [None] = not pipelined *)
  lp_optimal_ii : int option;      (** certified optimum, when proven *)
  lp_efficiency : float;           (** mii / achieved (1.0 unpipelined) *)
  lp_cert : string option;         (** certificate summary *)
  lp_sc : int;
  lp_unroll : int;                 (** MVE unroll factor *)
  lp_mve_fregs : int;              (** register-lifetime pressure after MVE *)
  lp_mve_iregs : int;
  lp_prolog_words : int;           (** (sc-1) * ii *)
  lp_epilog_words : int;
  lp_kernel_words : int;           (** unroll * ii *)
  lp_overhead : float;             (** (prolog+epilog) / kernel; 0 unpipelined *)
  lp_probed : int;                 (** intervals tried by the search *)
  lp_fuel_spent : int;
  lp_mrt : (string * float) list;
      (** modulo-reservation-table occupancy per resource at the
          achieved interval (at [seq_len] when unpipelined):
          used slots / (window * units) *)
}

type report = {
  r_kernel : string;
  r_machine : string;
  r_code_size : int;
  r_loops : loop list;
  r_cycles : int option;           (** simulation results, when run *)
  r_flops : int option;
  r_mflops : float option;
  r_dyn_ops : int option;
  r_sem_ok : bool option;
  r_utilization : (string * float) list;
      (** per-functional-unit busy fraction over the whole simulated
          execution: issue-slot uses / (cycles * units) *)
}

val loop_to_json : loop -> Json.t
(** Keys: [loop], [depth], [status], [n_units], [res_mii], [rec_mii],
    [mii], [seq_len], [achieved_ii], [optimal_ii], [efficiency],
    [certificate], [sc], [unroll], [mve_fregs], [mve_iregs],
    [prolog_words], [epilog_words], [kernel_words], [overhead],
    [intervals_probed], [fuel_spent], [mrt_occupancy]. *)

val to_json : report -> Json.t
(** Adds ["schema_version": 1]; key order fixed, so serialized output
    is byte-stable for identical inputs. *)

val pp : Format.formatter -> report -> unit
(** Human-readable rendering for [w2c --profile]. *)
