(** Modulo variable expansion (paper Section 2.3).

    A variable that is redefined at the beginning of every iteration
    would, with a single register, force successive iterations apart by
    its whole lifetime. Before scheduling, {!Ddg.build} drops the
    carried anti- and output-dependences for such variables; after
    scheduling, this module:

    - measures each candidate's lifetime [l] in the schedule and the
      number of simultaneously live values [q = floor(l/s) + 1];
    - picks the steady-state unrolling degree: [u = max q_i] by
      default (the paper's space-saving choice), or [lcm(q_i)] for the
      ablation;
    - allocates each variable the smallest {e divisor} of [u] that is
      at least [q_i] (paper: "the smallest factor of u that is no
      smaller than q_i"), so that rotating copies line up with the
      unrolled kernel;
    - checks the expanded register counts against the machine's
      register-file capacities. On overflow the compiler reverts to the
      unpipelined schedule, per the paper's policy ("when we run out of
      registers, we then resort to simple techniques that serialize the
      execution of loop iterations"). *)

open Sp_ir
open Sp_machine

let () = Sp_util.Fault.register "mve.assign"

type mode = Max_q | Lcm | Off

type alloc = {
  reg : Vreg.t;
  q : int;             (** simultaneously live values *)
  n : int;             (** register locations allocated *)
  copies : Vreg.t array;  (** [copies.(0)] is the original register *)
  birth : int;         (** first cycle the value occupies the register *)
  death : int;         (** last read in the flat schedule *)
}

type t = {
  unroll : int;        (** kernel unrolling degree [u] *)
  allocs : alloc list;
  fregs : int;         (** total FP registers after expansion *)
  iregs : int;
  fits : bool;         (** within the machine's register files *)
}

(** Rename candidate registers to the copy for (absolute pipelined)
    iteration [iter]; other registers are untouched. *)
let rename t ~iter : Vreg.t -> Vreg.t =
  let h = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace h a.reg.Vreg.id a) t.allocs;
  fun r ->
    match Hashtbl.find_opt h r.Vreg.id with
    | None -> r
    | Some a -> a.copies.(((iter mod a.n) + a.n) mod a.n)

let identity =
  { unroll = 1; allocs = []; fregs = 0; iregs = 0; fits = true }

(** Registers referenced by a unit array, with per-class counts
    (candidates counted [n] times). *)
let register_pressure (units : Sunit.t array) (allocs : alloc list) =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun (u : Sunit.t) ->
      List.iter
        (fun ((r : Vreg.t), _) -> Hashtbl.replace seen r.Vreg.id r)
        (u.Sunit.uses @ u.Sunit.defs))
    units;
  let expanded = Hashtbl.create 16 in
  List.iter (fun a -> Hashtbl.replace expanded a.reg.Vreg.id a.n) allocs;
  let f = ref 0 and i = ref 0 in
  Hashtbl.iter
    (fun rid (r : Vreg.t) ->
      let n = Option.value ~default:1 (Hashtbl.find_opt expanded rid) in
      match r.Vreg.cls with Vreg.F -> f := !f + n | Vreg.I -> i := !i + n)
    seen;
  (!f, !i)

let compute ?(mode = Max_q) (m : Machine.t) (g : Ddg.t)
    (sched : Modsched.schedule) ~(supply : Vreg.Supply.supply) : t =
  let units = g.Ddg.units in
  let s = sched.Modsched.s in
  if mode = Off || Vreg.Set.is_empty g.Ddg.mve_candidates then identity
  else begin
    (* lifetimes in the flat schedule *)
    let qs =
      List.filter_map
        (fun (r : Vreg.t) ->
          (* The register location is occupied from the moment the value
             lands in the register file (issue + write latency — while
             in flight it lives in the functional unit's pipeline
             latches) until the last read. This is the paper's lifetime
             "between the first assignment into the variable and its
             last use"; q = number of simultaneously live values. *)
          let birth = ref max_int and death = ref min_int in
          Array.iteri
            (fun i (u : Sunit.t) ->
              List.iter
                (fun ((r' : Vreg.t), t) ->
                  if Vreg.equal r r' then
                    birth := min !birth (sched.Modsched.times.(i) + t))
                u.Sunit.defs;
              List.iter
                (fun ((r' : Vreg.t), t) ->
                  if Vreg.equal r r' then
                    death := max !death (sched.Modsched.times.(i) + t))
                u.Sunit.uses)
            units;
          Sp_util.Log.debug "mve: %s birth=%d death=%d s=%d"
            (Vreg.to_string r) !birth !death s;
          if !birth = max_int then None (* candidate never defined: skip *)
          else
            (* a dead value (never read) needs exactly one location *)
            let l =
              if !death = min_int then 0 else max 0 (!death - !birth)
            in
            let q = (l / s) + 1 in
            if Sp_obs.Explain.enabled () then
              Sp_obs.Explain.record
                (Sp_obs.Explain.Mve_lifetime
                   {
                     reg = Vreg.to_string r;
                     birth = !birth;
                     death = !birth + l;
                     q;
                   });
            Some (r, q, !birth, !birth + l))
        (Vreg.Set.elements g.Ddg.mve_candidates)
    in
    let u =
      match mode with
      | Max_q -> List.fold_left (fun acc (_, q, _, _) -> max acc q) 1 qs
      | Lcm -> Sp_util.Intmath.lcm_list (List.map (fun (_, q, _, _) -> q) qs)
      | Off -> 1
    in
    let allocs =
      List.map
        (fun ((r : Vreg.t), q, birth, death) ->
          Sp_util.Fault.point "mve.assign";
          let n = Sp_util.Intmath.smallest_divisor_geq ~u ~q in
          let copies =
            Array.init n (fun k ->
                if k = 0 then r
                else
                  Vreg.Supply.fresh supply
                    ~name:(Printf.sprintf "%s.%d" r.Vreg.name k)
                    r.Vreg.cls)
          in
          { reg = r; q; n; copies; birth; death })
        qs
    in
    let fregs, iregs = register_pressure units allocs in
    if Sp_obs.Explain.enabled () then begin
      let binding =
        List.fold_left
          (fun acc a ->
            match acc with
            | Some b when b.q >= a.q -> acc
            | _ -> Some a)
          None allocs
      in
      Sp_obs.Explain.record
        (Sp_obs.Explain.Mve_choice
           {
             unroll = u;
             mode =
               (match mode with
               | Max_q -> "max-q"
               | Lcm -> "lcm"
               | Off -> "off");
             binding_reg =
               (match binding with
               | Some a -> Vreg.to_string a.reg
               | None -> "");
             binding_q = (match binding with Some a -> a.q | None -> 1);
             fits = fregs <= m.Machine.fregs && iregs <= m.Machine.iregs;
           })
    end;
    {
      unroll = u;
      allocs;
      fregs;
      iregs;
      fits = fregs <= m.Machine.fregs && iregs <= m.Machine.iregs;
    }
  end
