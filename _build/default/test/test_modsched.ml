(** Property tests for the modulo scheduler: every schedule it produces
    satisfies all dependence constraints and the modulo resource
    reservation discipline, at an interval no smaller than the bounds. *)

open Sp_ir
module Opkind = Sp_machine.Opkind
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
module Modsched = Sp_core.Modsched
module Mii = Sp_core.Mii
module Listsched = Sp_core.Listsched
module Mrt = Sp_core.Mrt

let m = Sp_machine.Machine.warp

(* ---- random loop bodies as raw unit arrays -------------------------- *)

type rng = { mutable s : int }

let next rng n =
  rng.s <- ((rng.s * 1103515245) + 12345) land 0x3FFFFFFF;
  rng.s mod n

let random_units seed k : Sunit.t array =
  let rng = { s = seed + 17 } in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh segs ~name:"a" ~size:64 () in
  let iv = Vreg.Supply.fresh sup ~name:"i" Vreg.I in
  let il = Vreg.Supply.fresh sup ~name:"i'" Vreg.I in
  let regs = ref [ Vreg.Supply.fresh sup Vreg.F; Vreg.Supply.fresh sup Vreg.F ] in
  let pick () = List.nth !regs (next rng (List.length !regs)) in
  let fresh () =
    let r = Vreg.Supply.fresh sup Vreg.F in
    regs := r :: !regs;
    r
  in
  let mk_op () =
    match next rng 6 with
    | 0 | 1 ->
      Op.Supply.mk ops ~dst:(fresh ()) ~srcs:[ pick (); pick () ] Opkind.Fadd
    | 2 ->
      Op.Supply.mk ops ~dst:(fresh ()) ~srcs:[ pick (); pick () ] Opkind.Fmul
    | 3 ->
      let off = next rng 8 in
      Op.Supply.mk ops ~dst:(fresh ())
        ~addr:
          { Op.seg; base = None; idx = Some il; off;
            sub = Some (Subscript.of_iv ~off il) }
        Opkind.Load
    | 4 ->
      let off = next rng 8 in
      Op.Supply.mk ops ~srcs:[ pick () ]
        ~addr:
          { Op.seg; base = None; idx = Some il; off;
            sub = Some (Subscript.of_iv ~off il) }
        Opkind.Store
    | _ ->
      (* accumulator step: a carried dependence *)
      let a = pick () in
      Op.Supply.mk ops ~dst:a ~srcs:[ a; pick () ] Opkind.Fadd
  in
  let body = List.init k (fun _ -> mk_op ()) in
  (* the synthesized counter copy and update, as the compiler adds them *)
  let copy = Op.Supply.mk ops ~dst:il ~srcs:[ iv ] Opkind.Amov in
  let upd = Op.Supply.mk ops ~dst:iv ~srcs:[ iv; iv ] Opkind.Aadd in
  Array.of_list
    (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) ((copy :: body) @ [ upd ]))

let spec_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let* k = int_range 1 10 in
    return (seed, k))

(* rebuild a modulo table from a schedule and check it is legal *)
let resources_ok units times ~s =
  let nres = Sp_machine.Machine.num_resources m in
  let counts = Array.make_matrix s nres 0 in
  let ok = ref true in
  Array.iteri
    (fun i (u : Sunit.t) ->
      List.iter
        (fun (off, rid) ->
          let slot = (times.(i) + off) mod s in
          counts.(slot).(rid) <- counts.(slot).(rid) + 1;
          if
            counts.(slot).(rid)
            > (Sp_machine.Machine.resource m rid).Sp_machine.Machine.count
          then ok := false)
        u.Sunit.resv)
    units;
  !ok

let prop_schedule_valid =
  QCheck2.Test.make ~name:"modulo schedules satisfy all constraints"
    ~count:200 spec_gen (fun (seed, k) ->
      let units = random_units seed k in
      let g = Ddg.build units in
      let pl = Listsched.compact m g in
      let seq_len = Listsched.restart_interval g pl in
      let analysis = Modsched.analyze ~s_max:seq_len g in
      let mii =
        Mii.compute m units ~rec_mii:analysis.Modsched.a_rec_mii
      in
      match
        Modsched.schedule ~analysis m g ~mii:mii.Mii.mii ~max_ii:seq_len
      with
      | None -> true (* nothing schedulable in range: acceptable *)
      | Some sched ->
        let s = sched.Modsched.s in
        let times = sched.Modsched.times in
        (* 1. interval within bounds *)
        s >= mii.Mii.mii
        && s <= seq_len
        (* 2. every dependence satisfied *)
        && List.for_all
             (fun (e : Ddg.edge) ->
               times.(e.Ddg.dst) - times.(e.Ddg.src)
               >= e.Ddg.delay - (s * e.Ddg.omega))
             g.Ddg.edges
        (* 3. all times non-negative *)
        && Array.for_all (fun t -> t >= 0) times
        (* 4. modulo resource discipline *)
        && resources_ok units times ~s)

let prop_schedule_at_least_rec_bound =
  QCheck2.Test.make ~name:"achieved interval >= recurrence bound" ~count:200
    spec_gen (fun (seed, k) ->
      let units = random_units seed k in
      let g = Ddg.build units in
      let pl = Listsched.compact m g in
      let seq_len = Listsched.restart_interval g pl in
      let analysis = Modsched.analyze ~s_max:seq_len g in
      match
        Modsched.schedule ~analysis m g ~mii:1 ~max_ii:seq_len
      with
      | None -> true
      | Some sched -> sched.Modsched.s >= analysis.Modsched.a_rec_mii)

(* ---- deterministic cases -------------------------------------------- *)

let test_vadd_hits_bound () =
  (* load / add / store + induction on the toy machine (separate read
     and write ports): all bounds are 1, and the scheduler finds II = 1
     — the paper's Section 2 example *)
  let m = Sp_machine.Machine.toy in
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh segs ~name:"a" ~size:64 () in
  let iv = Vreg.Supply.fresh sup ~name:"i" Vreg.I in
  let il = Vreg.Supply.fresh sup ~name:"i'" Vreg.I in
  let k = Vreg.Supply.fresh sup ~name:"k" Vreg.F in
  let x = Vreg.Supply.fresh sup Vreg.F in
  let y = Vreg.Supply.fresh sup Vreg.F in
  let addr off =
    { Op.seg; base = None; idx = Some il; off; sub = Some (Subscript.of_iv ~off il) }
  in
  (* mirror the builder: addresses use a per-iteration copy of the
     counter so the counter's update does not serialize the pipeline *)
  let body =
    [
      Op.Supply.mk ops ~dst:il ~srcs:[ iv ] Opkind.Amov;
      Op.Supply.mk ops ~dst:x ~addr:(addr 0) Opkind.Load;
      Op.Supply.mk ops ~dst:y ~srcs:[ x; k ] Opkind.Fadd;
      Op.Supply.mk ops ~srcs:[ y ] ~addr:(addr 0) Opkind.Store;
      Op.Supply.mk ops ~dst:iv ~srcs:[ iv; iv ] Opkind.Aadd;
    ]
  in
  let units =
    Array.of_list (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) body)
  in
  let g = Ddg.build units in
  let pl = Listsched.compact m g in
  let seq_len = Listsched.restart_interval g pl in
  let analysis = Modsched.analyze ~s_max:seq_len g in
  let mii = Mii.compute m units ~rec_mii:analysis.Modsched.a_rec_mii in
  Alcotest.(check int) "mii is 1" 1 mii.Mii.mii;
  match Modsched.schedule ~analysis m g ~mii:1 ~max_ii:seq_len with
  | Some sched -> Alcotest.(check int) "II = 1" 1 sched.Modsched.s
  | None -> Alcotest.fail "vadd must schedule"

let test_accumulator_rec_bound () =
  (* acc += x: II pinned to the adder latency *)
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let acc = Vreg.Supply.fresh sup Vreg.F in
  let x = Vreg.Supply.fresh sup Vreg.F in
  let add = Op.Supply.mk ops ~dst:acc ~srcs:[ acc; x ] Opkind.Fadd in
  let units = [| Sunit.of_op m ~sid:0 add |] in
  let g = Ddg.build units in
  let analysis = Modsched.analyze ~s_max:50 g in
  Alcotest.(check int) "recurrence bound = adder latency" 7
    analysis.Modsched.a_rec_mii

let test_resource_bound () =
  (* three loads per iteration through one memory port: ResMII = 3 *)
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let seg = Memseg.Supply.fresh segs ~name:"a" ~size:64 () in
  let iv = Vreg.Supply.fresh sup ~name:"i" Vreg.I in
  let mk off =
    Op.Supply.mk ops
      ~dst:(Vreg.Supply.fresh sup Vreg.F)
      ~addr:
        { Op.seg; base = None; idx = Some iv; off;
          sub = Some (Subscript.of_iv ~off iv) }
      Opkind.Load
  in
  let units =
    Array.of_list
      (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) [ mk 0; mk 1; mk 2 ])
  in
  Alcotest.(check int) "ResMII 3" 3 (Mii.resource_bound m units)

let test_binary_search_exists () =
  (* the ablation path returns a legal schedule too *)
  let units = random_units 42 6 in
  let g = Ddg.build units in
  let pl = Listsched.compact m g in
  let seq_len = Listsched.restart_interval g pl in
  match Modsched.schedule ~search:Modsched.Binary m g ~mii:1 ~max_ii:seq_len with
  | Some sched ->
    Alcotest.(check bool) "constraints hold" true
      (List.for_all
         (fun (e : Ddg.edge) ->
           sched.Modsched.times.(e.Ddg.dst) - sched.Modsched.times.(e.Ddg.src)
           >= e.Ddg.delay - (sched.Modsched.s * e.Ddg.omega))
         g.Ddg.edges)
  | None -> Alcotest.fail "binary search should find something"

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    qt prop_schedule_valid;
    qt prop_schedule_at_least_rec_bound;
    ("vadd reaches II=1", `Quick, test_vadd_hits_bound);
    ("accumulator recurrence bound", `Quick, test_accumulator_rec_bound);
    ("resource bound", `Quick, test_resource_bound);
    ("binary search ablation", `Quick, test_binary_search_exists);
  ]
