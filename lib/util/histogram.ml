(** Fixed-bucket histograms.

    Originally text renderings for the figure reproductions (Figures
    4-1 and 4-2 of the paper are histograms over a program population);
    now also the distribution type of the metrics registry
    ([Sp_obs.Metrics]), so the shape operations are specified tightly:

    - {!add} clamps into range — the first bucket absorbs underflow,
      the last absorbs overflow — so [count] always equals the number
      of [add]s;
    - {!merge} of same-shaped histograms adds counts pointwise and is
      associative and commutative (bucket counts, totals and extrema
      all combine associatively);
    - {!quantile} is the standard nearest-rank estimate interpolated
      within the selected bucket, clamped to the observed extrema so
      singleton and constant distributions report exact values. *)

type t = {
  lo : float;          (** lower edge of the first bucket *)
  width : float;       (** bucket width *)
  counts : int array;  (** per-bucket counts; last bucket catches overflow *)
  mutable n : int;
  mutable total : float;
  mutable mn : float;  (** least sample; [infinity] when empty *)
  mutable mx : float;  (** greatest sample; [neg_infinity] when empty *)
}

let create ~lo ~width ~buckets =
  if width <= 0. then invalid_arg "Histogram.create: non-positive width";
  if buckets <= 0 then invalid_arg "Histogram.create: no buckets";
  {
    lo;
    width;
    counts = Array.make buckets 0;
    n = 0;
    total = 0.;
    mn = infinity;
    mx = neg_infinity;
  }

let add t x =
  let i = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  let i = max 0 (min (Array.length t.counts - 1) i) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let of_list ~lo ~width ~buckets xs =
  let t = create ~lo ~width ~buckets in
  List.iter (add t) xs;
  t

let count t = t.n
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n
let minimum t = if t.n = 0 then None else Some t.mn
let maximum t = if t.n = 0 then None else Some t.mx

let same_shape a b =
  a.lo = b.lo && a.width = b.width
  && Array.length a.counts = Array.length b.counts

(** An independent copy: mutating the copy (or the original) does not
    affect the other. *)
let copy t = { t with counts = Array.copy t.counts }

let merge a b =
  if not (same_shape a b) then invalid_arg "Histogram.merge: shape mismatch";
  (* empty fast paths double as the identity laws the shard-merge
     property relies on: merge with an empty histogram is a copy, so
     extrema stay [infinity]/[neg_infinity] only when BOTH are empty
     and [minimum]/[maximum] keep reporting [None] exactly when
     [count] is 0 *)
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else
    {
      lo = a.lo;
      width = a.width;
      counts =
        Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      n = a.n + b.n;
      total = a.total +. b.total;
      mn = Float.min a.mn b.mn;
      mx = Float.max a.mx b.mx;
    }

(** Merge a non-empty list of same-shaped histograms left to right.
    A singleton list yields an independent {!copy}. *)
let merge_all = function
  | [] -> invalid_arg "Histogram.merge_all: empty list"
  | [ t ] -> copy t
  | t :: ts -> List.fold_left merge t ts

(** Nearest-rank quantile, interpolated within the bucket holding the
    rank and clamped to the observed extrema. [None] when empty;
    [quantile t 0.] is the minimum, [quantile t 1.] the maximum. *)
let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.n = 0 then None
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.n))) in
    let i = ref 0 and cum = ref 0 in
    while !cum + t.counts.(!i) < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    (* midpoint estimate: the k-th of c samples in a bucket sits at
       fraction (k - 0.5)/c of the bucket, so q=0 clamps down to the
       minimum and q=1 up to the maximum *)
    let inside =
      (float_of_int (rank - !cum) -. 0.5) /. float_of_int t.counts.(!i)
    in
    let est = t.lo +. (t.width *. (float_of_int !i +. inside)) in
    Some (Float.max t.mn (Float.min t.mx est))
  end

let bucket_label t i =
  Printf.sprintf "%5.2f-%5.2f"
    (t.lo +. (float_of_int i *. t.width))
    (t.lo +. (float_of_int (i + 1) *. t.width))

(** Render with one row per bucket: [label | ### count]. *)
let pp ?(bar_unit = 1) ppf t =
  Array.iteri
    (fun i c ->
      let bar = String.make (c / max 1 bar_unit) '#' in
      Fmt.pf ppf "%s | %-30s %d@." (bucket_label t i) bar c)
    t.counts
