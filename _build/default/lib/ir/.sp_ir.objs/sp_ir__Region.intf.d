lib/ir/region.mli: Format Op Vreg
