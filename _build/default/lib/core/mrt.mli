(** Resource reservation tables: the modulo table of the paper's
    Section 2.1 ("the resource usage of time t is mapped to that of
    time t mod s") and the unbounded table used when compacting
    straight-line code. *)

module Modulo : sig
  type t

  val create : Sp_machine.Machine.t -> s:int -> t

  val fits : t -> at:int -> (int * int) list -> bool
  (** May a reservation (a multiset of [(offset, resource)] pairs) be
      placed with its origin at time [at]? Demand from offsets that are
      congruent modulo [s] is summed before checking the limit. *)

  val add : t -> at:int -> (int * int) list -> unit
  val remove : t -> at:int -> (int * int) list -> unit
end

module Linear : sig
  type t

  val create : Sp_machine.Machine.t -> t
  val fits : t -> at:int -> (int * int) list -> bool
  val add : t -> at:int -> (int * int) list -> unit
end
