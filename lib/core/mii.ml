(** Lower bounds on the initiation interval (paper Section 2.2.1).

    - {e Resource bound}: "the maximum ratio between the total number of
      times each resource is used and the number of available units per
      instruction".
    - {e Precedence (recurrence) bound}: over every dependence cycle [c]
      with iteration difference [p(c) > 0], [ceil(d(c) / p(c))] —
      computed by {!Modsched.analyze} / {!Spath.rec_mii_bound}.
*)

open Sp_machine

type t = {
  res_mii : int;
  rec_mii : int;
  mii : int;            (** max of the two, and at least 1 *)
}

let resource_bound (m : Machine.t) (units : Sunit.t array) =
  let nres = Machine.num_resources m in
  let total = Array.make nres 0 in
  Array.iter
    (fun (u : Sunit.t) ->
      List.iter (fun (_, rid) -> total.(rid) <- total.(rid) + 1) u.Sunit.resv)
    units;
  let bound = ref 0 in
  for rid = 0 to nres - 1 do
    let avail = (Machine.resource m rid).Machine.count in
    if total.(rid) > 0 then
      bound := max !bound (Sp_util.Intmath.ceil_div total.(rid) avail)
  done;
  !bound

let per_resource (m : Machine.t) (units : Sunit.t array) =
  let nres = Machine.num_resources m in
  let total = Array.make nres 0 in
  Array.iter
    (fun (u : Sunit.t) ->
      List.iter (fun (_, rid) -> total.(rid) <- total.(rid) + 1) u.Sunit.resv)
    units;
  List.filter_map
    (fun rid ->
      if total.(rid) = 0 then None
      else Some ((Machine.resource m rid).Machine.rname, total.(rid)))
    (List.init nres Fun.id)

let compute (m : Machine.t) (units : Sunit.t array) ~rec_mii =
  let res_mii = resource_bound m units in
  { res_mii; rec_mii; mii = max 1 (max res_mii rec_mii) }
