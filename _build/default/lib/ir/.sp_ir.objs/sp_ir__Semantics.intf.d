lib/ir/semantics.mli: Format Memseg Op Vreg
