lib/machine/machine.mli: Opkind
