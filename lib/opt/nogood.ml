(** Learned nogoods with re-validatable certificates (see the .mli).

    Representation notes: literals are kept sorted by variable so
    structural comparison is canonical; the consultation index is a
    hash table from the (deepest variable, its residue) pair to the
    nogoods keyed there. Chronological placement guarantees that when
    the solver probes that variable, every other literal's variable is
    already placed, so a consultation is a single bucket scan with an
    O(|lits|) check per entry. *)

module Sunit = Sp_core.Sunit
module Intmath = Sp_util.Intmath

type lit = { var : int; res : int }

type cert =
  | C_window of { u : int; v : int }
  | C_resource of { rid : int }
  | C_cycle of { edges : (int * int * int * int) list }
  | C_derived

type nogood = { lits : lit array; cert : cert }

(* Caps: a nogood wider than this is too specific to ever fire again
   (and slows every consultation touching its key); a bank larger than
   this marks a loop where learning is churning, not converging. *)
let max_lits = 16
let max_bank = 10_000

type t = {
  mutable goods : nogood list;  (* newest first *)
  mutable count : int;
  index : (int * int, nogood list) Hashtbl.t;
  mutable depth_of : int -> int;
}

let create () =
  {
    goods = [];
    count = 0;
    index = Hashtbl.create 64;
    depth_of = (fun v -> v);
  }

let size t = t.count
let entries t = t.goods

let deepest_lit t (ng : nogood) =
  let best = ref ng.lits.(0) in
  Array.iter
    (fun l -> if t.depth_of l.var > t.depth_of !best.var then best := l)
    ng.lits;
  !best

let index_one t ng =
  let l = deepest_lit t ng in
  let key = (l.var, l.res) in
  let prev = Option.value ~default:[] (Hashtbl.find_opt t.index key) in
  Hashtbl.replace t.index key (ng :: prev)

let add t ng =
  if Array.length ng.lits = 0 || Array.length ng.lits > max_lits
     || t.count >= max_bank
  then false
  else begin
    t.goods <- ng :: t.goods;
    t.count <- t.count + 1;
    index_one t ng;
    true
  end

let reindex t ~depth_of =
  t.depth_of <- depth_of;
  Hashtbl.reset t.index;
  List.iter (index_one t) (List.rev t.goods)

let consult t ~var ~res ~assigned =
  match Hashtbl.find_opt t.index (var, res) with
  | None -> None
  | Some bucket ->
    let fires ng =
      Array.for_all
        (fun l ->
          if l.var = var then l.res = res else assigned.(l.var) = l.res)
        ng.lits
    in
    List.find_opt fires bucket

(* ------------------------------------------------------------------ *)
(* Re-validation at a new interval                                     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  units : Sunit.t array;
  limit : int -> int;
  window : u:int -> v:int -> (int * int) option;
}

let lit_res (ng : nogood) v =
  let r = ref (-1) in
  Array.iter (fun l -> if l.var = v then r := l.res) ng.lits;
  !r

let revalidate ctx ~s (ng : nogood) =
  match ng.cert with
  | C_derived -> false
  | C_window { u; v } -> (
    let ru = lit_res ng u and rv = lit_res ng v in
    ru >= 0 && rv >= 0
    &&
    match ctx.window ~u ~v with
    | None -> false
    | Some (lo, up) ->
      (* the window pins t(v) - t(u) to one residue class mod s; the
         recorded residues must miss it for the conflict to recur *)
      up - lo + 1 < s
      &&
      let dm = ((rv - ru - lo) mod s + s) mod s in
      dm > up - lo)
  | C_resource { rid } ->
    (* re-place every literal's reservation in the new modulo space
       and look for an oversubscribed slot of [rid] *)
    let demand = Hashtbl.create 8 in
    Array.iter
      (fun l ->
        List.iter
          (fun (off, r) ->
            if r = rid then begin
              let slot = (((l.res + off) mod s) + s) mod s in
              let d =
                Option.value ~default:0 (Hashtbl.find_opt demand slot)
              in
              Hashtbl.replace demand slot (d + 1)
            end)
          ctx.units.(l.var).Sunit.resv)
      ng.lits;
    Hashtbl.fold (fun _ d acc -> acc || d > ctx.limit rid) demand false
  | C_cycle { edges } ->
    (* positive k-graph weight of the recorded cycle under the
       literals' residues at the new interval *)
    let total =
      List.fold_left
        (fun acc (src, dst, delay, omega) ->
          let ru = lit_res ng src and rv = lit_res ng dst in
          if ru < 0 || rv < 0 then min_int
          else acc + Intmath.ceil_div (delay + ru - rv) s - omega)
        0 edges
    in
    total > 0

let carry t ctx ~s =
  let kept = List.filter (revalidate ctx ~s) t.goods in
  t.goods <- kept;
  t.count <- List.length kept;
  Hashtbl.reset t.index;
  List.iter (index_one t) (List.rev t.goods);
  t.count
