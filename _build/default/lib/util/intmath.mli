(** Small integer-math helpers used throughout the scheduler. *)

val gcd : int -> int -> int
(** Greatest common divisor; [gcd 0 0 = 0]. Always non-negative. *)

val lcm : int -> int -> int
(** Least common multiple; [lcm x 0 = 0]. Always non-negative. *)

val lcm_list : int list -> int
(** LCM of a list; [lcm_list [] = 1]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the ceiling of [a / b]. Requires [b > 0]. *)

val floor_div : int -> int -> int
(** [floor_div a b] is the floor of [a / b]. Requires [b > 0]. *)

val divisors : int -> int list
(** Positive divisors in increasing order. Requires a positive argument. *)

val smallest_divisor_geq : u:int -> q:int -> int
(** Smallest divisor of [u] no smaller than [q] — the register-count
    rounding rule of Lam Section 2.3. Requires [1 <= q <= u]. *)

val clamp : lo:int -> hi:int -> int -> int

val sum : int list -> int

val max_list : int list -> int
(** Raises [Invalid_argument] on the empty list. *)

val min_list : int list -> int
(** Raises [Invalid_argument] on the empty list. *)

val range : int -> int -> int list
(** [range lo hi] is [[lo; …; hi-1]]; empty when [hi <= lo]. *)
