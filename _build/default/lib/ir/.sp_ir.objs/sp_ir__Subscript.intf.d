lib/ir/subscript.mli: Format Vreg
