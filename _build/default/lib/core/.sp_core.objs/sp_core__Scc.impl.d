lib/core/scc.ml: Array List Sp_util
