lib/kernels/kernel.ml: Interp List Machine_state Memseg Program Sp_core Sp_ir Sp_lang Sp_machine Sp_vliw
