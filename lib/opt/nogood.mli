(** Learned nogoods for the exact modulo scheduler.

    A {e nogood} is a partial residue assignment proved unextendable to
    any modulo schedule at the interval it was learned for. Each one
    carries a {e certificate} naming the constraint family it came
    from, which serves two purposes: primitive certificates (window,
    resource, cycle) can be {e re-validated} at a different initiation
    interval — the incremental re-solve of {!Certify} carries a bank
    across its upward II scan — and every certificate can be replayed
    against the raw constraints, which is how the soundness qcheck
    property and the campaign cross-check audit the learner. *)

type lit = {
  var : int;  (** unit id *)
  res : int;  (** its residue modulo the interval *)
}

(** Why the assignment is unextendable. The first three are
    {e primitive} — direct images of one violated constraint, valid at
    any interval where the recorded violation recurs. [Derived]
    nogoods come from subtree exhaustion under the solver's rotation
    anchor; they are sound only for the solve that learned them and
    are dropped when a bank is carried to a new interval. *)
type cert =
  | C_window of { u : int; v : int }
      (** the longest-path window between [u] and [v] admits no
          residue difference class matching the two literals *)
  | C_resource of { rid : int }
      (** the literals' reservations oversubscribe resource [rid] in
          some modulo slot *)
  | C_cycle of { edges : (int * int * int * int) list }
      (** [(src, dst, delay, omega)] edges of a dependence cycle whose
          k-graph weight is positive under the literals' residues *)
  | C_derived

type nogood = {
  lits : lit array;  (** sorted by [var], no duplicates *)
  cert : cert;
}

type t
(** A mutable bank: the learned nogoods plus a consultation index
    keyed by each nogood's deepest literal in the current variable
    order (rebuilt by {!reindex} whenever the order changes). *)

val create : unit -> t
val size : t -> int
val entries : t -> nogood list
(** Newest first. *)

val add : t -> nogood -> bool
(** Record a nogood and index it under the current depth map. Returns
    [false] (and drops it) when the literal-count or bank-size cap
    would be exceeded — caps keep consultation O(small) and the bank
    bounded on adversarial loops. *)

val reindex : t -> depth_of:(int -> int) -> unit
(** Rebuild the consultation index for a new variable order:
    [depth_of v] is [v]'s position in the order. Each nogood is keyed
    by its deepest literal, the unique point in a chronological
    placement where all its other literals are already decided. *)

val consult : t -> var:int -> res:int -> assigned:int array -> nogood option
(** Would placing [var] at [res] complete a recorded nogood?
    [assigned.(v)] is the placed residue of [v] ([-1] when unplaced).
    Returns the first firing nogood: every literal other than
    [(var, res)] matches a placed residue. *)

(** Everything needed to re-validate primitive certificates at a new
    interval. *)
type ctx = {
  units : Sp_core.Sunit.t array;
  limit : int -> int;  (** resource id -> units per instruction *)
  window : u:int -> v:int -> (int * int) option;
      (** inclusive bounds [(lo, up)] on [t(v) - t(u)] at the {e new}
          interval, [None] when unbounded (no closure, or wider than
          representable) *)
}

val revalidate : ctx -> s:int -> nogood -> bool
(** Does the certificate still prove a violation at interval [s]?
    [Derived] certificates never revalidate. *)

val carry : t -> ctx -> s:int -> int
(** Drop every nogood whose certificate fails {!revalidate} at the new
    interval [s]; returns how many survived. The caller must
    {!reindex} before the next solve. *)
