lib/kernels/suite.ml: Array Kernel List Printf String
