lib/core/listsched.ml: Array Ddg List Machine Mrt Sp_machine Sp_util Sunit
