(** Memory segments: the data memory is a set of named segments, one
    per source-level array. A segment can carry the paper's
    disambiguation directive ([independent]): carried memory
    dependences between individual references to it are not generated
    (Table 4-2's starred kernels; whole-construct summaries stay
    ordered regardless — see {!Sp_core.Ddg}). *)

type elt = Float_elt | Int_elt

type t = {
  sid : int;
  sname : string;
  size : int;
  elt : elt;
  independent : bool;
}

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Supply : sig
  type supply

  val create : unit -> supply

  val fresh :
    supply ->
    ?independent:bool ->
    ?elt:elt ->
    name:string ->
    size:int ->
    unit ->
    t
end
