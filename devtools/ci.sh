#!/bin/sh
# Tier-1 verification in one command: build, unit/property tests, then a
# CLI smoke pass — every example must compile, validate, and match the
# sequential interpreter, and every expected failure must surface as a
# structured error (never an uncaught exception).
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

W2C="dune exec --no-build bin/w2c.exe --"

echo "== example smoke: run --validate --verify"
for f in examples/*.w2; do
  echo "   $f"
  $W2C run --validate --verify "$f" >/dev/null
done

# Expected failures: each must exit nonzero with a clean one-line error.
expect_fail() {
  label="$1"; shift
  out=$("$@" 2>&1) && {
    echo "FAIL: $label: expected a nonzero exit"
    echo "$out"
    exit 1
  }
  case "$out" in
  *"Raised at"* | *"Fatal error"* | *backtrace*)
    echo "FAIL: $label: uncaught exception leaked:"
    echo "$out"
    exit 1
    ;;
  esac
  echo "   $label: ok"
}

echo "== expect-fail smoke"
expect_fail "missing file" \
  dune exec --no-build bin/w2c.exe -- run devtools/smoke/no_such_file.w2
expect_fail "parse error" \
  dune exec --no-build bin/w2c.exe -- run devtools/smoke/parse_error.w2
expect_fail "cycle limit" \
  dune exec --no-build bin/w2c.exe -- run --max-cycles 5 examples/saxpy.w2
expect_fail "unknown fault site" \
  dune exec --no-build bin/w2c.exe -- run --inject bogus.site@1 examples/saxpy.w2

echo "== degradation smoke: injected fault still runs and validates"
$W2C run --validate --verify --inject modsched.place@1 examples/saxpy.w2 \
  >/dev/null

echo "== exact-certifier smoke: bounded --opt exact over the examples"
for f in examples/*.w2; do
  echo "   $f"
  out=$($W2C schedule --opt exact --opt-fuel 200000 "$f")
  case "$out" in
  *"{cert:"*) ;;
  *)
    echo "FAIL: $f: schedule report carries no certificate"
    echo "$out"
    exit 1
    ;;
  esac
done
$W2C run --validate --verify --opt exact --opt-fuel 200000 \
  examples/conv1d.w2 >/dev/null

echo "== portfolio smoke: --opt-portfolio keeps the certificate"
out=$($W2C run --validate --opt exact --opt-fuel 200000 --opt-portfolio 4 \
  examples/saxpy.w2)
case "$out" in
*"cert: optimal"*) ;;
*)
  echo "FAIL: portfolio certification lost the optimality certificate"
  echo "$out"
  exit 1
  ;;
esac
expect_fail "portfolio width 0" \
  dune exec --no-build bin/w2c.exe -- run --opt exact --opt-portfolio 0 \
  examples/saxpy.w2

echo "== observability smoke: --trace/--metrics/--profile artifacts validate"
JSONV="dune exec --no-build devtools/jsonv.exe --"
OBS=$(mktemp -d)
# the daemon smoke below backgrounds a w2cd; make sure an aborted run
# never orphans it (or its socket) alongside the scratch dir
W2CD_PID=""
cleanup() {
  if [ -n "$W2CD_PID" ]; then
    kill "$W2CD_PID" 2>/dev/null || true
  fi
  rm -rf "$OBS"
}
trap cleanup EXIT
$W2C run --validate --trace "$OBS/trace.json" --metrics "$OBS/metrics.json" \
  --profile examples/saxpy.w2 >"$OBS/profile.txt"
$JSONV "$OBS/trace.json" traceEvents/0/name >/dev/null
$JSONV "$OBS/metrics.json" schema_version \
  metrics/modsched.intervals_probed/value \
  metrics/modsched.fuel_spent/value \
  metrics/sim.cycles/value >/dev/null
for phase in compile.parse compile.typecheck compile.lower compile \
  compile.ddg compile.compact compile.mii compile.modsched compile.mve \
  compile.emit compile.validate; do
  grep -q "\"name\":\"$phase\"" "$OBS/trace.json" || {
    echo "FAIL: trace is missing the $phase span"
    exit 1
  }
done
grep -q "mrt occupancy" "$OBS/profile.txt" || {
  echo "FAIL: --profile printed no schedule-quality report"
  exit 1
}
echo "   trace/metrics/profile: ok"

echo "== explain smoke: decision log names the binding constraint"
# cmdliner note: --explain takes an optional value, so it must follow
# the positional FILE argument
$W2C schedule examples/saxpy.w2 --explain >"$OBS/explain.txt"
grep -qE "(resource|recurrence|control)-bound" "$OBS/explain.txt" || {
  echo "FAIL: --explain names no binding constraint"
  cat "$OBS/explain.txt"
  exit 1
}
$W2C schedule examples/saxpy.w2 --explain-json "$OBS/e1.json" >/dev/null
$W2C schedule examples/saxpy.w2 --explain-json "$OBS/e2.json" >/dev/null
$JSONV "$OBS/e1.json" schema_version loops/0/events/0/kind >/dev/null
cmp -s "$OBS/e1.json" "$OBS/e2.json" || {
  echo "FAIL: --explain-json output differs between identical runs"
  exit 1
}
echo "   explain report + byte-stable JSON: ok"

echo "== render smoke: visual artifacts are self-contained"
$W2C run --validate examples/conv1d.w2 --render "$OBS/render" >/dev/null
name=$(basename examples/conv1d.w2 .w2)
test -s "$OBS/render/$name.txt" && test -s "$OBS/render/$name.html" || {
  echo "FAIL: --render wrote no artifacts"
  exit 1
}
grep -q "<svg" "$OBS/render/$name.html" || {
  echo "FAIL: rendered HTML carries no inline SVG"
  exit 1
}
if grep -qE "https?://|<script src|<link" "$OBS/render/$name.html"; then
  echo "FAIL: rendered HTML references external resources"
  exit 1
fi
echo "   render artifacts: ok"

echo "== bench smoke: budget-capped optimality gap table"
dune exec --no-build bench/main.exe -- --table optimal-quick >/dev/null

echo "== bench smoke: JSON artifacts are schema-stable across runs"
dune exec --no-build bench/main.exe -- --table optimal-quick \
  --emit-json "$OBS/a.json" >/dev/null
dune exec --no-build bench/main.exe -- --table optimal-quick \
  --emit-json "$OBS/b.json" >/dev/null
$JSONV "$OBS/a.json" schema_version generator artifacts >/dev/null
cmp -s "$OBS/a.json" "$OBS/b.json" || {
  echo "FAIL: bench --emit-json output differs between identical runs"
  exit 1
}
echo "   emit-json stability: ok"

echo "== bench smoke: learning certifier agrees and is jobs-invariant"
dune exec --no-build bench/main.exe -- --table optimal-learning-quick \
  --emit-json "$OBS/ol1.json" >/dev/null || {
  echo "FAIL: optimal-learning-quick found a solver disagreement"
  dune exec --no-build bench/main.exe -- --table optimal-learning-quick || true
  exit 1
}
dune exec --no-build bench/main.exe -- --table optimal-learning-quick \
  --jobs 2 --emit-json "$OBS/ol2.json" >/dev/null
dune exec --no-build bench/main.exe -- --table optimal-learning-quick \
  --jobs 8 --emit-json "$OBS/ol8.json" >/dev/null
$JSONV "$OBS/ol1.json" \
  artifacts/optimal-learning-quick/schema=bench-optimal-learning-quick/1 \
  artifacts/optimal-learning-quick/loops \
  artifacts/optimal-learning-quick/proven_on \
  artifacts/optimal-learning-quick/disagreements=0 >/dev/null
if ! cmp -s "$OBS/ol1.json" "$OBS/ol2.json" ||
  ! cmp -s "$OBS/ol1.json" "$OBS/ol8.json"; then
  echo "FAIL: optimal-learning artifact differs across --jobs"
  exit 1
fi
echo "   learning + portfolio jobs-invariance: ok"

echo "== bench smoke: tracing disabled stays zero-cost"
dune exec --no-build bench/main.exe -- --table trace-overhead >/dev/null

echo "== parallel smoke: -j 8 output byte-identical to -j 1"
for f in examples/saxpy.w2 examples/conv1d.w2; do
  $W2C compile "$f" -j 1 >"$OBS/j1.txt"
  $W2C compile "$f" -j 8 >"$OBS/j8.txt"
  cmp -s "$OBS/j1.txt" "$OBS/j8.txt" || {
    echo "FAIL: $f: compiled output differs between -j 1 and -j 8"
    exit 1
  }
  $W2C schedule "$f" -j 1 --explain-json "$OBS/ej1.json" >/dev/null
  $W2C schedule "$f" -j 8 --explain-json "$OBS/ej8.json" >/dev/null
  cmp -s "$OBS/ej1.json" "$OBS/ej8.json" || {
    echo "FAIL: $f: explain log differs between -j 1 and -j 8"
    exit 1
  }
  # work-cost profiles count deterministic units, so they obey the
  # same identity: a shard merge at any width reproduces -j 1 exactly
  $W2C schedule "$f" -j 1 --cost-json "$OBS/cj1.json" >/dev/null
  $W2C schedule "$f" -j 8 --cost-json "$OBS/cj8.json" >/dev/null
  cmp -s "$OBS/cj1.json" "$OBS/cj8.json" || {
    echo "FAIL: $f: cost profile differs between -j 1 and -j 8"
    exit 1
  }
done
echo "   -j determinism: ok"

echo "== bench smoke: compile-throughput corpus (quick, parallel driver)"
# the table itself exits nonzero if any job count changes the output
dune exec --no-build bench/main.exe -- --table compile-speed-quick \
  --emit-json "$OBS/cs1.json" >/dev/null
dune exec --no-build bench/main.exe -- --table compile-speed-quick \
  --emit-json "$OBS/cs2.json" >/dev/null
$JSONV "$OBS/cs1.json" schema_version \
  artifacts/compile_speed/corpus \
  artifacts/compile_speed/identical_across_j \
  artifacts/compile_speed/code_size \
  artifacts/compile_speed/loops/0/status >/dev/null
cmp -s "$OBS/cs1.json" "$OBS/cs2.json" || {
  echo "FAIL: compile-speed artifact differs between identical runs"
  exit 1
}
echo "   compile-speed artifact: ok"

echo "== committed pipeline profile still parses"
$JSONV BENCH_pipeline.json schema_version \
  artifacts/pipeline/kernels/0/loops/0/achieved_ii >/dev/null

echo "== regression sentinel: fresh pipeline run vs committed profile"
BENCH="dune exec --no-build bench/main.exe --"
$BENCH --table pipeline --emit-json "$OBS/pipe.json" >/dev/null
$BENCH --compare BENCH_pipeline.json "$OBS/pipe.json" >/dev/null || {
  echo "FAIL: pipeline profile regressed against BENCH_pipeline.json"
  $BENCH --compare BENCH_pipeline.json "$OBS/pipe.json" || true
  exit 1
}
echo "   gate vs committed profile: ok"

echo "== regression sentinel: injected fault must trip the gate"
$BENCH --table pipeline --inject modsched.place@1 \
  --emit-json "$OBS/pipe-bad.json" >/dev/null
if $BENCH --compare BENCH_pipeline.json "$OBS/pipe-bad.json" >/dev/null; then
  echo "FAIL: sentinel did not fire on an injected regression"
  exit 1
fi
echo "   sentinel firing path: ok"

echo "== cost accounting: --table cost byte-identical across job counts"
$BENCH --table cost --emit-json "$OBS/cost1.json" >/dev/null
$BENCH --table cost --jobs 8 --emit-json "$OBS/cost8.json" >/dev/null
$JSONV "$OBS/cost1.json" \
  artifacts/cost/schema=bench-cost/1 \
  artifacts/cost/kernels/0/cost/schema=cost/1 \
  artifacts/cost/kernels/0/cost/total \
  artifacts/cost/totals/mrt.probes >/dev/null
cmp -s "$OBS/cost1.json" "$OBS/cost8.json" || {
  echo "FAIL: --table cost artifact differs between --jobs 1 and --jobs 8"
  exit 1
}
# the artifact is pure work-unit counts: any wall-clock or GC field
# leaking in would break cross-machine byte-stability
if grep -qE '"(wall_ns|minor_words|seconds|elapsed|time_us)"' "$OBS/cost1.json"; then
  echo "FAIL: cost artifact carries wall-clock or GC fields"
  exit 1
fi
echo "   cost artifact: ok"

echo "== regression attribution: doctored profile must name its cause"
# raise loop 0's achieved II and resource bound in the first kernel:
# the sentinel must flag the regression and --attribute must point at
# the changed binding constraint
awk '!r && /"res_mii": [0-9]+/ { sub(/"res_mii": [0-9]+/, "\"res_mii\": 99"); r=1 }
     !a && /"achieved_ii": [0-9]+/ { sub(/"achieved_ii": [0-9]+/, "\"achieved_ii\": 99"); a=1 }
     { print }' "$OBS/pipe.json" >"$OBS/pipe-attr.json"
if $BENCH --compare "$OBS/pipe.json" "$OBS/pipe-attr.json" --attribute \
  >"$OBS/attr.out"; then
  echo "FAIL: attribution compare did not fire on a doctored profile"
  exit 1
fi
grep -qE "res_mii rose [0-9]+ -> 99 \(binding" "$OBS/attr.out" || {
  echo "FAIL: attribution did not name the changed binding constraint"
  cat "$OBS/attr.out"
  exit 1
}
# a clean pair must attribute nothing
$BENCH --compare "$OBS/pipe.json" "$OBS/pipe.json" --attribute \
  >"$OBS/attr-clean.out" || {
  echo "FAIL: attribution compare rejected two identical artifacts"
  exit 1
}
if grep -q "attribution:" "$OBS/attr-clean.out"; then
  echo "FAIL: clean pair produced attribution lines"
  exit 1
fi
# artifacts from different schema generations are rejected outright
sed 's|"schema": "bench-pipeline/1"|"schema": "bench-pipeline/9"|' \
  "$OBS/pipe.json" >"$OBS/pipe-schema.json"
if $BENCH --compare "$OBS/pipe.json" "$OBS/pipe-schema.json" >/dev/null 2>&1; then
  echo "FAIL: pipeline schema mismatch was not rejected"
  exit 1
fi
echo "   attribution + schema gates: ok"

echo "== campaign smoke: clean quick sweep, byte-stable artifact"
$BENCH --table campaign-quick --emit-json "$OBS/camp1.json" >/dev/null || {
  echo "FAIL: campaign-quick reported failing seeds on a clean tree"
  $BENCH --table campaign-quick || true
  exit 1
}
$BENCH --table campaign-quick --emit-json "$OBS/camp2.json" >/dev/null
$JSONV "$OBS/camp1.json" schema_version \
  artifacts/campaign-quick/total \
  artifacts/campaign-quick/pass \
  artifacts/campaign-quick/verdicts/pass \
  artifacts/campaign-quick/gap/count \
  artifacts/campaign-quick/eff/count \
  artifacts/campaign-quick/code_size/count \
  artifacts/campaign-quick/pass_rate/schema=series/1 \
  artifacts/campaign-quick/pass_rate/windows/0/count \
  artifacts/campaign-quick/unminimized >/dev/null
cmp -s "$OBS/camp1.json" "$OBS/camp2.json" || {
  echo "FAIL: campaign artifact differs between identical runs"
  exit 1
}
echo "   clean campaign + byte-stable artifact: ok"

echo "== campaign sentinel: per-window pass-rate gate must fire"
$BENCH --compare "$OBS/camp1.json" "$OBS/camp2.json" >/dev/null || {
  echo "FAIL: campaign gate rejected two identical artifacts"
  exit 1
}
# zero one seed window's pass sum: that window's rate collapses and the
# sentinel must localize the regression to it
awk '/"pass_rate"/ { in_pr = 1 }
     in_pr && /"sum":/ && !done { sub(/"sum": [0-9.]+/, "\"sum\": 0"); done = 1 }
     { print }' "$OBS/camp1.json" >"$OBS/camp-window-bad.json"
cmp -s "$OBS/camp1.json" "$OBS/camp-window-bad.json" && {
  echo "FAIL: pass-rate doctoring changed nothing"
  exit 1
}
if $BENCH --compare "$OBS/camp1.json" "$OBS/camp-window-bad.json" >/dev/null; then
  echo "FAIL: per-window pass-rate gate did not fire"
  exit 1
fi
echo "   pass-rate window gate: ok"

echo "== campaign sentinel: injected fault must be caught, minimized, banked"
mkdir -p "$OBS/bank"
if $BENCH --table campaign --seeds 1..30 --inject modsched.place@1 \
  --bank "$OBS/bank" --emit-json "$OBS/camp-bad.json" >/dev/null 2>&1; then
  echo "FAIL: campaign did not fire on an injected scheduler fault"
  exit 1
fi
banked=$(ls "$OBS/bank"/degraded_s*.w2 2>/dev/null | head -1)
test -n "$banked" || {
  echo "FAIL: campaign banked no minimized degraded_s*.w2 regression"
  ls -l "$OBS/bank" || true
  exit 1
}
grep -q -- "-- camp: inject=modsched.place@1" "$banked" || {
  echo "FAIL: banked regression does not record its trigger header"
  cat "$banked"
  exit 1
}
# the banked reproducer is a valid program: trigger-less it must pass
$W2C run --validate --verify "$banked" >/dev/null || {
  echo "FAIL: banked regression $banked does not run clean without the fault"
  exit 1
}
echo "   inject -> minimize -> bank -> replay: ok"

echo "== campaign sentinel: corrupted nogood bank must be caught"
mkdir -p "$OBS/optbank"
if $BENCH --table campaign --seeds 1..8 --inject exact.nogood@1 \
  --bank "$OBS/optbank" >/dev/null 2>&1; then
  echo "FAIL: campaign did not fire on a corrupted nogood bank"
  exit 1
fi
obanked=$(ls "$OBS/optbank"/opt-diverge_s*.w2 2>/dev/null | head -1)
test -n "$obanked" || {
  echo "FAIL: campaign banked no minimized opt-diverge_s*.w2 regression"
  ls -l "$OBS/optbank" || true
  exit 1
}
grep -q -- "-- camp: inject=exact.nogood@1" "$obanked" || {
  echo "FAIL: banked opt-diverge regression does not record its trigger"
  cat "$obanked"
  exit 1
}
# trigger-less the reproducer compiles and certifies clean
$W2C run --validate --verify "$obanked" >/dev/null || {
  echo "FAIL: banked regression $obanked does not run clean without the fault"
  exit 1
}
echo "   corrupted bank -> opt-diverge -> minimize -> bank: ok"

echo "== serve smoke: cached compile byte-identical, warm hits, stable artifact"
$BENCH --table serve --emit-json "$OBS/sv1.json" >/dev/null || {
  echo "FAIL: --table serve found a divergence or an idle cache"
  $BENCH --table serve || true
  exit 1
}
$BENCH --table serve --emit-json "$OBS/sv2.json" >/dev/null
$JSONV "$OBS/sv1.json" schema_version \
  artifacts/serve/programs \
  artifacts/serve/identical_cold \
  artifacts/serve/identical_warm \
  artifacts/serve/cold/hits \
  artifacts/serve/warm/hits >/dev/null
cmp -s "$OBS/sv1.json" "$OBS/sv2.json" || {
  echo "FAIL: serve artifact differs between identical runs"
  exit 1
}
$BENCH --compare "$OBS/sv1.json" "$OBS/sv2.json" >/dev/null || {
  echo "FAIL: serve gate rejected two identical artifacts"
  exit 1
}
# the identity gate must fire on a doctored artifact
sed 's/"identical_cold": true/"identical_cold": false/' "$OBS/sv1.json" \
  >"$OBS/sv-bad.json"
if $BENCH --compare "$OBS/sv1.json" "$OBS/sv-bad.json" >/dev/null; then
  echo "FAIL: serve identity gate did not fire"
  exit 1
fi
echo "   serve table + identity gate: ok"

echo "== slo smoke: telemetry replay, byte-stable artifact, gated compare"
$BENCH --table slo --emit-json "$OBS/slo1.json" >/dev/null || {
  echo "FAIL: --table slo missed a service-level objective"
  $BENCH --table slo || true
  exit 1
}
$BENCH --table slo --emit-json "$OBS/slo2.json" >/dev/null
$JSONV "$OBS/slo1.json" schema_version \
  artifacts/slo/schema=bench-slo/1 \
  artifacts/slo/status_schema=w2cd-status/2 \
  artifacts/slo/identical=true \
  artifacts/slo/error_budget_ok=true \
  artifacts/slo/trace_ok=true \
  artifacts/slo/dashboard_ok=true \
  artifacts/slo/series/occupancy/windows/0/count \
  artifacts/slo/span_skeleton/0/request >/dev/null
cmp -s "$OBS/slo1.json" "$OBS/slo2.json" || {
  echo "FAIL: slo artifact differs between identical runs"
  exit 1
}
$BENCH --compare "$OBS/slo1.json" "$OBS/slo2.json" >/dev/null || {
  echo "FAIL: slo gate rejected two identical artifacts"
  exit 1
}
# the identity gate must fire on a doctored artifact ...
sed 's/"identical": true/"identical": false/' "$OBS/slo1.json" \
  >"$OBS/slo-bad.json"
if $BENCH --compare "$OBS/slo1.json" "$OBS/slo-bad.json" >/dev/null; then
  echo "FAIL: slo identity gate did not fire"
  exit 1
fi
# ... and a foreign schema generation is rejected outright, never diffed
sed 's|"schema": "bench-slo/1"|"schema": "bench-slo/9"|' "$OBS/slo1.json" \
  >"$OBS/slo-schema.json"
if $BENCH --compare "$OBS/slo1.json" "$OBS/slo-schema.json" >/dev/null 2>&1; then
  echo "FAIL: slo schema mismatch was not rejected"
  exit 1
fi
echo "   slo table + identity/schema gates: ok"

echo "== w2cd smoke: daemon round-trip byte-identical to offline w2c"
W2CD=./_build/default/bin/w2cd.exe
SOCK="$OBS/w2cd.sock"
"$W2CD" serve "$SOCK" --cache 128 --log "$OBS/reqlog.jsonl" 2>/dev/null &
W2CD_PID=$!
i=0
while [ ! -S "$SOCK" ]; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: w2cd never created its socket"
    exit 1
  fi
  sleep 0.1
done
"$W2CD" ping "$SOCK" >/dev/null
dune exec --no-build devtools/dump_kernels.exe -- "$OBS/kernels" >/dev/null
mkdir -p "$OBS/offline"
for pass in 1 2; do
  for f in "$OBS"/kernels/*.w2; do
    ref="$OBS/offline/$(basename "$f" .w2).txt"
    "$W2CD" request "$SOCK" "$f" >"$OBS/served.txt"
    if [ "$pass" = 1 ]; then
      $W2C compile "$f" >"$ref" 2>/dev/null
    fi
    cmp -s "$OBS/served.txt" "$ref" || {
      echo "FAIL: $f: daemon output differs from offline w2c (pass $pass)"
      exit 1
    }
  done
done
"$W2CD" stats "$SOCK" >"$OBS/daemon-stats.json"
$JSONV "$OBS/daemon-stats.json" capacity hits misses inserts >/dev/null
hits=$(sed -n 's/.*"hits": \([0-9][0-9]*\).*/\1/p' "$OBS/daemon-stats.json")
test -n "$hits" && test "$hits" -gt 0 || {
  echo "FAIL: second suite pass produced no cache hits"
  cat "$OBS/daemon-stats.json"
  exit 1
}
echo "   round-trip x2 + hit rate: ok"

echo "== w2cd smoke: status, dashboard, traced request, request log"
# the daemon has answered 2 suite passes of compile requests; its health
# snapshot must account for every one of them on the logical clock
K=$(ls "$OBS"/kernels/*.w2 | wc -l | tr -d ' ')
"$W2CD" status "$SOCK" >"$OBS/daemon-status.json"
$JSONV "$OBS/daemon-status.json" \
  schema=w2cd-status/2 \
  telemetry=true \
  "requests/compile=$((2 * K))" \
  error_budget/ok=true \
  series/latency_us/windows/0/count \
  series/occupancy/windows/0/count \
  series/cost/windows/0/count \
  cost/enabled=true \
  "cost/compiles_measured=$((2 * K))" \
  cache/entries >/dev/null
"$W2CD" dashboard "$SOCK" >"$OBS/dash.html"
grep -q "<svg" "$OBS/dash.html" || {
  echo "FAIL: dashboard carries no inline SVG sparkline"
  exit 1
}
if grep -qE "https?://|<script src|<link" "$OBS/dash.html"; then
  echo "FAIL: dashboard references external resources"
  exit 1
fi
# a traced request comes back as a versioned envelope: trace id, the
# request's sequence number (ping + 2K compiles + stats + status +
# dashboard came before it) and the span tree alongside the output
"$W2CD" request "$SOCK" examples/saxpy.w2 --trace ci-1 >"$OBS/traced.json"
$JSONV "$OBS/traced.json" \
  schema=w2cd-trace/1 \
  trace=ci-1 \
  "seq=$((2 * K + 4))" \
  spans/0/name=request \
  output >/dev/null
# every request also landed in the daemon's JSONL log, one line each
test -s "$OBS/reqlog.jsonl" || {
  echo "FAIL: daemon wrote no request log"
  exit 1
}
head -1 "$OBS/reqlog.jsonl" >"$OBS/reqlog-first.json"
$JSONV "$OBS/reqlog-first.json" schema=w2cd-reqlog/1 seq=0 verb lat_us \
  >/dev/null
logged=$(wc -l <"$OBS/reqlog.jsonl" | tr -d ' ')
test "$logged" -eq $((2 * K + 5)) || {
  echo "FAIL: request log has $logged lines, expected $((2 * K + 5))"
  exit 1
}
echo "   status + dashboard + trace envelope + request log: ok"

echo "== w2cd smoke: stale socket reclaimed, clean shutdown unlinks it"
# SIGKILL skips the daemon's cleanup, orphaning the socket file
kill -9 "$W2CD_PID" 2>/dev/null || true
wait "$W2CD_PID" 2>/dev/null || true
test -S "$SOCK" || {
  echo "FAIL: expected an orphaned socket after SIGKILL"
  exit 1
}
"$W2CD" serve "$SOCK" --cache 8 2>/dev/null &
W2CD_PID=$!
i=0
until "$W2CD" ping "$SOCK" >/dev/null 2>&1; do
  i=$((i + 1))
  if [ "$i" -gt 100 ]; then
    echo "FAIL: w2cd did not reclaim the stale socket"
    exit 1
  fi
  sleep 0.1
done
kill "$W2CD_PID" 2>/dev/null || true
wait "$W2CD_PID" 2>/dev/null || true
W2CD_PID=""
if [ -e "$SOCK" ]; then
  echo "FAIL: terminated daemon left its socket behind"
  exit 1
fi
echo "   stale-socket reclaim + cleanup: ok"

echo "CI OK"
