(** Exhaustive equivalence sweep — a developer utility.

    Enumerates the random-program generator's parameter grid
    deterministically (rather than sampling, as the qcheck suites do)
    and checks the central property — pipelined code computes exactly
    what the sequential interpreter computes — under both the default
    and the lcm-unrolling configurations, reporting failures and
    anything suspiciously slow.

    Run with: [dune exec devtools/find_hang.exe] *)

let trips = [ 0; 1; 2; 3; 5; 17; 40; 61 ]
let bools = [ false; true ]
let seeds = [ 1; 777; 4242; 5512 ]

let () =
  let m = Sp_machine.Machine.warp in
  let configs =
    [ ("default", Sp_core.Compile.default);
      ("lcm", { Sp_core.Compile.default with mve_mode = Sp_core.Mve.Lcm }) ]
  in
  let bad = ref 0 and n = ref 0 in
  List.iter (fun trip ->
    List.iter (fun n_stmts ->
      List.iter (fun use_if ->
        List.iter (fun use_accum ->
          List.iter (fun use_chan ->
            List.iter (fun carried_store ->
              List.iter (fun seed ->
                let sp = { Gen.seed; trip; n_stmts; use_if; use_accum;
                           use_chan; carried_store; empty_body = false;
                           maxlat = false } in
                List.iter (fun (name, cfg) ->
                  incr n;
                  let t0 = Unix.gettimeofday () in
                  (match Gen.check_equivalence ~config:cfg m sp with
                   | Ok () -> ()
                   | Error e ->
                     incr bad;
                     Fmt.pr "FAIL [%s] %a: %s@." name Gen.pp_spec sp e;
                     Format.pp_print_flush Format.std_formatter ());
                  let dt = Unix.gettimeofday () -. t0 in
                  if dt > 2.0 then begin
                    Fmt.pr "SLOW %.1fs [%s] %a@." dt name Gen.pp_spec sp;
                    Format.pp_print_flush Format.std_formatter ()
                  end)
                  configs)
                seeds)
              bools) bools) bools) bools)
      [ 1; 3; 5 ])
    trips;
  Fmt.pr "checked %d spec/config combinations, %d failures@." !n !bad;
  if !bad > 0 then exit 1
