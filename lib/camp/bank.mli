(** The regression bank: minimized failing programs stored as
    replayable [.w2] files whose leading [-- camp: key=value] line
    comments carry the expected verdict kind and the trigger (fault
    injection / fuel / cycle watchdog) that reproduces it. Banked
    files are valid compiler inputs — the trigger-less replay must
    pass; the triggered replay must reproduce the recorded kind. *)

type entry = {
  kind : string;                  (** expected verdict under the trigger *)
  seed : int option;              (** generator seed it came from *)
  inject : (string * int) option; (** fault site to arm on replay *)
  fuel : int option;              (** compile-fuel cap on replay *)
  max_cycles : int option;        (** simulation watchdog on replay *)
  detail : string;                (** human note; not used on replay *)
  src : string;                   (** the W2 program text *)
}

val mk :
  ?seed:int ->
  ?inject:string * int ->
  ?fuel:int ->
  ?max_cycles:int ->
  ?detail:string ->
  kind:string ->
  string ->
  entry

val to_string : entry -> string
(** Header lines followed by the source, exactly as stored on disk. *)

val of_string : string -> (entry, string) result
(** Inverse of {!to_string}; unknown header keys are ignored. *)

val filename : entry -> string
(** Deterministic name: [<kind>_s<seed>.w2], or a source digest when
    no seed is recorded. *)

val save : dir:string -> entry -> string option
(** Write under the deterministic filename, creating [dir] if needed.
    [None] when that file already exists — the bank keeps the first
    repro and stays append-only. *)

val load_file : string -> (entry, string) result
val list_dir : string -> string list
(** Banked [.w2] paths sorted by filename; missing directory = []. *)
