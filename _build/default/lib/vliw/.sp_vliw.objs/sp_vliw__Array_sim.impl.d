lib/vliw/array_sim.ml: Array Hashtbl Inst List Machine_state Op Option Printf Prog Program Queue Semantics Sim Sp_ir Sp_machine Vreg
