(** Resource reservation tables.

    {!Modulo} is the modulo resource reservation table of the paper's
    Section 2.1: "the resource usage of time t is mapped to that of
    time [t mod s]". {!Linear} is the unbounded table used when
    compacting straight-line code (no wrap-around). Both support
    tentative placement (check without committing). *)

open Sp_machine

module Modulo = struct
  type t = {
    s : int;
    counts : int array array; (* [s][num_resources] *)
    limits : int array;
  }

  let create (m : Machine.t) ~s =
    if s <= 0 then invalid_arg "Mrt.Modulo.create: s <= 0";
    {
      s;
      counts = Array.make_matrix s (Machine.num_resources m) 0;
      limits = Array.map (fun r -> r.Machine.count) m.resources;
    }

  (* A reservation may use one resource several times at offsets
     congruent mod s (e.g. a reduced construct), so demand is summed
     per (slot, resource) before comparing against the limit. *)
  let fits t ~at resv =
    let h = Hashtbl.create 8 in
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        let k = (slot, rid) in
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
      resv;
    Hashtbl.fold
      (fun (slot, rid) need ok ->
        ok && t.counts.(slot).(rid) + need <= t.limits.(rid))
      h true

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        t.counts.(slot).(rid) <- t.counts.(slot).(rid) + 1)
      resv

  let remove t ~at resv =
    List.iter
      (fun (off, rid) ->
        let slot = ((at + off) mod t.s + t.s) mod t.s in
        t.counts.(slot).(rid) <- t.counts.(slot).(rid) - 1)
      resv

end

module Linear = struct
  type t = {
    mutable counts : int array array; (* grows on demand *)
    limits : int array;
    nres : int;
  }

  let create (m : Machine.t) =
    {
      counts = Array.make_matrix 16 (Machine.num_resources m) 0;
      limits = Array.map (fun r -> r.Machine.count) m.resources;
      nres = Machine.num_resources m;
    }

  let ensure t len =
    let cur = Array.length t.counts in
    if len > cur then begin
      let n = max len (2 * cur) in
      let counts = Array.make_matrix n t.nres 0 in
      Array.blit t.counts 0 counts 0 cur;
      t.counts <- counts
    end

  let fits t ~at resv =
    let h = Hashtbl.create 8 in
    List.iter
      (fun (off, rid) ->
        let k = (at + off, rid) in
        Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
      resv;
    Hashtbl.fold
      (fun (slot, rid) need ok ->
        ok
        && slot >= 0
        &&
        (ensure t (slot + 1);
         t.counts.(slot).(rid) + need <= t.limits.(rid)))
      h true

  let add t ~at resv =
    List.iter
      (fun (off, rid) ->
        ensure t (at + off + 1);
        t.counts.(at + off).(rid) <- t.counts.(at + off).(rid) + 1)
      resv
end
