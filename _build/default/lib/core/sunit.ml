(** Scheduling units and code fragments.

    A {e unit} is what the scheduler places: either a single
    micro-operation or an already-scheduled control construct that
    hierarchical reduction has collapsed into "an object similar to an
    operation in a basic block" (paper, abstract). A unit carries
    every scheduling-relevant fact about its contents:

    - the registers it reads and writes, with relative times;
    - its memory effects, with subscript descriptors where known;
    - its resource reservation (for a reduced conditional, the
      {e union} — per-slot maximum — of the two branches, Section 3.1);
    - its length in instructions.

    A {e fragment} is scheduled code that is still mergeable: an array
    of slots each holding simple operations and possibly one reduced
    control construct starting there. Operations that the parent
    schedule placed in parallel with a conditional are merged into both
    branches at emission time (Section 3.1: "any code scheduled in
    parallel with the conditional statement is duplicated in both
    branches"). *)

open Sp_ir
module Opkind = Sp_machine.Opkind
module Machine = Sp_machine.Machine

type mem_eff = {
  seg : Memseg.t;
  write : bool;
  sub : Subscript.t option;
  at : int;  (** time relative to unit start *)
  summary : bool;
      (** whole-construct summary effect (reduced loop): ordered even
          against segments carrying the [independent] directive, which
          only disambiguates individual references *)
}

type t = {
  sid : int;
  len : int;                   (** instructions occupied, >= 1 *)
  uses : (Vreg.t * int) list;  (** register read at relative time *)
  defs : (Vreg.t * int) list;  (** register readable from relative time *)
  mems : mem_eff list;
  resv : (int * int) list;     (** (relative time, resource id) pairs *)
  payload : payload;
  no_wrap : bool;
      (** must not straddle the steady-state boundary when pipelined *)
  barrier : bool;
      (** cannot overlap anything (unknown-length inner loop) *)
}

and payload =
  | P_op of Op.t
  | P_if of ifpayload
  | P_loop of looppayload

and ifpayload = { cond : Vreg.t; then_ : frag; else_ : frag }

and looppayload = {
  prolog : frag;   (** mergeable prolog slots *)
  epilog : frag;   (** mergeable epilog slots *)
  mid : mid_emit;  (** sealed middle: kernel or whole fallback loop *)
}

(** Emitter for the sealed middle of a reduced loop. Receives the
    register substitution accumulated by enclosing unrolls and the
    hardware-loop-counter nesting depth. *)
and mid_emit = {
  emit_mid :
    rename:(Vreg.t -> Vreg.t) -> depth:int -> Sp_vliw.Prog.Asm.asm -> unit;
}

and frag = slot array

and slot = { mutable sops : Op.t list; mutable sctl : payload option }

let empty_slot () = { sops = []; sctl = None }
let empty_frag n = Array.init n (fun _ -> empty_slot ())

(* ---------------------------------------------------------------- *)

(** Does this unit expand at emission time beyond its static length —
    i.e. does it contain a loop anywhere? Static operand times inside
    such a unit under-approximate dynamic ones, so its reduction must
    pin live-ins and memory effects to the unit's end (see
    {!Sp_core.Compile}). *)
let rec expands_payload = function
  | P_op _ -> false
  | P_loop _ -> true
  | P_if { then_; else_; _ } -> frag_expands then_ || frag_expands else_

and frag_expands f =
  Array.exists
    (fun s ->
      match s.sctl with Some p -> expands_payload p | None -> false)
    f

let expands u = expands_payload u.payload

let is_op u = match u.payload with P_op _ -> true | _ -> false

let op_exn u =
  match u.payload with
  | P_op op -> op
  | _ -> invalid_arg "Sunit.op_exn: not a simple operation"

(** Unit for a single micro-operation on machine [m]. *)
let of_op (m : Machine.t) ~sid (op : Op.t) : t =
  let uses = List.map (fun r -> (r, 0)) (Op.reads op) in
  let defs =
    match op.dst with
    | None -> []
    | Some d -> [ (d, Machine.latency m op.kind) ]
  in
  let mems =
    match op.addr with
    | None -> []
    | Some a ->
      [ { seg = a.Op.seg; write = Op.is_store op; sub = a.Op.sub; at = 0;
          summary = false } ]
  in
  let resv = Machine.reservation m op.kind in
  { sid; len = 1; uses; defs; mems; resv; payload = P_op op;
    no_wrap = false; barrier = false }

(** Per-slot maximum of two reservations: the resource requirement of a
    node that will execute one of two alternatives (Section 3.1: "the
    value of each entry in the resource reservation table is the
    maximum of the corresponding entries in the tables of the two
    branches"). Reservations are multisets of (time, resource) pairs. *)
let union_resv (a : (int * int) list) (b : (int * int) list) =
  let count l =
    let h = Hashtbl.create 16 in
    List.iter
      (fun key ->
        Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key)))
      l;
    h
  in
  let ca = count a and cb = count b in
  let keys = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) ca;
  Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) cb;
  Hashtbl.fold
    (fun key () acc ->
      let n =
        max
          (Option.value ~default:0 (Hashtbl.find_opt ca key))
          (Option.value ~default:0 (Hashtbl.find_opt cb key))
      in
      List.init n (fun _ -> key) @ acc)
    keys []

(** Merge two (reg, time) association lists keeping, per register, the
    given extremum of the times. *)
let merge_times pick a b =
  let h = Hashtbl.create 16 in
  List.iter
    (fun ((r : Vreg.t), t) ->
      let t =
        match Hashtbl.find_opt h r.Vreg.id with
        | None -> t
        | Some (_, t') -> pick t t'
      in
      Hashtbl.replace h r.Vreg.id (r, t))
    (a @ b);
  Hashtbl.fold (fun _ rt acc -> rt :: acc) h []

(* ---------------------------------------------------------------- *)
(* Register substitution, applied when unrolled kernel copies rename
   modulo-expanded variables. *)

let rec subst_payload f = function
  | P_op op -> P_op (Op.map_regs f op)
  | P_if { cond; then_; else_ } ->
    P_if { cond = f cond; then_ = subst_frag f then_; else_ = subst_frag f else_ }
  | P_loop { prolog; epilog; mid } ->
    let emit_mid ~rename ~depth asm =
      mid.emit_mid ~rename:(fun r -> rename (f r)) ~depth asm
    in
    P_loop
      { prolog = subst_frag f prolog;
        epilog = subst_frag f epilog;
        mid = { emit_mid } }

and subst_frag f frag =
  Array.map
    (fun s ->
      { sops = List.map (Op.map_regs f) s.sops;
        sctl = Option.map (subst_payload f) s.sctl })
    frag

let subst f u =
  {
    u with
    uses = List.map (fun (r, t) -> (f r, t)) u.uses;
    defs = List.map (fun (r, t) -> (f r, t)) u.defs;
    payload = subst_payload f u.payload;
  }

(* ---------------------------------------------------------------- *)

let pp ppf u =
  let tag =
    match u.payload with
    | P_op op -> Fmt.str "%a" Op.pp op
    | P_if _ -> "if-node"
    | P_loop _ -> "loop-node"
  in
  Fmt.pf ppf "u%d[len=%d] %s" u.sid u.len tag
