test/test_ddg.ml: Alcotest Array List Memseg Op Sp_core Sp_ir Sp_machine Subscript Vreg
