lib/ir/region.ml: Fmt List Op Vreg
