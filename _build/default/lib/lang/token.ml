(** Tokens of the W2-like source language. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

type t =
  | INT of int
  | FLOAT of float
  | IDENT of string
  (* keywords *)
  | PROGRAM | VAR | BEGIN | END | IF | THEN | ELSE | FOR | TO | DO
  | ARRAY | OF | TINT | TFLOAT | INDEPENDENT
  (* punctuation and operators *)
  | SEMI | COLON | COMMA | DOT | DOTDOT
  | LPAREN | RPAREN | LBRACKET | RBRACKET
  | ASSIGN                       (* := *)
  | PLUS | MINUS | STAR | SLASH
  | EQ | NE | LT | LE | GT | GE
  | AND | OR | NOT
  | EOF

let to_string = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | PROGRAM -> "program" | VAR -> "var" | BEGIN -> "begin" | END -> "end"
  | IF -> "if" | THEN -> "then" | ELSE -> "else"
  | FOR -> "for" | TO -> "to" | DO -> "do"
  | ARRAY -> "array" | OF -> "of"
  | TINT -> "int" | TFLOAT -> "float" | INDEPENDENT -> "independent"
  | SEMI -> ";" | COLON -> ":" | COMMA -> "," | DOT -> "." | DOTDOT -> ".."
  | LPAREN -> "(" | RPAREN -> ")" | LBRACKET -> "[" | RBRACKET -> "]"
  | ASSIGN -> ":=" | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | AND -> "and" | OR -> "or" | NOT -> "not"
  | EOF -> "<eof>"

let pp ppf t = Fmt.string ppf (to_string t)

let keywords =
  [
    ("program", PROGRAM); ("var", VAR); ("begin", BEGIN); ("end", END);
    ("if", IF); ("then", THEN); ("else", ELSE); ("for", FOR); ("to", TO);
    ("do", DO); ("array", ARRAY); ("of", OF); ("int", TINT);
    ("float", TFLOAT); ("independent", INDEPENDENT); ("and", AND);
    ("or", OR); ("not", NOT);
  ]
