(** Hierarchical program regions.

    Programs are structured trees of regions — straight-line operation
    lists, conditionals, and counted loops — matching the
    block-structured W2 constructs the paper's hierarchical reduction
    operates on (Section 3: "the proposed approach schedules the
    program hierarchically, starting with the innermost control
    constructs"). *)

(** Trip count of a loop: a compile-time constant or a register holding
    the count (the "number of iterations not known at compile time"
    case of Section 2.4, which triggers the two-version scheme). *)
type bound = Const of int | Reg of Vreg.t

type t =
  | Ops of Op.t list
      (** straight-line code *)
  | Seq of t list
  | If of { cond : Vreg.t; then_ : t; else_ : t }
      (** two-way conditional on an integer register ([<> 0] = then) *)
  | For of { iv : Vreg.t; n : bound; body : t }
      (** [for iv = 0 to n-1 do body]; the induction variable counts
          from 0 in steps of 1 (front ends normalize loops) *)

let rec iter_ops f = function
  | Ops ops -> List.iter f ops
  | Seq rs -> List.iter (iter_ops f) rs
  | If { then_; else_; _ } ->
    iter_ops f then_;
    iter_ops f else_
  | For { body; _ } -> iter_ops f body

let ops_count r =
  let n = ref 0 in
  iter_ops (fun _ -> incr n) r;
  !n

(** Innermost-loop count (loops containing no other loop). *)
let rec innermost_loops = function
  | Ops _ -> []
  | Seq rs -> List.concat_map innermost_loops rs
  | If { then_; else_; _ } -> innermost_loops then_ @ innermost_loops else_
  | For { body; _ } as l ->
    let inner = innermost_loops body in
    if inner = [] then [ l ] else inner

let rec contains_loop = function
  | Ops _ -> false
  | Seq rs -> List.exists contains_loop rs
  | If { then_; else_; _ } -> contains_loop then_ || contains_loop else_
  | For _ -> true

let rec contains_if = function
  | Ops _ -> false
  | Seq rs -> List.exists contains_if rs
  | If _ -> true
  | For { body; _ } -> contains_if body

let pp_bound ppf = function
  | Const n -> Fmt.int ppf n
  | Reg v -> Vreg.pp ppf v

let rec pp ppf = function
  | Ops ops ->
    List.iter (fun op -> Fmt.pf ppf "%a@." Op.pp op) ops
  | Seq rs -> List.iter (pp ppf) rs
  | If { cond; then_; else_ } ->
    Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}@."
      Vreg.pp cond pp then_ pp else_
  | For { iv; n; body } ->
    Fmt.pf ppf "@[<v 2>for %a in 0..%a {@,%a@]@,}@." Vreg.pp iv pp_bound n
      pp body
