(** Work-cost accounting; see the interface for the contract.

    The recording state is a hash table of (loop, phase) cells, each an
    int array indexed by counter — so {!add} on the hot path is an
    array store into a cached cell, and a cell is (re)resolved only
    when the loop or phase stamp changes. Profiles snapshot the table
    into a canonically sorted immutable list, making merge a sorted
    union with pointwise sums and equality structural. *)

type counter =
  | Mrt_probe
  | Spath_relax
  | Spath_insert
  | Heap_op
  | Exact_node
  | Exact_prune_window
  | Exact_prune_resource
  | Exact_nogood_hit
  | Exact_backjump
  | Ddg_edge
  | Cache_verify_edge

let all_counters =
  [ Mrt_probe; Spath_relax; Spath_insert; Heap_op; Exact_node;
    Exact_prune_window; Exact_prune_resource; Exact_nogood_hit;
    Exact_backjump; Ddg_edge; Cache_verify_edge ]

let n_counters = 11

let counter_index = function
  | Mrt_probe -> 0
  | Spath_relax -> 1
  | Spath_insert -> 2
  | Heap_op -> 3
  | Exact_node -> 4
  | Exact_prune_window -> 5
  | Exact_prune_resource -> 6
  | Exact_nogood_hit -> 7
  | Exact_backjump -> 8
  | Ddg_edge -> 9
  | Cache_verify_edge -> 10

let counter_name = function
  | Mrt_probe -> "mrt.probes"
  | Spath_relax -> "spath.relaxations"
  | Spath_insert -> "spath.frontier_inserts"
  | Heap_op -> "heap.ops"
  | Exact_node -> "exact.nodes"
  | Exact_prune_window -> "exact.pruned_window"
  | Exact_prune_resource -> "exact.pruned_resource"
  | Exact_nogood_hit -> "exact.nogood_hits"
  | Exact_backjump -> "exact.backjumps"
  | Ddg_edge -> "ddg.edges"
  | Cache_verify_edge -> "cache.verify_edges"

type phase =
  | P_ddg
  | P_compact
  | P_bounds
  | P_search
  | P_certify
  | P_mve
  | P_emit
  | P_validate
  | P_cache
  | P_other

let all_phases =
  [ P_ddg; P_compact; P_bounds; P_search; P_certify; P_mve; P_emit;
    P_validate; P_cache; P_other ]

let phase_index = function
  | P_ddg -> 0
  | P_compact -> 1
  | P_bounds -> 2
  | P_search -> 3
  | P_certify -> 4
  | P_mve -> 5
  | P_emit -> 6
  | P_validate -> 7
  | P_cache -> 8
  | P_other -> 9

let n_phases = 10

let phase_of_index = function
  | 0 -> P_ddg
  | 1 -> P_compact
  | 2 -> P_bounds
  | 3 -> P_search
  | 4 -> P_certify
  | 5 -> P_mve
  | 6 -> P_emit
  | 7 -> P_validate
  | 8 -> P_cache
  | _ -> P_other

let phase_name = function
  | P_ddg -> "ddg"
  | P_compact -> "compact"
  | P_bounds -> "bounds"
  | P_search -> "search"
  | P_certify -> "certify"
  | P_mve -> "mve"
  | P_emit -> "emit"
  | P_validate -> "validate"
  | P_cache -> "cache"
  | P_other -> "other"

(* ---- recording state ------------------------------------------------ *)

(* Cell key: (loop + 1) * n_phases + phase index, so loop -1 (outside)
   keys from 0. Loops are nonnegative ids otherwise. *)
let key ~loop ~ph = ((loop + 1) * n_phases) + ph
let key_loop k = (k / n_phases) - 1
let key_phase k = phase_of_index (k mod n_phases)

type state = {
  cells : (int, int array) Hashtbl.t;
  mutable loop : int;
  mutable phase : int;      (* phase index *)
  mutable cur : int array;  (* the (loop, phase) cell, cached *)
}

let fresh_state () =
  let cells = Hashtbl.create 32 in
  let cur = Array.make n_counters 0 in
  Hashtbl.replace cells (key ~loop:(-1) ~ph:(phase_index P_other)) cur;
  { cells; loop = -1; phase = phase_index P_other; cur }

let on = ref false
let global = ref (fresh_state ())

(* Domain-local redirection for parallel analysis tasks, exactly the
   {!Explain} discipline: under {!collect} the whole recording state is
   private to the task, so worker domains never race and a task's
   set_loop/set_phase cannot leak. *)
let local : state option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let state () =
  match !(Domain.DLS.get local) with Some st -> st | None -> !global

let enabled () = !on

let obs_wall_ns = ref 0L
let obs_minor_words = ref 0.0
let obs_ran = ref false

let enable () =
  global := fresh_state ();
  obs_wall_ns := 0L;
  obs_minor_words := 0.0;
  obs_ran := false;
  on := true

let disable () = on := false
let clear () = global := fresh_state ()

let refresh (st : state) =
  let k = key ~loop:st.loop ~ph:st.phase in
  st.cur <-
    (match Hashtbl.find_opt st.cells k with
    | Some c -> c
    | None ->
      let c = Array.make n_counters 0 in
      Hashtbl.replace st.cells k c;
      c)

let set_loop l =
  if !on then begin
    let st = state () in
    if st.loop <> l then begin
      st.loop <- l;
      refresh st
    end
  end

let set_phase p =
  if !on then begin
    let st = state () in
    let pi = phase_index p in
    if st.phase <> pi then begin
      st.phase <- pi;
      refresh st
    end
  end

let current_loop () = (state ()).loop
let current_phase () = phase_of_index (state ()).phase

let with_phase p f =
  if not !on then f ()
  else begin
    let st = state () in
    let prev = st.phase in
    set_phase p;
    Fun.protect
      ~finally:(fun () ->
        let st = state () in
        if st.phase <> prev then begin
          st.phase <- prev;
          refresh st
        end)
      f
  end

let add c n =
  if !on then begin
    let cur = (state ()).cur in
    let i = counter_index c in
    cur.(i) <- cur.(i) + n
  end

let incr c = add c 1

(* ---- profiles ------------------------------------------------------- *)

(* Sorted by key ascending — which is loop ascending with -1 first;
   canonical *presentation* order (outside last) is applied at output
   time. Counts arrays are never shared with live state. *)
type profile = (int * int array) list

let empty = []
let is_empty p = p = []

let prune (p : profile) : profile =
  List.filter (fun (_, c) -> Array.exists (fun n -> n <> 0) c) p

let row ~loop ph counts : profile =
  let c = Array.make n_counters 0 in
  List.iter
    (fun (ctr, n) -> c.(counter_index ctr) <- c.(counter_index ctr) + n)
    counts;
  prune [ (key ~loop ~ph:(phase_index ph), c) ]

let merge (a : profile) (b : profile) : profile =
  let rec go a b =
    match (a, b) with
    | [], p | p, [] -> p
    | (ka, ca) :: ra, (kb, cb) :: rb ->
      if ka < kb then (ka, Array.copy ca) :: go ra b
      else if kb < ka then (kb, Array.copy cb) :: go a rb
      else (ka, Array.init n_counters (fun i -> ca.(i) + cb.(i))) :: go ra rb
  in
  prune (go a b)

let equal (a : profile) (b : profile) =
  List.length a = List.length b
  && List.for_all2 (fun (ka, ca) (kb, cb) -> ka = kb && ca = cb) a b

let total (p : profile) =
  List.fold_left
    (fun acc (_, c) -> Array.fold_left ( + ) acc c)
    0 p

let counter_totals (p : profile) =
  let t = Array.make n_counters 0 in
  List.iter
    (fun (_, c) -> Array.iteri (fun i n -> t.(i) <- t.(i) + n) c)
    p;
  List.map (fun ctr -> (ctr, t.(counter_index ctr))) all_counters

let loop_total (p : profile) ~loop =
  List.fold_left
    (fun acc (k, c) ->
      if key_loop k = loop then Array.fold_left ( + ) acc c else acc)
    0 p

(* Presentation order: loops ascending with -1 (outside) last, matching
   the Explain convention. *)
let present_loops (p : profile) =
  let ls =
    List.sort_uniq compare (List.map (fun (k, _) -> key_loop k) p)
  in
  let inside, outside = List.partition (fun l -> l >= 0) ls in
  inside @ outside

let cell_counts c =
  List.filter_map
    (fun ctr ->
      let n = c.(counter_index ctr) in
      if n = 0 then None else Some (ctr, n))
    all_counters

let cells (p : profile) =
  List.concat_map
    (fun l ->
      List.filter_map
        (fun (k, c) ->
          if key_loop k = l then Some ((l, key_phase k), cell_counts c)
          else None)
        p)
    (present_loops p)

let snapshot () : profile =
  let st = state () in
  prune
    (List.sort
       (fun (a, _) (b, _) -> compare a b)
       (Hashtbl.fold
          (fun k c acc -> (k, Array.copy c) :: acc)
          st.cells []))

let collect f =
  let cell = Domain.DLS.get local in
  let prev = !cell in
  let st = fresh_state () in
  cell := Some st;
  Fun.protect
    ~finally:(fun () -> cell := prev)
    (fun () ->
      let v = f () in
      ( v,
        prune
          (List.sort
             (fun (a, _) (b, _) -> compare a b)
             (Hashtbl.fold
                (fun k c acc -> (k, c) :: acc)
                st.cells [])) ))

let inject (p : profile) =
  if !on then begin
    let st = state () in
    List.iter
      (fun (k, c) ->
        match Hashtbl.find_opt st.cells k with
        | Some dst -> Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) c
        | None -> Hashtbl.replace st.cells k (Array.copy c))
      p;
    (* the current cell may have just been created/replaced *)
    refresh st
  end

(* ---- report-only wall/GC observation -------------------------------- *)

let observe f =
  let w0 = Gc.minor_words () in
  let t0 = Monotonic_clock.now () in
  Fun.protect
    ~finally:(fun () ->
      obs_wall_ns := Int64.add !obs_wall_ns (Int64.sub (Monotonic_clock.now ()) t0);
      obs_minor_words := !obs_minor_words +. (Gc.minor_words () -. w0);
      obs_ran := true)
    f

let observed () =
  if !obs_ran then Some (!obs_wall_ns, !obs_minor_words) else None

(* ---- output --------------------------------------------------------- *)

let schema = "cost/1"

let to_json (p : profile) : Json.t =
  let counters_obj counts =
    Json.Obj
      (List.map (fun (ctr, n) -> (counter_name ctr, Json.Int n)) counts)
  in
  let loops =
    List.map
      (fun l ->
        let phcells =
          List.filter (fun ((l', _), _) -> l' = l) (cells p)
        in
        let ltotal =
          List.fold_left
            (fun acc (_, counts) ->
              List.fold_left (fun a (_, n) -> a + n) acc counts)
            0 phcells
        in
        Json.Obj
          [
            ("loop", Json.Int l);
            ("total", Json.Int ltotal);
            ( "phases",
              Json.List
                (List.map
                   (fun ((_, ph), counts) ->
                     Json.Obj
                       [
                         ("phase", Json.Str (phase_name ph));
                         ( "total",
                           Json.Int
                             (List.fold_left (fun a (_, n) -> a + n) 0 counts)
                         );
                         ("counters", counters_obj counts);
                       ])
                   phcells) );
          ])
      (present_loops p)
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("total", Json.Int (total p));
      ( "counters",
        Json.Obj
          (List.map
             (fun (ctr, n) -> (counter_name ctr, Json.Int n))
             (counter_totals p)) );
      ("loops", Json.List loops);
    ]

let loop_label l = if l < 0 then "outside" else Printf.sprintf "loop%d" l

let folded (p : profile) =
  let b = Buffer.create 256 in
  List.iter
    (fun ((l, ph), counts) ->
      List.iter
        (fun (ctr, n) ->
          Buffer.add_string b
            (Printf.sprintf "%s;%s;%s %d\n" (loop_label l) (phase_name ph)
               (counter_name ctr) n))
        counts)
    (cells p);
  Buffer.contents b

let flame (p : profile) : Render.flame_node list =
  List.map
    (fun l ->
      let phcells = List.filter (fun ((l', _), _) -> l' = l) (cells p) in
      {
        Render.fn_name = loop_label l;
        fn_self = 0;
        fn_children =
          List.map
            (fun ((_, ph), counts) ->
              {
                Render.fn_name = phase_name ph;
                fn_self = 0;
                fn_children =
                  List.map
                    (fun (ctr, n) ->
                      { Render.fn_name = counter_name ctr; fn_self = n;
                        fn_children = [] })
                    counts;
              })
            phcells;
      })
    (present_loops p)

let pp ppf (p : profile) =
  if is_empty p then Fmt.pf ppf "cost: no work recorded@."
  else begin
    Fmt.pf ppf "cost: %d work units@." (total p);
    List.iter
      (fun (ctr, n) ->
        if n > 0 then Fmt.pf ppf "  %-24s %d@." (counter_name ctr) n)
      (counter_totals p);
    List.iter
      (fun l ->
        let phcells = List.filter (fun ((l', _), _) -> l' = l) (cells p) in
        Fmt.pf ppf "%s: %d@." (loop_label l) (loop_total p ~loop:l);
        List.iter
          (fun ((_, ph), counts) ->
            Fmt.pf ppf "  %-10s%s@." (phase_name ph)
              (String.concat ""
                 (List.map
                    (fun (ctr, n) ->
                      Printf.sprintf " %s=%d" (counter_name ctr) n)
                    counts)))
          phcells)
      (present_loops p);
    match observed () with
    | None -> ()
    | Some (ns, words) ->
      Fmt.pf ppf
        "observed (report-only, excluded from artifacts): %.3f ms wall, \
         %.0f minor words@."
        (Int64.to_float ns /. 1e6)
        words
  end

let report p = Fmt.str "%a" pp p
