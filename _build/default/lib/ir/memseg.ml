(** Memory segments.

    The data memory is modeled as a set of named segments (one per
    source-level array), which keeps the dependence analysis and the
    interpreter simple without losing anything the paper needs: W2
    arrays are statically allocated and distinct. A segment can be
    marked [independent], reproducing the paper's "compiler directives
    to disambiguate array references" (the starred kernels of
    Table 4-2): carried memory dependences on such a segment are not
    generated. *)

type elt = Float_elt | Int_elt

type t = {
  sid : int;
  sname : string;
  size : int;
  elt : elt;
  independent : bool;
}

let compare a b = compare a.sid b.sid
let equal a b = a.sid = b.sid

let pp ppf s = Fmt.pf ppf "@%s" s.sname

module Supply = struct
  type supply = { mutable next : int }

  let create () = { next = 0 }

  let fresh s ?(independent = false) ?(elt = Float_elt) ~name ~size () =
    let sid = s.next in
    s.next <- sid + 1;
    { sid; sname = name; size; elt; independent }
end
