(** Recursive-descent parser for the W2-like language. See the grammar
    sketch in the implementation header; precedence is the usual
    or < and < relational < additive < multiplicative < unary. *)

exception Error of Token.pos * string

val parse : string -> Ast.program
(** Parse a full program from source text. Raises {!Error} (or
    {!Lexer.Error}) on malformed input. *)

val program_of_tokens : (Token.pos * Token.t) list -> Ast.program
