(** Strongly connected components (Tarjan 1972), the preprocessing step
    of the paper's Section 2.2.2: cyclic dependence graphs are
    scheduled component by component, then condensed into an acyclic
    graph. *)

type t = {
  comp_of : int array;      (** node -> component index *)
  comps : int list array;   (** component -> member nodes, in input order *)
  nontrivial : bool array;  (** more than one node, or a self edge *)
}

let num_components t = Array.length t.comps

(** [compute ~n ~succs] where [succs i] lists the successor nodes of
    [i]. Component indices are in reverse topological order of the
    condensed graph (Tarjan's property); {!topo_components} gives the
    forward order. *)
let compute ~n ~succs =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_of = Array.make n (-1) in
  let comps = ref [] in
  let ncomps = ref 0 in
  (* explicit work stack to avoid deep recursion on long chains *)
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec pop accu =
        match !stack with
        | [] -> accu
        | w :: rest ->
          stack := rest;
          on_stack.(w) <- false;
          comp_of.(w) <- !ncomps;
          if w = v then w :: accu else pop (w :: accu)
      in
      let members = pop [] in
      comps := members :: !comps;
      incr ncomps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  let comps = Array.of_list (List.rev !comps) in
  (* normalize member order to input order *)
  let comps = Array.map (List.sort compare) comps in
  let nontrivial =
    Array.map
      (fun members ->
        match members with
        | [ v ] -> List.exists (fun w -> w = v) (succs v)
        | _ -> true)
      comps
  in
  { comp_of; comps; nontrivial }

(** Component indices in topological order of the condensed graph
    (sources first). *)
let topo_components t =
  List.rev (Sp_util.Intmath.range 0 (Array.length t.comps))
