(** See the mli for the protocol contract. *)

module Compile = Sp_core.Compile
module Machine = Sp_machine.Machine
module Pool = Sp_util.Pool
module Fault = Sp_util.Fault
module Json = Sp_obs.Json
module Metrics = Sp_obs.Metrics
module Trace = Sp_obs.Trace
module Series = Sp_obs.Series
module Render = Sp_obs.Render

type request =
  | Compile of {
      machine : string;
      inject : (string * int) option;
      trace : string option;
      source : string;
    }
  | Stats
  | Status
  | Dashboard
  | Ping

type response = Ok of string | Err of string

(* ---- payload codec -------------------------------------------------- *)

let render_request = function
  | Compile { machine; inject; trace; source } ->
    let inj =
      match inject with
      | None -> ""
      | Some (site, k) -> Printf.sprintf " inject=%s@%d" site k
    in
    let tr =
      match trace with None -> "" | Some id -> Printf.sprintf " trace=%s" id
    in
    Printf.sprintf "compile %s%s%s\n%s" machine inj tr source
  | Stats -> "stats"
  | Status -> "status"
  | Dashboard -> "dashboard"
  | Ping -> "ping"

let parse_inject_spec spec =
  match String.rindex_opt spec '@' with
  | Some i when i > 0 -> (
    let site = String.sub spec 0 i in
    match
      int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
    with
    | Some k when k >= 1 -> Some (site, k)
    | _ -> None)
  | _ -> None

(* A compile head token is [key=value]; unknown keys and malformed
   values are request errors, so a typo'd client never silently
   compiles without its fault or trace id. *)
let parse_compile_token tok =
  match String.index_opt tok '=' with
  | None -> Result.Error (Printf.sprintf "bad request token %S" tok)
  | Some i -> (
    let key = String.sub tok 0 i in
    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
    match key with
    | "inject" -> (
      match parse_inject_spec v with
      | Some ij -> Result.Ok (`Inject ij)
      | None -> Result.Error (Printf.sprintf "bad request token %S" tok))
    | "trace" ->
      if v = "" then Result.Error "empty trace id"
      else Result.Ok (`Trace v)
    | _ -> Result.Error (Printf.sprintf "bad request token %S" tok))

let parse_request payload =
  let head, body =
    match String.index_opt payload '\n' with
    | Some i ->
      ( String.sub payload 0 i,
        String.sub payload (i + 1) (String.length payload - i - 1) )
    | None -> (payload, "")
  in
  match String.split_on_char ' ' head with
  | "compile" :: machine :: toks ->
    let rec fold inject trace = function
      | [] -> Result.Ok (Compile { machine; inject; trace; source = body })
      | tok :: rest -> (
        match parse_compile_token tok with
        | Result.Error _ as e -> e
        | Result.Ok (`Inject ij) -> fold (Some ij) trace rest
        | Result.Ok (`Trace id) -> fold inject (Some id) rest)
    in
    if machine = "" then Result.Error "empty machine name"
    else fold None None toks
  | [ "stats" ] -> Result.Ok Stats
  | [ "status" ] -> Result.Ok Status
  | [ "dashboard" ] -> Result.Ok Dashboard
  | [ "ping" ] -> Result.Ok Ping
  | verb :: _ -> Result.Error (Printf.sprintf "unknown request verb %S" verb)
  | [] -> Result.Error "empty request"

let render_response = function
  | Ok body -> "ok\n" ^ body
  | Err msg -> "error\n" ^ msg

let parse_response payload =
  let prefixed p =
    let n = String.length p in
    if String.length payload >= n && String.sub payload 0 n = p then
      Some (String.sub payload n (String.length payload - n))
    else None
  in
  match prefixed "ok\n" with
  | Some body -> Ok body
  | None -> (
    match prefixed "error\n" with
    | Some msg -> Err msg
    | None -> Err (Printf.sprintf "malformed response payload %S" payload))

(* ---- frame I/O ------------------------------------------------------ *)

module Frame = struct
  let max_len = 16 * 1024 * 1024

  let rec write_all fd b off len =
    if len > 0 then begin
      let n = Unix.write fd b off len in
      write_all fd b (off + n) (len - n)
    end

  let write fd payload =
    let len = String.length payload in
    if len > max_len then failwith "Frame.write: payload too large";
    let b = Bytes.create (4 + len) in
    Bytes.set_int32_be b 0 (Int32.of_int len);
    Bytes.blit_string payload 0 b 4 len;
    write_all fd b 0 (4 + len)

  (* [None] only on EOF at byte 0 of the read — EOF mid-object is a
     truncated frame and raises. *)
  let read_exact fd len =
    let b = Bytes.create len in
    let rec go off =
      if off = len then Some b
      else
        match Unix.read fd b off (len - off) with
        | 0 -> if off = 0 then None else failwith "Frame.read: truncated frame"
        | n -> go (off + n)
    in
    go 0

  let read fd =
    match read_exact fd 4 with
    | None -> None
    | Some hdr ->
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if len < 0 || len > max_len then
        failwith "Frame.read: bad frame length"
      else (
        match read_exact fd len with
        | None -> failwith "Frame.read: truncated frame"
        | Some b -> Some (Bytes.to_string b))
end

(* ---- telemetry ------------------------------------------------------ *)

(* All series share one logical clock: the request sequence number,
   assigned in admission order by the (single) driving domain. Wall
   time appears only as series *values* (latencies) — the window
   structure, counts and every counter-valued series are deterministic
   functions of the request stream. Cache counters cannot be attributed
   per-request while a batch runs concurrently on the pool, so they are
   recorded as one per-batch delta stamped with the batch's last
   sequence number — exact per-request under the sequential replay the
   SLO bench drives. *)
type telemetry = {
  mutable seq : int;  (** next sequence number = requests admitted *)
  mutable n_ok : int;
  mutable n_err : int;
  mutable n_compile : int;
  s_lat_us : Series.t;
  s_occupancy : Series.t;
  s_failures : Series.t;
  s_faults : Series.t;
  s_hits : Series.t;
  s_misses : Series.t;
  s_rejects : Series.t;
  s_evictions : Series.t;
  s_cost : Series.t;
      (** deterministic work units per compile ({!Sp_obs.Cost} profile
          total) — recorded only while cost accounting is enabled *)
}

let telemetry_window = 32

let make_telemetry () =
  let mk ~lo ~width ~buckets =
    Series.create ~capacity:4096 ~window:telemetry_window ~lo ~width ~buckets
      ()
  in
  {
    seq = 0;
    n_ok = 0;
    n_err = 0;
    n_compile = 0;
    s_lat_us = mk ~lo:0. ~width:1000. ~buckets:128;
    s_occupancy = mk ~lo:0. ~width:1. ~buckets:64;
    s_failures = mk ~lo:0. ~width:1. ~buckets:2;
    s_faults = mk ~lo:0. ~width:1. ~buckets:2;
    s_hits = mk ~lo:0. ~width:1. ~buckets:64;
    s_misses = mk ~lo:0. ~width:1. ~buckets:64;
    s_rejects = mk ~lo:0. ~width:1. ~buckets:64;
    s_evictions = mk ~lo:0. ~width:1. ~buckets:64;
    s_cost = mk ~lo:0. ~width:1000. ~buckets:128;
  }

(* ---- the engine ----------------------------------------------------- *)

type t = {
  pool : Pool.t;
  cache : Cache.t option;
  hook : Compile.cache option;
  tele : telemetry option;
  log : out_channel option;
}

let machine_of_string s =
  match s with
  | "warp" -> Result.Ok Machine.warp
  | "toy" -> Result.Ok Machine.toy
  | "serial" -> Result.Ok Machine.serial
  | _ -> (
    try Scanf.sscanf s "warp%dx" (fun w -> Result.Ok (Machine.warp_scaled ~width:w))
    with _ -> Result.Error (Printf.sprintf "unknown machine %S" s))

let create ?(cache_capacity = 256) ?(jobs = 1) ?(telemetry = true) ?log () =
  let cache = if cache_capacity > 0 then Some (Cache.create ~capacity:cache_capacity) else None in
  {
    pool = Pool.create ~jobs;
    cache;
    hook = Option.map Cache.hook cache;
    tele = (if telemetry then Some (make_telemetry ()) else None);
    log;
  }

let close t = Pool.shutdown t.pool
let cache t = t.cache

let cache_stats t =
  match t.cache with
  | Some c -> Cache.stats c
  | None ->
    { Cache.hits = 0; misses = 0; rejects = 0; inserts = 0; evictions = 0;
      entries = 0 }

let cache_fields t =
  let s = cache_stats t in
  [
    ( "capacity",
      Json.Int (match t.cache with Some c -> Cache.capacity c | None -> 0) );
    ("entries", Json.Int s.Cache.entries);
    ("hits", Json.Int s.Cache.hits);
    ("misses", Json.Int s.Cache.misses);
    ("rejects", Json.Int s.Cache.rejects);
    ("inserts", Json.Int s.Cache.inserts);
    ("evictions", Json.Int s.Cache.evictions);
  ]

let stats_schema = "w2cd-stats/2"
let status_schema = "w2cd-status/2"
let trace_schema = "w2cd-trace/1"
let reqlog_schema = "w2cd-reqlog/1"

let stats_json t =
  Json.to_string ~pretty:true
    (Json.Obj (("schema", Json.Str stats_schema) :: cache_fields t))

(* The error budget is a plain availability SLO: at most 1 failed
   request per 100 over the daemon's lifetime (trivially met at 0
   requests). The rate is over all requests — protocol verbs that
   cannot fail only add budget, never spend it. *)
let error_budget_fields (te : telemetry) =
  let reqs = te.seq in
  [
    ("requests", Json.Int reqs);
    ("errors", Json.Int te.n_err);
    ("budget_pct", Json.Float 1.0);
    ("ok", Json.Bool (te.n_err * 100 <= reqs));
  ]

(* Per-worker executed-task counts: shard-skew diagnostics, mirrored
   into Metrics gauges so a stats snapshot carries them too. *)
let pool_fields t =
  let counts = Pool.worker_counts t.pool in
  Array.iteri
    (fun i c ->
      Metrics.set
        (Metrics.gauge (Printf.sprintf "serve.pool.worker%d.tasks" i))
        (float_of_int c))
    counts;
  [
    ("jobs", Json.Int (Pool.jobs t.pool));
    ( "worker_tasks",
      Json.List (Array.to_list (Array.map (fun c -> Json.Int c) counts)) );
  ]

let status_json t =
  let base =
    [
      ("schema", Json.Str status_schema);
      ("telemetry", Json.Bool (t.tele <> None));
    ]
  in
  let body =
    match t.tele with
    | None ->
      [
        ("cache", Json.Obj (cache_fields t));
        ("pool", Json.Obj (pool_fields t));
      ]
    | Some te ->
      [
        ("uptime_requests", Json.Int te.seq);
        ( "requests",
          Json.Obj
            [
              ("total", Json.Int te.seq);
              ("compile", Json.Int te.n_compile);
              ("ok", Json.Int te.n_ok);
              ("error", Json.Int te.n_err);
            ] );
        ("error_budget", Json.Obj (error_budget_fields te));
        ( "series",
          Json.Obj
            [
              ("latency_us", Series.to_json te.s_lat_us);
              ("occupancy", Series.to_json te.s_occupancy);
              ("failures", Series.to_json te.s_failures);
              ("faults", Series.to_json te.s_faults);
              ("cache_hits", Series.to_json te.s_hits);
              ("cache_misses", Series.to_json te.s_misses);
              ("cache_rejects", Series.to_json te.s_rejects);
              ("cache_evictions", Series.to_json te.s_evictions);
              ("cost", Series.to_json te.s_cost);
            ] );
        ( "cost",
          Json.Obj
            [
              ("enabled", Json.Bool (Sp_obs.Cost.enabled ()));
              ("compiles_measured", Json.Int (Series.count te.s_cost));
            ] );
        ("cache", Json.Obj (cache_fields t));
        ("pool", Json.Obj (pool_fields t));
      ]
  in
  Json.to_string ~pretty:true (Json.Obj (base @ body))

(* ---- dashboard ------------------------------------------------------ *)

let window_means s =
  List.map
    (fun w ->
      if w.Series.w_count = 0 then 0.
      else w.Series.w_sum /. float_of_int w.Series.w_count)
    (Series.windows s)

let window_sums s =
  List.map (fun w -> w.Series.w_sum) (Series.windows s)

(* Overall quantile over the retained ring (not windowed): sort and
   index — the ring is at most a few thousand samples. *)
let retained_quantile s q =
  match List.map snd (Series.retained s) with
  | [] -> None
  | vs ->
    let a = Array.of_list vs in
    Array.sort compare a;
    let n = Array.length a in
    let i = min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1) in
    Some a.(max 0 i)

let dashboard_html t =
  let cs = cache_stats t in
  let cap = match t.cache with Some c -> Cache.capacity c | None -> 0 in
  let hit_rate_strip te =
    (* per-window hit rate: hits / (hits + misses), both per-batch
       delta series on the same logical clock *)
    let hs = Series.windows te.s_hits and ms = Series.windows te.s_misses in
    List.filter_map
      (fun (h : Series.window) ->
        match
          List.find_opt (fun (m : Series.window) -> m.Series.w_index = h.Series.w_index) ms
        with
        | None -> None
        | Some m ->
          let total = h.Series.w_sum +. m.Series.w_sum in
          Some (if total <= 0. then 0. else h.Series.w_sum /. total))
      hs
  in
  let dash =
    match t.tele with
    | None ->
      {
        Render.d_title = "w2cd service dashboard";
        d_tiles =
          [
            ("telemetry", "off");
            ("cache entries", Printf.sprintf "%d / %d" cs.Cache.entries cap);
          ];
        d_strips = [];
        d_grids =
          [ { Render.g_name = "cache occupancy"; g_filled = cs.Cache.entries;
              g_total = cap } ];
      }
    | Some te ->
      let fq q =
        match retained_quantile te.s_lat_us q with
        | None -> "-"
        | Some v -> Printf.sprintf "%.0f us" v
      in
      {
        Render.d_title = "w2cd service dashboard";
        d_tiles =
          [
            ("requests", string_of_int te.seq);
            ("compiles", string_of_int te.n_compile);
            ("errors", string_of_int te.n_err);
            ("latency p50", fq 0.5);
            ("latency p99", fq 0.99);
            ( "error budget",
              if te.n_err * 100 <= te.seq then "ok" else "SPENT" );
            ("cache entries", Printf.sprintf "%d / %d" cs.Cache.entries cap);
          ];
        d_strips =
          [
            { Render.st_name = "latency us (window mean)";
              st_points = window_means te.s_lat_us };
            { Render.st_name = "batch occupancy (window mean)";
              st_points = window_means te.s_occupancy };
            { Render.st_name = "cache hit rate (per window)";
              st_points = hit_rate_strip te };
            { Render.st_name = "failures (per window)";
              st_points = window_sums te.s_failures };
            { Render.st_name = "compile cost, work units (window mean)";
              st_points = window_means te.s_cost };
          ];
        d_grids =
          [ { Render.g_name = "cache occupancy"; g_filled = cs.Cache.entries;
              g_total = cap } ];
      }
  in
  Render.dashboard dash

(* ---- request execution ---------------------------------------------- *)

let describe_exn = function
  | Sp_lang.Lexer.Error (p, m) ->
    Fmt.str "lexical error at %a: %s" Sp_lang.Token.pp_pos p m
  | Sp_lang.Parser.Error (p, m) ->
    Fmt.str "syntax error at %a: %s" Sp_lang.Token.pp_pos p m
  | Sp_lang.Typecheck.Error (p, m) ->
    Fmt.str "type error at %a: %s" Sp_lang.Token.pp_pos p m
  | Fault.Injected site -> "fault injected at " ^ site
  | e -> Printexc.to_string e

(* One compile, cache attached, response text byte-identical to offline
   [w2c compile]: the header comment plus the pretty-printed program.
   Requests compile at [jobs = 1] — parallelism lives across requests
   (the pool), not inside one. The phase spans cost one branch each
   when no trace is being recorded. *)
let compile_body t ~machine ~source =
  match machine_of_string machine with
  | Result.Error msg -> Err msg
  | Result.Ok m -> (
    match
      let p =
        Trace.span "request.decode" (fun () ->
            Sp_lang.Lower.compile_source source)
      in
      let config = { Compile.default with Compile.cache = t.hook } in
      let r =
        Trace.span "request.schedule" (fun () -> Compile.program ~config m p)
      in
      Trace.span "request.encode" (fun () ->
          Fmt.str "; %s: %d instructions for machine %s@." p.Sp_ir.Program.name
            r.Compile.code_size m.Machine.name
          ^ Fmt.str "%a" Sp_vliw.Prog.pp r.Compile.code)
    with
    | exception e -> Err (describe_exn e)
    | body -> Ok body)

(* Arming a fault is only legal in sequential request execution; the
   arm/disarm window is scoped to this one request ([Fault.with_armed])
   so an armed site can never leak into a later request served from the
   same (or a cached) compile. *)
let compile_exec t ~machine ~inject ~source =
  match inject with
  | None -> compile_body t ~machine ~source
  | Some (site, k) ->
    if not (List.mem site (Fault.sites ())) then
      Err
        (Printf.sprintf "unknown fault site %S (available: %s)" site
           (String.concat ", " (Fault.sites ())))
    else
      Fault.with_armed ~site ~after:k (fun () ->
          compile_body t ~machine ~source)

(* What the telemetry recorder needs to know about one executed
   request, beyond its response. *)
type outcome = {
  o_resp : response;
  o_verb : string;
  o_lat_us : float;
  o_fault : bool;
  o_trace : string option;
  o_spans : Trace.tree list option;
  o_cost : float option;
      (** compile work units, when cost accounting is enabled *)
}

let run_one t = function
  | Compile { machine; inject; trace = None; source } ->
    compile_exec t ~machine ~inject ~source
  | Compile { machine; inject; trace = Some _; source } ->
    (* reachable only through the telemetry-off service: execute the
       compile; the span tree is not captured (nothing records it) *)
    compile_exec t ~machine ~inject ~source
  | Stats -> Ok (stats_json t)
  | Status -> Ok (status_json t)
  | Dashboard -> Ok (dashboard_html t)
  | Ping -> Ok "pong"

let verb_of = function
  | Compile _ -> "compile"
  | Stats -> "stats"
  | Status -> "status"
  | Dashboard -> "dashboard"
  | Ping -> "ping"

(* Telemetry-path execution of one request on whatever domain the pool
   picked: times the request and, when it carries a trace id, records
   its span tree via the domain-local capture ({!Trace.with_recording}),
   so a co-scheduled request can neither see nor corrupt it. *)
let exec_one t rq =
  let t0 = Monotonic_clock.now () in
  (* cost capture is domain-local ([Cost.collect]), so co-scheduled
     requests on other pool domains cannot bleed work units into this
     one; the profile total feeds the cost series per request *)
  let (resp, spans), cost =
    Sp_obs.Cost.collect (fun () ->
        match rq with
        | Compile { machine; inject; trace = Some _; source } ->
          let res, events =
            Trace.with_recording (fun () ->
                Trace.span "request" (fun () ->
                    compile_exec t ~machine ~inject ~source))
          in
          let resp =
            match res with
            | Result.Ok r -> r
            | Result.Error e -> Err (describe_exn e)
          in
          (resp, Some (Trace.tree_of_events events))
        | rq -> (run_one t rq, None))
  in
  let lat_ns = Int64.sub (Monotonic_clock.now ()) t0 in
  {
    o_resp = resp;
    o_verb = verb_of rq;
    o_lat_us = Int64.to_float lat_ns /. 1000.;
    o_fault = (match rq with Compile { inject = Some _; _ } -> true | _ -> false);
    o_trace = (match rq with Compile { trace; _ } -> trace | _ -> None);
    o_spans = spans;
    o_cost =
      (match rq with
      | Compile _ when Sp_obs.Cost.enabled () ->
        Some (float_of_int (Sp_obs.Cost.total cost))
      | _ -> None);
  }

(* The final response for a traced compile wraps the compile output in
   a versioned JSON envelope carrying the request's identity and span
   tree; errors keep the plain [error] payload with the identity
   appended so a failure is attributable from the message alone. *)
let finish_response ~seq out =
  match (out.o_trace, out.o_resp) with
  | None, (Ok _ as resp) -> resp
  | None, Err msg -> Err (Printf.sprintf "%s [req %d]" msg seq)
  | Some id, Ok body ->
    Ok
      (Json.to_string ~pretty:true
         (Json.Obj
            [
              ("schema", Json.Str trace_schema);
              ("trace", Json.Str id);
              ("seq", Json.Int seq);
              ( "spans",
                Trace.trees_json (Option.value ~default:[] out.o_spans) );
              ("output", Json.Str body);
            ]))
  | Some id, Err msg ->
    Err (Printf.sprintf "%s [req %d trace=%s]" msg seq id)

let log_line t ~seq out =
  match t.log with
  | None -> ()
  | Some oc ->
    let err =
      match out.o_resp with
      | Ok _ -> []
      | Err m -> [ ("error", Json.Str m) ]
    in
    let spans =
      match out.o_spans with
      | None -> []
      | Some ts -> [ ("spans", Trace.trees_json ts) ]
    in
    Json.to_channel oc
      (Json.Obj
         ([
            ("schema", Json.Str reqlog_schema);
            ("seq", Json.Int seq);
            ("verb", Json.Str out.o_verb);
            ( "trace",
              match out.o_trace with
              | None -> Json.Null
              | Some id -> Json.Str id );
            ( "outcome",
              Json.Str (match out.o_resp with Ok _ -> "ok" | Err _ -> "error")
            );
            ("lat_us", Json.Float out.o_lat_us);
          ]
         @ err @ spans))

let record t (te : telemetry) ~seq0 outs =
  List.iteri
    (fun i out ->
      let seq = seq0 + i in
      let failed = match out.o_resp with Ok _ -> false | Err _ -> true in
      (match out.o_resp with
      | Ok _ -> te.n_ok <- te.n_ok + 1
      | Err _ -> te.n_err <- te.n_err + 1);
      if out.o_verb = "compile" then te.n_compile <- te.n_compile + 1;
      Series.add ~seq te.s_lat_us out.o_lat_us;
      Series.add ~seq te.s_failures (if failed then 1. else 0.);
      Series.add ~seq te.s_faults (if out.o_fault then 1. else 0.);
      Option.iter (fun c -> Series.add ~seq te.s_cost c) out.o_cost;
      log_line t ~seq out)
    outs;
  (match t.log with Some oc -> flush oc | None -> ())

let arms_fault = function
  | Compile { inject = Some _; _ } -> true
  | _ -> false

let is_traced = function
  | Compile { trace = Some _; _ } -> true
  | _ -> false

let handle_batch t rqs =
  match t.tele with
  | None ->
    (* PR 7 path, byte-for-byte: no clocks, no series, no stamping *)
    if List.exists arms_fault rqs then List.map (run_one t) rqs
    else
      Pool.try_run t.pool (List.map (fun rq () -> run_one t rq) rqs)
      |> List.map (function
           | Result.Ok r -> r
           | Result.Error (e, _) -> Err (describe_exn e))
  | Some te ->
    let n = List.length rqs in
    let seq0 = te.seq in
    te.seq <- te.seq + n;
    let before = cache_stats t in
    let outs =
      if List.exists arms_fault rqs || List.exists is_traced rqs then
        (* a batch that injects must run whole on the calling domain
           (hit counting is global, so the armed window must not
           overlap any concurrent compile); a batch that traces runs
           the same way so the traced request's span tree — including
           its cache probes — depends only on the requests admitted
           before it, not on scheduling *)
        List.map (exec_one t) rqs
      else
        Pool.try_run t.pool (List.map (fun rq () -> exec_one t rq) rqs)
        |> List.map2
             (fun rq -> function
               | Result.Ok out -> out
               | Result.Error (e, _) ->
                 {
                   o_resp = Err (describe_exn e);
                   o_verb = verb_of rq;
                   o_lat_us = 0.;
                   o_fault = false;
                   o_trace = None;
                   o_spans = None;
                   o_cost = None;
                 })
             rqs
    in
    (* batch occupancy: every request of this batch saw [n] co-residents
       (itself included) *)
    List.iteri
      (fun i _ -> Series.add ~seq:(seq0 + i) te.s_occupancy (float_of_int n))
      outs;
    record t te ~seq0 outs;
    (* cache movement per batch, stamped at the batch's last seq *)
    if n > 0 then begin
      let after = cache_stats t in
      let last = seq0 + n - 1 in
      let d f = float_of_int (f after - f before) in
      Series.add ~seq:last te.s_hits (d (fun s -> s.Cache.hits));
      Series.add ~seq:last te.s_misses (d (fun s -> s.Cache.misses));
      Series.add ~seq:last te.s_rejects (d (fun s -> s.Cache.rejects));
      Series.add ~seq:last te.s_evictions (d (fun s -> s.Cache.evictions))
    end;
    List.mapi (fun i out -> finish_response ~seq:(seq0 + i) out) outs

let handle t rq =
  match handle_batch t [ rq ] with
  | [ r ] -> r
  | _ -> Err "internal: response count mismatch"

let telemetry_seq t = match t.tele with None -> 0 | Some te -> te.seq
