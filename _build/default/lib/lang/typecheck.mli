(** Semantic analysis: declarations, operand types (no implicit
    int/float coercion), integer conditions, subscript arity, intrinsic
    signatures, loop-variable immutability, channel numbers. *)

exception Error of Token.pos * string

type info =
  | Scalar of Ast.ty
  | Array of Ast.ty * (int * int) list
  | Loopvar

type env = {
  vars : (string, info) Hashtbl.t;
  mutable loop_vars : string list;
}

val type_of : env -> Ast.expr -> Ast.ty
(** Raises {!Error} on ill-typed expressions. *)

val check : Ast.program -> env
(** Check a whole program; raises {!Error} on the first violation. *)
