lib/machine/opkind.ml: Fmt Printf
