examples/convolution.mli:
