examples/quickstart.ml: Builder Fmt Interp List Machine_state Program Region Sp_core Sp_ir Sp_machine Sp_vliw
