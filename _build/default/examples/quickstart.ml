(** Quickstart: build a loop with the IR builder, software pipeline it,
    inspect the schedule, and validate the generated VLIW code against
    the sequential interpreter.

    Run with: [dune exec examples/quickstart.exe] *)

open Sp_ir
module C = Sp_core.Compile

let () =
  (* 1. Build the paper's Section 2 example: a[i] := a[i] + K. *)
  let b = Builder.create "quickstart" in
  let a = Builder.farray b "a" 128 in
  let k = Builder.fconst b 3.5 in
  Builder.for_ b (Region.Const 100) (fun i ->
      let x = Builder.load_iv b a i 0 in
      let y = Builder.fadd b x k in
      Builder.store_iv b a i 0 y);
  let prog = Builder.finish b in
  Fmt.pr "--- IR ---@.%a@." Program.pp prog;

  (* 2. Compile for the toy machine of the paper's example. *)
  let m = Sp_machine.Machine.toy in
  let r = C.program m prog in
  Fmt.pr "--- schedule ---@.";
  List.iter (fun lr -> Fmt.pr "%a@." C.pp_loop_report lr) r.C.loops;
  Fmt.pr "@.--- VLIW code (%d instructions) ---@.%a@." r.C.code_size
    Sp_vliw.Prog.pp r.C.code;

  (* 3. Simulate and cross-check against the sequential interpreter. *)
  let init st = Machine_state.init_farray st a (fun i -> float_of_int i) in
  let oracle = Interp.run ~init prog in
  let sim = Sp_vliw.Sim.run ~init m prog r.C.code in
  Fmt.pr "--- execution ---@.";
  Fmt.pr "cycles: %d (sequential interpreter executed %d operations)@."
    sim.Sp_vliw.Sim.cycles oracle.Interp.dyn_ops;
  Fmt.pr "semantics preserved: %b@."
    (Machine_state.observably_equal oracle.Interp.state sim.Sp_vliw.Sim.state);

  (* 4. Compare with the unpipelined baseline. *)
  let r0 = C.program ~config:C.local_only m prog in
  let sim0 = Sp_vliw.Sim.run ~init m prog r0.C.code in
  Fmt.pr "speed-up over locally compacted code: %.2fx@."
    (float_of_int sim0.Sp_vliw.Sim.cycles /. float_of_int sim.Sp_vliw.Sim.cycles)
