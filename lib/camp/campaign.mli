(** Streaming differential campaign over generated W2 programs:
    sharded by seed range, constant memory (compact per-program probes
    folded into running histograms and counters — nothing retained per
    program), resumable (summaries merge associatively across range
    partitions), with failing seeds delta-minimized and banked as
    replayable [.w2] regressions. Fault-injection modes run
    single-domain because {!Sp_util.Fault} state is global. *)

type mode =
  | Clean
  | Inject of string * int  (** arm [site@k] around every program *)

type cfg = {
  lo : int;
  hi : int;                  (** inclusive seed range *)
  jobs : int;                (** pool width; fault modes force 1 *)
  oracle : Oracle.config;
  mode : mode;
  bank_dir : string option;  (** where minimized repros are banked *)
  bank_cap : int;            (** max failures minimized+banked per run *)
  minimize_budget : int;     (** oracle evaluations per minimization *)
  opt_every : int;
      (** run the budget-capped learn-on vs learn-off exact-certifier
          oracle on every [opt_every]-th seed (by absolute seed value,
          so sampling is shard-invariant; 0 = never). When the armed
          injection site is {!Sp_opt.Exact.nogood_site} the check runs
          on every seed instead — the corrupted bank is what it
          detects. *)
}

val default : cfg
(** seeds 1..10000, sequential, clean mode, no banking, cap 25, opt
    differential every 16th seed. *)

type failure = {
  f_seed : int;
  f_kind : string;
  f_detail : string;
  f_nodes_before : int;     (** AST nodes before minimization *)
  f_nodes_after : int;      (** … after; strictly smaller when any
                                rewrite reproduced the failure *)
  f_evals : int;            (** oracle evaluations the minimizer spent *)
  f_file : string option;   (** banked path, when banking was on *)
}

type summary = {
  total : int;
  pass : int;
  verdicts : (string * int) list;  (** every kind, fixed order *)
  statuses : (string * int) list;  (** loop status tag -> count, sorted *)
  gap : Sp_util.Histogram.t;       (** ii - mii over pipelined loops *)
  eff : Sp_util.Histogram.t;       (** mii/ii over pipelined loops *)
  csize : Sp_util.Histogram.t;     (** emitted code size per program *)
  cost : Sp_util.Histogram.t;
      (** deterministic {!Sp_obs.Cost} work units per program — counts,
          not clocks, so the distribution is identical at any [jobs] *)
  cost_by_phase : (string * Sp_util.Histogram.t) list;
      (** per compile phase ({!Sp_obs.Cost.all_phases} names, fixed key
          set), the distribution of that phase's work units over the
          population; merged pointwise across shards *)
  expensive : (int * int) list;
      (** the top-10 most expensive programs as (seed, work units),
          units descending then seed ascending — truncation of the
          sorted union, so shard merges stay associative *)
  pass_rate : Sp_obs.Series.t;
      (** pass indicator per seed (1.0 pass / 0.0 fail) on the seed
          logical clock, windowed per {!Sp_obs.Series} — the artifact
          surfaces per-window verdict rates so a throughput or
          pass-rate regression localizes to a seed range. Shards over
          disjoint seed ranges merge associatively like the
          histograms. *)
  failures : failure list;         (** minimized, in seed order *)
  unminimized : int;               (** failures beyond the bank cap *)
}

val empty_summary : unit -> summary

val merge : summary -> summary -> summary
(** Associative shard merge: [run (lo..hi)] equals
    [merge (run (lo..mid)) (run (mid+1..hi))] up to the final status
    sort — the resumability contract. *)

val failure_count : summary -> int

val run : ?on_progress:(int -> unit) -> cfg -> summary
(** Stream the configured seed range. Never raises on worker or
    program failures — they become verdicts. *)

val sweep : ?ks:int list -> cfg -> ((string * int) * summary) list
(** Arm every registered compiler fault site at each hit count in [ks]
    (default [1; 2]) across the whole seed range, sequentially, with
    degradation counted as graceful. Each armed population is expected
    to read all-pass — except {!Sp_opt.Exact.nogood_site}, whose
    silent bank corruption must instead be {e caught} by the
    [opt-diverge] oracle (run on every seed under that site); the
    caller inverts the gate for those rows. Anything else worse than
    graceful degradation is minimized and banked. *)
