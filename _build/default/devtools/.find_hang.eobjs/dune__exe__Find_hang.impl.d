devtools/find_hang.ml: Fmt Format Gen List Sp_core Sp_machine Unix
