(** Tests for the W2-like front end: lexer, parser, type checker,
    lowering. *)

open Sp_lang

(* ---- lexer --------------------------------------------------------- *)

let toks src = List.map snd (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count (incl. EOF)" 7
    (List.length (toks "x := 1 + 2.5;"));
  (match toks "x := 1 + 2.5;" with
  | [ IDENT "x"; ASSIGN; INT 1; PLUS; FLOAT 2.5; SEMI; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected tokens");
  (match toks "for I := 0 to N do" with
  | [ FOR; IDENT "i"; ASSIGN; INT 0; TO; IDENT "n"; DO; EOF ] -> ()
  | _ -> Alcotest.fail "keywords and case folding")

let test_lexer_operators () =
  match toks "<= >= <> < > = .. : :=" with
  | [ LE; GE; NE; LT; GT; EQ; DOTDOT; COLON; ASSIGN; EOF ] -> ()
  | _ -> Alcotest.fail "operator lexing"

let test_lexer_comments () =
  (match toks "a { a pascal comment } b -- line comment\nc" with
  | [ IDENT "a"; IDENT "b"; IDENT "c"; EOF ] -> ()
  | _ -> Alcotest.fail "comments skipped");
  match Lexer.tokenize "{ unterminated" with
  | exception Lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "unterminated comment should raise"

let test_lexer_numbers () =
  (match toks "3 3.5 1e3 2.5e-2" with
  | [ INT 3; FLOAT 3.5; FLOAT 1000.0; FLOAT 0.025; EOF ] -> ()
  | _ -> Alcotest.fail "number lexing");
  match Lexer.tokenize "$" with
  | exception Lexer.Error (_, _) -> ()
  | _ -> Alcotest.fail "bad character should raise"

(* ---- parser -------------------------------------------------------- *)

let parse = Parser.parse

let test_parse_program () =
  let p =
    parse
      {|program t;
var x : array [0..9] of float;
    s : float;
    n : int;
begin
  s := 0.5;
  for i := 0 to 9 do x[i] := s * x[i];
end.|}
  in
  Alcotest.(check string) "name" "t" p.Ast.p_name;
  Alcotest.(check int) "decls" 3 (List.length p.Ast.p_decls);
  Alcotest.(check int) "stmts" 2 (List.length p.Ast.p_body)

let test_parse_precedence () =
  let p = parse {|program t;
var a, b, c : float;
begin a := b + c * b - c; end.|} in
  match p.Ast.p_body with
  | [ { Ast.s = Ast.Sassign (_, { Ast.e = Ast.Ebin (Ast.Sub, lhs, _); _ }); _ } ]
    -> (
    match lhs.Ast.e with
    | Ast.Ebin (Ast.Add, _, { Ast.e = Ast.Ebin (Ast.Mul, _, _); _ }) -> ()
    | _ -> Alcotest.fail "mul binds tighter than add")
  | _ -> Alcotest.fail "expected ((b + (c*b)) - c)"

let test_parse_if_else () =
  let p =
    parse
      {|program t;
var a : float;
begin
  if a > 1.0 then a := 1.0;
  else begin a := 0.0; a := a + 1.0; end
end.|}
  in
  match p.Ast.p_body with
  | [ { Ast.s = Ast.Sif (_, [ _ ], [ _; _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "if/else statement shapes"

let test_parse_2d_and_independent () =
  let p =
    parse
      {|program t;
var m : independent array [0..3, 1..4] of float;
begin m[1, 2] := 0.0; end.|}
  in
  match p.Ast.p_decls with
  | [ { Ast.d_kind = Ast.Darray { dims = [ (0, 3); (1, 4) ]; independent = true; _ }; _ } ]
    -> ()
  | _ -> Alcotest.fail "2-D independent array declaration"

let test_parse_conversions () =
  let p =
    parse {|program t;
var a : float; k : int;
begin a := float(k) + 1.0; k := int(a); end.|}
  in
  Alcotest.(check int) "two statements" 2 (List.length p.Ast.p_body)

let test_parse_errors () =
  let fails src =
    match parse src with
    | exception Parser.Error (_, _) -> ()
    | _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  fails "program t; begin x := ; end.";
  fails "program t; begin for := 0 to 1 do x := 1; end.";
  fails "program ; begin end.";
  fails "program t; var x : array [0..] of float; begin end.";
  fails "program t; begin end. trailing"

(* ---- typecheck ------------------------------------------------------ *)

let check_ok src = ignore (Typecheck.check (parse src))

let check_fails src =
  match Typecheck.check (parse src) with
  | exception Typecheck.Error (_, _) -> ()
  | _ -> Alcotest.fail ("should not typecheck: " ^ src)

let test_typecheck_accepts () =
  check_ok
    {|program t;
var x : array [0..9] of float; s : float; n : int;
begin
  n := 3;
  for i := 0 to n do begin
    if x[i] > 0.5 and (n < 4) then s := sqrt(x[i]);
    else s := inverse(x[i]);
    x[i] := min(s, 2.0);
  end
  send(s); receive(s, 1);
end.|}

let test_typecheck_rejects () =
  check_fails "program t; var s : float; begin s := 1; end.";
  check_fails "program t; var s : float; begin y := 1.0; end.";
  check_fails "program t; var k : int; begin k := k + 1.5; end.";
  check_fails
    "program t; var x : array [0..9] of float; begin x := 1.0; end.";
  check_fails
    "program t; var x : array [0..9] of float; begin x[1,2] := 1.0; end.";
  check_fails
    "program t; var x : array [0..9] of float; begin x[0.5] := 1.0; end.";
  check_fails "program t; var s : float; begin if s then s := 1.0; end.";
  check_fails "program t; var s : float; begin s := sqrt(1); end.";
  check_fails "program t; var s : float; begin s := nosuch(1.0); end.";
  check_fails "program t; var s : float; begin send(s, 7); end.";
  check_fails "program t; var s, s : float; begin s := 1.0; end.";
  check_fails
    "program t; begin for i := 0 to 3 do i := 2; end.";
  check_fails "program t; var x : array [5..2] of float; begin end."

(* ---- lowering -------------------------------------------------------- *)

let lower src = Lower.compile_source src

let test_lower_subscripts () =
  (* affine subscripts must come out exact: the loop pipelines at the
     memory bound, which only happens if x[i] / x[i+1] are disambiguated *)
  let p =
    lower
      {|program t;
var x : array [0..40] of float;
begin
  for i := 0 to 30 do x[i] := x[i+1] + 0.5;
end.|}
  in
  let exact = ref 0 and total = ref 0 in
  Sp_ir.Region.iter_ops
    (fun op ->
      match op.Sp_ir.Op.addr with
      | Some a ->
        incr total;
        if a.Sp_ir.Op.sub <> None then incr exact
      | None -> ())
    p.Sp_ir.Program.body;
  Alcotest.(check int) "two accesses" 2 !total;
  Alcotest.(check int) "both exact" 2 !exact

let test_lower_2d_base_sharing () =
  (* two accesses m[i, j] and m[i, j+1] share one materialized row base
     so their subscripts stay comparable *)
  let p =
    lower
      {|program t;
var m : array [0..7, 0..7] of float;
begin
  for i := 0 to 6 do
    for j := 0 to 6 do
      m[i, j] := m[i, j+1];
end.|}
  in
  let bases = ref [] in
  Sp_ir.Region.iter_ops
    (fun op ->
      match op.Sp_ir.Op.addr with
      | Some { Sp_ir.Op.sub = Some s; _ } -> bases := s.Sp_ir.Subscript.syms :: !bases
      | _ -> ())
    p.Sp_ir.Program.body;
  match !bases with
  | [ b1; b2 ] ->
    Alcotest.(check bool) "same symbolic base" true (b1 = b2)
  | _ -> Alcotest.fail "expected two subscripted accesses"

let test_lower_loop_bounds () =
  (* non-zero lower bound folds into the subscript offset *)
  let p =
    lower
      {|program t;
var x : array [0..20] of float;
begin for i := 5 to 15 do x[i] := 1.0; end.|}
  in
  (match p.Sp_ir.Program.body with
  | Sp_ir.Region.Seq _ | Sp_ir.Region.Ops _ | Sp_ir.Region.If _ ->
    Alcotest.fail "expected a loop"
  | Sp_ir.Region.For { n = Sp_ir.Region.Const 11; _ } -> ()
  | Sp_ir.Region.For _ -> Alcotest.fail "trip count should be 11");
  let found = ref false in
  Sp_ir.Region.iter_ops
    (fun op ->
      match op.Sp_ir.Op.addr with
      | Some { Sp_ir.Op.off = 5; _ } -> found := true
      | _ -> ())
    p.Sp_ir.Program.body;
  Alcotest.(check bool) "offset folded" true !found

let test_lower_runtime_bounds () =
  let p =
    lower
      {|program t;
var x : array [0..63] of float; n : int;
begin
  n := 10;
  for i := 0 to n do x[i] := 2.0;
end.|}
  in
  let has_reg_trip = ref false in
  let rec go = function
    | Sp_ir.Region.For { n = Sp_ir.Region.Reg _; _ } -> has_reg_trip := true
    | Sp_ir.Region.For { body; _ } -> go body
    | Sp_ir.Region.Seq rs -> List.iter go rs
    | Sp_ir.Region.If { then_; else_; _ } -> go then_; go else_
    | Sp_ir.Region.Ops _ -> ()
  in
  go p.Sp_ir.Program.body;
  Alcotest.(check bool) "register trip count" true !has_reg_trip;
  (* and it runs: 11 iterations *)
  let r = Sp_ir.Interp.run p in
  let arr =
    Sp_ir.Machine_state.get_farray r.Sp_ir.Interp.state
      (Sp_ir.Program.find_seg p "x")
  in
  Alcotest.(check (float 0.0)) "x[10]" 2.0 arr.(10);
  Alcotest.(check (float 0.0)) "x[11]" 0.0 arr.(11)

let test_lower_reassociation () =
  (* a + b + c + d lowers as a balanced tree: critical path two adds *)
  let p =
    lower
      {|program t;
var a, b, c, d, s : float;
begin s := a + b + c + d; end.|}
  in
  let adds = ref 0 in
  Sp_ir.Region.iter_ops
    (fun op -> if op.Sp_ir.Op.kind = Sp_machine.Opkind.Fadd then incr adds)
    p.Sp_ir.Program.body;
  Alcotest.(check int) "three adds" 3 !adds

let test_lower_division_expands () =
  let p = lower {|program t;
var a, b : float;
begin a := a / b; end.|} in
  (* division = reciprocal sequence (7 flops) + final multiply *)
  let n = ref 0 in
  Sp_ir.Region.iter_ops
    (fun op -> if Sp_ir.Op.is_flop op then incr n)
    p.Sp_ir.Program.body;
  Alcotest.(check int) "8 flops" 8 !n

(* ---- unrolling (the Section 5.1 baseline) --------------------------- *)

let test_unroll_semantics () =
  let src =
    {|program t;
var x : array [0..40] of float; s : float;
begin
  s := 0.0;
  for i := 2 to 38 do begin
    x[i] := x[i] * 1.5 + 0.25;
    s := s + x[i];
  end
  x[0] := s;
end.|}
  in
  let reference =
    let p = Lower.compile_source src in
    let init st = Sp_kernels.Kernel.init_all_arrays st p in
    Sp_ir.Machine_state.get_farray (Sp_ir.Interp.run ~init p).Sp_ir.Interp.state
      (Sp_ir.Program.find_seg p "x")
  in
  List.iter
    (fun k ->
      let p = Unroll.compile_source ~k src in
      let init st = Sp_kernels.Kernel.init_all_arrays st p in
      let got =
        Sp_ir.Machine_state.get_farray
          (Sp_ir.Interp.run ~init p).Sp_ir.Interp.state
          (Sp_ir.Program.find_seg p "x")
      in
      Alcotest.(check bool)
        (Printf.sprintf "unroll %d preserves semantics" k)
        true
        (Array.for_all2 Float.equal reference got))
    [ 2; 3; 4; 8 ]

let test_unroll_structure () =
  let src =
    {|program t;
var x : array [0..63] of float;
begin for i := 0 to 63 do x[i] := x[i] + 1.0; end.|}
  in
  let p1 = Lower.compile_source src in
  let p4 = Unroll.compile_source ~k:4 src in
  let c r = (Sp_ir.Program.stats r).Sp_ir.Program.n_ops in
  Alcotest.(check bool) "unrolled body is bigger" true (c p4 > c p1);
  (* 64 divisible by 4: still a single loop, no residue *)
  Alcotest.(check int) "one loop" 1
    (Sp_ir.Program.stats p4).Sp_ir.Program.n_loops

let test_unroll_residue () =
  (* 10 iterations unrolled by 4: 2 groups + 2 residual copies *)
  let src =
    {|program t;
var x : array [0..15] of float;
begin for i := 0 to 9 do x[i] := 2.0; end.|}
  in
  let p = Unroll.compile_source ~k:4 src in
  let r = Sp_ir.Interp.run p in
  let arr =
    Sp_ir.Machine_state.get_farray r.Sp_ir.Interp.state
      (Sp_ir.Program.find_seg p "x")
  in
  Alcotest.(check (float 0.0)) "x[9] written" 2.0 arr.(9);
  Alcotest.(check (float 0.0)) "x[10] untouched" 0.0 arr.(10)

let test_if_conversion () =
  let src =
    {|program t;
var x, y : array [0..31] of float; v : float;
begin
  for i := 0 to 31 do begin
    if x[i] > 1.5 then v := x[i] * 2.0;
    else v := x[i] + 1.0;
    y[i] := v;
  end
end.|}
  in
  let branches = Lower.compile_source src in
  let selects = Lower.compile_source ~if_convert:true src in
  Alcotest.(check int) "branching version keeps the if" 1
    (Sp_ir.Program.stats branches).Sp_ir.Program.n_ifs;
  Alcotest.(check int) "converted version has no if" 0
    (Sp_ir.Program.stats selects).Sp_ir.Program.n_ifs;
  (* identical observable behaviour *)
  let run p =
    let init st = Sp_kernels.Kernel.init_all_arrays st p in
    Sp_ir.Machine_state.get_farray
      (Sp_ir.Interp.run ~init p).Sp_ir.Interp.state
      (Sp_ir.Program.find_seg p "y")
  in
  Alcotest.(check bool) "same results" true
    (Array.for_all2 Float.equal (run branches) (run selects))

let suite =
  [
    ("lexer basics", `Quick, test_lexer_basics);
    ("lexer operators", `Quick, test_lexer_operators);
    ("lexer comments", `Quick, test_lexer_comments);
    ("lexer numbers", `Quick, test_lexer_numbers);
    ("parse program", `Quick, test_parse_program);
    ("parse precedence", `Quick, test_parse_precedence);
    ("parse if/else", `Quick, test_parse_if_else);
    ("parse 2-D independent array", `Quick, test_parse_2d_and_independent);
    ("parse conversions", `Quick, test_parse_conversions);
    ("parse errors", `Quick, test_parse_errors);
    ("typecheck accepts", `Quick, test_typecheck_accepts);
    ("typecheck rejects", `Quick, test_typecheck_rejects);
    ("lowering: exact subscripts", `Quick, test_lower_subscripts);
    ("lowering: 2-D base sharing", `Quick, test_lower_2d_base_sharing);
    ("lowering: loop bounds", `Quick, test_lower_loop_bounds);
    ("lowering: run-time bounds", `Quick, test_lower_runtime_bounds);
    ("lowering: reassociation", `Quick, test_lower_reassociation);
    ("lowering: division expansion", `Quick, test_lower_division_expands);
    ("unroll: semantics preserved", `Quick, test_unroll_semantics);
    ("unroll: structure", `Quick, test_unroll_structure);
    ("unroll: residue", `Quick, test_unroll_residue);
    ("if-conversion extension", `Quick, test_if_conversion);
  ]
