lib/core/compile.ml: Array Ddg Emit Fmt Hashtbl List Listsched Machine Memseg Mii Modsched Mve Op Option Printf Program Region Scc Sp_ir Sp_machine Sp_vliw Sunit Sys Vreg
