test/test_interp.ml: Alcotest Array Builder Expand Float Interp List Machine_state Op Printf Program Region Semantics Sp_ir Sp_machine
