devtools/find_hang.mli:
