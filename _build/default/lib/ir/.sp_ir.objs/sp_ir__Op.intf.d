lib/ir/op.mli: Format Memseg Sp_machine Subscript Vreg
