lib/core/scc.mli:
