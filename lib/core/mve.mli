(** Modulo variable expansion (paper Section 2.3): allocate several
    rotating register copies to loop variants whose lifetime exceeds
    the initiation interval, and determine the steady-state unrolling
    degree. *)

open Sp_ir

type mode =
  | Max_q  (** unroll [u = max q_i] — the paper's space-saving choice *)
  | Lcm    (** unroll [lcm(q_i)] — the naive alternative it rejects *)
  | Off    (** no expansion (carried anti-dependences stay in the DDG) *)

type alloc = {
  reg : Vreg.t;
  q : int;               (** simultaneously live values *)
  n : int;               (** locations allocated: smallest divisor of
                             the unroll degree that is at least [q] *)
  copies : Vreg.t array; (** [copies.(0)] is the original register *)
  birth : int;           (** first cycle the value occupies the register *)
  death : int;           (** last read in the flat schedule (birth for
                             never-read values) *)
}

type t = {
  unroll : int;
  allocs : alloc list;
  fregs : int;  (** total FP registers after expansion *)
  iregs : int;
  fits : bool;  (** within the machine's register files; when false the
                    compiler reverts to the serial schedule *)
}

val identity : t
(** No expansion (unroll 1, no allocations). *)

val rename : t -> iter:int -> Vreg.t -> Vreg.t
(** Register copy used by (pipelined) iteration [iter]; any iteration
    index (including negative epilog accounting) is reduced modulo the
    per-register allocation. Non-candidates are returned unchanged. *)

val register_pressure : Sunit.t array -> alloc list -> int * int
(** Distinct (FP, integer) registers referenced by the units, counting
    each expanded register [n] times. *)

val compute :
  ?mode:mode ->
  Sp_machine.Machine.t ->
  Ddg.t ->
  Modsched.schedule ->
  supply:Vreg.Supply.supply ->
  t
(** Measure candidate lifetimes in the schedule (from the cycle each
    value lands in the register file to its last read), derive [q_i],
    the unroll degree and the allocations, and check the machine's
    register-file capacities. *)
