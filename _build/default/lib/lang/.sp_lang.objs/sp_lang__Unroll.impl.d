lib/lang/unroll.ml: Ast List Lower Parser String Typecheck
