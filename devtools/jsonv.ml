(** [jsonv FILE [PATH ...]] — validate observability JSON in CI.

    Parses FILE with the strict parser ([Sp_obs.Json.of_string]; exit 1
    with a message on malformed input), then requires every PATH to
    resolve to a present, non-null value. Path components are separated
    by '/' (metric names contain dots, so '.' is not a separator):

    {v jsonv metrics.json metrics/modsched.fuel_spent/value v}

    A numeric component indexes into an array, so
    [traceEvents/0/name] checks the first event of a Chrome trace. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("jsonv: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lookup j comp =
  match (j, int_of_string_opt comp) with
  | Sp_obs.Json.List l, Some i -> List.nth_opt l i
  | _ -> Sp_obs.Json.member comp j

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: paths ->
    let j =
      match Sp_obs.Json.of_string (read_file file) with
      | j -> j
      | exception Sp_obs.Json.Parse_error m -> fail "%s: parse error: %s" file m
      | exception Sys_error m -> fail "%s" m
    in
    List.iter
      (fun path ->
        let comps = String.split_on_char '/' path in
        let v =
          List.fold_left
            (fun acc comp ->
              match acc with
              | None -> None
              | Some j -> lookup j comp)
            (Some j) comps
        in
        match v with
        | None | Some Sp_obs.Json.Null ->
          fail "%s: required key %s missing or null" file path
        | Some _ -> ())
      paths;
    Printf.printf "jsonv: %s ok (%d key(s) checked)\n" file
      (List.length paths)
  | _ ->
    prerr_endline "usage: jsonv FILE [PATH ...]   (PATH components split on '/')";
    exit 1
