(** List scheduling of acyclic code (basic-block compaction).

    The classical algorithm the paper builds on (Fisher 1979): nodes are
    scheduled in a topological ordering of the intra-iteration edges,
    highest critical-path height first, each placed in the earliest slot
    that satisfies the precedence constraints with the partial schedule
    and the resource limits.

    Used for: the branches of conditionals (hierarchical reduction),
    straight-line code between loops, the unpipelined fallback bodies,
    and the "local compaction only" baseline of Figure 4-2. *)

open Sp_machine

type placement = {
  times : int array;  (** issue time per unit *)
  len : int;          (** schedule length in instructions *)
}

(** Critical-path heights over intra-iteration edges. *)
let heights (g : Ddg.t) =
  let n = Array.length g.Ddg.units in
  let h = Array.make n 0 in
  (* intra-iteration edges always point forward in program (sid) order,
     so a reverse sweep is a reverse-topological traversal *)
  for i = n - 1 downto 0 do
    let base = Ddg.completion g.Ddg.units.(i) in
    let best =
      List.fold_left
        (fun acc (e : Ddg.edge) ->
          if e.omega = 0 then max acc (e.delay + h.(e.dst)) else acc)
        base g.Ddg.succs.(i)
    in
    h.(i) <- best
  done;
  h

let compact (m : Machine.t) (g : Ddg.t) : placement =
  let units = g.Ddg.units in
  let n = Array.length units in
  let h = heights g in
  let times = Array.make n (-1) in
  let npreds = Array.make n 0 in
  List.iter
    (fun (e : Ddg.edge) ->
      if e.omega = 0 then npreds.(e.dst) <- npreds.(e.dst) + 1)
    g.Ddg.edges;
  let table = Mrt.Linear.create m in
  (* Ready set as a binary heap keyed (height desc, index asc) — the
     same total order the former per-step linear scan resolved to
     (lowest index among the maximum-height ready units), so the
     schedule is unchanged; extraction drops from O(n) to O(log n). *)
  let heap = Array.make (max n 1) 0 in
  let hn = ref 0 in
  let better a b = h.(a) > h.(b) || (h.(a) = h.(b) && a < b) in
  let swap a b =
    let t = heap.(a) in
    heap.(a) <- heap.(b);
    heap.(b) <- t
  in
  let push i =
    Sp_obs.Cost.incr Sp_obs.Cost.Heap_op;
    heap.(!hn) <- i;
    incr hn;
    let c = ref (!hn - 1) in
    while !c > 0 && better heap.(!c) heap.((!c - 1) / 2) do
      swap !c ((!c - 1) / 2);
      c := (!c - 1) / 2
    done
  in
  let pop () =
    Sp_obs.Cost.incr Sp_obs.Cost.Heap_op;
    let top = heap.(0) in
    decr hn;
    heap.(0) <- heap.(!hn);
    let c = ref 0 in
    let continue = ref (!hn > 1) in
    while !continue do
      let l = (2 * !c) + 1 and r = (2 * !c) + 2 in
      let m = if l < !hn && better heap.(l) heap.(!c) then l else !c in
      let m = if r < !hn && better heap.(r) heap.(m) then r else m in
      if m = !c then continue := false
      else begin
        swap !c m;
        c := m
      end
    done;
    top
  in
  for i = 0 to n - 1 do
    if npreds.(i) = 0 then push i
  done;
  let scheduled = ref 0 in
  while !scheduled < n do
    if !hn = 0 then
      invalid_arg "Listsched.compact: cyclic intra-iteration graph";
    let i = pop () in
    let est =
      List.fold_left
        (fun acc (e : Ddg.edge) ->
          if e.omega = 0 then max acc (times.(e.src) + e.delay) else acc)
        0 g.Ddg.preds.(i)
    in
    let resv = units.(i).Sunit.resv in
    let t = ref est in
    while not (Mrt.Linear.fits table ~at:!t resv) do
      incr t;
      if !t > est + 1_000_000 then
        invalid_arg
          "Listsched.compact: reservation exceeds machine capacity"
    done;
    if !t > est && Sp_obs.Explain.enabled () then
      Sp_obs.Explain.record
        (Sp_obs.Explain.Compact_stall
           {
             unit_id = i;
             unit_desc = Fmt.str "%a" Sunit.pp units.(i);
             est;
             placed = !t;
             resource =
               (match Mrt.Linear.last_conflict table with
               | Some (_, rid) -> (Machine.resource m rid).Machine.rname
               | None -> "?");
           });
    Mrt.Linear.add table ~at:!t resv;
    times.(i) <- !t;
    List.iter
      (fun (e : Ddg.edge) ->
        if e.omega = 0 then begin
          npreds.(e.dst) <- npreds.(e.dst) - 1;
          if npreds.(e.dst) = 0 then push e.dst
        end)
      g.Ddg.succs.(i);
    incr scheduled
  done;
  let len =
    Array.fold_left max 1
      (Array.mapi (fun i (u : Sunit.t) -> times.(i) + u.Sunit.len) units)
  in
  { times; len }

(** Restart interval of a sequentially executed loop body: the body
    schedule may only be re-entered every [R] cycles, where [R] covers
    both the schedule length and every loop-carried dependence
    stretched across [omega] restarts. This "length of a locally
    compacted iteration" is the paper's upper bound for the initiation
    interval search, and the denominator of the Figure 4-2 speedups. *)
let restart_interval (g : Ddg.t) (p : placement) =
  List.fold_left
    (fun acc (e : Ddg.edge) ->
      if e.omega > 0 then
        max acc
          (Sp_util.Intmath.ceil_div
             (p.times.(e.src) + e.delay - p.times.(e.dst))
             e.omega)
      else acc)
    p.len g.Ddg.edges
