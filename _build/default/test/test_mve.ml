(** Tests for modulo variable expansion: lifetimes, unroll degrees,
    register-count rounding, renaming and pressure accounting. *)

open Sp_ir
module Opkind = Sp_machine.Opkind
module Ddg = Sp_core.Ddg
module Sunit = Sp_core.Sunit
module Modsched = Sp_core.Modsched
module Mve = Sp_core.Mve
module Listsched = Sp_core.Listsched
module Mii = Sp_core.Mii

let m = Sp_machine.Machine.warp

(* an expandable chain with a value read twice (late): its lifetime
   exceeds the initiation interval, so it needs several copies *)
let chain_units () =
  let sup = Vreg.Supply.create () in
  let ops = Op.Supply.create () in
  let segs = Memseg.Supply.create () in
  let a = Memseg.Supply.fresh segs ~name:"a" ~size:64 () in
  let b = Memseg.Supply.fresh segs ~name:"b" ~size:64 () in
  let iv = Vreg.Supply.fresh sup ~name:"i" Vreg.I in
  let il = Vreg.Supply.fresh sup ~name:"i'" Vreg.I in
  let t = Vreg.Supply.fresh sup ~name:"t" Vreg.F in
  let u = Vreg.Supply.fresh sup ~name:"u" Vreg.F in
  let addr seg off =
    { Op.seg; base = None; idx = Some il; off; sub = Some (Subscript.of_iv ~off il) }
  in
  let v = Vreg.Supply.fresh sup ~name:"v" Vreg.F in
  let body =
    [
      Op.Supply.mk ops ~dst:il ~srcs:[ iv ] Opkind.Amov;
      Op.Supply.mk ops ~dst:t ~addr:(addr a 0) Opkind.Load;
      Op.Supply.mk ops ~dst:v ~srcs:[ t; t ] Opkind.Fadd;
      (* t read again here, 7 cycles later: lifetime > II *)
      Op.Supply.mk ops ~dst:u ~srcs:[ v; t ] Opkind.Fmul;
      Op.Supply.mk ops ~srcs:[ u ] ~addr:(addr b 0) Opkind.Store;
      Op.Supply.mk ops ~dst:iv ~srcs:[ iv; iv ] Opkind.Aadd;
    ]
  in
  ( sup,
    Array.of_list (List.mapi (fun i op -> Sunit.of_op m ~sid:i op) body),
    (t, u) )

let schedule_units units =
  let g = Ddg.build units in
  let pl = Listsched.compact m g in
  let seq_len = Listsched.restart_interval g pl in
  let analysis = Modsched.analyze ~s_max:seq_len g in
  let mii = Mii.compute m units ~rec_mii:analysis.Modsched.a_rec_mii in
  match Modsched.schedule ~analysis m g ~mii:mii.Mii.mii ~max_ii:seq_len with
  | Some sched -> (g, sched)
  | None -> Alcotest.fail "expected a schedule"

let test_expansion_basics () =
  let sup, units, (t, u) = chain_units () in
  let g, sched = schedule_units units in
  Alcotest.(check int) "II = 2 (single memory port)" 2 sched.Modsched.s;
  let mve = Mve.compute m g sched ~supply:sup in
  Alcotest.(check bool) "t expanded" true
    (List.exists (fun a -> Vreg.equal a.Mve.reg t) mve.Mve.allocs);
  Alcotest.(check bool) "u expanded" true
    (List.exists (fun a -> Vreg.equal a.Mve.reg u) mve.Mve.allocs);
  let alloc r = List.find (fun a -> Vreg.equal a.Mve.reg r) mve.Mve.allocs in
  (* t lands at load+3, read by the multiply at its issue; at II=1 the
     number of live values is the land-to-last-read span / 1 + 1 *)
  Alcotest.(check bool) "q >= 2" true ((alloc t).Mve.q >= 2);
  Alcotest.(check bool) "unroll = max q" true
    (mve.Mve.unroll
    = List.fold_left (fun acc a -> max acc a.Mve.q) 1 mve.Mve.allocs);
  (* every allocation divides the unroll *)
  List.iter
    (fun a ->
      Alcotest.(check int)
        (Printf.sprintf "n | u for %s" (Vreg.to_string a.Mve.reg))
        0
        (mve.Mve.unroll mod a.Mve.n))
    mve.Mve.allocs;
  Alcotest.(check bool) "fits the register files" true mve.Mve.fits

let test_rename_rotation () =
  let sup, units, (t, _) = chain_units () in
  let g, sched = schedule_units units in
  let mve = Mve.compute m g sched ~supply:sup in
  let a = List.find (fun a -> Vreg.equal a.Mve.reg t) mve.Mve.allocs in
  let n = a.Mve.n in
  (* iteration i and i+n use the same copy; i and i+1 differ (n > 1) *)
  let r0 = Mve.rename mve ~iter:0 t in
  let rn = Mve.rename mve ~iter:n t in
  let r1 = Mve.rename mve ~iter:1 t in
  Alcotest.(check bool) "period n" true (Vreg.equal r0 rn);
  if n > 1 then
    Alcotest.(check bool) "adjacent iterations differ" false
      (Vreg.equal r0 r1);
  (* copy 0 is the original register *)
  Alcotest.(check bool) "copy 0 = original" true (Vreg.equal r0 t);
  (* negative iteration indices (epilog accounting) are well-defined *)
  let rneg = Mve.rename mve ~iter:(-1) t in
  Alcotest.(check bool) "negative iters wrap" true
    (Vreg.equal rneg (Mve.rename mve ~iter:(n - 1) t));
  (* non-candidates are untouched *)
  let other = Vreg.Supply.fresh sup ~name:"z" Vreg.F in
  Alcotest.(check bool) "others untouched" true
    (Vreg.equal other (Mve.rename mve ~iter:3 other))

let test_mode_off () =
  let sup, units, _ = chain_units () in
  let g, sched = schedule_units units in
  let mve = Mve.compute ~mode:Mve.Off m g sched ~supply:sup in
  Alcotest.(check int) "no unrolling" 1 mve.Mve.unroll;
  Alcotest.(check int) "no allocations" 0 (List.length mve.Mve.allocs)

let test_mode_lcm_geq_maxq () =
  let sup, units, _ = chain_units () in
  let g, sched = schedule_units units in
  let maxq = Mve.compute ~mode:Mve.Max_q m g sched ~supply:sup in
  (* fresh supply state is shared; reuse is fine for a size comparison *)
  let lcm = Mve.compute ~mode:Mve.Lcm m g sched ~supply:sup in
  Alcotest.(check bool) "lcm unroll >= max-q unroll" true
    (lcm.Mve.unroll >= maxq.Mve.unroll);
  Alcotest.(check int) "lcm unroll is the lcm" 0
    (List.fold_left
       (fun acc a -> acc + (lcm.Mve.unroll mod a.Mve.q))
       0 lcm.Mve.allocs)

let test_identity () =
  Alcotest.(check int) "identity unroll" 1 Mve.identity.Mve.unroll;
  Alcotest.(check bool) "identity fits" true Mve.identity.Mve.fits

let suite =
  [
    ("expansion basics", `Quick, test_expansion_basics);
    ("rename rotation", `Quick, test_rename_rotation);
    ("mode off", `Quick, test_mode_off);
    ("mode lcm", `Quick, test_mode_lcm_geq_maxq);
    ("identity", `Quick, test_identity);
  ]
