lib/ir/machine_state.mli: Memseg Program Semantics Vreg
