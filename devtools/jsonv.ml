(** [jsonv FILE [CHECK ...]] — validate observability JSON in CI.

    Parses FILE with the strict parser ([Sp_obs.Json.of_string]; exit 1
    with a message on malformed input), then evaluates every CHECK.

    A CHECK is either a PATH — which must resolve to a present,
    non-null value — or [PATH=VALUE], which additionally requires the
    resolved scalar (string, int, float or bool) to print as VALUE, so
    a schema tag or a counter can be pinned exactly:

    {v
      jsonv metrics.json metrics/modsched.fuel_spent/value
      jsonv status.json schema=w2cd-status/1 requests/compile=40
    v}

    Path components are separated by '/' (metric names contain dots,
    so '.' is not a separator); a numeric component indexes into an
    array, so [traceEvents/0/name] checks the first event of a Chrome
    trace. The expected VALUE is everything after the {e first} '=' —
    schema tags like [w2cd-status/1] contain '/', so a compared path
    must not contain '=' (checked paths never do). *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("jsonv: " ^ m); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let lookup j comp =
  match (j, int_of_string_opt comp) with
  | Sp_obs.Json.List l, Some i -> List.nth_opt l i
  | _ -> Sp_obs.Json.member comp j

let scalar_string = function
  | Sp_obs.Json.Str s -> Some s
  | Sp_obs.Json.Int i -> Some (string_of_int i)
  | Sp_obs.Json.Bool b -> Some (string_of_bool b)
  | Sp_obs.Json.Float _ as f -> Some (Sp_obs.Json.to_string f)
  | _ -> None

let () =
  match Array.to_list Sys.argv with
  | _ :: file :: checks ->
    let j =
      match Sp_obs.Json.of_string (read_file file) with
      | j -> j
      | exception Sp_obs.Json.Parse_error m -> fail "%s: parse error: %s" file m
      | exception Sys_error m -> fail "%s" m
    in
    List.iter
      (fun check ->
        let path, expect =
          match String.index_opt check '=' with
          | Some i ->
            ( String.sub check 0 i,
              Some (String.sub check (i + 1) (String.length check - i - 1)) )
          | None -> (check, None)
        in
        let comps = String.split_on_char '/' path in
        let v =
          List.fold_left
            (fun acc comp ->
              match acc with
              | None -> None
              | Some j -> lookup j comp)
            (Some j) comps
        in
        match (v, expect) with
        | (None | Some Sp_obs.Json.Null), _ ->
          fail "%s: required key %s missing or null" file path
        | Some _, None -> ()
        | Some jv, Some want -> (
          match scalar_string jv with
          | None ->
            fail "%s: %s is not a scalar (cannot compare to %S)" file path want
          | Some got ->
            if got <> want then
              fail "%s: %s is %S, expected %S" file path got want))
      checks;
    Printf.printf "jsonv: %s ok (%d check(s))\n" file (List.length checks)
  | _ ->
    prerr_endline
      "usage: jsonv FILE [PATH | PATH=VALUE ...]   (PATH components split \
       on '/')";
    exit 1
