lib/vliw/sim.mli: Machine_state Prog Program Sp_ir Sp_machine
