lib/core/spath.ml: Array List
