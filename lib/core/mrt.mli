(** Resource reservation tables: the modulo table of the paper's
    Section 2.1 ("the resource usage of time t is mapped to that of
    time t mod s") and the unbounded table used when compacting
    straight-line code.

    Both tables track {e conflicts}: a failed {!Modulo.fits} probe
    deterministically charges the first resource whose limit the
    reservation would exceed (scanning the reservation in list order)
    — exactly one conflict per failed probe, so the per-resource
    conflict counts sum to the number of failed placement attempts. *)

module Modulo : sig
  type t

  val create : Sp_machine.Machine.t -> s:int -> t

  val fits : t -> at:int -> (int * int) list -> bool
  (** May a reservation (a multiset of [(offset, resource)] pairs) be
      placed with its origin at time [at]? Demand from offsets that are
      congruent modulo [s] is summed before checking the limit. On
      failure, records the conflicting (slot, resource). *)

  val add : t -> at:int -> (int * int) list -> unit
  val remove : t -> at:int -> (int * int) list -> unit

  val conflicts : t -> int array
  (** Failed placement probes charged per resource id (a copy). The
      array sums to the number of [fits] calls that returned false. *)

  val last_conflict : t -> (int * int) option
  (** [(slot, resource id)] of the most recent failed probe. *)
end

module Linear : sig
  type t

  val create : Sp_machine.Machine.t -> t
  val fits : t -> at:int -> (int * int) list -> bool
  val add : t -> at:int -> (int * int) list -> unit

  val conflicts : t -> int array
  val last_conflict : t -> (int * int) option
end
