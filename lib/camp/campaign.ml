(** The streaming differential campaign.

    Drives a seed range of generated W2 programs ({!Sp_lang.Wgen})
    through the {!Oracle} on a {!Sp_util.Pool} domain pool, in
    constant memory: workers return one compact probe record per
    program (verdict tag plus a handful of numbers), the driver folds
    probes in seed order into running histograms and counters, and
    nothing else is retained — no sources, no compiled code, no
    per-program artifacts. Failing seeds are re-run, delta-minimized
    ({!Minimize}) and banked ({!Bank}) sequentially on the calling
    domain, capped so a systematically failing population cannot
    balloon the bank.

    Sharding and resumability: a campaign over [lo..hi] equals the
    {!merge} of campaigns over any partition of [lo..hi] — summaries
    are designed to be associative merges (counts add, histograms
    merge, failure lists concatenate in seed order), which is also
    what the shard-merge qcheck property pins down.

    Fault modes run sequentially regardless of the configured width:
    {!Sp_util.Fault} state is global, so the armed site is re-armed
    before and disarmed after every program, which is only
    deterministic single-domain. Clean mode never touches fault state
    and parallelizes freely. *)

module Fault = Sp_util.Fault
module Histogram = Sp_util.Histogram
module Wgen = Sp_lang.Wgen
module Compile = Sp_core.Compile

type mode =
  | Clean
  | Inject of string * int  (** arm [site@k] around every program *)

type cfg = {
  lo : int;
  hi : int;                    (** inclusive seed range *)
  jobs : int;                  (** pool width; fault modes force 1 *)
  oracle : Oracle.config;
  mode : mode;
  bank_dir : string option;    (** where minimized repros are banked *)
  bank_cap : int;              (** max failures minimized+banked per run *)
  minimize_budget : int;       (** oracle evaluations per minimization *)
  opt_every : int;             (** run the learn-on/off exact-certifier
                                   oracle on every [opt_every]-th seed
                                   (0 = never) *)
}

let default =
  {
    lo = 1;
    hi = 10_000;
    jobs = 1;
    oracle = Oracle.default;
    mode = Clean;
    bank_dir = None;
    bank_cap = 25;
    minimize_budget = 400;
    opt_every = 16;
  }

(* ------------------------------------------------------------------ *)
(* Probes: the compact per-program record workers hand back            *)
(* ------------------------------------------------------------------ *)

type probe = {
  p_seed : int;
  p_kind : Oracle.kind;
  p_detail : string;
  p_statuses : string list;  (** per-loop status tags *)
  p_gaps : int list;         (** ii - mii per pipelined loop *)
  p_effs : float list;       (** mii/ii per pipelined loop *)
  p_code_size : int option;
  p_cost_total : int;        (** deterministic work units for this seed *)
  p_cost_phases : (string * int) list;
      (** phase name -> work units, {!Sp_obs.Cost.all_phases} order,
          nonzero only *)
}

(* "degraded: <msg>" counts as one bucket, not one per message *)
let status_tag st =
  let s = Compile.status_to_string st in
  match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s

let probe_of_outcome seed ~cost (o : Oracle.outcome) : probe =
  let module Cost = Sp_obs.Cost in
  let phase_totals =
    (* per-phase work across every loop of this program's compiles *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun ((_, ph), cs) ->
        let t = List.fold_left (fun a (_, n) -> a + n) 0 cs in
        let k = Cost.phase_name ph in
        Hashtbl.replace tbl k (t + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
      (Cost.cells cost);
    List.filter_map
      (fun ph ->
        match Hashtbl.find_opt tbl (Cost.phase_name ph) with
        | Some t when t > 0 -> Some (Cost.phase_name ph, t)
        | _ -> None)
      Cost.all_phases
  in
  let statuses, gaps, effs, code_size =
    match o.Oracle.result with
    | None -> ([], [], [], None)
    | Some r ->
      let statuses =
        List.map (fun lr -> status_tag lr.Compile.status) r.Compile.loops
      in
      let pipelined =
        List.filter_map
          (fun lr ->
            match lr.Compile.ii with
            | Some ii -> Some (ii - lr.Compile.mii, Compile.efficiency lr)
            | None -> None)
          r.Compile.loops
      in
      ( statuses,
        List.map fst pipelined,
        List.map snd pipelined,
        Some r.Compile.code_size )
  in
  {
    p_seed = seed;
    p_kind = o.Oracle.verdict.Oracle.kind;
    p_detail = o.Oracle.verdict.Oracle.detail;
    p_statuses = statuses;
    p_gaps = gaps;
    p_effs = effs;
    p_code_size = code_size;
    p_cost_total = Cost.total cost;
    p_cost_phases = phase_totals;
  }

(* ------------------------------------------------------------------ *)
(* Summaries                                                           *)
(* ------------------------------------------------------------------ *)

type failure = {
  f_seed : int;
  f_kind : string;
  f_detail : string;
  f_nodes_before : int;
  f_nodes_after : int;
  f_evals : int;
  f_file : string option;  (** banked path, when banking was on *)
}

type summary = {
  total : int;
  pass : int;
  verdicts : (string * int) list;   (** every kind, {!Oracle.all_kinds} order *)
  statuses : (string * int) list;   (** loop status tag -> count, sorted *)
  gap : Histogram.t;                (** ii - mii over pipelined loops *)
  eff : Histogram.t;                (** mii/ii over pipelined loops *)
  csize : Histogram.t;              (** emitted code size per program *)
  cost : Histogram.t;               (** work units per program *)
  cost_by_phase : (string * Histogram.t) list;
      (** per compile phase, the distribution of that phase's work
          units over the population — fixed key set
          ({!Sp_obs.Cost.all_phases} names), so merge is pointwise *)
  expensive : (int * int) list;
      (** the [expensive_n] most expensive programs as (seed, work
          units), sorted units descending then seed ascending *)
  pass_rate : Sp_obs.Series.t;      (** pass indicator on the seed clock *)
  failures : failure list;          (** minimized, in seed order *)
  unminimized : int;                (** failures beyond the bank cap *)
}

let gap_hist () = Histogram.create ~lo:0.0 ~width:1.0 ~buckets:16
let eff_hist () = Histogram.create ~lo:0.0 ~width:0.05 ~buckets:21
let csize_hist () = Histogram.create ~lo:0.0 ~width:50.0 ~buckets:40
let cost_hist () = Histogram.create ~lo:0.0 ~width:2000.0 ~buckets:40
let phase_hist () = Histogram.create ~lo:0.0 ~width:500.0 ~buckets:40
let expensive_n = 10

(* top-N by (units desc, seed asc): truncating the sorted union of two
   top-N lists is the top-N of the union, so the merge stays
   associative *)
let merge_expensive a b =
  let cmp (s1, t1) (s2, t2) =
    if t1 <> t2 then compare t2 t1 else compare s1 s2
  in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  take expensive_n (List.sort_uniq cmp (a @ b))

(* The seed is the logical clock: windows of 128 seeds localize a
   verdict-rate change, and 16384 retained seeds keep the standard
   10k-seed gate fully resident (a 100k nightly keeps the newest
   shards — totals still cover everything). *)
let pass_series () =
  Sp_obs.Series.create ~capacity:16384 ~window:128 ~lo:0.0 ~width:1.0
    ~buckets:2 ()

let empty_summary () =
  {
    total = 0;
    pass = 0;
    verdicts = List.map (fun k -> (Oracle.kind_to_string k, 0)) Oracle.all_kinds;
    statuses = [];
    gap = gap_hist ();
    eff = eff_hist ();
    csize = csize_hist ();
    cost = cost_hist ();
    cost_by_phase =
      List.map
        (fun ph -> (Sp_obs.Cost.phase_name ph, phase_hist ()))
        Sp_obs.Cost.all_phases;
    expensive = [];
    pass_rate = pass_series ();
    failures = [];
    unminimized = 0;
  }

let bump assoc key by =
  let rec go = function
    | [] -> [ (key, by) ]
    | (k, n) :: rest when k = key -> (k, n + by) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let fold_probe (s : summary) (p : probe) : summary =
  List.iter (fun g -> Histogram.add s.gap (float_of_int g)) p.p_gaps;
  List.iter (Histogram.add s.eff) p.p_effs;
  Option.iter (fun c -> Histogram.add s.csize (float_of_int c)) p.p_code_size;
  Histogram.add s.cost (float_of_int p.p_cost_total);
  List.iter
    (fun (name, h) ->
      let units =
        Option.value ~default:0 (List.assoc_opt name p.p_cost_phases)
      in
      Histogram.add h (float_of_int units))
    s.cost_by_phase;
  Sp_obs.Series.add ~seq:p.p_seed s.pass_rate
    (if p.p_kind = Oracle.Pass then 1.0 else 0.0);
  {
    s with
    total = s.total + 1;
    pass = (s.pass + if p.p_kind = Oracle.Pass then 1 else 0);
    verdicts = bump s.verdicts (Oracle.kind_to_string p.p_kind) 1;
    statuses =
      List.fold_left (fun acc tag -> bump acc tag 1) s.statuses p.p_statuses;
    expensive = merge_expensive s.expensive [ (p.p_seed, p.p_cost_total) ];
  }

(** Associative merge of shard summaries: a campaign over a range
    equals the merge of campaigns over any partition of it (failure
    lists concatenate left-to-right, so pass shards in seed order). *)
let merge (a : summary) (b : summary) : summary =
  {
    total = a.total + b.total;
    pass = a.pass + b.pass;
    verdicts = List.fold_left (fun acc (k, n) -> bump acc k n) a.verdicts b.verdicts;
    statuses = List.fold_left (fun acc (k, n) -> bump acc k n) a.statuses b.statuses;
    gap = Histogram.merge a.gap b.gap;
    eff = Histogram.merge a.eff b.eff;
    csize = Histogram.merge a.csize b.csize;
    cost = Histogram.merge a.cost b.cost;
    cost_by_phase =
      List.map2
        (fun (name, ha) (name', hb) ->
          assert (name = name');
          (name, Histogram.merge ha hb))
        a.cost_by_phase b.cost_by_phase;
    expensive = merge_expensive a.expensive b.expensive;
    pass_rate = Sp_obs.Series.merge a.pass_rate b.pass_rate;
    failures = a.failures @ b.failures;
    unminimized = a.unminimized + b.unminimized;
  }

let sort_statuses s = { s with statuses = List.sort compare s.statuses }

let failure_count (s : summary) = List.length s.failures + s.unminimized

(* ------------------------------------------------------------------ *)
(* Running programs                                                    *)
(* ------------------------------------------------------------------ *)

(** Arm the mode's fault (if any) for the duration of [f]. Re-arming
    per program resets the hit counters, so the k-th hit fires for
    every program identically. *)
let with_trigger (mode : mode) f =
  match mode with
  | Clean -> f ()
  | Inject (site, k) ->
    Fault.arm ~site ~after:k;
    Fun.protect ~finally:Fault.disarm f

(* The opt differential is too expensive for every seed, so it samples
   the population by absolute seed value — shard-invariant, like the
   rest of the summary. Under injection it runs exactly when the armed
   site is the nogood doctoring site (then on {e every} seed: the
   corrupted bank is what the check exists to catch; the oracle itself
   skips the check under any other armed site). *)
let opt_checked (cfg : cfg) seed =
  match cfg.mode with
  | Clean -> cfg.opt_every > 0 && seed mod cfg.opt_every = 0
  | Inject (site, _) -> site = Sp_opt.Exact.nogood_site

let probe_seed (cfg : cfg) seed : probe =
  let src = Wgen.print (Wgen.generate ~seed) in
  let ocfg =
    if opt_checked cfg seed then { cfg.oracle with Oracle.check_opt = true }
    else cfg.oracle
  in
  (* the profile is a pure function of the seed (work counts, no
     clocks), so the summary's cost views are jobs-invariant like
     everything else folded from probes *)
  let o, cost =
    Sp_obs.Cost.collect (fun () ->
        with_trigger cfg.mode (fun () -> Oracle.run ocfg src))
  in
  probe_of_outcome seed ~cost o

(* ------------------------------------------------------------------ *)
(* Minimize + bank                                                     *)
(* ------------------------------------------------------------------ *)

let minimize_failure (cfg : cfg) (p : probe) : failure =
  let ast = Wgen.generate ~seed:p.p_seed in
  let target = p.p_kind in
  (* the jobs, cache and opt oracles only matter when that is what
     broke *)
  let ocfg =
    {
      cfg.oracle with
      Oracle.check_jobs = target = Oracle.Jobs_diverge;
      check_cache = target = Oracle.Cache_diverge;
      check_opt = target = Oracle.Opt_diverge;
    }
  in
  let predicate c =
    with_trigger cfg.mode (fun () -> Oracle.kind_of ocfg (Wgen.print c))
    = target
  in
  let minimized, st =
    Minimize.minimize ~budget:cfg.minimize_budget ~predicate ast
  in
  let file =
    match cfg.bank_dir with
    | None -> None
    | Some dir ->
      let inject =
        match cfg.mode with Inject (s, k) -> Some (s, k) | Clean -> None
      in
      let entry =
        Bank.mk ~seed:p.p_seed ?inject
          ?fuel:cfg.oracle.Oracle.fuel
          ?max_cycles:
            (if cfg.oracle.Oracle.max_cycles <> Oracle.default.Oracle.max_cycles
             then Some cfg.oracle.Oracle.max_cycles
             else None)
          ~detail:p.p_detail
          ~kind:(Oracle.kind_to_string target)
          (Wgen.print minimized)
      in
      Bank.save ~dir entry
  in
  {
    f_seed = p.p_seed;
    f_kind = Oracle.kind_to_string target;
    f_detail = p.p_detail;
    f_nodes_before = Wgen.size ast;
    f_nodes_after = Wgen.size minimized;
    f_evals = st.Minimize.evals;
    f_file = file;
  }

(* ------------------------------------------------------------------ *)
(* The campaign                                                        *)
(* ------------------------------------------------------------------ *)

(** Stream the configured seed range. [on_progress] (if given) is
    called with the number of seeds completed so far after each
    batch. *)
let run ?(on_progress = fun _ -> ()) (cfg : cfg) : summary =
  (* global fault state makes armed runs single-domain only *)
  let jobs = match cfg.mode with Clean -> max 1 cfg.jobs | Inject _ -> 1 in
  let pool = Sp_util.Pool.create ~jobs in
  (* cost accounting on for the whole campaign (collected per seed in
     [probe_seed]); restored to its prior state on exit *)
  let cost_was_on = Sp_obs.Cost.enabled () in
  if not cost_was_on then Sp_obs.Cost.enable ();
  Fun.protect ~finally:(fun () ->
      if not cost_was_on then Sp_obs.Cost.disable ();
      (* shard-skew diagnostics: how many seeds each domain ran *)
      Array.iteri
        (fun i c ->
          Sp_obs.Metrics.set
            (Sp_obs.Metrics.gauge (Printf.sprintf "camp.pool.worker%d.tasks" i))
            (float_of_int c))
        (Sp_util.Pool.worker_counts pool);
      Sp_util.Pool.shutdown pool)
  @@ fun () ->
  let chunk = max 32 (4 * jobs) in
  let rec go acc next =
    if next > cfg.hi then acc
    else begin
      let stop = min cfg.hi (next + chunk - 1) in
      let seeds = List.init (stop - next + 1) (fun i -> next + i) in
      let outcomes =
        Sp_util.Pool.try_run pool
          (List.map (fun seed () -> probe_seed cfg seed) seeds)
      in
      (* a worker exception is itself a finding, never an abort *)
      let probes =
        List.map2
          (fun seed -> function
            | Ok p -> p
            | Error (e, _) ->
              {
                p_seed = seed;
                p_kind = Oracle.Crash;
                p_detail = "worker: " ^ Printexc.to_string e;
                p_statuses = [];
                p_gaps = [];
                p_effs = [];
                p_code_size = None;
                p_cost_total = 0;
                p_cost_phases = [];
              })
          seeds outcomes
      in
      let acc = List.fold_left fold_probe acc probes in
      (* minimize + bank failures sequentially on this domain *)
      let acc =
        List.fold_left
          (fun acc p ->
            if p.p_kind = Oracle.Pass then acc
            else if List.length acc.failures >= cfg.bank_cap then
              { acc with unminimized = acc.unminimized + 1 }
            else
              { acc with failures = acc.failures @ [ minimize_failure cfg p ] })
          acc probes
      in
      on_progress (stop - cfg.lo + 1);
      go acc (stop + 1)
    end
  in
  sort_statuses (go (empty_summary ()) cfg.lo)

(* ------------------------------------------------------------------ *)
(* Fault sweep                                                         *)
(* ------------------------------------------------------------------ *)

(** Sweep every registered compiler fault site (each at hit counts 1
    and 2) across the seed range, sequentially: graceful degradation
    must hold at scale, so each armed population is expected to read
    all-pass — with {!Oracle.degraded_ok} set, loops that fell back
    cleanly count as passes; anything else (crash, mismatch, invalid,
    hang) is a failure and gets minimized and banked like any other.
    Exception: the nogood doctoring site {!Sp_opt.Exact.nogood_site}
    corrupts silently rather than degrading, so for it the expected
    reading inverts — the [opt-diverge] oracle (enabled on every seed
    under that site, see {!probe_seed}) must catch the corruption at
    least once, and the caller gates on that. Returns per-[site@k]
    summaries in deterministic site order. *)
let sweep ?(ks = [ 1; 2 ]) (cfg : cfg) : ((string * int) * summary) list =
  let sites =
    Fault.sites () |> List.filter (fun s -> s <> Oracle.site)
  in
  List.concat_map
    (fun site ->
      List.map
        (fun k ->
          let cfg =
            {
              cfg with
              mode = Inject (site, k);
              oracle = { cfg.oracle with Oracle.degraded_ok = true };
            }
          in
          ((site, k), run cfg))
        ks)
    sites
