(** Virtual registers, typed by class — [F] (floating point) or [I]
    (integer) — matching the split register files of the Warp cell.
    There is no register allocator; modulo variable expansion checks
    expanded counts against the file capacities (paper Section 2.3). *)

type cls = F | I

type t = {
  id : int;      (** dense per program; passes index arrays by it *)
  cls : cls;
  name : string; (** for diagnostics; may be empty *)
}

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val is_float : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Fresh-register supply, local to one program under construction. *)
module Supply : sig
  type supply

  val create : unit -> supply
  val count : supply -> int
  val fresh : supply -> ?name:string -> cls -> t
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
