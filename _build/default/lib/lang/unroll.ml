(** Source-level loop unrolling — the baseline the paper compares
    software pipelining against in Section 5.1 ("to get enough
    parallelism in the trace, trace scheduling relies primarily on
    source code unrolling").

    [program k p] rewrites every counted loop with compile-time bounds:

    {v
      for i := lo to hi do BODY
      ==>
      for i' := 0 to n/k - 1 do begin
        BODY[i := lo + k*i'];  BODY[i := lo + k*i' + 1];  ...  (k copies)
      end
      -- plus (n mod k) residual copies with constant i
    v}

    The unrolled body is then compacted as one block by the baseline
    compiler: iterations inside one unrolled group overlap, but the
    hardware pipelines still drain at every group boundary — which is
    exactly the structural disadvantage against software pipelining the
    paper describes ("filling and draining the hardware pipelines at
    the beginning and the end of each iteration make optimal
    performance impossible"). *)

open Ast

(** Substitute variable [name] by expression [by] (capture-aware: inner
    loops rebinding [name] shadow it). *)
let rec subst_expr name by (e : expr) : expr =
  let f = subst_expr name by in
  let node =
    match e.e with
    | Eint _ | Efloat _ -> e.e
    | Evar n -> if String.equal n name then by.e else e.e
    | Eindex (a, idx) -> Eindex (a, List.map f idx)
    | Ebin (op, x, y) -> Ebin (op, f x, f y)
    | Eun (op, x) -> Eun (op, f x)
    | Ecall (fn, args) -> Ecall (fn, List.map f args)
  in
  { e with e = node }

let subst_lvalue name by = function
  | Lvar (n, p) -> Lvar (n, p)
  | Lindex (a, idx, p) -> Lindex (a, List.map (subst_expr name by) idx, p)

let rec subst_stmt name by (s : stmt) : stmt =
  let fe = subst_expr name by in
  let node =
    match s.s with
    | Sassign (lv, e) -> Sassign (subst_lvalue name by lv, fe e)
    | Sif (c, t, el) ->
      Sif (fe c, List.map (subst_stmt name by) t, List.map (subst_stmt name by) el)
    | Sfor ({ var; lo; hi; body } as f) ->
      if String.equal var name then
        (* shadowed: bounds are evaluated outside the shadow *)
        Sfor { f with lo = fe lo; hi = fe hi }
      else
        Sfor
          {
            f with
            lo = fe lo;
            hi = fe hi;
            body = List.map (subst_stmt name by) body;
          }
    | Ssend (e, ch) -> Ssend (fe e, ch)
    | Sreceive (lv, ch) -> Sreceive (subst_lvalue name by lv, ch)
  in
  { s with s = node }

let const_of (e : expr) =
  match e.e with
  | Eint n -> Some n
  | Eun (Neg, { e = Eint n; _ }) -> Some (-n)
  | _ -> None

let int_ p n : expr = { e_pos = p; e = Eint n }

(** Unroll one loop statement [k] times if its bounds are constants;
    leave it alone otherwise. Inner loops are processed first. *)
let rec unroll_stmt k (s : stmt) : stmt list =
  match s.s with
  | Sfor { var; lo; hi; body } -> (
    let body = List.concat_map (unroll_stmt k) body in
    match (const_of lo, const_of hi) with
    | Some l, Some h when k > 1 && h - l + 1 >= k ->
      let n = h - l + 1 in
      let groups = n / k and rest = n mod k in
      let p = s.s_pos in
      let copy base_expr j =
        let idx =
          { e_pos = p; e = Ebin (Add, base_expr, int_ p j) }
        in
        List.map (subst_stmt var idx) body
      in
      let grouped =
        {
          s_pos = p;
          s =
            Sfor
              {
                var;
                lo = int_ p 0;
                hi = int_ p (groups - 1);
                body =
                  (let base =
                     (* l + k*var *)
                     {
                       e_pos = p;
                       e =
                         Ebin
                           ( Add,
                             int_ p l,
                             {
                               e_pos = p;
                               e = Ebin (Mul, int_ p k, { e_pos = p; e = Evar var });
                             } );
                     }
                   in
                   List.concat (List.init k (copy base)));
              };
        }
      in
      let residue =
        List.concat
          (List.init rest (fun j ->
               copy (int_ p (l + (groups * k))) j))
      in
      grouped :: residue
    | _ -> [ { s with s = Sfor { var; lo; hi; body } } ])
  | Sif (c, t, e) ->
    [
      {
        s with
        s =
          Sif
            ( c,
              List.concat_map (unroll_stmt k) t,
              List.concat_map (unroll_stmt k) e );
      };
    ]
  | _ -> [ s ]

(** Unroll every constant-bound loop of the program [k] times. *)
let program k (p : Ast.program) : Ast.program =
  if k <= 1 then p
  else { p with p_body = List.concat_map (unroll_stmt k) p.p_body }

(** Front door mirroring {!Lower.compile_source}: parse, unroll, check,
    lower. *)
let compile_source ~k src =
  let ast = Parser.parse src in
  let ast = program k ast in
  ignore (Typecheck.check ast);
  Lower.lower ast
