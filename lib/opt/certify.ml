(** Optimality certification of heuristic modulo schedules.

    The heuristic ({!Sp_core.Modsched}) finds {e an} interval; the
    paper's Section 4.1 claims it is near-optimal in practice. This
    module measures that claim per loop: it scans candidate intervals
    upward from the lower bound, deciding each one {e exactly} with
    {!Exact.solve}, and returns

    - {!Optimal} when every interval below the heuristic's is proved
      infeasible (the heuristic already achieved the optimum),
    - {!Improved} when some smaller interval is feasible — together
      with a validated schedule at the smallest such interval (exact
      feasibility is not monotonic in [s], so the upward scan's first
      hit {e is} the optimum),
    - {!Unknown} when the fuel budget runs out, recording how far the
      infeasibility proof got.

    {2 Incremental re-solve}

    The scan carries a learned-nogood bank from interval to interval:
    before each new interval the bank is {!Nogood.carry}'d — primitive
    nogoods (window, resource, cycle) are re-validated against the new
    interval from their certificates and survive when the recorded
    violation recurs; derived nogoods are dropped. The next solve
    starts with the survivors instead of rediscovering them.

    {2 Proof portfolio}

    With [portfolio = K > 1], each interval is decided by K solver
    configurations — distinct variable orders and residue-rotation
    seeds, each with its own carried bank — run on a {!Sp_util.Pool}.
    Determinization: {e every} member runs to completion (no racing
    cancellation), the lowest-indexed decisive member is committed,
    and all decisive members must agree on feasibility — a
    disagreement means a solver soundness bug and raises. Because the
    commit rule is a pure function of the member results, the outcome
    is byte-identical whatever the pool width or machine load; when a
    fault injection is armed the members run sequentially on the
    calling domain so global hit counters stay deterministic.

    Every schedule handed back is re-verified here against the raw
    dependence, resource, and wrap constraints before anyone builds on
    it — the certifier must never be able to make the compiler emit a
    worse-than-checked kernel. *)

module Ddg = Sp_core.Ddg
module Scc = Sp_core.Scc
module Spath = Sp_core.Spath
module Mrt = Sp_core.Mrt
module Sunit = Sp_core.Sunit
module Modsched = Sp_core.Modsched
module Machine = Sp_machine.Machine
module Pool = Sp_util.Pool
module Fault = Sp_util.Fault

type certificate =
  | Optimal
  | Improved of Modsched.schedule
  | Unknown of { proven_below : int }

type outcome = {
  cert : certificate;
  spent : int;      (** total fuel across all intervals probed *)
  intervals : int;  (** number of intervals decided (or attempted) *)
}

let default_fuel = 2_000_000

(* Independent re-check of a schedule produced by the exact solver:
   dependences, resource limits, wrap windows, non-negativity. Raises
   on violation — a bug in the solver, not an input condition. *)
let check_schedule (m : Machine.t) (g : Ddg.t) (sched : Modsched.schedule) =
  let s = sched.Modsched.s and times = sched.Modsched.times in
  Array.iter
    (fun t -> if t < 0 then failwith "Sp_opt.Certify: negative issue time")
    times;
  List.iter
    (fun (e : Ddg.edge) ->
      if times.(e.Ddg.dst) - times.(e.Ddg.src) < e.Ddg.delay - (s * e.Ddg.omega)
      then failwith "Sp_opt.Certify: dependence violated")
    g.Ddg.edges;
  let table = Mrt.Modulo.create m ~s in
  Array.iteri
    (fun v (u : Sunit.t) ->
      if not (Mrt.Modulo.fits table ~at:times.(v) u.Sunit.resv) then
        failwith "Sp_opt.Certify: resource conflict";
      Mrt.Modulo.add table ~at:times.(v) u.Sunit.resv;
      if not (Modsched.wrap_ok ~s u ~at:times.(v)) then
        failwith "Sp_opt.Certify: wrap window violated")
    g.Ddg.units

(* Portfolio member i: variable orders cycle through the three
   implemented ones; the seed (residue-rotation offset) is the member
   index, so even same-order members explore distinct trajectories. *)
let member_config ~learn i =
  let order =
    match i mod 3 with
    | 0 -> Exact.O_program
    | 1 -> Exact.O_most_constrained
    | _ -> Exact.O_busiest
  in
  { Exact.learn; order; seed = i }

(* Re-validation context for carrying a bank to interval [s]: window
   bounds from the symbolic closure, resource limits from the machine. *)
let carry_ctx (m : Machine.t) (g : Ddg.t) (a : Modsched.analysis) ~s :
    Nogood.ctx =
  let scc = a.Modsched.a_scc in
  let n = Array.length g.Ddg.units in
  let local_of = Array.make n 0 in
  Array.iter
    (fun members -> List.iteri (fun k v -> local_of.(v) <- k) members)
    scc.Scc.comps;
  let window ~u ~v =
    let c = scc.Scc.comp_of.(u) in
    if scc.Scc.comp_of.(v) <> c then None
    else
      match a.Modsched.a_spaths.(c) with
      | None -> None
      | Some sp when s < sp.Spath.s_min || s > sp.Spath.s_max -> None
      | Some sp -> (
        match
          ( Spath.query sp ~s local_of.(u) local_of.(v),
            Spath.query sp ~s local_of.(v) local_of.(u) )
        with
        | Some lo, Some neg_up -> Some (lo, -neg_up)
        | _ -> None)
  in
  {
    Nogood.units = g.Ddg.units;
    limit = (fun rid -> (Machine.resource m rid).Machine.count);
    window;
  }

let run ?(fuel = default_fuel) ?analysis ?(learn = true) ?(portfolio = 1)
    (m : Machine.t) (g : Ddg.t) ~mii ~ii : outcome =
  let a =
    match analysis with
    | Some a -> a
    | None -> Modsched.analyze ~s_max:(max 1 (max mii ii)) g
  in
  let lo = max 1 (max mii a.Modsched.a_rec_mii) in
  let k = max 1 portfolio in
  let members = List.init k (member_config ~learn) in
  let banks =
    List.map (fun _ -> if learn then Some (Nogood.create ()) else None) members
  in
  let solve_member ~fuel ~s (cfg, bank) =
    Exact.solve ~fuel ~config:cfg ?bank m g ~scc:a.Modsched.a_scc
      ~spaths:a.Modsched.a_spaths ~s
  in
  (* one interval, all members, deterministic commit *)
  let decide pool ~fuel ~s : Exact.result =
    (* carry each member's bank to this interval first: primitive
       nogoods are only consulted at an interval their certificate was
       re-validated against *)
    let ctx = carry_ctx m g a ~s in
    List.iter
      (function Some b -> ignore (Nogood.carry b ctx ~s) | None -> ())
      banks;
    match (members, banks) with
    | [ cfg ], [ bank ] -> solve_member ~fuel ~s (cfg, bank)
    | _ ->
      let loop = Sp_obs.Explain.current_loop () in
      let cost_loop = Sp_obs.Cost.current_loop () in
      let cost_phase = Sp_obs.Cost.current_phase () in
      let task mb () =
        (* collected state starts unstamped: restore the caller's
           attribution so the committed member's work lands on the
           right (loop, phase) cells *)
        Sp_obs.Cost.collect (fun () ->
            Sp_obs.Cost.set_loop cost_loop;
            Sp_obs.Cost.set_phase cost_phase;
            Sp_obs.Explain.collect (fun () ->
                Sp_obs.Explain.set_loop loop;
                solve_member ~fuel ~s mb))
      in
      let tasks = List.map task (List.combine members banks) in
      let results =
        match pool with
        | Some p when not (Fault.is_armed ()) -> Pool.run p tasks
        | _ -> List.map (fun t -> t ()) tasks
      in
      let decisive =
        List.filter
          (fun ((r, _), _) -> r.Exact.verdict <> Exact.Out_of_budget)
          results
      in
      (* soundness cross-check: every decisive member must agree on
         feasibility (schedules may differ; verdict kind may not) *)
      (match decisive with
      | ((first, _), _) :: rest ->
        let feas (r : Exact.result) =
          match r.Exact.verdict with Exact.Feasible _ -> true | _ -> false
        in
        List.iter
          (fun ((r, _), _) ->
            if feas r <> feas first then
              failwith
                (Printf.sprintf
                   "Sp_opt.Certify: portfolio members disagree at II %d" s))
          rest
      | [] -> ());
      let (committed, events), profile =
        match decisive with d :: _ -> d | [] -> List.hd results
      in
      Sp_obs.Cost.inject profile;
      Sp_obs.Explain.inject events;
      committed
  in
  let scan pool =
    let rec go s ~spent ~intervals =
      if s >= ii then { cert = Optimal; spent; intervals }
      else
        let r = decide pool ~fuel:(fuel - spent) ~s in
        let spent = spent + r.Exact.spent and intervals = intervals + 1 in
        match r.Exact.verdict with
        | Exact.Infeasible -> go (s + 1) ~spent ~intervals
        | Exact.Out_of_budget ->
          { cert = Unknown { proven_below = s }; spent; intervals }
        | Exact.Feasible times ->
          let sched = Modsched.mk_schedule g.Ddg.units ~s times in
          check_schedule m g sched;
          { cert = Improved sched; spent; intervals }
    in
    go lo ~spent:0 ~intervals:0
  in
  if k = 1 || Fault.is_armed () then scan None
  else Pool.with_pool ~jobs:k (fun p -> scan (Some p))

let hook ?fuel ?learn ?portfolio () : Sp_core.Compile.certifier =
 fun m g ~analysis ~mii heur ->
  let module C = Sp_core.Compile in
  let o = run ?fuel ~analysis ?learn ?portfolio m g ~mii ~ii:heur.Modsched.s in
  match o.cert with
  | Optimal -> (heur, C.Cert_optimal { spent = o.spent })
  | Improved sched ->
    (sched, C.Cert_improved { heur_ii = heur.Modsched.s; spent = o.spent })
  | Unknown { proven_below } ->
    (heur, C.Cert_unknown { spent = o.spent; proven_below })
