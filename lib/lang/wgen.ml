(** Seeded generation of W2 source programs for the differential
    campaign, plus the parseable pretty-printer, node counting and the
    position-ignoring structural equality the campaign minimizer needs.

    Unlike [Gen] (test/gen.ml), which drives the IR {!Sp_ir.Builder}
    directly, this module produces W2 {e source text}: the campaign
    exercises the whole front end — lexer, parser, typechecker,
    lowering — and banked regressions must be replayable [.w2] files.
    Everything is deterministic in the seed: the same seed yields the
    same program, byte for byte, on every run and platform (the
    generator uses a private linear-congruential stream and no hash
    tables).

    Generated programs deliberately over-weight the shapes that
    historically break loop schedulers: zero-trip ([for i := 0 to -1])
    and single-trip loops, empty bodies, runtime trip counts, nested
    loops, loop-carried stores, and max-latency operation chains
    (division, [sqrt], [inverse], [exp] expand to long Newton-iteration
    sequences). Channels are never generated so every banked repro
    replays without input streams. All subscripts are of the form
    [iv (+ iv') + c] with [c < 8] and trip counts at most 40 (17 when
    nested), so accesses stay inside the fixed 64-element arrays. *)

open Ast

(* ------------------------------------------------------------------ *)
(* AST construction helpers                                            *)
(* ------------------------------------------------------------------ *)

let dummy_pos = { Token.line = 0; col = 0 }
let e node = { e_pos = dummy_pos; e = node }
let s node = { s_pos = dummy_pos; s = node }

(** Negative constants parse as unary minus, so build them that way —
    the printer/parser round trip then preserves structure exactly. *)
let eint n = if n < 0 then e (Eun (Neg, e (Eint (-n)))) else e (Eint n)

let efloat f = e (Efloat f)
let evar x = e (Evar x)
let idx1 name i = e (Eindex (name, [ i ]))
let bin op a b = e (Ebin (op, a, b))
let call f args = e (Ecall (f, args))
let lvar x = Lvar (x, dummy_pos)
let lindex x i = Lindex (x, [ i ], dummy_pos)
let assign lv ex = s (Sassign (lv, ex))
let decl name kind = { d_name = name; d_pos = dummy_pos; d_kind = kind }

(* ------------------------------------------------------------------ *)
(* Deterministic random stream                                         *)
(* ------------------------------------------------------------------ *)

type rng = { mutable st : int }

let next rng n =
  rng.st <- ((rng.st * 1103515245) + 12345) land 0x3FFFFFFF;
  rng.st mod n

let chance rng pct = next rng 100 < pct
let pick rng arr = arr.(next rng (Array.length arr))

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let arr_size = 64

(* [for v := 0 to trip]: -1 is a zero-trip loop, 0 single-trip *)
let trips = [| -1; 0; 1; 2; 3; 5; 8; 17; 40 |]
let nested_trips = [| -1; 0; 1; 2; 3; 5; 8; 17 |]
let fconsts = [| 0.5; 1.25; 2.0; 0.125; 3.5 |]

(** An in-bounds affine subscript from the in-scope loop variables
    ([ivs], innermost first) plus a small constant offset. *)
let subscript rng ivs =
  let c = next rng 8 in
  match ivs with
  | [] -> eint c
  | [ v ] -> if c = 0 then evar v else bin Add (evar v) (eint c)
  | v :: outer :: _ ->
    let base =
      if chance rng 50 then bin Add (evar v) (evar outer) else evar v
    in
    if c = 0 then base else bin Add base (eint c)

let rec fexpr rng ivs depth =
  if depth = 0 || chance rng 30 then
    match next rng 5 with
    | 0 -> idx1 "a" (subscript rng ivs)
    | 1 -> idx1 "b" (subscript rng ivs)
    | 2 -> evar "s"
    | 3 -> evar "t"
    | _ -> efloat (pick rng fconsts)
  else
    let sub () = fexpr rng ivs (depth - 1) in
    match next rng 12 with
    | 0 | 1 -> bin Add (sub ()) (sub ())
    | 2 | 3 -> bin Sub (sub ()) (sub ())
    | 4 | 5 | 6 -> bin Mul (sub ()) (sub ())
    | 7 -> bin Div (sub ()) (efloat (pick rng fconsts))
    | 8 -> call "sqrt" [ call "abs" [ sub () ] ]
    | 9 -> call "inverse" [ efloat (pick rng fconsts) ]
    | 10 -> call (if chance rng 50 then "min" else "max") [ sub (); sub () ]
    | _ -> call "exp" [ efloat (pick rng fconsts) ]

let cond_gen rng ivs =
  match (next rng 3, ivs) with
  | 0, v :: _ -> bin Lt (evar v) (eint (next rng 8))
  | 1, _ -> bin Gt (idx1 "a" (subscript rng ivs)) (evar "t")
  | _ -> bin Le (evar "s") (efloat (pick rng fconsts))

(** A branch- and loop-free statement (used inside conditionals). *)
let simple_stmt rng ivs =
  match next rng 3 with
  | 0 -> assign (lindex "b" (subscript rng ivs)) (fexpr rng ivs 1)
  | 1 ->
    let v = if chance rng 50 then "s" else "t" in
    assign (lvar v) (bin Add (evar v) (fexpr rng ivs 1))
  | _ -> assign (lvar (if chance rng 50 then "s" else "t")) (fexpr rng ivs 1)

let stmt_gen rng ivs =
  match next rng 100 with
  | x when x < 30 ->
    (* store; writing [a] while reading it creates carried memory deps *)
    let arr = if chance rng 60 then "b" else "a" in
    assign (lindex arr (subscript rng ivs)) (fexpr rng ivs 2)
  | x when x < 55 ->
    (* accumulator recurrence *)
    let v = if chance rng 50 then "s" else "t" in
    assign (lvar v) (bin Add (evar v) (fexpr rng ivs 1))
  | x when x < 75 -> assign (lvar (if chance rng 50 then "s" else "t")) (fexpr rng ivs 2)
  | _ ->
    let c = cond_gen rng ivs in
    let then_ = [ simple_stmt rng ivs ] in
    let else_ = if chance rng 50 then [ simple_stmt rng ivs ] else [] in
    s (Sif (c, then_, else_))

(** One counted loop. [n_ok] allows the runtime bound [n] (top-level,
    non-nested loops only, so subscripts stay in bounds); [depth > 0]
    allows one level of nesting. *)
let rec loop_gen rng ~ivs ~depth ~n_ok =
  let nest = depth > 0 && ivs = [] && chance rng 30 in
  let var =
    match List.length ivs with 0 -> "i" | 1 -> "j" | _ -> "k"
  in
  let use_n = n_ok && (not nest) && ivs = [] && chance rng 25 in
  let trip = if nest || ivs <> [] then pick rng nested_trips else pick rng trips in
  let hi = if use_n then evar "n" else eint trip in
  let ivs' = var :: ivs in
  let body_n = next rng 5 (* 0 = the empty-body edge case *) in
  let body =
    List.init body_n (fun _ -> stmt_gen rng ivs')
    @
    if nest then [ loop_gen rng ~ivs:ivs' ~depth:(depth - 1) ~n_ok:false ]
    else []
  in
  s (Sfor { var; lo = eint 0; hi; body })

(** Generate the deterministic program for [seed]. *)
let generate ~seed : program =
  let rng = { st = ((seed + 1) * 2654435761) land 0x3FFFFFFF } in
  ignore (next rng 2);
  let n_val = pick rng trips in
  let n_loops = 1 + next rng 2 in
  let loops =
    List.init n_loops (fun _ -> loop_gen rng ~ivs:[] ~depth:1 ~n_ok:true)
  in
  let prologue =
    [
      assign (lvar "n") (eint n_val);
      assign (lvar "s") (efloat 1.5);
      assign (lvar "t") (efloat 0.25);
    ]
  in
  (* scalars are not part of the observable machine state; store them *)
  let epilogue =
    [
      assign (lindex "a" (eint 0)) (evar "s");
      assign (lindex "b" (eint 0)) (evar "t");
    ]
  in
  {
    p_name = "camp";
    p_decls =
      [
        decl "n" (Dscalar Tint);
        decl "s" (Dscalar Tfloat);
        decl "t" (Dscalar Tfloat);
        decl "a"
          (Darray
             { elem = Tfloat; dims = [ (0, arr_size - 1) ]; independent = false });
        decl "b"
          (Darray
             { elem = Tfloat; dims = [ (0, arr_size - 1) ]; independent = false });
      ];
    p_body = prologue @ loops @ epilogue;
  }

(* ------------------------------------------------------------------ *)
(* Pretty-printing back to parseable source                            *)
(* ------------------------------------------------------------------ *)

(** A float literal the lexer reads back as the same float. Integral
    values print as [2.0] (never [2.], which would lex as INT DOT). *)
let float_lit f =
  if Float.is_integer f && Float.abs f < 1e15 then Fmt.str "%.1f" f
  else
    let s = Fmt.str "%.17g" f in
    if
      String.contains s '.' || String.contains s 'e' || String.contains s 'E'
      || String.contains s 'n' (* nan/inf: unparseable, display only *)
    then s
    else s ^ ".0"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "and" | Or -> "or"

(* fully parenthesized: correctness over prettiness — the parser drops
   the parentheses, so the round trip is structure-exact *)
let rec pp_expr ppf (x : expr) =
  match x.e with
  | Eint n -> Fmt.int ppf n
  | Efloat f -> Fmt.string ppf (float_lit f)
  | Evar v -> Fmt.string ppf v
  | Eindex (a, idx) ->
    Fmt.pf ppf "%s[%a]" a Fmt.(list ~sep:comma pp_expr) idx
  | Ebin (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Eun (Neg, a) -> Fmt.pf ppf "(-%a)" pp_expr a
  | Eun (Not, a) -> Fmt.pf ppf "(not %a)" pp_expr a
  | Ecall (f, args) ->
    Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let pp_lvalue ppf = function
  | Lvar (v, _) -> Fmt.string ppf v
  | Lindex (a, idx, _) ->
    Fmt.pf ppf "%s[%a]" a Fmt.(list ~sep:comma pp_expr) idx

(* statement bodies always print as [begin .. end] blocks: no dangling
   else, and empty bodies stay representable *)
let rec pp_stmt ind ppf (x : stmt) =
  let pad = String.make ind ' ' in
  match x.s with
  | Sassign (lv, ex) -> Fmt.pf ppf "%s%a := %a;" pad pp_lvalue lv pp_expr ex
  | Ssend (ex, ch) -> Fmt.pf ppf "%ssend(%a, %d);" pad pp_expr ex ch
  | Sreceive (lv, ch) -> Fmt.pf ppf "%sreceive(%a, %d);" pad pp_lvalue lv ch
  | Sif (c, t, []) ->
    Fmt.pf ppf "%sif %a then begin@\n%a%s@\nend" pad pp_expr c
      (pp_body (ind + 2)) t pad
  | Sif (c, t, els) ->
    Fmt.pf ppf "%sif %a then begin@\n%a%s@\nend else begin@\n%a%s@\nend" pad
      pp_expr c (pp_body (ind + 2)) t pad (pp_body (ind + 2)) els pad
  | Sfor { var; lo; hi; body } ->
    Fmt.pf ppf "%sfor %s := %a to %a do begin@\n%a%s@\nend" pad var pp_expr lo
      pp_expr hi (pp_body (ind + 2)) body pad

and pp_body ind ppf stmts =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ind)) ppf stmts

let pp_decl ppf (d : decl) =
  match d.d_kind with
  | Dscalar t -> Fmt.pf ppf "  %s : %a;" d.d_name pp_ty t
  | Darray { elem; dims; independent } ->
    Fmt.pf ppf "  %s : %sarray [%a] of %a;" d.d_name
      (if independent then "independent " else "")
      Fmt.(
        list ~sep:comma (fun ppf (lo, hi) -> Fmt.pf ppf "%d..%d" lo hi))
      dims pp_ty elem

let pp_program ppf (p : program) =
  Fmt.pf ppf "program %s;@\n" p.p_name;
  if p.p_decls <> [] then begin
    Fmt.pf ppf "var@\n";
    List.iter (fun d -> Fmt.pf ppf "%a@\n" pp_decl d) p.p_decls
  end;
  Fmt.pf ppf "begin@\n%a@\nend." (pp_body 2) p.p_body

let print (p : program) = Fmt.str "%a@." pp_program p

(* ------------------------------------------------------------------ *)
(* Structural equality and size (position-ignoring)                    *)
(* ------------------------------------------------------------------ *)

let rec equal_expr (a : expr) (b : expr) =
  match (a.e, b.e) with
  | Eint x, Eint y -> x = y
  | Efloat x, Efloat y -> Float.equal x y
  | Evar x, Evar y -> String.equal x y
  | Eindex (x, xs), Eindex (y, ys) ->
    String.equal x y && List.equal equal_expr xs ys
  | Ebin (o, a1, a2), Ebin (p, b1, b2) ->
    o = p && equal_expr a1 b1 && equal_expr a2 b2
  | Eun (o, x), Eun (p, y) -> o = p && equal_expr x y
  | Ecall (f, xs), Ecall (g, ys) ->
    String.equal f g && List.equal equal_expr xs ys
  | _ -> false

let equal_lvalue a b =
  match (a, b) with
  | Lvar (x, _), Lvar (y, _) -> String.equal x y
  | Lindex (x, xs, _), Lindex (y, ys, _) ->
    String.equal x y && List.equal equal_expr xs ys
  | _ -> false

let rec equal_stmt (a : stmt) (b : stmt) =
  match (a.s, b.s) with
  | Sassign (l1, e1), Sassign (l2, e2) -> equal_lvalue l1 l2 && equal_expr e1 e2
  | Sif (c1, t1, e1), Sif (c2, t2, e2) ->
    equal_expr c1 c2 && List.equal equal_stmt t1 t2 && List.equal equal_stmt e1 e2
  | Sfor f1, Sfor f2 ->
    String.equal f1.var f2.var && equal_expr f1.lo f2.lo
    && equal_expr f1.hi f2.hi
    && List.equal equal_stmt f1.body f2.body
  | Ssend (e1, c1), Ssend (e2, c2) -> c1 = c2 && equal_expr e1 e2
  | Sreceive (l1, c1), Sreceive (l2, c2) -> c1 = c2 && equal_lvalue l1 l2
  | _ -> false

let equal_decl (a : decl) (b : decl) =
  String.equal a.d_name b.d_name && a.d_kind = b.d_kind

let equal_program (a : program) (b : program) =
  String.equal a.p_name b.p_name
  && List.equal equal_decl a.p_decls b.p_decls
  && List.equal equal_stmt a.p_body b.p_body

let rec expr_size (x : expr) =
  match x.e with
  | Eint _ | Efloat _ | Evar _ -> 1
  | Eindex (_, xs) | Ecall (_, xs) ->
    1 + List.fold_left (fun acc i -> acc + expr_size i) 0 xs
  | Ebin (_, a, b) -> 1 + expr_size a + expr_size b
  | Eun (_, a) -> 1 + expr_size a

let lvalue_size = function
  | Lvar _ -> 1
  | Lindex (_, xs, _) ->
    1 + List.fold_left (fun acc i -> acc + expr_size i) 0 xs

let rec stmt_size (x : stmt) =
  match x.s with
  | Sassign (lv, ex) -> 1 + lvalue_size lv + expr_size ex
  | Sif (c, t, els) -> 1 + expr_size c + body_size t + body_size els
  | Sfor { lo; hi; body; _ } -> 1 + expr_size lo + expr_size hi + body_size body
  | Ssend (ex, _) -> 1 + expr_size ex
  | Sreceive (lv, _) -> 1 + lvalue_size lv

and body_size stmts = List.fold_left (fun acc x -> acc + stmt_size x) 0 stmts

(** AST node count — the minimizer's progress metric. *)
let size (p : program) = List.length p.p_decls + body_size p.p_body
