lib/ir/machine_state.ml: Array Buffer Float Hashtbl List Memseg Printf Program Semantics Vreg
