(** Workload descriptions and the measurement harness.

    A kernel is a W2 source program (or a prebuilt IR program) plus its
    input data. {!run} compiles it under a given configuration,
    validates the schedule against the sequential interpreter, runs the
    cycle-accurate simulator, and returns the numbers the paper's
    tables are built from. *)

open Sp_ir

type source = W2 of string | Ir of (unit -> Program.t)

type t = {
  name : string;
  descr : string;
  source : source;
  init : Machine_state.t -> Program.t -> unit;
      (** fill arrays with input data *)
  inputs : float list list;  (** per-channel input streams *)
}

let no_init (_ : Machine_state.t) (_ : Program.t) = ()

let mk ?(descr = "") ?(init = no_init) ?(inputs = []) name source =
  { name; descr; source; init; inputs }

(** Smooth positive test data, deterministic per (seed, index). *)
let data ~seed i =
  1.0 +. (0.01 *. float_of_int (((i * 7) + (seed * 131)) mod 97))

(** Initialize every float segment of the program with {!data}. *)
let init_all_arrays ?(seed = 1) (st : Machine_state.t) (p : Program.t) =
  List.iteri
    (fun k (s : Memseg.t) ->
      match s.Memseg.elt with
      | Memseg.Float_elt ->
        Machine_state.init_farray st s (fun i -> data ~seed:(seed + k) i)
      | Memseg.Int_elt -> ())
    p.Program.segs

let program (k : t) : Program.t =
  match k.source with
  | W2 src -> Sp_lang.Lower.compile_source src
  | Ir f -> f ()

(* ------------------------------------------------------------------ *)

type measurement = {
  kernel : string;
  cycles : int;
  flops : int;
  mflops : float;            (** single cell *)
  code_size : int;
  sem_ok : bool;             (** simulator state = interpreter state *)
  resource_ok : bool;
  loops : Sp_core.Compile.loop_report list;
  dyn_ops : int;
  utilization : (string * float) list;
      (** per-resource busy fraction of the simulated execution
          ({!Sp_vliw.Stats.utilization}); empty when the run failed *)
  failure : string option;
      (** a simulator trap (cycle limit, write-port conflict) — the
          measurement's numbers are then zero and [sem_ok] false *)
}

(** Compile under [config], cross-check against the interpreter, and
    measure. A simulator trap is reported in [failure], never raised. *)
let run ?(config = Sp_core.Compile.default) ?max_cycles
    (m : Sp_machine.Machine.t) (k : t) : measurement =
  let p = program k in
  let r = Sp_core.Compile.program ~config m p in
  let init st = k.init st p in
  let base =
    {
      kernel = k.name;
      cycles = 0;
      flops = 0;
      mflops = 0.0;
      code_size = r.Sp_core.Compile.code_size;
      sem_ok = false;
      resource_ok = Sp_vliw.Check.check_prog m r.Sp_core.Compile.code = [];
      loops = r.Sp_core.Compile.loops;
      dyn_ops = 0;
      utilization = [];
      failure = None;
    }
  in
  match
    Sp_vliw.Sim.run ?max_cycles ~inputs:k.inputs ~init m p
      r.Sp_core.Compile.code
  with
  | exception Sp_vliw.Sim.Cycle_limit n ->
    {
      base with
      failure = Some (Printf.sprintf "cycle limit hit at cycle %d" n);
    }
  | exception Sp_vliw.Sim.Write_conflict msg ->
    { base with failure = Some ("write-port conflict: " ^ msg) }
  | sim ->
    let oracle = Interp.run ~inputs:k.inputs ~init p in
    {
      base with
      cycles = sim.Sp_vliw.Sim.cycles;
      flops = sim.Sp_vliw.Sim.flops;
      mflops = Sp_vliw.Sim.mflops m sim;
      sem_ok =
        Machine_state.observably_equal oracle.Interp.state
          sim.Sp_vliw.Sim.state;
      dyn_ops = sim.Sp_vliw.Sim.dyn_ops;
      utilization =
        Sp_vliw.Stats.utilization m ~cycles:sim.Sp_vliw.Sim.cycles
          ~res_busy:sim.Sp_vliw.Sim.res_busy;
    }

(** Speed-up of the pipelined compilation over local compaction only
    (the Figure 4-2 metric), plus both measurements. *)
let speedup (m : Sp_machine.Machine.t) (k : t) =
  let piped = run ~config:Sp_core.Compile.default m k in
  let local = run ~config:Sp_core.Compile.local_only m k in
  let factor =
    if piped.cycles = 0 then 1.0
    else float_of_int local.cycles /. float_of_int piped.cycles
  in
  (factor, piped, local)

(** A {!measurement} as the flat schedule-quality report the
    observability layer serializes ([w2c --profile],
    [bench --emit-json]). Simulation-derived fields are [None] when the
    run trapped. *)
let profile (m : Sp_machine.Machine.t) (meas : measurement) :
    Sp_obs.Profile.report =
  let ran = meas.failure = None in
  let opt v = if ran then Some v else None in
  {
    Sp_obs.Profile.r_kernel = meas.kernel;
    r_machine = m.Sp_machine.Machine.name;
    r_code_size = meas.code_size;
    r_loops = List.map (Sp_core.Compile.profile_loop m) meas.loops;
    r_cycles = opt meas.cycles;
    r_flops = opt meas.flops;
    r_mflops = opt meas.mflops;
    r_dyn_ops = opt meas.dyn_ops;
    r_sem_ok = opt meas.sem_ok;
    r_utilization = meas.utilization;
  }

(** Innermost-loop efficiency (achieved lower bound / interval),
    weighted uniformly over pipelined loops; 1.0 when nothing was
    pipelined (the paper reports a lower bound on efficiency). *)
let efficiency (meas : measurement) =
  let effs =
    List.filter_map
      (fun (lr : Sp_core.Compile.loop_report) ->
        match lr.Sp_core.Compile.ii with
        | Some _ -> Some (Sp_core.Compile.efficiency lr)
        | None -> None)
      meas.loops
  in
  match effs with
  | [] -> 1.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
