(** [w2c] — the W2-to-VLIW compiler driver.

    {v
      w2c compile prog.w2          compile and print the VLIW code
      w2c schedule prog.w2         per-loop scheduling report
      w2c run prog.w2              compile, simulate, report cycles/MFLOPS
      w2c ir prog.w2               dump the scheduling IR
    v}

    Common options: [--machine warp|toy|serial|warpNx],
    [--no-pipeline], [--mve max-q|lcm|off], [--search linear|binary],
    [--if-exclusive], [--threshold N], [--fuel N] (interval-search
    budget), [--cache N] (content-addressed schedule reuse across
    structurally identical loops), [--inject SITE\@K] (deterministic
    fault injection),
    [--validate] (replay the emitted code against the machine's timing
    and resource contracts), [--verify] (cross-check against the
    sequential interpreter).

    Every failure mode — missing or unreadable file, front-end error,
    simulator cycle-limit or write-port trap — is reported as a
    structured error with a nonzero exit code, never a raw exception. *)

open Cmdliner
module C = Sp_core.Compile
module Machine = Sp_machine.Machine

let ( let* ) = Result.bind

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let machine_of_string s =
  match s with
  | "warp" -> Ok Machine.warp
  | "toy" -> Ok Machine.toy
  | "serial" -> Ok Machine.serial
  | _ -> (
    try Scanf.sscanf s "warp%dx" (fun w -> Ok (Machine.warp_scaled ~width:w))
    with _ -> Error (`Msg (Printf.sprintf "unknown machine %S" s)))

let machine_conv =
  Arg.conv
    ( machine_of_string,
      fun ppf (m : Machine.t) -> Fmt.string ppf m.Machine.name )

let machine_arg =
  let doc = "Target machine: warp, toy, serial, or warpNx (scaled)." in
  Arg.(value & opt machine_conv Machine.warp & info [ "machine"; "m" ] ~doc)

let mve_conv =
  Arg.conv
    ( (function
      | "max-q" -> Ok Sp_core.Mve.Max_q
      | "lcm" -> Ok Sp_core.Mve.Lcm
      | "off" -> Ok Sp_core.Mve.Off
      | s -> Error (`Msg (Printf.sprintf "unknown mve mode %S" s))),
      fun ppf m ->
        Fmt.string ppf
          (match m with
          | Sp_core.Mve.Max_q -> "max-q"
          | Sp_core.Mve.Lcm -> "lcm"
          | Sp_core.Mve.Off -> "off") )

let search_conv =
  Arg.conv
    ( (function
      | "linear" -> Ok Sp_core.Modsched.Linear
      | "binary" -> Ok Sp_core.Modsched.Binary
      | s -> Error (`Msg (Printf.sprintf "unknown search %S" s))),
      fun ppf s ->
        Fmt.string ppf
          (match s with
          | Sp_core.Modsched.Linear -> "linear"
          | Sp_core.Modsched.Binary -> "binary") )

let config_term =
  let no_pipeline =
    Arg.(value & flag & info [ "no-pipeline" ]
           ~doc:"Local compaction only (the Figure 4-2 baseline).")
  in
  let mve =
    Arg.(value & opt mve_conv Sp_core.Mve.Max_q & info [ "mve" ]
           ~doc:"Modulo variable expansion mode: max-q, lcm, off.")
  in
  let search =
    Arg.(value & opt search_conv Sp_core.Modsched.Linear & info [ "search" ]
           ~doc:"Initiation interval search: linear (paper) or binary.")
  in
  let if_exclusive =
    Arg.(value & flag & info [ "if-exclusive" ]
           ~doc:"Reduce conditionals to all-resources-consumed nodes.")
  in
  let threshold =
    Arg.(value & opt int C.default.C.threshold & info [ "threshold" ]
           ~doc:"Maximum compacted body length considered for pipelining.")
  in
  let fuel =
    Arg.(value & opt (some int) None & info [ "fuel" ] ~docv:"N"
           ~doc:"Placement-probe budget per loop for the initiation \
                 interval search; exhaustion degrades the loop to its \
                 serial schedule. Unlimited when absent.")
  in
  let opt_conv =
    Arg.conv
      ( (function
        | "heur" -> Ok `Heur
        | "exact" -> Ok `Exact
        | s -> Error (`Msg (Printf.sprintf "unknown optimizer %S" s))),
        fun ppf o ->
          Fmt.string ppf (match o with `Heur -> "heur" | `Exact -> "exact") )
  in
  let opt =
    Arg.(value & opt opt_conv `Heur & info [ "opt" ]
           ~doc:"Scheduler tier: heur (the paper's heuristic) or exact \
                 (certify each pipelined loop against the exact modulo \
                 scheduler; the report then carries a per-loop \
                 optimality certificate, and any strictly better \
                 schedule found replaces the heuristic one).")
  in
  let opt_fuel =
    Arg.(value & opt (some int) None & info [ "opt-fuel" ] ~docv:"N"
           ~doc:"Fuel budget per loop for the exact certifier (with \
                 --opt exact); exhaustion yields an unknown \
                 certificate, never a failure. Default 2e6.")
  in
  let opt_portfolio =
    Arg.(value & opt int 1 & info [ "opt-portfolio" ] ~docv:"K"
           ~doc:"Decide each certified interval with K exact-solver \
                 configurations (distinct variable orders and seeds) \
                 in parallel (with --opt exact). Every member runs to \
                 completion, the lowest-indexed decisive one is \
                 committed and all decisive members must agree — so \
                 the output is byte-identical for any K.")
  in
  let jobs =
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Compile independent innermost loops on N domains \
                 (output is byte-identical for any N). Defaults to \
                 \\$SP_JOBS, else the core count.")
  in
  let cache =
    Arg.(value & opt int 0 & info [ "cache" ] ~docv:"N"
           ~doc:"Reuse schedules across structurally identical loops \
                 through a content-addressed cache holding N entries \
                 (0, the default, disables it). Hits are re-verified \
                 against the requesting loop's own constraints; output \
                 is byte-identical with and without the cache.")
  in
  let mk no_pipeline mve_mode search if_exclusive threshold fuel opt opt_fuel
      opt_portfolio jobs cache =
    let jobs =
      match jobs with
      | Some n when n >= 1 -> n
      | Some n ->
        Printf.eprintf "w2c: --jobs must be >= 1 (got %d)\n%!" n;
        exit 2
      | None -> Sp_util.Pool.default_jobs ()
    in
    if opt_portfolio < 1 then begin
      Printf.eprintf "w2c: --opt-portfolio must be >= 1 (got %d)\n%!"
        opt_portfolio;
      exit 2
    end;
    {
      C.pipeline = not no_pipeline;
      mve_mode;
      search;
      threshold;
      if_exclusive;
      pipeline_outer = true;
      profit_margin = C.default.C.profit_margin;
      fuel;
      certifier =
        (match opt with
        | `Heur -> None
        | `Exact ->
          Some
            (Sp_opt.Certify.hook ?fuel:opt_fuel ~portfolio:opt_portfolio ()));
      jobs;
      cache =
        (if cache > 0 then
           Some (Sp_serve.Cache.hook (Sp_serve.Cache.create ~capacity:cache))
         else None);
    }
  in
  Term.(const mk $ no_pipeline $ mve $ search $ if_exclusive $ threshold
        $ fuel $ opt $ opt_fuel $ opt_portfolio $ jobs $ cache)

let inject_conv =
  let parse s =
    let bad () =
      Error (`Msg (Printf.sprintf "bad injection spec %S (want SITE@K)" s))
    in
    match String.rindex_opt s '@' with
    | None -> bad ()
    | Some i -> (
      let site = String.sub s 0 i in
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
      with
      | Some k when k >= 1 && site <> "" -> Ok (site, k)
      | _ -> bad ())
  in
  Arg.conv (parse, fun ppf (s, k) -> Fmt.pf ppf "%s@@%d" s k)

let inject_arg =
  Arg.(value & opt (some inject_conv) None & info [ "inject" ] ~docv:"SITE@K"
         ~doc:"Arm deterministic fault injection: the K-th execution of \
               the named compiler site raises, exercising the \
               degradation path. See the schedule report for the \
               affected loops.")

let arm_inject = function
  | None -> Ok ()
  | Some (site, k) ->
    let sites = Sp_util.Fault.sites () in
    if List.mem site sites then Ok (Sp_util.Fault.arm ~site ~after:k)
    else
      Error
        (`Msg
           (Printf.sprintf "unknown fault site %S (available: %s)" site
              (String.concat ", " sites)))

let validate_arg =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Replay the emitted code against the machine's timing \
               contract and resource discipline; any violation is a \
               hard error.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.w2")

let unroll_arg =
  Arg.(value & opt int 1 & info [ "unroll" ]
         ~doc:"Source-unroll constant-bound loops N times before \
               compilation (the Section 5.1 baseline transformation).")

let load ?(unroll = 1) path =
  if unroll <= 1 then Sp_lang.Lower.compile_source (read_file path)
  else Sp_lang.Unroll.compile_source ~k:unroll (read_file path)

(** Run [f], converting every expected failure — unreadable input,
    front-end error, stray injected fault — into a driver error
    message. *)
let or_msg f =
  let err fmt = Fmt.kstr (fun m -> Error (`Msg m)) fmt in
  match f () with
  | v -> Ok v
  | exception Sys_error m -> err "%s" m
  | exception Sp_lang.Lexer.Error (p, m) ->
    err "lexical error at %a: %s" Sp_lang.Token.pp_pos p m
  | exception Sp_lang.Parser.Error (p, m) ->
    err "syntax error at %a: %s" Sp_lang.Token.pp_pos p m
  | exception Sp_lang.Typecheck.Error (p, m) ->
    err "type error at %a: %s" Sp_lang.Token.pp_pos p m
  | exception Sp_lang.Lower.Error (p, m) ->
    err "lowering error at %a: %s" Sp_lang.Token.pp_pos p m
  | exception Sp_util.Fault.Injected site ->
    err "injected fault at %s escaped the degradation guards" site

(** Simulate, trapping the machine's runtime faults into structured
    failures that name the kernel. *)
let sim_run ~name ?max_cycles ~init m p code =
  match Sp_vliw.Sim.run ?max_cycles ~init m p code with
  | sim -> Ok sim
  | exception Sp_vliw.Sim.Cycle_limit n ->
    Error
      (`Msg
        (Printf.sprintf "%s: simulation hit the cycle limit at cycle %d" name
           n))
  | exception Sp_vliw.Sim.Write_conflict msg ->
    Error (`Msg (Printf.sprintf "%s: write-port conflict: %s" name msg))

let do_validate m name code =
  let rep = Sp_vliw.Validate.all m code in
  if Sp_vliw.Validate.ok rep then begin
    Fmt.pr "validate: ok@.";
    Ok ()
  end
  else Error (`Msg (Fmt.str "%s: validation failed@.%a" name
                      Sp_vliw.Validate.pp_report rep))

let pp_degraded ppf (loops : C.loop_report list) =
  let d = List.length (List.filter (fun r -> C.is_degraded r.C.status) loops) in
  if d > 0 then Fmt.pf ppf "  degraded: %d of %d loop(s)@." d
      (List.length loops)

(* ---- observability options ---------------------------------------- *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record compiler and simulator spans and write them as \
               Chrome trace_event JSON (loadable in chrome://tracing \
               or Perfetto).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Write the process-wide metric registry (scheduler \
               search counters, exact-certifier work, simulator \
               totals) as JSON when the command finishes.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print the schedule-quality profile: per-loop achieved \
               initiation interval against its lower bounds (and the \
               certified optimum when available), modulo-reservation-\
               table occupancy, prologue/epilogue overhead, and (under \
               run) per-resource utilization of the simulated \
               execution.")

let explain_arg =
  Arg.(value & opt ~vopt:(Some "-") (some string) None
       & info [ "explain" ] ~docv:"FILE"
           ~doc:"Record the scheduler's decision log — interval bounds \
                 and which constraint binds, SCC scheduling order, every \
                 failed placement with its conflicting resource or \
                 emptied precedence window, modulo-variable-expansion \
                 lifetimes and the unroll they force, exact-search prune \
                 causes — and print the human-readable report to FILE \
                 (stdout when the flag has no argument).")

let explain_json_arg =
  Arg.(value & opt (some string) None
       & info [ "explain-json" ] ~docv:"FILE"
           ~doc:"Write the decision log as a deterministic JSON \
                 artifact (byte-stable across runs of the same \
                 compilation).")

let render_arg =
  Arg.(value & opt (some string) None & info [ "render" ] ~docv:"DIR"
         ~doc:"Write per-loop visual schedule artifacts into DIR: \
               kernel Gantt charts, modulo-reservation-table occupancy \
               grids and register-lifetime diagrams, as plain text and \
               as one self-contained HTML file (inline SVG, no external \
               references).")

(* The four cost outputs bundled into one term so each command adds a
   single parameter. *)
type cost_out = {
  co_report : string option;  (** human report; "-" = stdout *)
  co_json : string option;
  co_folded : string option;
  co_html : string option;
}

let cost_term =
  let cost =
    Arg.(value & opt ~vopt:(Some "-") (some string) None
         & info [ "cost" ] ~docv:"FILE"
             ~doc:"Count the compiler's deterministic work units — MRT \
                   placement probes, Spath relaxations and frontier \
                   insertions, ready-heap operations, exact-search \
                   nodes by prune reason, dependence edges, \
                   schedule-cache verification edge checks — \
                   attributed per loop and compile phase, and print \
                   the report to FILE (stdout when the flag has no \
                   argument). Counts are pure functions of the \
                   compilation: identical at any -j and on any \
                   machine. Wall time and GC words appear in this \
                   report only, never in the JSON or folded outputs.")
  in
  let cost_json =
    Arg.(value & opt (some string) None
         & info [ "cost-json" ] ~docv:"FILE"
             ~doc:"Write the cost profile as a deterministic cost/1 \
                   JSON artifact (byte-stable across runs and job \
                   counts; no wall clock).")
  in
  let cost_folded =
    Arg.(value & opt (some string) None
         & info [ "cost-folded" ] ~docv:"FILE"
             ~doc:"Write the cost profile as folded stacks \
                   (loop;phase;counter value), one line per nonzero \
                   cell — the input format of standard flame-graph \
                   tooling.")
  in
  let cost_html =
    Arg.(value & opt (some string) None
         & info [ "cost-html" ] ~docv:"FILE"
             ~doc:"Write a self-contained HTML flame graph and treemap \
                   of the cost profile (inline SVG, no external \
                   references).")
  in
  Term.(
    const (fun co_report co_json co_folded co_html ->
        { co_report; co_json; co_folded; co_html })
    $ cost $ cost_json $ cost_folded $ cost_html)

let cost_wanted c =
  c.co_report <> None || c.co_json <> None || c.co_folded <> None
  || c.co_html <> None

(** Run the command body with tracing armed when requested, and dump
    trace/metrics/explain files afterwards — also on a structured
    failure, so a degraded compile still leaves its evidence behind. *)
let no_cost =
  { co_report = None; co_json = None; co_folded = None; co_html = None }

let with_obs ~trace ~metrics ?(explain = None) ?(explain_json = None)
    ?(render = None) ?(cost = no_cost) f =
  if trace <> None then Sp_obs.Trace.enable ();
  if explain <> None || explain_json <> None then Sp_obs.Explain.enable ();
  if render <> None then Sp_obs.Render.enable ();
  if cost_wanted cost then Sp_obs.Cost.enable ();
  (* the report-only wall/GC observation wraps the whole command body;
     it never reaches the JSON/folded/flame artifacts *)
  let f = if cost_wanted cost then fun () -> Sp_obs.Cost.observe f else f in
  Fun.protect
    ~finally:(fun () ->
      (match trace with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Sp_obs.Trace.write_chrome oc;
        close_out oc);
      (match metrics with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Sp_obs.Metrics.write oc;
        close_out oc);
      (match explain with
      | None -> ()
      | Some "-" -> print_string (Sp_obs.Explain.report ())
      | Some path ->
        let oc = open_out path in
        output_string oc (Sp_obs.Explain.report ());
        close_out oc);
      (match explain_json with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Sp_obs.Json.to_channel ~pretty:true oc (Sp_obs.Explain.to_json ());
        output_char oc '\n';
        close_out oc);
      (if cost_wanted cost then begin
         let prof = Sp_obs.Cost.snapshot () in
         (match cost.co_report with
         | None -> ()
         | Some "-" -> print_string (Sp_obs.Cost.report prof)
         | Some path ->
           let oc = open_out path in
           output_string oc (Sp_obs.Cost.report prof);
           close_out oc);
         (match cost.co_json with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           Sp_obs.Json.to_channel ~pretty:true oc (Sp_obs.Cost.to_json prof);
           output_char oc '\n';
           close_out oc);
         (match cost.co_folded with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           output_string oc (Sp_obs.Cost.folded prof);
           close_out oc);
         match cost.co_html with
         | None -> ()
         | Some path ->
           let oc = open_out path in
           output_string oc
             (Sp_obs.Render.flame_html ~title:"compile cost"
                (Sp_obs.Cost.flame prof));
           close_out oc
       end);
      Sp_obs.Cost.disable ();
      Sp_obs.Explain.disable ();
      Sp_obs.Render.disable ())
    f

(** Write the visual artifacts of a compilation into [dir]:
    [NAME.txt] (ASCII, one section per pipelined loop) and [NAME.html]
    (one self-contained document). *)
let emit_render dir name (r : C.result) =
  or_msg (fun () ->
      let views =
        List.sort
          (fun a b ->
            compare a.Sp_obs.Render.v_loop b.Sp_obs.Render.v_loop)
          (List.filter_map (fun lr -> lr.C.view) r.C.loops)
      in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let write path s =
        let oc = open_out (Filename.concat dir path) in
        output_string oc s;
        close_out oc
      in
      write (name ^ ".txt")
        (String.concat "\n" (List.map Sp_obs.Render.to_ascii views));
      write (name ^ ".html") (Sp_obs.Render.to_html ~title:name views);
      Fmt.pr "render: %d pipelined loop(s) -> %s/%s.{txt,html}@."
        (List.length views) dir name)

(** Profile of a compile without a simulation behind it. *)
let static_profile m (p : Sp_ir.Program.t) (r : C.result) =
  {
    Sp_obs.Profile.r_kernel = p.Sp_ir.Program.name;
    r_machine = m.Machine.name;
    r_code_size = r.C.code_size;
    r_loops = List.map (C.profile_loop m) r.C.loops;
    r_cycles = None;
    r_flops = None;
    r_mflops = None;
    r_dyn_ops = None;
    r_sem_ok = None;
    r_utilization = [];
  }

let cmd_ir =
  let run file =
    or_msg (fun () ->
        let p = load file in
        Fmt.pr "%a@." Sp_ir.Program.pp p)
  in
  Cmd.v (Cmd.info "ir" ~doc:"Dump the scheduling IR")
    Term.(term_result (const run $ file_arg))

let cmd_dot =
  let run m file =
    or_msg (fun () ->
        let p = load file in
        List.iteri
          (fun i (iv, g) ->
            Fmt.pr "// innermost loop %d (counter %a)@.%s@." i
              Sp_ir.Vreg.pp iv
              (Sp_core.Dot.to_string ~name:(Printf.sprintf "loop%d" i) g))
          (C.innermost_ddgs m p))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz dependence graphs of the \
                          innermost loops")
    Term.(term_result (const run $ machine_arg $ file_arg))

let cmd_compile =
  let run m config validate inject unroll trace metrics explain explain_json
      render cost profile file =
    with_obs ~trace ~metrics ~explain ~explain_json ~render ~cost @@ fun () ->
    let* () = arm_inject inject in
    Fun.protect ~finally:Sp_util.Fault.disarm @@ fun () ->
    let* p = or_msg (fun () -> load ~unroll file) in
    let* r = or_msg (fun () -> C.program ~config m p) in
    Fmt.pr "; %s: %d instructions for machine %s@." p.Sp_ir.Program.name
      r.C.code_size m.Machine.name;
    Fmt.pr "%a" Sp_vliw.Prog.pp r.C.code;
    if profile then Fmt.pr "%a" Sp_obs.Profile.pp (static_profile m p r);
    let* () =
      match render with
      | None -> Ok ()
      | Some dir -> emit_render dir p.Sp_ir.Program.name r
    in
    if validate then do_validate m p.Sp_ir.Program.name r.C.code
    else begin
      (match Sp_vliw.Check.check_prog m r.C.code with
      | [] -> ()
      | vs ->
        List.iter
          (fun v -> Fmt.epr "warning: %a@." Sp_vliw.Check.pp_violation v)
          vs);
      Ok ()
    end
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile and print the VLIW code")
    Term.(term_result
            (const run $ machine_arg $ config_term $ validate_arg
             $ inject_arg $ unroll_arg $ trace_arg $ metrics_arg
             $ explain_arg $ explain_json_arg $ render_arg
             $ cost_term $ profile_arg $ file_arg))

let cmd_schedule =
  let run m config inject trace metrics explain explain_json render cost
      profile file =
    with_obs ~trace ~metrics ~explain ~explain_json ~render ~cost @@ fun () ->
    let* () = arm_inject inject in
    Fun.protect ~finally:Sp_util.Fault.disarm @@ fun () ->
    let* p = or_msg (fun () -> load file) in
    let* r = or_msg (fun () -> C.program ~config m p) in
    Fmt.pr "%s on %s: %d instructions@." p.Sp_ir.Program.name
      m.Machine.name r.C.code_size;
    List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) r.C.loops;
    Fmt.pr "%a" pp_degraded r.C.loops;
    if profile then Fmt.pr "%a" Sp_obs.Profile.pp (static_profile m p r);
    let* () =
      match render with
      | None -> Ok ()
      | Some dir -> emit_render dir p.Sp_ir.Program.name r
    in
    Ok ()
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print the per-loop scheduling report")
    Term.(term_result
            (const run $ machine_arg $ config_term $ inject_arg $ trace_arg
             $ metrics_arg $ explain_arg $ explain_json_arg $ render_arg
             $ cost_term $ profile_arg $ file_arg))

let cmd_run =
  let verify =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Cross-check the final state against the sequential \
                 interpreter.")
  in
  let max_cycles =
    Arg.(value & opt (some int) None & info [ "max-cycles" ] ~docv:"N"
           ~doc:"Abort simulation after N cycles (reported as a \
                 structured failure, not a crash).")
  in
  let run m config verify validate max_cycles inject unroll trace metrics
      explain explain_json render cost profile file =
    with_obs ~trace ~metrics ~explain ~explain_json ~render ~cost @@ fun () ->
    let* () = arm_inject inject in
    Fun.protect ~finally:Sp_util.Fault.disarm @@ fun () ->
    let* p = or_msg (fun () -> load ~unroll file) in
    let name = p.Sp_ir.Program.name in
    let* r = or_msg (fun () -> C.program ~config m p) in
    let* () =
      match render with
      | None -> Ok ()
      | Some dir -> emit_render dir name r
    in
    let init st = Sp_kernels.Kernel.init_all_arrays st p in
    let* sim = sim_run ~name ?max_cycles ~init m p r.C.code in
    Fmt.pr "%s on %s: %d cycles, %d flops, %.2f MFLOPS (cell), %d words@."
      name m.Machine.name sim.Sp_vliw.Sim.cycles sim.Sp_vliw.Sim.flops
      (Sp_vliw.Sim.mflops m sim) r.C.code_size;
    List.iter (fun lr -> Fmt.pr "  %a@." C.pp_loop_report lr) r.C.loops;
    Fmt.pr "%a" pp_degraded r.C.loops;
    Fmt.pr "  %a" Sp_vliw.Stats.pp (Sp_vliw.Stats.compute m r.C.code);
    if profile then begin
      let report =
        {
          (static_profile m p r) with
          Sp_obs.Profile.r_cycles = Some sim.Sp_vliw.Sim.cycles;
          r_flops = Some sim.Sp_vliw.Sim.flops;
          r_mflops = Some (Sp_vliw.Sim.mflops m sim);
          r_dyn_ops = Some sim.Sp_vliw.Sim.dyn_ops;
          r_utilization =
            Sp_vliw.Stats.utilization m ~cycles:sim.Sp_vliw.Sim.cycles
              ~res_busy:sim.Sp_vliw.Sim.res_busy;
        }
      in
      Fmt.pr "%a" Sp_obs.Profile.pp report
    end;
    let* () =
      if validate then do_validate m name r.C.code else Ok ()
    in
    if verify then begin
      let* o = or_msg (fun () -> Sp_ir.Interp.run ~init p) in
      if
        Sp_ir.Machine_state.observably_equal o.Sp_ir.Interp.state
          sim.Sp_vliw.Sim.state
      then begin
        Fmt.pr "verify: schedule preserves sequential semantics@.";
        Ok ()
      end
      else Error (`Msg (name ^ ": verify: FINAL STATE MISMATCH"))
    end
    else Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile, simulate and report performance")
    Term.(term_result
            (const run $ machine_arg $ config_term $ verify $ validate_arg
             $ max_cycles $ inject_arg $ unroll_arg $ trace_arg
             $ metrics_arg $ explain_arg $ explain_json_arg $ render_arg
             $ cost_term $ profile_arg $ file_arg))

let () =
  let doc = "software-pipelining compiler for a Warp-like VLIW cell" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "w2c" ~version:"1.0" ~doc)
          [ cmd_ir; cmd_compile; cmd_schedule; cmd_run; cmd_dot ]))
