(** Visual schedule artifacts: per-loop kernel Gantt (operation ×
    cycle, colored by pipeline stage), modulo-reservation-table
    occupancy grid (functional unit × residue), and
    modulo-variable-expansion register-lifetime diagrams — in ASCII for
    the terminal and as self-contained HTML with inline SVG (no
    external scripts, stylesheets or fonts, so a single file is
    archivable and diffable).

    Views are flat records built by the compiler driver
    ([Sp_core.Compile]) from the committed schedule; building them is
    gated on {!enabled} so the default compile path pays one branch. *)

type op_row = {
  op_id : int;
  op_desc : string;
  op_time : int;   (** issue cycle in the flat schedule *)
  op_len : int;
  op_stage : int;  (** [op_time / II] — the pipeline stage *)
}

type res_row = {
  rr_name : string;
  rr_limit : int;          (** units of this resource in the machine *)
  rr_counts : int array;   (** demand per residue, length = II *)
}

type life_row = { lf_reg : string; lf_birth : int; lf_death : int; lf_q : int }

type loop_view = {
  v_loop : int;
  v_ii : int;
  v_span : int;
  v_sc : int;
  v_unroll : int;
  v_ops : op_row list;
  v_mrt : res_row list;
  v_lifetimes : life_row list;
}

val enabled : unit -> bool
(** When false (the default) the compiler skips building views. *)

val enable : unit -> unit
val disable : unit -> unit

val pp_ascii : Format.formatter -> loop_view -> unit
val to_ascii : loop_view -> string

val to_html : title:string -> loop_view list -> string
(** One self-contained HTML document for a program's pipelined loops.
    Deterministic: a pure function of the views. *)

(** {1 Service dashboard}

    The live health view of a running [w2cd] daemon: headline stat
    tiles, sparkline strips over telemetry series windows, and cache
    occupancy grids. Flat inputs keep this module ignorant of the
    service — the daemon builds the records from its telemetry. Like
    {!to_html}, the output is a single self-contained HTML document
    with inline SVG and CSS (no external scripts, stylesheets or
    fonts) and a pure function of its inputs. *)

type strip = {
  st_name : string;
  st_points : float list;  (** oldest first — one point per window *)
}

type grid = {
  g_name : string;
  g_filled : int;  (** colored cells, e.g. live cache entries *)
  g_total : int;   (** total cells, e.g. cache capacity *)
}

type dash = {
  d_title : string;
  d_tiles : (string * string) list;  (** headline key/value stats *)
  d_strips : strip list;
  d_grids : grid list;
}

val dashboard : dash -> string

(** {1 Flame graph / treemap}

    Hierarchical cost views for {!Cost} profiles (or any weighted
    tree). A node's value is its own {!fn_self} plus its children's;
    layout is icicle-style (roots on top) with a slice-and-dice treemap
    beneath. Deterministic: same nodes, same bytes — no wall clock, no
    randomized layout. *)

type flame_node = {
  fn_name : string;
  fn_self : int;                 (** work attributed to this node alone *)
  fn_children : flame_node list;
}

val flame_value : flame_node -> int
(** [fn_self] plus all descendants. *)

val flame_html : title:string -> flame_node list -> string
(** One self-contained HTML document (inline SVG, no external
    references), like {!to_html}. *)
