(** Text histograms for the figure reproductions (Figures 4-1 and 4-2 of
    the paper are histograms over a program population). *)

type t = {
  lo : float;          (** lower edge of the first bucket *)
  width : float;       (** bucket width *)
  counts : int array;  (** per-bucket counts; last bucket catches overflow *)
  mutable n : int;
  mutable total : float;
}

let create ~lo ~width ~buckets =
  if width <= 0. then invalid_arg "Histogram.create: non-positive width";
  if buckets <= 0 then invalid_arg "Histogram.create: no buckets";
  { lo; width; counts = Array.make buckets 0; n = 0; total = 0. }

let add t x =
  let i = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  let i = max 0 (min (Array.length t.counts - 1) i) in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.total <- t.total +. x

let of_list ~lo ~width ~buckets xs =
  let t = create ~lo ~width ~buckets in
  List.iter (add t) xs;
  t

let count t = t.n
let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n

let bucket_label t i =
  Printf.sprintf "%5.2f-%5.2f"
    (t.lo +. (float_of_int i *. t.width))
    (t.lo +. (float_of_int (i + 1) *. t.width))

(** Render with one row per bucket: [label | ### count]. *)
let pp ?(bar_unit = 1) ppf t =
  Array.iteri
    (fun i c ->
      let bar = String.make (c / max 1 bar_unit) '#' in
      Fmt.pf ppf "%s | %-30s %d@." (bucket_label t i) bar c)
    t.counts
