(** All-points longest paths with a symbolic initiation interval
    (paper Section 2.2.2), and the recurrence-constrained lower bound
    on the interval (Section 2.2.1).

    A path accumulating delay [d] and iteration difference [w]
    constrains [sigma(dst) - sigma(src) >= d - s*w] for initiation
    interval [s]. The closure is computed {e once}, with [s] symbolic:
    per node pair, the Pareto frontier of [(d, w)] pairs under
    dominance over the interval range actually searched. Dominance is
    an O(1) test at the two range endpoints (both constraint values are
    linear in [s]), and the finished closure is packed into one
    contiguous pair array behind an offset table so [query] — the
    per-candidate-interval hot path — scans adjacent words. *)

type t = {
  n : int;
  s_min : int;
  s_max : int;
  off : int array;
      (** [n*n + 1] entries, in pairs: the frontier of [(i, j)] spans
          pair indices [off.(i*n + j)] to [off.(i*n + j + 1) - 1] *)
  dat : int array;  (** interleaved [d, w] per pair *)
}

val compute :
  n:int -> edges:(int * int * int * int) list -> s_min:int -> s_max:int -> t
(** [compute ~n ~edges ~s_min ~s_max] over node-local indices; an edge
    is [(src, dst, delay, omega)]. Queries are valid for intervals in
    [s_min .. s_max]; callers pass [s_min >=] the recurrence bound,
    where every cycle has non-positive weight and the frontiers stay at
    hull size. *)

val query : t -> s:int -> int -> int -> int option
(** Binding precedence constraint from one node to another at interval
    [s]: the maximum of [d - s*w] over the frontier; [None] if no path.
    Raises [Invalid_argument] outside [s_min .. s_max]. *)

val has_positive_cycle :
  n:int -> edges:(int * int * int * int) list -> s:int -> bool
(** Bellman–Ford longest-path relaxation: is there a cycle of positive
    weight under [d - s*omega]? *)

val rec_mii_bound :
  n:int -> edges:(int * int * int * int) list -> s_max:int -> int
(** The recurrence lower bound: the smallest [s] at which no dependence
    cycle is positive — [max over cycles ceil(d(c)/p(c))] — found by
    binary search (cycle weight is decreasing in [s]). Returns
    [s_max + 2] when even [s_max + 1] leaves a positive cycle. *)
