(** A reusable fixed-size domain pool for deterministic fork/join
    batches.

    [create ~jobs:n] spawns [n - 1] worker domains (none at all for
    [n = 1], so a sequential pool is literally free — no domain is
    ever spawned and {!run} degenerates to [List.map]); the calling
    domain itself works through the queue during {!run}, so a pool of
    [n] applies [n] domains' worth of parallelism. Workers are parked
    on a condition variable between batches, which makes the pool
    cheap to reuse across many small batches — the per-loop
    compilation driver in [Sp_core.Compile] submits one batch per
    group of sibling innermost loops.

    Determinism contract: {!run} returns results in submission order
    regardless of completion order. If any task raises, every task is
    still run to completion and the exception of the {e
    lowest-indexed} failing task is re-raised (with its backtrace) on
    the calling domain — the same exception a sequential [List.map]
    would have surfaced first.

    Memory model: all task hand-off goes through the pool's mutex, so
    everything the submitting domain wrote before {!run} is visible to
    the workers, and everything the workers wrote is visible to the
    submitter when {!run} returns. Callers need no further
    synchronization for data that is only touched before submission or
    inside a task. *)

type t = {
  jobs : int;
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t; (* queue gained work, or [stop] flipped *)
  batch_done : Condition.t; (* a batch's remaining-count reached 0 *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Pop-and-run jobs until the queue is empty and (for workers) the pool
   is stopped. Runs with the mutex held between jobs; released while a
   job executes. *)
let worker t =
  Mutex.lock t.m;
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.m;
      job ();
      Mutex.lock t.m;
      loop ()
    | None ->
      if not t.stop then begin
        Condition.wait t.work_ready t.m;
        loop ()
      end
  in
  loop ();
  Mutex.unlock t.m

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      domains = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      stop = false;
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let shutdown t =
  let ds =
    locked t (fun () ->
        t.stop <- true;
        Condition.broadcast t.work_ready;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds

exception Task_error of int * exn * Printexc.raw_backtrace

let run (type a) t (fs : (unit -> a) list) : a list =
  if t.jobs <= 1 then List.map (fun f -> f ()) fs
  else begin
    let fs = Array.of_list fs in
    let n = Array.length fs in
    if n = 0 then []
    else begin
      let results : a option array = Array.make n None in
      let first_error : (int * exn * Printexc.raw_backtrace) option ref =
        ref None
      in
      let remaining = ref n in
      let job i () =
        (try results.(i) <- Some (fs.(i) ())
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           locked t (fun () ->
               match !first_error with
               | Some (j, _, _) when j < i -> ()
               | _ -> first_error := Some (i, e, bt)));
        locked t (fun () ->
            decr remaining;
            if !remaining = 0 then Condition.broadcast t.batch_done)
      in
      locked t (fun () ->
          for i = 0 to n - 1 do
            Queue.add (job i) t.queue
          done;
          Condition.broadcast t.work_ready);
      (* The calling domain works through the queue too, then waits for
         the stragglers executing on worker domains. *)
      Mutex.lock t.m;
      let rec drain () =
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.m;
          job ();
          Mutex.lock t.m;
          drain ()
        | None -> if !remaining > 0 then (Condition.wait t.batch_done t.m; drain ())
      in
      drain ();
      Mutex.unlock t.m;
      (match !first_error with
      | Some (i, e, bt) ->
        Printexc.raise_with_backtrace (Task_error (i, e, bt)) bt
      | None -> ());
      Array.to_list (Array.map Option.get results)
    end
  end

let run t fs =
  match run t fs with
  | vs -> vs
  | exception Task_error (_, e, bt) -> Printexc.raise_with_backtrace e bt

(** Pool width for the CLI default: [SP_JOBS] when set to a positive
    integer, else the runtime's recommendation for this machine. *)
let default_jobs () =
  match Option.bind (Sys.getenv_opt "SP_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Domain.recommended_domain_count ()
