(** Exact modulo schedulability at a fixed initiation interval [s],
    decided by branch and bound over the finite space of issue-time
    residues modulo [s] (see the implementation header for the
    encoding and its equivalence argument). No external solver. *)

exception Out_of_fuel

type verdict =
  | Feasible of int array
      (** least non-negative issue times of a valid schedule at [s] *)
  | Infeasible
      (** proof: the search covered the whole residue space *)
  | Out_of_budget  (** fuel ran out; feasibility at [s] undecided *)

type result = {
  verdict : verdict;
  spent : int;  (** fuel units consumed *)
}

val solve :
  ?fuel:int ->
  Sp_machine.Machine.t ->
  Sp_core.Ddg.t ->
  scc:Sp_core.Scc.t ->
  spaths:Sp_core.Spath.t option array ->
  s:int ->
  result
(** [solve ?fuel m g ~scc ~spaths ~s] decides whether a modulo schedule
    of [g] on [m] exists at initiation interval [s]. [scc] and [spaths]
    come from {!Sp_core.Modsched.analyze} (the closures are used only
    for pruning, and only at intervals inside their validity range, so
    any [s >= 1] may be probed). One unit of [fuel] is spent per
    candidate residue probed and per Bellman–Ford edge relaxation;
    unlimited when omitted. Deterministic for fixed inputs. *)
