test/test_main.ml: Alcotest Test_array Test_compile Test_ddg Test_interp Test_ir Test_kernels Test_lang Test_machine Test_modsched Test_mve Test_sched Test_util Test_vliw
