examples/convolution.ml: Fmt List Printf Sp_core Sp_kernels Sp_machine
