lib/core/mii.mli: Sp_machine Sunit
