(** Tests for operation semantics, the machine state and the
    sequential interpreter. *)

open Sp_ir
module Opkind = Sp_machine.Opkind

(* tiny harness: evaluate a single binop through the interpreter *)
let eval_fbin kind a b =
  let bld = Builder.create "t" in
  let out = Builder.farray bld "out" 1 in
  let x = Builder.fconst bld a in
  let y = Builder.fconst bld b in
  let z = Builder.fbin bld kind x y in
  Builder.store bld ~off:0 out z;
  let p = Builder.finish bld in
  let r = Interp.run p in
  (Machine_state.get_farray r.Interp.state out).(0)

let feq = Alcotest.(check (float 1e-12))

let test_float_ops () =
  feq "add" 5.5 (eval_fbin Opkind.Fadd 2.0 3.5);
  feq "sub" (-1.5) (eval_fbin Opkind.Fsub 2.0 3.5);
  feq "mul" 7.0 (eval_fbin Opkind.Fmul 2.0 3.5);
  feq "min" 2.0 (eval_fbin Opkind.Fmin 2.0 3.5);
  feq "max" 3.5 (eval_fbin Opkind.Fmax 2.0 3.5)

let test_seeds () =
  (* the 8-bit seeds are within 2^-8 relative error *)
  let cases = [ 0.37; 1.0; 2.0; 3.14159; 123.456; 0.001 ] in
  List.iter
    (fun x ->
      let r = Semantics.recip_seed x in
      Alcotest.(check bool)
        (Printf.sprintf "recip seed %g" x)
        true
        (Float.abs ((r *. x) -. 1.0) < 0.01);
      let q = Semantics.rsqrt_seed x in
      Alcotest.(check bool)
        (Printf.sprintf "rsqrt seed %g" x)
        true
        (Float.abs ((q *. q *. x) -. 1.0) < 0.02))
    cases

let eval_expand f x =
  let bld = Builder.create "t" in
  let out = Builder.farray bld "out" 1 in
  let xv = Builder.fconst bld x in
  let z = f bld xv in
  Builder.store bld ~off:0 out z;
  let p = Builder.finish bld in
  let r = Interp.run p in
  (Machine_state.get_farray r.Interp.state out).(0)

let test_expansions () =
  (* INVERSE: 7 flops, SQRT: 19 flops (paper Section 4.2), and both
     numerically close after the Newton iterations *)
  List.iter
    (fun x ->
      let inv = eval_expand Expand.inverse x in
      Alcotest.(check bool)
        (Printf.sprintf "inverse %g" x)
        true
        (Float.abs ((inv *. x) -. 1.0) < 1e-4);
      let s = eval_expand Expand.sqrt_ x in
      Alcotest.(check bool)
        (Printf.sprintf "sqrt %g" x)
        true
        (Float.abs ((s *. s /. x) -. 1.0) < 1e-4))
    [ 0.25; 1.0; 2.0; 9.0; 100.0; 0.01 ];
  (* exp: moderate accuracy (11 fractional bits of the exponent) *)
  List.iter
    (fun x ->
      let e = eval_expand Expand.exp_ x in
      Alcotest.(check bool)
        (Printf.sprintf "exp %g" x)
        true
        (Float.abs ((e /. Float.exp x) -. 1.0) < 0.01))
    [ 0.0; 1.0; 2.5; 5.0 ]

let test_expansion_flop_counts () =
  let count f =
    let bld = Builder.create "t" in
    let x = Builder.fconst bld 2.0 in
    let before = Builder.finish (Builder.create "empty") in
    ignore before;
    let z = f bld x in
    ignore z;
    let p = Builder.finish bld in
    let n = ref 0 in
    Region.iter_ops (fun op -> if Op.is_flop op then incr n) p.Program.body;
    !n
  in
  Alcotest.(check int) "INVERSE expands to 7 flops" 7 (count Expand.inverse);
  Alcotest.(check int) "SQRT expands to 19 flops" 19 (count Expand.sqrt_)

let test_exp_conditionals () =
  let bld = Builder.create "t" in
  let x = Builder.fconst bld 2.0 in
  ignore (Expand.exp_ bld x);
  let p = Builder.finish bld in
  Alcotest.(check int) "EXP expands to 19 conditionals" 19
    (Program.stats p).Program.n_ifs

let test_interp_loop_and_if () =
  (* sum of conditionally scaled elements, computed two ways *)
  let bld = Builder.create "t" in
  let a = Builder.farray bld "a" 16 in
  let out = Builder.farray bld "out" 1 in
  let thr = Builder.fconst bld 5.0 in
  let acc0 = Builder.fconst bld 0.0 in
  let acc = Builder.fmov bld acc0 in
  Builder.for_ bld (Region.Const 16) (fun i ->
      let x = Builder.load_iv bld a i 0 in
      let c = Builder.fcmp bld Opkind.Gt x thr in
      let v = Builder.fresh_f bld in
      Builder.if_ bld c
        ~then_:(fun () ->
          let t = Builder.fmul bld x x in
          ignore (Builder.emit bld ~dst:v ~srcs:[ t ] Opkind.Fmov))
        ~else_:(fun () ->
          ignore (Builder.emit bld ~dst:v ~srcs:[ x ] Opkind.Fmov));
      ignore (Builder.emit bld ~dst:acc ~srcs:[ acc; v ] Opkind.Fadd));
  Builder.store bld ~off:0 out acc;
  let p = Builder.finish bld in
  let init st = Machine_state.init_farray st a (fun i -> float_of_int i) in
  let r = Interp.run ~init p in
  let expected =
    let s = ref 0.0 in
    for i = 0 to 15 do
      let x = float_of_int i in
      s := !s +. (if x > 5.0 then x *. x else x)
    done;
    !s
  in
  feq "conditional sum" expected
    (Machine_state.get_farray r.Interp.state out).(0)

let test_channels () =
  let bld = Builder.create "t" in
  Builder.for_ bld (Region.Const 4) (fun _ ->
      let x = Builder.recv bld 0 in
      let k = Builder.fconst bld 2.0 in
      Builder.send bld 1 (Builder.fmul bld x k));
  let p = Builder.finish bld in
  let r = Interp.run ~inputs:[ [ 1.; 2.; 3.; 4. ] ] p in
  Alcotest.(check (list (float 1e-9))) "doubled stream" [ 2.; 4.; 6.; 8. ]
    (Machine_state.outputs r.Interp.state 1);
  (* draining an empty queue raises *)
  Alcotest.check_raises "empty queue" (Machine_state.Channel_empty 0)
    (fun () -> ignore (Interp.run ~inputs:[ [ 1.; 2. ] ] p))

let test_bounds_check () =
  let bld = Builder.create "t" in
  let a = Builder.farray bld "a" 4 in
  Builder.for_ bld (Region.Const 5) (fun i ->
      let x = Builder.load_iv bld a i 0 in
      ignore x);
  let p = Builder.finish bld in
  Alcotest.check_raises "out of bounds"
    (Machine_state.Out_of_bounds "a[4] (size 4)") (fun () ->
      ignore (Interp.run p))

let test_trip_count_reg () =
  let bld = Builder.create "t" in
  let a = Builder.farray bld "a" 8 in
  let n = Builder.iconst bld 3 in
  let one = Builder.fconst bld 1.0 in
  Builder.for_reg bld n (fun i -> Builder.store_iv bld a i 0 one);
  let p = Builder.finish bld in
  let r = Interp.run p in
  let arr = Machine_state.get_farray r.Interp.state a in
  Alcotest.(check (list (float 1e-9))) "3 written" [ 1.; 1.; 1.; 0. ]
    [ arr.(0); arr.(1); arr.(2); arr.(3) ]

let test_flop_accounting () =
  let bld = Builder.create "t" in
  let a = Builder.farray bld "a" 8 in
  let k = Builder.fconst bld 1.0 in
  Builder.for_ bld (Region.Const 8) (fun i ->
      let x = Builder.load_iv bld a i 0 in
      let y = Builder.fadd bld x k in
      let z = Builder.fmul bld y y in
      Builder.store_iv bld a i 0 z);
  let p = Builder.finish bld in
  let r = Interp.run p in
  Alcotest.(check int) "2 flops x 8 iterations" 16 r.Interp.flops

let suite =
  [
    ("float binops", `Quick, test_float_ops);
    ("hardware seeds", `Quick, test_seeds);
    ("intrinsic expansions: accuracy", `Quick, test_expansions);
    ("intrinsic expansions: flop counts", `Quick, test_expansion_flop_counts);
    ("EXP has 19 conditionals", `Quick, test_exp_conditionals);
    ("interp: loop with conditional", `Quick, test_interp_loop_and_if);
    ("interp: channels", `Quick, test_channels);
    ("interp: bounds check", `Quick, test_bounds_check);
    ("interp: register trip count", `Quick, test_trip_count_reg);
    ("interp: flop accounting", `Quick, test_flop_accounting);
  ]
