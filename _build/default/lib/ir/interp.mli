(** Sequential reference interpreter — the golden semantics.

    Executes the IR in program order with no notion of latency or
    resources. Every schedule the compiler produces must preserve this
    semantics: tests compare the final {!Machine_state.t} of a program
    run here and through the VLIW simulator. *)

type result = {
  state : Machine_state.t;
  flops : int;    (** dynamic floating-point operation count *)
  dyn_ops : int;  (** dynamic count of all operations *)
}

exception Unbound_trip_count of string

val run :
  ?channels:int ->
  ?inputs:float list list ->
  ?init:(Machine_state.t -> unit) ->
  Program.t ->
  result
(** [run p] executes [p] on a fresh state. [inputs] feeds the input
    channels (index k feeds channel k); [init] fills memory with test
    data before execution. *)
