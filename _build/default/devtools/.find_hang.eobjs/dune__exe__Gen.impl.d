devtools/gen.ml: Builder Fmt Interp List Machine_state Program QCheck2 Region Sp_core Sp_ir Sp_machine Sp_vliw
