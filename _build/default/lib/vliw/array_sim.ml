(** Co-simulation of a linear array of cells — the Warp machine proper.

    The paper's evaluation reports array-level rates for homogeneous
    programs ("a Warp array typically consists of ten processors"),
    accounting one-tenth per cell because such programs "never stall on
    input or output except for a short setup time". This module lets us
    {e check} that claim rather than assume it: each cell runs its own
    VLIW program; channel 0/1 outputs of cell [k] feed channel 0/1
    inputs of cell [k+1] through bounded FIFO queues (512 words on
    Warp), with the real blocking semantics — a cell stalls for the
    cycle when any receive finds its queue empty or any send finds it
    full.

    Stalling is per-instruction: a stalled instruction re-issues the
    next cycle. This is slightly coarser than Warp's hardware (which
    stalled per-queue-access), and conservative: measured array rates
    are a lower bound. *)

open Sp_ir

exception Write_conflict = Sim.Write_conflict
exception Cycle_limit = Sim.Cycle_limit

type queue = {
  buf : float Queue.t;
  capacity : int;
}

let q_create capacity = { buf = Queue.create (); capacity }
let q_full q = Queue.length q.buf >= q.capacity
let q_empty q = Queue.length q.buf = 0

type cell = {
  id : int;
  code : Prog.t;
  st : Machine_state.t;
  counters : int array;
  pend : (int, (Vreg.t * Semantics.value) list) Hashtbl.t;
  mutable pc : int;
  mutable halted : bool;
  mutable stalls : int;
  mutable flops : int;
  qin : queue array;   (** this cell's input queues (chan 0, 1) *)
  qout : queue array;  (** shared with the next cell's [qin] *)
}

type result = {
  cycles : int;            (** cycles until every cell halted *)
  flops : int;             (** total over the array *)
  per_cell_stalls : int array;
  states : Machine_state.t array;
  outputs : float list array;
      (** what the last cell's output queues received, per channel *)
}

(** Would this instruction stall (some receive on an empty queue or
    send on a full one)? Checked before any effect is applied. *)
let would_stall (c : cell) (inst : Inst.t) =
  List.exists
    (fun (op : Op.t) ->
      match op.Op.kind with
      | Sp_machine.Opkind.Recv ch -> q_empty c.qin.(ch)
      | Sp_machine.Opkind.Send ch -> q_full c.qout.(ch)
      | _ -> false)
    inst.Inst.ops

let step_cell (m : Sp_machine.Machine.t) (c : cell) ~cycle =
  (* writes landing this cycle *)
  (match Hashtbl.find_opt c.pend cycle with
  | None -> ()
  | Some l ->
    List.iter (fun (d, v) -> Machine_state.write c.st d v) l;
    Hashtbl.remove c.pend cycle);
  if (not c.halted) && c.pc >= 0 && c.pc < Prog.length c.code then begin
    let inst = c.code.Prog.code.(c.pc) in
    if would_stall c inst then c.stalls <- c.stalls + 1
    else begin
      let store_buf = ref [] in
      let ctx =
        {
          Semantics.rd = Machine_state.read c.st;
          ld = Machine_state.load c.st;
          st = (fun s i v -> store_buf := (s, i, v) :: !store_buf);
          recv = (fun ch -> Queue.pop c.qin.(ch).buf);
          send = (fun ch x -> Queue.push x c.qout.(ch).buf);
        }
      in
      List.iter
        (fun (op : Op.t) ->
          if Op.is_flop op then c.flops <- c.flops + 1;
          match (Semantics.exec ctx op, op.Op.dst) with
          | Some v, Some d ->
            let lat = max 1 (Sp_machine.Machine.latency m op.Op.kind) in
            let due = cycle + lat in
            let l = Option.value ~default:[] (Hashtbl.find_opt c.pend due) in
            if List.exists (fun (d', _) -> Vreg.equal d' d) l then
              raise
                (Write_conflict
                   (Printf.sprintf "cell %d: two writes to %s" c.id
                      (Vreg.to_string d)));
            Hashtbl.replace c.pend due ((d, v) :: l)
          | None, None | Some _, None -> ()
          | None, Some _ ->
            raise (Semantics.Type_error "dst op produced no value"))
        inst.Inst.ops;
      List.iter
        (fun (s, i, v) -> Machine_state.store c.st s i v)
        (List.rev !store_buf);
      match inst.Inst.ctl with
      | Inst.Next -> c.pc <- c.pc + 1
      | Inst.Halt -> c.halted <- true
      | Inst.Jump l -> c.pc <- l
      | Inst.CJump { cond; if_zero; target } ->
        let x = Semantics.as_i (Machine_state.read c.st cond) in
        let taken = if if_zero then x = 0 else x <> 0 in
        c.pc <- (if taken then target else c.pc + 1)
      | Inst.CtrSet { ctr; value } ->
        c.counters.(ctr) <- value;
        c.pc <- c.pc + 1
      | Inst.CtrSetR { ctr; reg } ->
        c.counters.(ctr) <- Semantics.as_i (Machine_state.read c.st reg);
        c.pc <- c.pc + 1
      | Inst.CtrLoop { ctr; target } ->
        c.counters.(ctr) <- c.counters.(ctr) - 1;
        c.pc <- (if c.counters.(ctr) > 0 then target else c.pc + 1)
      | Inst.CtrJumpLt { ctr; bound; target } ->
        c.pc <- (if c.counters.(ctr) < bound then target else c.pc + 1)
    end
  end
  else c.halted <- true

(** Run [cells] copies of a (homogeneous) compiled program, or distinct
    programs per cell via [codes]. [feed] supplies the first cell's
    input streams; drained outputs of the last cell are returned.
    [queue_capacity] defaults to Warp's 512 words. *)
let run ?(cells = 10) ?(queue_capacity = 512) ?(feed = [ []; [] ])
    ?(max_cycles = 100_000_000) ?(ctrs = 16)
    ?(init = fun (_ : int) (_ : Machine_state.t) -> ())
    (m : Sp_machine.Machine.t) (p : Program.t) (codes : Prog.t array) :
    result =
  if Array.length codes = 0 then invalid_arg "Array_sim.run: no cells";
  let code_of k = codes.(k mod Array.length codes) in
  (* queues.(k) feeds cell k; queues.(cells) collects the last cell's
     output — an unbounded sink (the host interface), so a finite
     terminal queue cannot deadlock the array *)
  let queues =
    Array.init (cells + 1) (fun k ->
        let cap = if k = cells then max_int else queue_capacity in
        [| q_create cap; q_create cap |])
  in
  (* preload the first cell's input *)
  List.iteri
    (fun ch xs ->
      if ch < 2 then List.iter (fun x -> Queue.push x queues.(0).(ch).buf) xs)
    feed;
  let mk_cell k =
    let st = Machine_state.create p in
    init k st;
    {
      id = k;
      code = code_of k;
      st;
      counters = Array.make ctrs 0;
      pend = Hashtbl.create 64;
      pc = 0;
      halted = false;
      stalls = 0;
      flops = 0;
      qin = queues.(k);
      qout = queues.(k + 1);
    }
  in
  let arr = Array.init cells mk_cell in
  let cycle = ref 0 in
  while (not (Array.for_all (fun (c : cell) -> c.halted) arr)) && !cycle <= max_cycles
  do
    Array.iter (fun c -> step_cell m c ~cycle:!cycle) arr;
    incr cycle
  done;
  if !cycle > max_cycles then raise (Cycle_limit !cycle);
  (* drain remaining in-flight writes *)
  Array.iter
    (fun c ->
      let horizon = ref !cycle in
      Hashtbl.iter (fun t _ -> if t > !horizon then horizon := t) c.pend;
      for t = !cycle to !horizon do
        match Hashtbl.find_opt c.pend t with
        | None -> ()
        | Some l ->
          List.iter (fun (d, v) -> Machine_state.write c.st d v) l;
          Hashtbl.remove c.pend t
      done)
    arr;
  {
    cycles = !cycle;
    flops = Array.fold_left (fun a (c : cell) -> a + c.flops) 0 arr;
    per_cell_stalls = Array.map (fun (c : cell) -> c.stalls) arr;
    states = Array.map (fun (c : cell) -> c.st) arr;
    outputs =
      Array.map
        (fun (q : queue) -> List.of_seq (Queue.to_seq q.buf))
        queues.(cells);
  }

let mflops (m : Sp_machine.Machine.t) (r : result) =
  Sp_machine.Machine.mflops m ~flops:r.flops ~cycles:r.cycles
