(** The Livermore Fortran kernels (McMahon), ported to the W2-like
    dialect the way the paper ports them (Section 4.2): "The Fortran
    programs were translated manually into the W2 syntax", INVERSE and
    SQRT expand to 7 and 19 floating-point operations, EXP to 19
    conditional statements.

    The selection below mirrors the paper's Table 4-2 rows that our
    dialect can express directly, including the three kernels the
    paper's compiler declines to pipeline: LFK 22's EXP body blows the
    length threshold; LFK 20's long division recurrences leave no room
    under the serial restart interval. Problem sizes are scaled to keep
    cycle-accurate simulation fast; MFLOPS is dominated by the steady
    state and insensitive to this. *)

let n = 200 (* base vector length *)

let k1_hydro =
  Kernel.mk "LFK1" ~descr:"hydro fragment"
    ~init:(Kernel.init_all_arrays ~seed:1)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk1;
var x, y, z : array [0..%d] of float;
    q, r, t : float;
    k : int;
begin
  q := 0.5; r := 1.5; t := 2.5;
  for k := 0 to %d do
    x[k] := q + y[k] * (r * z[k+10] + t * z[k+11]);
end.
|}
          (n + 20) (n - 1)))

let k2_first_order =
  Kernel.mk "LFK2" ~descr:"ICCG-style first-order recurrence"
    ~init:(Kernel.init_all_arrays ~seed:2)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk2;
var x, v : array [0..%d] of float;
    k : int;
begin
  for k := 1 to %d do
    x[k] := x[k] - v[k] * x[k-1];
end.
|}
          n (n - 1)))

let k3_inner_product =
  Kernel.mk "LFK3" ~descr:"inner product"
    ~init:(Kernel.init_all_arrays ~seed:3)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk3;
var x, z : array [0..%d] of float;
    q : float;
    k : int;
begin
  q := 0.0;
  for k := 0 to %d do
    q := q + z[k] * x[k];
  x[0] := q;
end.
|}
          n (n - 1)))

let k4_banded =
  Kernel.mk "LFK4" ~descr:"banded linear equations (distance-5 recurrence)"
    ~init:(Kernel.init_all_arrays ~seed:4)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk4;
var x, y : array [0..%d] of float;
    k : int;
begin
  for k := 5 to %d do
    x[k] := x[k] - y[k] * x[k-5];
end.
|}
          n (n - 1)))

let k5_tridiag =
  Kernel.mk "LFK5" ~descr:"tri-diagonal elimination, below diagonal"
    ~init:(Kernel.init_all_arrays ~seed:5)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk5;
var x, y, z : array [0..%d] of float;
    k : int;
begin
  for k := 1 to %d do
    x[k] := z[k] * (y[k] - x[k-1]);
end.
|}
          n (n - 1)))

let k6_linear_recurrence =
  Kernel.mk "LFK6" ~descr:"general linear recurrence equations"
    ~init:(Kernel.init_all_arrays ~seed:6)
    (Kernel.W2
       {|
program lfk6;
var w : array [0..31] of float;
    b : array [0..31, 0..31] of float;
    s : float;
    i, k : int;
begin
  for i := 1 to 31 do begin
    s := 0.0;
    for k := 0 to 30 do begin
      if k < i then s := s + b[i,k] * w[i-k-1];
      else s := s + 0.0;
    end
    w[i] := w[i] + s;
  end
end.
|})

let k7_eos =
  Kernel.mk "LFK7" ~descr:"equation of state fragment"
    ~init:(Kernel.init_all_arrays ~seed:7)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk7;
var x, y, z, u : array [0..%d] of float;
    q, r, t : float;
    k : int;
begin
  q := 0.5; r := 1.5; t := 2.5;
  for k := 0 to %d do
    x[k] := u[k] + r * (z[k] + r * y[k])
            + t * (u[k+3] + r * (u[k+2] + r * u[k+1])
                   + t * (u[k+6] + q * (u[k+5] + q * u[k+4])));
end.
|}
          (n + 10) (n - 1)))

let k9_integrate_predictors =
  Kernel.mk "LFK9" ~descr:"integrate predictors"
    ~init:(Kernel.init_all_arrays ~seed:9)
    (Kernel.W2
       {|
program lfk9;
var px : array [0..99, 0..12] of float;
    i : int;
begin
  for i := 0 to 99 do
    px[i,0] := 0.1 + 0.25 * (px[i,12] + 0.5 * px[i,11] + 0.3 * px[i,10]
               + 0.2 * (px[i,9] + 0.8 * px[i,8] + 0.7 * px[i,7])
               + 0.6 * (px[i,6] + 0.9 * px[i,5] + 1.1 * px[i,4])
               + 1.2 * (px[i,3] + 1.3 * px[i,2] + 1.4 * px[i,1]));
end.
|})

let k10_difference_predictors =
  Kernel.mk "LFK10" ~descr:"difference predictors"
    ~init:(Kernel.init_all_arrays ~seed:10)
    (Kernel.W2
       {|
program lfk10;
var px, cx : array [0..99, 0..12] of float;
    ar, br, cr : float;
    i : int;
begin
  for i := 0 to 99 do begin
    ar := cx[i,4];
    br := ar - px[i,4];
    px[i,4] := ar;
    cr := br - px[i,5];
    px[i,5] := br;
    ar := cr - px[i,6];
    px[i,6] := cr;
    br := ar - px[i,7];
    px[i,7] := ar;
    cr := br - px[i,8];
    px[i,8] := br;
    px[i,9] := cr;
  end
end.
|})

let k11_first_sum =
  Kernel.mk "LFK11" ~descr:"first sum (prefix sum)"
    ~init:(Kernel.init_all_arrays ~seed:11)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk11;
var x, y : array [0..%d] of float;
    s : float;
    k : int;
begin
  s := 0.0;
  for k := 0 to %d do begin
    s := s + y[k];
    x[k] := s;
  end
end.
|}
          n (n - 1)))

let k12_first_diff =
  Kernel.mk "LFK12" ~descr:"first difference"
    ~init:(Kernel.init_all_arrays ~seed:12)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk12;
var x, y : array [0..%d] of float;
    k : int;
begin
  for k := 0 to %d do
    x[k] := y[k+1] - y[k];
end.
|}
          (n + 1) (n - 1)))

let k16_monte_carlo =
  Kernel.mk "LFK16" ~descr:"Monte Carlo search (branchy scalar code)"
    ~init:(Kernel.init_all_arrays ~seed:16)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk16;
var zone, plan : array [0..%d] of float;
    r, s, t : float;
    k : int;
begin
  r := 1.0; s := 2.0; t := 0.0;
  for k := 1 to %d do begin
    t := zone[k] - zone[k-1];
    if t < 0.0 then begin
      s := plan[k] * r;
      if s > zone[k] then r := r - 0.125;
      else r := r + 0.125;
    end
    else begin
      s := plan[k] + r;
      if s > t then r := r * 0.5;
      else r := r * 2.0;
    end
    plan[k] := s + r;
  end
end.
|}
          n (n - 1)))

let k17_conditional =
  Kernel.mk "LFK17" ~descr:"implicit conditional computation"
    ~init:(Kernel.init_all_arrays ~seed:17)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk17;
var vxne, vlr, ve3 : array [0..%d] of float;
    k : int;
begin
  for k := 0 to %d do begin
    if vlr[k] > 1.5 then
      vxne[k] := vlr[k] * ve3[k];
    else
      vxne[k] := vlr[k] + ve3[k];
  end
end.
|}
          n (n - 1)))

let k20_discrete_ordinates =
  Kernel.mk "LFK20" ~descr:"discrete ordinates transport (division recurrence)"
    ~init:(Kernel.init_all_arrays ~seed:20)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk20;
var g, u, v, w, x : array [0..%d] of float;
    xx, di, dn : float;
    k : int;
begin
  xx := 1.0;
  for k := 0 to %d do begin
    di := u[k] - xx * v[k];
    dn := 0.2;
    if di > 0.01 then dn := max(min(w[k] / di, 2.0), 0.2);
    xx := (g[k] + v[k] * dn) * inverse(u[k] + dn);
    x[k] := xx;
  end
end.
|}
          n 63))

let k21_matmul =
  Kernel.mk "LFK21" ~descr:"matrix * matrix product"
    ~init:(Kernel.init_all_arrays ~seed:21)
    (Kernel.W2
       {|
program lfk21;
var px : array [0..15, 0..15] of float;
    vy : array [0..15, 0..15] of float;
    cx : array [0..15, 0..15] of float;
    i, j, k : int;
begin
  for k := 0 to 15 do
    for i := 0 to 15 do
      for j := 0 to 15 do
        px[i,j] := px[i,j] + vy[i,k] * cx[k,j];
end.
|})

let k22_planckian =
  Kernel.mk "LFK22" ~descr:"Planckian distribution (EXP: 19 conditionals)"
    ~init:(fun st p ->
      (* keep exponents modest and denominators away from zero *)
      List.iter
        (fun (s : Sp_ir.Memseg.t) ->
          if s.Sp_ir.Memseg.elt = Sp_ir.Memseg.Float_elt then
            Sp_ir.Machine_state.init_farray st s (fun i ->
                1.0 +. (0.02 *. float_of_int (i mod 50))))
        p.Sp_ir.Program.segs)
    (Kernel.W2
       {|
program lfk22;
var u, v, w, y : array [0..63] of float;
    ex : float;
    k : int;
begin
  for k := 0 to 63 do begin
    y[k] := u[k] * inverse(v[k]);
    ex := exp(y[k]);
    w[k] := u[k] * inverse(ex - 1.0);
  end
end.
|})

let k24_first_min =
  Kernel.mk "LFK24" ~descr:"location of first minimum (conditional recurrence)"
    ~init:(Kernel.init_all_arrays ~seed:24)
    (Kernel.W2
       (Printf.sprintf
          {|
program lfk24;
var x : array [0..%d] of float;
    loc : array [0..1] of int;
    xm : float;
    m, k : int;
begin
  m := 0;
  xm := x[0];
  for k := 1 to %d do begin
    if x[k] < xm then begin
      xm := x[k];
      m := k;
    end
    else m := m;
  end
  loc[0] := m;
end.
|}
          n (n - 1)))

let k8_adi =
  Kernel.mk "LFK8" ~descr:"ADI integration fragment (simplified)"
    ~init:(Kernel.init_all_arrays ~seed:8)
    (Kernel.W2
       {|
program lfk8;
var u1, u2, u3 : array [0..2, 0..31] of float;
    du1, du2, du3 : float;
    kx, ky : int;
begin
  for ky := 1 to 30 do begin
    du1 := u1[0, ky+1] - u1[0, ky-1];
    du2 := u2[0, ky+1] - u2[0, ky-1];
    du3 := u3[0, ky+1] - u3[0, ky-1];
    u1[1, ky] := u1[0, ky] + 0.175 * (du1 + du2 + du3 + 0.25 * u1[0, ky]);
    u2[1, ky] := u2[0, ky] + 0.175 * (du1 - du2 + du3 + 0.25 * u2[0, ky]);
    u3[1, ky] := u3[0, ky] + 0.175 * (du1 + du2 - du3 + 0.25 * u3[0, ky]);
  end
end.
|})

let k18_hydro2d =
  Kernel.mk "LFK18" ~descr:"2-D explicit hydrodynamics fragment"
    ~init:(Kernel.init_all_arrays ~seed:18)
    (Kernel.W2
       {|
program lfk18;
var za, zb, zp, zq, zr, zm : array [0..6, 0..31] of float;
    j, k : int;
begin
  for j := 1 to 5 do
    for k := 1 to 30 do begin
      za[j, k] := (zp[j-1, k+1] + zq[j-1, k+1] - zp[j-1, k] - zq[j-1, k])
                  * (zr[j, k] + zr[j-1, k])
                  * inverse(zm[j-1, k] + zm[j-1, k+1]);
      zb[j, k] := (zp[j-1, k] + zq[j-1, k] - zp[j, k] - zq[j, k])
                  * (zr[j, k] + zr[j, k-1])
                  * inverse(zm[j, k] + zm[j-1, k]);
    end
end.
|})

let k23_implicit =
  Kernel.mk "LFK23" ~descr:"2-D implicit hydrodynamics fragment"
    ~init:(Kernel.init_all_arrays ~seed:23)
    (Kernel.W2
       {|
program lfk23;
var za, zu, zv, zz : array [0..5, 0..31] of float;
    qa : float;
    j, k : int;
begin
  for j := 1 to 4 do
    for k := 1 to 30 do begin
      qa := za[j, k+1] * zz[j, k] + za[j, k-1] * zv[j, k]
            + za[j+1, k] * zu[j, k] + 0.175;
      za[j, k] := za[j, k] + 0.205 * (qa - za[j, k]);
    end
end.
|})

(** The Table 4-2 rows we reproduce, in kernel order. *)
let all =
  [
    k1_hydro;
    k2_first_order;
    k3_inner_product;
    k4_banded;
    k5_tridiag;
    k6_linear_recurrence;
    k7_eos;
    k8_adi;
    k9_integrate_predictors;
    k10_difference_predictors;
    k11_first_sum;
    k12_first_diff;
    k16_monte_carlo;
    k17_conditional;
    k18_hydro2d;
    k20_discrete_ordinates;
    k21_matmul;
    k22_planckian;
    k23_implicit;
    k24_first_min;
  ]

(** Paper Table 4-2 reference points (MFLOPS on one Warp cell, lower
    bound on efficiency, speed-up over the unpipelined kernel), for the
    rows that are legible in the source scan. Used by EXPERIMENTS.md
    and the bench harness for side-by-side shape comparison. *)
let paper_reference =
  [
    ("LFK1", (7.63, 1.00, 4.6));
    ("LFK3", (1.66, 1.00, 2.71));
    ("LFK5", (1.12, 1.00, 2.86));
    ("LFK7", (7.65, 1.00, 4.27));
    ("LFK11", (0.77, 1.00, 1.30));
    ("LFK12", (5.31, 0.97, 4.00));
    ("LFK21", (1.30, 0.56, 2.63));
    ("LFK22", (0.45, 1.00, 1.00));
  ]
