lib/vliw/check.ml: Array Fmt Inst List Machine Prog Sp_ir Sp_machine
