(** Random-program generation for property-based testing.

    The central property of the whole repository is: {e for any legal
    program, the software-pipelined VLIW code computes exactly what the
    sequential interpreter computes}. This module generates random but
    deterministic loop programs through the IR builder — mixes of
    affine array reads/writes with random offsets, scalar temporaries,
    accumulator recurrences, conditionals and channel traffic — used by
    the qcheck suites in {!Test_compile} and {!Test_modsched}. *)

open Sp_ir

type spec = {
  seed : int;
  trip : int;
  n_stmts : int;
  use_if : bool;
  use_accum : bool;
  use_chan : bool;
  carried_store : bool; (* store at x[i] read back at x[i+d] *)
  empty_body : bool; (* a loop with no operations at all *)
  maxlat : bool; (* route a value through idiv, the longest-latency op *)
}

let pp_spec ppf s =
  Fmt.pf ppf
    "{seed=%d trip=%d stmts=%d if=%b acc=%b chan=%b carried=%b empty=%b \
     maxlat=%b}"
    s.seed s.trip s.n_stmts s.use_if s.use_accum s.use_chan s.carried_store
    s.empty_body s.maxlat

let spec_gen =
  let open QCheck2.Gen in
  let* seed = int_bound 10_000 in
  (* weight the degenerate trip counts: zero- and single-trip loops
     exercise the peel/two-version seams that uniform sampling rarely
     hits *)
  let* trip =
    frequency [ (3, oneofl [ 0; 1 ]); (7, oneofl [ 2; 3; 5; 17; 40; 61 ]) ]
  in
  let* n_stmts = int_range 1 5 in
  let* use_if = bool in
  let* use_accum = bool in
  let* use_chan = bool in
  let* carried_store = bool in
  let* empty_body = frequency [ (7, return false); (1, return true) ] in
  let* maxlat = frequency [ (3, return false); (1, return true) ] in
  return
    {
      seed;
      trip;
      n_stmts;
      use_if;
      use_accum;
      use_chan;
      carried_store;
      empty_body;
      maxlat;
    }

(* a deterministic pseudo-random stream from the spec seed *)
type rng = { mutable s : int }

let next rng n =
  rng.s <- ((rng.s * 1103515245) + 12345) land 0x3FFFFFFF;
  rng.s mod n

let pad = 8

(** Add one spec's loop to an open builder; array names take [suffix]
    so several loops can coexist in one program. Returns the loop's
    arrays for initialization. *)
let add_loop (b : Builder.t) ~suffix (sp : spec) =
  (* an empty body has nothing to condition, accumulate or send *)
  let sp =
    if sp.empty_body then
      {
        sp with
        use_if = false;
        use_accum = false;
        use_chan = false;
        carried_store = false;
        maxlat = false;
      }
    else sp
  in
  let rng = { s = sp.seed + 1 } in
  let size = sp.trip + (2 * pad) in
  let xs = Builder.farray b ("xs" ^ suffix) (max 1 size) in
  let ys = Builder.farray b ("ys" ^ suffix) (max 1 size) in
  let c1 = Builder.fconst b 1.25 in
  let c2 = Builder.fconst b 0.5 in
  let acc = if sp.use_accum then Some (Builder.fmov b c1) else None in
  Builder.for_ b (Region.Const sp.trip) (fun i ->
      if sp.empty_body then ()
      else begin
      (* a pool of available values to combine *)
      let pool = ref [ c1; c2 ] in
      let pick () = List.nth !pool (next rng (List.length !pool)) in
      let push v = pool := v :: !pool in
      (* loads *)
      push (Builder.load_iv b xs i (next rng pad));
      push (Builder.load_iv b ys i (next rng pad));
      if sp.use_chan then push (Builder.recv b 0);
      (if sp.maxlat then
         (* integer divide is the machine's longest-latency operation
            (17 cycles on warp) — stretches the schedule's critical path *)
         let q =
           Builder.ibin b Sp_machine.Opkind.Idiv
             (Builder.ftoi b (Builder.fabs b (pick ())))
             (Builder.iconst b 3)
         in
         push (Builder.itof b q));
      for _ = 1 to sp.n_stmts do
        let v =
          match next rng 4 with
          | 0 -> Builder.fadd b (pick ()) (pick ())
          | 1 -> Builder.fmul b (pick ()) (pick ())
          | 2 -> Builder.fsub b (pick ()) (pick ())
          | _ -> Builder.fmax b (pick ()) (pick ())
        in
        push v
      done;
      (if sp.use_if then begin
         let cond = Builder.fcmp b Sp_machine.Opkind.Gt (pick ()) c1 in
         let out = Builder.fresh_f b in
         let a = pick () and b2 = pick () in
         Builder.if_ b cond
           ~then_:(fun () ->
             let t = Builder.fmul b a c2 in
             ignore (Builder.emit b ~dst:out ~srcs:[ t ] Sp_machine.Opkind.Fmov))
           ~else_:(fun () ->
             let t = Builder.fadd b b2 c2 in
             ignore (Builder.emit b ~dst:out ~srcs:[ t ] Sp_machine.Opkind.Fmov));
         push out
       end);
      (match acc with
      | Some a ->
        let t = Builder.fmul b (pick ()) c2 in
        ignore (Builder.emit b ~dst:a ~srcs:[ a; t ] Sp_machine.Opkind.Fadd)
      | None -> ());
      if sp.use_chan then Builder.send b 0 (pick ());
      (* stores: one always; optionally one creating a carried memory
         dependence (write at i+pad read back at i+pad-d next rounds) *)
      Builder.store_iv b ys i (next rng pad) (pick ());
      if sp.carried_store then Builder.store_iv b xs i pad (pick ())
      end);
  (match acc with
  | Some a -> Builder.store b ~off:0 xs a (* keep the accumulator live-out *)
  | None -> ());
  (xs, ys)

let init_arrays st (xs, ys) =
  Machine_state.init_farray st xs (fun i ->
      1.0 +. (0.01 *. float_of_int ((i * 7) mod 83)));
  Machine_state.init_farray st ys (fun i ->
      2.0 +. (0.02 *. float_of_int ((i * 5) mod 71)))

let chan_stream (sp : spec) =
  if sp.use_chan then
    Some
      (List.init (max 1 sp.trip) (fun i ->
           0.5 +. (0.125 *. float_of_int (i mod 17))))
  else None

(** Build a single-loop program from a spec. The loop body references
    arrays at small offsets from the induction variable (kept in
    bounds by array padding), mixes multiplies/adds/compares, and
    optionally contains an accumulator, a conditional and channel
    traffic. *)
let build (sp : spec) : Program.t * (Machine_state.t -> unit) * float list list =
  let b = Builder.create "gen" in
  let arrs = add_loop b ~suffix:"" sp in
  let p = Builder.finish b in
  let init st = init_arrays st arrs in
  let inputs = match chan_stream sp with Some s -> [ s ] | None -> [] in
  (p, init, inputs)

(** Build one program holding every spec's loop as independent
    top-level siblings (distinct arrays per loop) — the corpus shape
    the compile-throughput benchmark feeds to the parallel per-loop
    driver. Channel reads drain one shared stream in loop order. *)
let build_many (sps : spec list) :
    Program.t * (Machine_state.t -> unit) * float list list =
  let b = Builder.create "gen" in
  let arrs =
    List.mapi (fun i sp -> (sp, add_loop b ~suffix:(string_of_int i) sp)) sps
  in
  let p = Builder.finish b in
  let init st = List.iter (fun (_, a) -> init_arrays st a) arrs in
  let chunks = List.filter_map chan_stream sps in
  let inputs = if chunks = [] then [] else [ List.concat chunks ] in
  (p, init, inputs)

(** The central property: compile under [config], simulate, compare
    with the interpreter; also require a clean resource check. Returns
    [Ok ()] or a description of what broke. *)
let check_equivalence ?(config = Sp_core.Compile.default) (m : Sp_machine.Machine.t)
    (sp : spec) : (unit, string) result =
  let p, init, inputs = build sp in
  let r = Sp_core.Compile.program ~config m p in
  let oracle = Interp.run ~init ~inputs p in
  match Sp_vliw.Check.check_prog m r.Sp_core.Compile.code with
  | v :: _ -> Error (Fmt.str "resource violation: %a" Sp_vliw.Check.pp_violation v)
  | [] ->
    let sim = Sp_vliw.Sim.run ~init ~inputs m p r.Sp_core.Compile.code in
    if
      Machine_state.observably_equal oracle.Interp.state
        sim.Sp_vliw.Sim.state
    then Ok ()
    else Error "final state differs from the sequential interpreter"
