(** Semantic array-subscript descriptors for dependence analysis:

    {v  subscript = coef * iv + syms + off  v}

    where [iv] is the innermost loop's per-iteration counter copy,
    [syms] a set of loop-invariant registers and [off] a compile-time
    constant. Two accesses with the same shape differ by a constant and
    their iteration distance is exact; everything else is treated
    conservatively by {!Sp_core.Ddg}. *)

type t = {
  coef : int;              (** coefficient of the induction variable *)
  iv : Vreg.t option;      (** the induction variable, if any *)
  syms : int list;         (** sorted ids of invariant registers added in *)
  off : int;               (** constant part *)
}

val constant : int -> t
(** A loop-invariant constant subscript. *)

val of_iv : ?coef:int -> ?off:int -> Vreg.t -> t
(** [of_iv iv] is the affine subscript [coef*iv + off] (defaults:
    [coef = 1], [off = 0]). *)

val add_sym : t -> Vreg.t -> t
(** Add an invariant register to the symbolic part. *)

val add_off : t -> int -> t

val comparable : t -> t -> bool
(** Same shape (same induction variable, coefficient and symbolic
    part): the two subscripts differ by a constant only. *)

(** Result of an exact dependence-distance query. *)
type dist =
  | Never         (** provably never the same element *)
  | Exactly of int
      (** [from] in iteration [i] touches the element [to_] touches in
          iteration [i + d] *)
  | Unknown       (** not comparable: treat conservatively *)

val distance : from:t -> to_:t -> dist

val unknown : t option
(** [None] — the descriptor of an access with no analysis. *)

val pp : Format.formatter -> t -> unit
