lib/util/intmath.mli:
