(** Exact modulo schedulability at a fixed initiation interval [s],
    decided by conflict-directed backjumping with nogood learning over
    the finite space of issue-time residues modulo [s] (see the
    implementation header for the encoding and its equivalence
    argument). No external solver. *)

exception Out_of_fuel

val nogood_site : string
(** ["exact.nogood"] — the doctoring fault site. When armed, the k-th
    learning solve poisons its bank with unsound nogoods that cover a
    whole residue domain, silently flipping a feasible interval to
    [Infeasible]. Nothing in this module detects that (nogoods only
    prune); the detection story lives above: the campaign's
    [opt-diverge] oracle and the portfolio cross-check must catch the
    flipped verdict. *)

type verdict =
  | Feasible of int array
      (** least non-negative issue times of a valid schedule at [s] *)
  | Infeasible
      (** proof: the search covered the whole residue space *)
  | Out_of_budget  (** fuel ran out; feasibility at [s] undecided *)

(** Variable orders for the search (the proof-portfolio axes).
    Components are always decided topologically and contiguously; the
    order permutes members within their component only, so every order
    is complete and yields the same verdicts. *)
type var_order =
  | O_program  (** members in program order — the original traversal *)
  | O_most_constrained  (** smallest residue domain first *)
  | O_busiest  (** heaviest users of the hottest resource first *)

type config = {
  learn : bool;
      (** conflict analysis + nogood bank + backjumping; [false]
          reproduces the original chronological branch and bound *)
  order : var_order;
  seed : int;
      (** rotates each variable's residue probing order — distinct
          seeds give portfolio members distinct trajectories without
          breaking exhaustion proofs *)
}

val default_config : config
(** learning on, program order, seed 0. *)

type stats = {
  nodes : int;             (** candidates probed *)
  pruned_window : int;     (** prunes: emptied precedence windows *)
  pruned_resource : int;   (** prunes: reservation-table conflicts *)
  nogood_hits : int;       (** candidates rejected by the bank *)
  backjumps : int;         (** non-chronological backtracks *)
  learned : int;           (** nogoods recorded by this solve *)
  reused : int;            (** nogoods carried in at entry *)
}

type result = {
  verdict : verdict;
  spent : int;  (** fuel units consumed *)
  stats : stats;
}

val solve :
  ?fuel:int ->
  ?config:config ->
  ?bank:Nogood.t ->
  ?pin:(int * int) list ->
  Sp_machine.Machine.t ->
  Sp_core.Ddg.t ->
  scc:Sp_core.Scc.t ->
  spaths:Sp_core.Spath.t option array ->
  s:int ->
  result
(** [solve ?fuel m g ~scc ~spaths ~s] decides whether a modulo schedule
    of [g] on [m] exists at initiation interval [s]. [scc] and [spaths]
    come from {!Sp_core.Modsched.analyze} (the closures are used only
    for pruning, and only at intervals inside their validity range, so
    any [s >= 1] may be probed).

    [bank] is the caller-owned nogood bank: consulted before every
    probe, extended by conflict analysis, and reusable across calls at
    the {e same} interval — to reuse it at a different interval the
    caller must {!Nogood.carry} it first ({!Certify} does). Without a
    bank (or with [config.learn = false]) no learning happens.

    [pin] forces residues [(unit, residue)] and disables the rotation
    anchor — the replay hook for auditing learned nogoods: a solve
    pinned to a nogood's literals must not find a schedule.

    One unit of [fuel] is spent per candidate residue probed and per
    Bellman–Ford edge relaxation {e per sweep}; unlimited when
    omitted. Deterministic for fixed inputs and configuration. *)
