(** End-to-end compiler tests: every scheduled program must compute
    exactly what the sequential interpreter computes, across machines,
    configurations, trip counts and control structures. The qcheck
    properties drive randomly generated loop bodies through the full
    pipeline (see {!Gen}). *)

open Sp_ir
module C = Sp_core.Compile
module Opkind = Sp_machine.Opkind

let warp = Sp_machine.Machine.warp
let toy = Sp_machine.Machine.toy

let run_both ?(machine = warp) ?(config = C.default) ?(inputs = [])
    ?(init = fun _ -> ()) p =
  let r = C.program ~config machine p in
  let oracle = Interp.run ~init ~inputs p in
  let sim = Sp_vliw.Sim.run ~init ~inputs machine p r.C.code in
  let viols = Sp_vliw.Check.check_prog machine r.C.code in
  ( Machine_state.observably_equal oracle.Interp.state sim.Sp_vliw.Sim.state,
    viols, r, sim )

let assert_ok ?machine ?config ?inputs ?init name p =
  let sem, viols, _, _ = run_both ?machine ?config ?inputs ?init p in
  Alcotest.(check bool) (name ^ ": semantics") true sem;
  Alcotest.(check int) (name ^ ": resource violations") 0 (List.length viols)

(* ---- deterministic scenarios ---------------------------------------- *)

let vadd_program n =
  let b = Builder.create "vadd" in
  let a = Builder.farray b "a" (n + 8) in
  let k = Builder.fconst b 3.5 in
  Builder.for_ b (Region.Const n) (fun i ->
      let x = Builder.load_iv b a i 0 in
      Builder.store_iv b a i 0 (Builder.fadd b x k));
  (Builder.finish b, a)

let test_vadd_all_machines () =
  List.iter
    (fun machine ->
      let p, a = vadd_program 40 in
      let init st = Machine_state.init_farray st a (fun i -> float_of_int i) in
      assert_ok ~machine ~init machine.Sp_machine.Machine.name p)
    [ warp; toy; Sp_machine.Machine.serial; Sp_machine.Machine.warp_scaled ~width:2 ]

let test_trip_count_sweep () =
  (* every trip count exercises a different peel/kernel/epilog split *)
  List.iter
    (fun n ->
      let p, a = vadd_program n in
      let init st = Machine_state.init_farray st a (fun i -> float_of_int i) in
      assert_ok ~init (Printf.sprintf "trip %d" n) p)
    [ 0; 1; 2; 3; 4; 5; 7; 8; 11; 13; 16; 23; 40; 64; 100 ]

let test_runtime_trip_sweep () =
  List.iter
    (fun n ->
      let b = Builder.create "vadd" in
      let a = Builder.farray b "a" 128 in
      let k = Builder.fconst b 1.0 in
      let nreg = Builder.iconst b n in
      Builder.for_reg b nreg (fun i ->
          let x = Builder.load_iv b a i 0 in
          Builder.store_iv b a i 0 (Builder.fadd b x k));
      let p = Builder.finish b in
      assert_ok (Printf.sprintf "runtime trip %d" n) p)
    [ 0; 1; 3; 7; 16; 33; 77; 120 ]

let test_example_ii_and_speedup () =
  (* the paper's Section 2 example on the toy machine: II = 1 *)
  let p, a = vadd_program 60 in
  let init st = Machine_state.init_farray st a (fun i -> float_of_int i) in
  let _, _, r, sim = run_both ~machine:toy ~init p in
  (match r.C.loops with
  | [ lr ] ->
    Alcotest.(check (option int)) "II = 1" (Some 1) lr.C.ii;
    Alcotest.(check int) "lower bound 1" 1 lr.C.mii
  | _ -> Alcotest.fail "one loop expected");
  let _, _, _, sim0 = run_both ~machine:toy ~config:C.local_only ~init p in
  let speedup =
    float_of_int sim0.Sp_vliw.Sim.cycles /. float_of_int sim.Sp_vliw.Sim.cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "speed-up %.2f near the paper's 4x" speedup)
    true
    (speedup > 3.5)

let test_conditional_loop () =
  let src =
    {|program c;
var x, y : array [0..99] of float;
begin
  for k := 0 to 99 do begin
    if x[k] > 1.5 then y[k] := x[k] * 2.0;
    else y[k] := x[k] * 0.5;
  end
end.|}
  in
  let p = Sp_lang.Lower.compile_source src in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  assert_ok ~init "conditional loop" p;
  (* and it pipelines *)
  let r = C.program warp p in
  Alcotest.(check bool) "pipelined" true
    (List.exists (fun lr -> lr.C.status = C.Pipelined) r.C.loops)

let test_nested_conditionals () =
  let src =
    {|program c;
var x : array [0..63] of float;
begin
  for k := 0 to 63 do begin
    if x[k] > 1.5 then begin
      if x[k] > 1.8 then x[k] := 1.8;
      else x[k] := x[k] * 0.9;
    end
    else x[k] := x[k] + 0.1;
  end
end.|}
  in
  let p = Sp_lang.Lower.compile_source src in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  assert_ok ~init "nested conditionals" p

let test_loop_in_conditional () =
  (* the hough structure that exposed the dynamic-expansion hazard *)
  let src =
    {|program c;
var p : array [0..63] of float;
    acc : array [0..63] of float;
    v : float;
begin
  for j := 0 to 15 do begin
    v := p[j];
    if v > 1.2 then begin
      for t := 0 to 3 do
        acc[t] := acc[t] + v;
    end
    else v := 0.0;
  end
end.|}
  in
  let p = Sp_lang.Lower.compile_source src in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  assert_ok ~init "loop nested in conditional" p

let test_adjacent_loops () =
  let src =
    {|program c;
var x, y : array [0..63] of float;
begin
  for k := 0 to 63 do x[k] := x[k] * 2.0;
  for k := 0 to 63 do y[k] := x[k] + 1.0;
  for k := 0 to 31 do x[k] := y[k] - x[k];
end.|}
  in
  let p = Sp_lang.Lower.compile_source src in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  assert_ok ~init "adjacent loops" p

let test_triple_nest () =
  let src =
    {|program c;
var a : array [0..4, 0..4] of float;
    b : array [0..4, 0..4] of float;
    c : array [0..4, 0..4] of float;
begin
  for k := 0 to 4 do
    for i := 0 to 4 do
      for j := 0 to 4 do
        c[i,j] := c[i,j] + a[i,k] * b[k,j];
end.|}
  in
  let p = Sp_lang.Lower.compile_source src in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  assert_ok ~init "triple nest" p

let test_config_matrix () =
  let p = Sp_lang.Lower.compile_source
      {|program c;
var x, y : array [0..70] of float; s : float;
begin
  s := 0.0;
  for k := 0 to 63 do begin
    s := s + x[k] * y[k];
    y[k] := s;
  end
end.|}
  in
  let init st = Sp_kernels.Kernel.init_all_arrays st p in
  List.iter
    (fun (name, config) -> assert_ok ~config ~init name p)
    [
      ("default", C.default);
      ("local", C.local_only);
      ("mve-off", { C.default with C.mve_mode = Sp_core.Mve.Off });
      ("mve-lcm", { C.default with C.mve_mode = Sp_core.Mve.Lcm });
      ("binary", { C.default with C.search = Sp_core.Modsched.Binary });
      ("if-exclusive", { C.default with C.if_exclusive = true });
      ("no-outer", { C.default with C.pipeline_outer = false });
      ("threshold-0", { C.default with C.threshold = 0 });
    ]

let test_code_size_reasonable () =
  (* Section 2.4: pipelined code within a small factor of the loop *)
  let p, _ = vadd_program 64 in
  let r = C.program warp p in
  let r0 = C.program ~config:C.local_only warp p in
  let ratio =
    float_of_int r.C.code_size /. float_of_int (max 1 r0.C.code_size)
  in
  Alcotest.(check bool)
    (Printf.sprintf "code growth %.1fx bounded" ratio)
    true (ratio < 8.0)

let test_loop_reports () =
  let p, _ = vadd_program 64 in
  let r = C.program warp p in
  match r.C.loops with
  | [ lr ] ->
    Alcotest.(check bool) "pipelined" true (lr.C.status = C.Pipelined);
    Alcotest.(check bool) "ii >= mii" true
      (match lr.C.ii with Some s -> s >= lr.C.mii | None -> false);
    Alcotest.(check bool) "seq_len > ii" true
      (match lr.C.ii with Some s -> lr.C.seq_len > s | None -> false);
    Alcotest.(check bool) "efficiency in (0,1]" true
      (C.efficiency lr > 0.0 && C.efficiency lr <= 1.0)
  | _ -> Alcotest.fail "one loop"

let test_runtime_seam () =
  (* regression: the run-time pass counter must be preset before the
     prolog — an extra instruction at the prolog->kernel seam shifts
     every in-flight prolog value by a cycle (caught by the oracle on
     exactly this program) *)
  List.iter
    (fun n ->
      let src =
        Printf.sprintf
          {|program s;
var x, y : array [0..255] of float; n, k : int;
begin n := %d; for k := 0 to n do y[k] := 2.5 * x[k] + y[k]; end.|}
          n
      in
      let p = Sp_lang.Lower.compile_source src in
      let init st = Sp_kernels.Kernel.init_all_arrays st p in
      assert_ok ~init (Printf.sprintf "runtime saxpy n=%d" n) p)
    [ 5; 13; 100; 200 ]

let test_dot_export () =
  let p = Sp_lang.Lower.compile_source
      {|program d;
var x : array [0..31] of float;
begin for i := 0 to 31 do x[i] := x[i] + 1.0; end.|}
  in
  match C.innermost_ddgs warp p with
  | [ (_, g) ] ->
    let s = Sp_core.Dot.to_string g in
    let contains needle =
      let n = String.length needle and h = String.length s in
      let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "digraph header" true (contains "digraph");
    Alcotest.(check bool) "has nodes" true (contains "n0");
    Alcotest.(check bool) "has edges" true (contains "->")
  | _ -> Alcotest.fail "expected one innermost loop"

let test_profit_margin () =
  (* a marginal loop: pipelining declined at the paper's margin,
     accepted when the margin is disabled *)
  let k = Sp_kernels.Livermore.k20_discrete_ordinates in
  let p = Sp_kernels.Kernel.program k in
  let strict = C.program warp p in
  let lax = C.program ~config:{ C.default with C.profit_margin = 1.0 } warp p in
  let pipelined r =
    List.exists (fun (lr : C.loop_report) -> lr.C.status = C.Pipelined)
      r.C.loops
  in
  Alcotest.(check bool) "declined at the paper's margin" false
    (pipelined strict);
  Alcotest.(check bool) "accepted without a margin" true (pipelined lax)

(* ---- the central properties ----------------------------------------- *)

let prop_equivalence_default =
  QCheck2.Test.make ~name:"random programs: pipelined = interpreter"
    ~count:60 ~print:(Fmt.str "%a" Gen.pp_spec) Gen.spec_gen (fun sp ->
      match Gen.check_equivalence warp sp with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_equivalence_toy =
  QCheck2.Test.make ~name:"random programs on the toy machine" ~count:30
    ~print:(Fmt.str "%a" Gen.pp_spec) Gen.spec_gen (fun sp ->
      match Gen.check_equivalence toy sp with
      | Ok () -> true
      | Error e -> QCheck2.Test.fail_report e)

let prop_equivalence_config =
  QCheck2.Test.make ~name:"random programs under ablation configs"
    ~count:30 ~print:(Fmt.str "%a" Gen.pp_spec) Gen.spec_gen (fun sp ->
      List.for_all
        (fun config ->
          match Gen.check_equivalence ~config warp sp with
          | Ok () -> true
          | Error e -> QCheck2.Test.fail_report e)
        [
          C.local_only;
          { C.default with C.mve_mode = Sp_core.Mve.Lcm };
          { C.default with C.mve_mode = Sp_core.Mve.Off };
          { C.default with C.if_exclusive = true };
        ])

(* ---- parallel compilation determinism ------------------------------- *)

(** Everything the compiler externalizes for a program, as one
    comparable value: emitted code, per-loop reports, and the explain
    log. [build] must construct a {e fresh} program per call —
    compiling draws register and op ids from the program's supplies. *)
let compile_fingerprint ~jobs (build : unit -> Program.t) =
  let p = build () in
  Sp_obs.Explain.enable ();
  (* the log is process-global and [disable] keeps it; clear so later
     suites observe the empty-when-disabled contract *)
  Fun.protect ~finally:(fun () ->
      Sp_obs.Explain.disable ();
      Sp_obs.Explain.clear ())
  @@ fun () ->
  let r = C.program ~config:{ C.default with C.jobs } warp p in
  ( Fmt.str "%a" Sp_vliw.Prog.pp r.C.code,
    r.C.code_size,
    List.map
      (fun (lr : C.loop_report) ->
        ( lr.C.l_id,
          lr.C.ii,
          lr.C.mii,
          C.status_to_string lr.C.status,
          lr.C.seq_len,
          lr.C.unroll ))
      r.C.loops,
    Sp_obs.Explain.report () )

let prop_parallel_determinism =
  QCheck2.Test.make
    ~name:"compile: jobs=8 byte-identical to jobs=1 (random programs)"
    ~count:40 ~print:(fun (sp, extra) ->
      Fmt.str "%a + %d sibling(s)" Gen.pp_spec sp extra)
    QCheck2.Gen.(pair Gen.spec_gen (int_range 0 3))
    (fun (sp, extra) ->
      (* several sibling innermost loops exercise the batched parallel
         analysis path; varied seeds give each sibling its own shape *)
      let specs =
        List.init (1 + extra) (fun i -> { sp with Gen.seed = sp.Gen.seed + i })
      in
      let build () =
        let p, _, _ = Gen.build_many specs in
        p
      in
      compile_fingerprint ~jobs:1 build = compile_fingerprint ~jobs:8 build)

let test_parallel_livermore () =
  List.iter
    (fun k ->
      let build () = Sp_kernels.Kernel.program k in
      Alcotest.(check bool)
        (k.Sp_kernels.Kernel.name ^ ": jobs=8 = jobs=1")
        true
        (compile_fingerprint ~jobs:1 build = compile_fingerprint ~jobs:8 build))
    Sp_kernels.Livermore.all

let suite =
  let qt = QCheck_alcotest.to_alcotest in
  [
    ("vadd on all machines", `Quick, test_vadd_all_machines);
    ("trip count sweep", `Quick, test_trip_count_sweep);
    ("runtime trip sweep", `Quick, test_runtime_trip_sweep);
    ("paper example: II and speed-up", `Quick, test_example_ii_and_speedup);
    ("conditional loop", `Quick, test_conditional_loop);
    ("nested conditionals", `Quick, test_nested_conditionals);
    ("loop nested in conditional", `Quick, test_loop_in_conditional);
    ("adjacent loops", `Quick, test_adjacent_loops);
    ("triple nest", `Quick, test_triple_nest);
    ("config matrix", `Quick, test_config_matrix);
    ("code size bounded", `Quick, test_code_size_reasonable);
    ("loop reports", `Quick, test_loop_reports);
    ("runtime prolog/kernel seam", `Quick, test_runtime_seam);
    ("dot export", `Quick, test_dot_export);
    ("profit margin (LFK20)", `Quick, test_profit_margin);
    ("parallel determinism (Livermore)", `Quick, test_parallel_livermore);
    qt prop_equivalence_default;
    qt prop_equivalence_toy;
    qt prop_equivalence_config;
    qt prop_parallel_determinism;
  ]
