(** Static statistics over assembled programs: instruction-word
    occupancy (how full the long instructions are — the "compaction"
    the paper's techniques exist to achieve) and per-resource usage. *)

open Sp_machine

type t = {
  words : int;              (** instruction count *)
  ops : int;                (** micro-operations *)
  empty_words : int;
  max_ops_per_word : int;
  mean_ops_per_word : float;
  resource_use : (string * int) list;
      (** total issue-slot uses per resource, by name *)
}

let compute (m : Machine.t) (p : Prog.t) : t =
  let nres = Machine.num_resources m in
  let per_res = Array.make nres 0 in
  let ops = ref 0 and empty = ref 0 and mx = ref 0 in
  Array.iter
    (fun (inst : Inst.t) ->
      let k = List.length inst.Inst.ops in
      ops := !ops + k;
      if k = 0 then incr empty;
      if k > !mx then mx := k;
      List.iter
        (fun (op : Sp_ir.Op.t) ->
          List.iter
            (fun (_, rid) -> per_res.(rid) <- per_res.(rid) + 1)
            (Machine.reservation m op.Sp_ir.Op.kind))
        inst.Inst.ops)
    p.Prog.code;
  let words = Prog.length p in
  {
    words;
    ops = !ops;
    empty_words = !empty;
    max_ops_per_word = !mx;
    mean_ops_per_word =
      (if words = 0 then 0.0 else float_of_int !ops /. float_of_int words);
    resource_use =
      List.filter
        (fun (_, n) -> n > 0)
        (List.init nres (fun rid ->
             ((Machine.resource m rid).Machine.rname, per_res.(rid))));
  }

(** Dynamic per-resource busy fraction of a simulated execution:
    [uses / (cycles * count)] for each resource the machine declares,
    from {!Sim.result}'s [res_busy]. Resources never used are reported
    at 0 so a profile shows the idle units too. *)
let utilization (m : Machine.t) ~cycles ~(res_busy : int array) :
    (string * float) list =
  if cycles <= 0 then []
  else
    List.init (Machine.num_resources m) (fun rid ->
        let r = Machine.resource m rid in
        ( r.Machine.rname,
          float_of_int res_busy.(rid) /. float_of_int (cycles * r.Machine.count)
        ))

let pp ppf t =
  Fmt.pf ppf
    "%d words, %d operations (%.2f ops/word, %d empty words, peak %d)@."
    t.words t.ops t.mean_ops_per_word t.empty_words t.max_ops_per_word;
  Fmt.pf ppf "resource uses:";
  List.iter (fun (n, c) -> Fmt.pf ppf " %s=%d" n c) t.resource_use;
  Fmt.pf ppf "@."
