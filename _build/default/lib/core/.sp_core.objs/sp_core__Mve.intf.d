lib/core/mve.mli: Ddg Modsched Sp_ir Sp_machine Sunit Vreg
