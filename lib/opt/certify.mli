(** Optimality certification of heuristic modulo schedules: an upward
    scan of candidate intervals, each decided exactly by
    {!Exact.solve}, measuring the paper's Section 4.1 near-optimality
    claim per loop. The scan is {e incremental} — a learned-nogood
    bank is carried (re-validated) from interval to interval — and can
    run a deterministic {e proof portfolio} of solver configurations
    per interval. *)

type certificate =
  | Optimal
      (** every interval below the heuristic's is proved infeasible *)
  | Improved of Sp_core.Modsched.schedule
      (** a validated schedule at the smallest feasible interval, which
          is strictly below the heuristic's *)
  | Unknown of { proven_below : int }
      (** fuel ran out; intervals [< proven_below] are infeasible *)

type outcome = {
  cert : certificate;
  spent : int;      (** total fuel across all intervals probed *)
  intervals : int;  (** number of intervals decided (or attempted) *)
}

val default_fuel : int
(** Budget used when none is given: {m 2\times10^6} fuel units. *)

val run :
  ?fuel:int ->
  ?analysis:Sp_core.Modsched.analysis ->
  ?learn:bool ->
  ?portfolio:int ->
  Sp_machine.Machine.t ->
  Sp_core.Ddg.t ->
  mii:int ->
  ii:int ->
  outcome
(** [run m g ~mii ~ii] certifies a heuristic schedule at interval [ii]
    against the lower bound [mii], scanning [max mii rec_mii .. ii - 1]
    upward (first feasible interval is the optimum — exact feasibility
    is not monotonic, so no binary search).

    [learn] (default true) enables conflict learning; each member's
    nogood bank is {!Nogood.carry}'d across the scan, so later
    intervals start from the survivors of earlier proofs.

    [portfolio] (default 1) decides each interval with that many
    solver configurations — distinct variable orders and seeds — on a
    {!Sp_util.Pool}. Every member runs to completion; the
    lowest-indexed decisive member is committed and all decisive
    members must agree on feasibility (a disagreement raises — it
    would mean a solver soundness bug). The outcome is a pure function
    of the member results, hence byte-identical at any pool width;
    when a fault injection is armed the members run sequentially so
    global hit counters stay deterministic.

    Any schedule returned in {!Improved} has been re-verified against
    the raw dependence, resource, and wrap constraints. Deterministic
    under a fixed budget and configuration. *)

val hook :
  ?fuel:int -> ?learn:bool -> ?portfolio:int -> unit ->
  Sp_core.Compile.certifier
(** Package {!run} as a {!Sp_core.Compile.certifier}, so improved
    schedules flow through the ordinary modulo variable expansion,
    emission, and validation path of the compiler. *)
