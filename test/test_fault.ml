(** Graceful-degradation tests.

    The contract under test: no matter which internal pass fails — a
    deterministically injected fault at any registered site, or an
    exhausted placement budget — compilation terminates normally, the
    affected loop reverts to its serial schedule (reported as a
    degraded status), and the emitted program still validates and
    computes exactly what the interpreter computes. *)

module C = Sp_core.Compile
module Fault = Sp_util.Fault
module V = Sp_vliw.Validate
module Machine = Sp_machine.Machine

(** A spec that definitely pipelines on warp, so every fault site is
    actually reached. *)
let pipeline_spec =
  {
    Gen.seed = 7;
    trip = 40;
    n_stmts = 3;
    use_if = false;
    use_accum = false;
    use_chan = false;
    carried_store = false;
    empty_body = false;
    maxlat = false;
  }

(** Simulate [code] and compare final observable state against the
    sequential interpreter. *)
let equal_run m (p, init, inputs) code =
  let sim = Sp_vliw.Sim.run ~inputs ~init m p code in
  let oracle = Sp_ir.Interp.run ~inputs ~init p in
  Sp_ir.Machine_state.observably_equal oracle.Sp_ir.Interp.state
    sim.Sp_vliw.Sim.state

let expected_sites = [ "emit.kernel"; "modsched.place"; "mve.assign" ]

let test_sites_registered () =
  let sites = Fault.sites () in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " registered") true (List.mem s sites))
    expected_sites

let test_site_degrades site () =
  Fun.protect ~finally:Fault.disarm (fun () ->
      Fault.arm ~site ~after:1;
      let ((p, _, _) as built) = Gen.build pipeline_spec in
      let r = C.program Machine.warp p in
      Alcotest.(check bool) (site ^ " fired") true (Fault.fired () = Some site);
      Alcotest.(check bool)
        (Fmt.str "a loop degrades under %s" site)
        true
        (List.exists (fun lr -> C.is_degraded lr.C.status) r.C.loops);
      Alcotest.(check bool) "degraded code validates" true
        (V.ok (V.all Machine.warp r.C.code));
      Alcotest.(check bool) "degraded code matches the interpreter" true
        (equal_run Machine.warp built r.C.code));
  (* the fault is transient: disarmed, the same program pipelines *)
  match Gen.check_equivalence Machine.warp pipeline_spec with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("after disarm: " ^ e)

let test_fuel_exhausted () =
  let config = { C.default with C.fuel = Some 1 } in
  let ((p, _, _) as built) = Gen.build pipeline_spec in
  let r = C.program ~config Machine.warp p in
  Alcotest.(check bool) "interval search ran out of fuel" true
    (List.exists (fun lr -> lr.C.status = C.Budget_exhausted) r.C.loops);
  Alcotest.(check bool) "serial fallback validates" true
    (V.ok (V.all Machine.warp r.C.code));
  Alcotest.(check bool) "serial fallback matches the interpreter" true
    (equal_run Machine.warp built r.C.code)

let test_fuel_ample () =
  let config = { C.default with C.fuel = Some 1_000_000 } in
  let p, _, _ = Gen.build pipeline_spec in
  let r = C.program ~config Machine.warp p in
  Alcotest.(check bool) "ample fuel still pipelines" true
    (List.exists (fun lr -> lr.C.status = C.Pipelined) r.C.loops)

(* ---- property: no armed fault ever escapes -------------------------- *)

let prop_fault_resilient =
  let gen =
    QCheck2.Gen.(triple Gen.spec_gen (oneofl expected_sites) (int_range 1 5))
  in
  QCheck2.Test.make ~count:100
    ~name:"armed faults never escape: compile, validate, match interpreter"
    ~print:(fun (sp, site, k) -> Fmt.str "%a %s@%d" Gen.pp_spec sp site k)
    gen
    (fun (sp, site, k) ->
      Fun.protect ~finally:Fault.disarm (fun () ->
          Fault.arm ~site ~after:k;
          let ((p, _, _) as built) = Gen.build sp in
          let r = C.program Machine.warp p in
          if not (V.ok (V.all Machine.warp r.C.code)) then
            QCheck2.Test.fail_reportf "validation failed under %s@%d" site k;
          if not (equal_run Machine.warp built r.C.code) then
            QCheck2.Test.fail_reportf "state mismatch under %s@%d" site k;
          true))

let suite =
  [ ("all expected sites registered", `Quick, test_sites_registered) ]
  @ List.map
      (fun site ->
        ( Fmt.str "injected %s degrades gracefully" site,
          `Quick,
          test_site_degrades site ))
      expected_sites
  @ [
      ("fuel 1 exhausts the interval search", `Quick, test_fuel_exhausted);
      ("ample fuel still pipelines", `Quick, test_fuel_ample);
      QCheck_alcotest.to_alcotest prop_fault_resilient;
    ]
