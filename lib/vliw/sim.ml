(** Cycle-accurate VLIW simulator.

    Timing contract (shared with the scheduler's dependence model, see
    DESIGN.md Section 6):

    - one instruction issues per cycle; every micro-operation in it
      reads its source registers at issue;
    - a result with latency [l] becomes readable exactly [l] cycles
      after issue (in-flight values are invisible before that);
    - stores become visible to loads on the {e following} cycle; a load
      issued in the same instruction as a store to the same address
      reads the old value;
    - control (jumps, hardware loop counters) takes effect on the next
      cycle, with no delay slots;
    - channel receives dequeue at issue, sends enqueue at issue.

    The simulator deliberately performs no resource checking — that is
    {!Check.check_prog}'s job — but it does verify the register
    write-port discipline: two in-flight writes landing on the same
    register in the same cycle indicate a scheduling bug and raise
    {!Write_conflict}. *)

open Sp_ir

exception Write_conflict of string
exception Cycle_limit of int

type result = {
  state : Machine_state.t;
  cycles : int;
  flops : int;
  dyn_ops : int;
  res_busy : int array;
      (** issue-slot uses per resource id, accumulated over the whole
          execution from each issued operation's reservation *)
}

type pending = { at : int; dst : Vreg.t; v : Semantics.value }

let m_cycles = Sp_obs.Metrics.counter "sim.cycles"
let m_dyn = Sp_obs.Metrics.counter "sim.dyn_ops"
let m_runs = Sp_obs.Metrics.counter "sim.runs"

let run ?(channels = 2) ?(inputs = []) ?(max_cycles = 100_000_000)
    ?(ctrs = 16) ?(init = fun (_ : Machine_state.t) -> ())
    (m : Sp_machine.Machine.t) (p : Program.t) (code : Prog.t) : result =
  let st = Machine_state.create ~channels p in
  List.iteri (fun ch xs -> Machine_state.set_input st ch xs) inputs;
  init st;
  let counters = Array.make ctrs 0 in
  let flops = ref 0 and dyn = ref 0 in
  let res_busy = Array.make (Sp_machine.Machine.num_resources m) 0 in
  (* pending register writes, keyed by due cycle *)
  let pend : (int, pending list) Hashtbl.t = Hashtbl.create 64 in
  let add_pending at dst v =
    let l = Option.value ~default:[] (Hashtbl.find_opt pend at) in
    (match List.find_opt (fun p -> Vreg.equal p.dst dst) l with
    | Some _ ->
      raise
        (Write_conflict
           (Printf.sprintf "two writes to %s due at cycle %d"
              (Vreg.to_string dst) at))
    | None -> ());
    Hashtbl.replace pend at ({ at; dst; v } :: l)
  in
  let apply_pending t =
    match Hashtbl.find_opt pend t with
    | None -> ()
    | Some l ->
      List.iter (fun { dst; v; _ } -> Machine_state.write st dst v) l;
      Hashtbl.remove pend t
  in
  (* store buffer: stores issued this cycle apply at end of cycle *)
  let store_buf : (Memseg.t * int * Semantics.value) list ref = ref [] in
  let ctx =
    {
      Semantics.rd = Machine_state.read st;
      ld = Machine_state.load st;
      st = (fun s i v -> store_buf := (s, i, v) :: !store_buf);
      recv = Machine_state.recv st;
      send = Machine_state.send st;
    }
  in
  let pc = ref 0 and cycle = ref 0 and halted = ref false in
  while not !halted do
    if !cycle > max_cycles then raise (Cycle_limit !cycle);
    apply_pending !cycle;
    if !pc < 0 || !pc >= Prog.length code then halted := true
    else begin
      let inst = code.Prog.code.(!pc) in
      (* issue all micro-operations: reads happen against the current
         register file; writes are queued for [cycle + latency] *)
      List.iter
        (fun (op : Op.t) ->
          incr dyn;
          if Op.is_flop op then incr flops;
          List.iter
            (fun (_, rid) -> res_busy.(rid) <- res_busy.(rid) + 1)
            (Sp_machine.Machine.reservation m op.Op.kind);
          let v = Semantics.exec ctx op in
          match (v, op.dst) with
          | Some v, Some d ->
            let lat = max 1 (Sp_machine.Machine.latency m op.kind) in
            add_pending (!cycle + lat) d v
          | None, None -> ()
          | Some _, None -> ()
          | None, Some _ ->
            raise (Semantics.Type_error "dst op produced no value"))
        inst.Inst.ops;
      (* stores commit at end of cycle *)
      List.iter
        (fun (s, i, v) -> Machine_state.store st s i v)
        (List.rev !store_buf);
      store_buf := [];
      (* control *)
      (match inst.Inst.ctl with
      | Inst.Next -> incr pc
      | Inst.Halt -> halted := true
      | Inst.Jump l -> pc := l
      | Inst.CJump { cond; if_zero; target } ->
        let c = Semantics.as_i (Machine_state.read st cond) in
        let taken = if if_zero then c = 0 else c <> 0 in
        if taken then pc := target else incr pc
      | Inst.CtrSet { ctr; value } ->
        counters.(ctr) <- value;
        incr pc
      | Inst.CtrSetR { ctr; reg } ->
        counters.(ctr) <- Semantics.as_i (Machine_state.read st reg);
        incr pc
      | Inst.CtrLoop { ctr; target } ->
        counters.(ctr) <- counters.(ctr) - 1;
        if counters.(ctr) > 0 then pc := target else incr pc
      | Inst.CtrJumpLt { ctr; bound; target } ->
        if counters.(ctr) < bound then pc := target else incr pc);
      incr cycle
    end
  done;
  (* drain remaining in-flight writes so the final state is complete *)
  let horizon = ref !cycle in
  Hashtbl.iter (fun t _ -> if t > !horizon then horizon := t) pend;
  for t = !cycle to !horizon do
    apply_pending t
  done;
  Sp_obs.Metrics.incr m_runs;
  Sp_obs.Metrics.incr ~by:!cycle m_cycles;
  Sp_obs.Metrics.incr ~by:!dyn m_dyn;
  Sp_obs.Trace.instant "sim.run"
    ~args:(fun () ->
      [
        ("cycles", Sp_obs.Trace.I !cycle);
        ("dyn_ops", Sp_obs.Trace.I !dyn);
        ("flops", Sp_obs.Trace.I !flops);
      ]);
  { state = st; cycles = !cycle; flops = !flops; dyn_ops = !dyn; res_busy }

(** MFLOPS achieved by a simulation on machine [m]. *)
let mflops (m : Sp_machine.Machine.t) (r : result) =
  Sp_machine.Machine.mflops m ~flops:r.flops ~cycles:r.cycles
