lib/lang/ast.ml: Fmt Token
