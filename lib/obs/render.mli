(** Visual schedule artifacts: per-loop kernel Gantt (operation ×
    cycle, colored by pipeline stage), modulo-reservation-table
    occupancy grid (functional unit × residue), and
    modulo-variable-expansion register-lifetime diagrams — in ASCII for
    the terminal and as self-contained HTML with inline SVG (no
    external scripts, stylesheets or fonts, so a single file is
    archivable and diffable).

    Views are flat records built by the compiler driver
    ([Sp_core.Compile]) from the committed schedule; building them is
    gated on {!enabled} so the default compile path pays one branch. *)

type op_row = {
  op_id : int;
  op_desc : string;
  op_time : int;   (** issue cycle in the flat schedule *)
  op_len : int;
  op_stage : int;  (** [op_time / II] — the pipeline stage *)
}

type res_row = {
  rr_name : string;
  rr_limit : int;          (** units of this resource in the machine *)
  rr_counts : int array;   (** demand per residue, length = II *)
}

type life_row = { lf_reg : string; lf_birth : int; lf_death : int; lf_q : int }

type loop_view = {
  v_loop : int;
  v_ii : int;
  v_span : int;
  v_sc : int;
  v_unroll : int;
  v_ops : op_row list;
  v_mrt : res_row list;
  v_lifetimes : life_row list;
}

val enabled : unit -> bool
(** When false (the default) the compiler skips building views. *)

val enable : unit -> unit
val disable : unit -> unit

val pp_ascii : Format.formatter -> loop_view -> unit
val to_ascii : loop_view -> string

val to_html : title:string -> loop_view list -> string
(** One self-contained HTML document for a program's pipelined loops.
    Deterministic: a pure function of the views. *)
