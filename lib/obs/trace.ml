(** Monotonic-clock spans and instants; see the interface for the
    zero-cost-when-disabled contract. *)

type value = I of int | F of float | S of string | B of bool

type event =
  | Span of {
      name : string;
      ts : int64;
      dur : int64;
      args : (string * value) list;
    }
  | Instant of { name : string; ts : int64; args : (string * value) list }

let on = ref false
let buf : event list ref = ref []   (* newest first *)
let t0 = ref 0L

(* Domain-local redirection: a parallel compilation task runs inside
   {!collect}, which points this cell at a private buffer so worker
   domains never touch the shared [buf]. The driver {!inject}s each
   task's events back in deterministic loop order. Cross-domain
   visibility of [on]/[t0] is provided by the pool's queue mutex
   ([Sp_util.Pool]): both are written before tasks are submitted. *)
let local_buf : event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let push e =
  match !(Domain.DLS.get local_buf) with
  | Some b -> b := e :: !b
  | None -> buf := e :: !buf

let enabled () = !on

let enable () =
  buf := [];
  t0 := Monotonic_clock.now ();
  on := true

let disable () = on := false

let now_rel () = Int64.sub (Monotonic_clock.now ()) !t0

let no_args () = []

let instant ?(args = no_args) name =
  if !on then push (Instant { name; ts = now_rel (); args = args () })

let span ?(args = no_args) name f =
  if not !on then f ()
  else begin
    let ts = now_rel () in
    match f () with
    | v ->
      push (Span { name; ts; dur = Int64.sub (now_rel ()) ts; args = args () });
      v
    | exception e ->
      push
        (Span
           {
             name;
             ts;
             dur = Int64.sub (now_rel ()) ts;
             args = ("error", S (Printexc.to_string e)) :: args ();
           });
      raise e
  end

let collect f =
  let cell = Domain.DLS.get local_buf in
  let prev = !cell in
  let b = ref [] in
  cell := Some b;
  Fun.protect
    ~finally:(fun () -> cell := prev)
    (fun () ->
      let v = f () in
      (v, List.rev !b))

let inject evs = List.iter push evs

(* Force tracing on and capture this domain's events regardless of the
   global switch: the request-scoped path of the compile service. The
   shared buffer and [t0] are untouched — only span orderings and
   durations matter to a request capture, so a stale clock base is
   harmless — and both switches are restored even when [f] escapes,
   with the events recorded up to the escape kept (an error response
   still carries its partial span tree). *)
let with_recording f =
  let was = !on in
  let cell = Domain.DLS.get local_buf in
  let prev = !cell in
  let b = ref [] in
  cell := Some b;
  on := true;
  let restore () =
    on := was;
    cell := prev
  in
  match f () with
  | v ->
    restore ();
    (Result.Ok v, List.rev !b)
  | exception e ->
    restore ();
    (Result.Error e, List.rev !b)

let ts_of = function Span { ts; _ } -> ts | Instant { ts; _ } -> ts

(* ---- span trees --------------------------------------------------- *)

type tree =
  | Node of {
      t_name : string;
      t_dur : int64;
      t_args : (string * value) list;
      t_children : tree list;
    }

(* Events arrive in completion order (the push order {!collect} and
   {!with_recording} preserve): a span is pushed when it finishes, so
   everything it encloses was pushed before it. Reconstruction keeps a
   newest-first list of pending roots; a finishing span adopts the
   pending roots its interval contains — they are necessarily a prefix
   of the list — and un-reversing that prefix restores oldest-first
   children. An instant is a zero-duration leaf. *)
let tree_of_events evs =
  let rec adopt s_ts s_end pending kids =
    match pending with
    | (n, n_ts, n_end) :: rest when n_ts >= s_ts && n_end <= s_end ->
      adopt s_ts s_end rest (n :: kids)
    | _ -> (kids, pending)
  in
  let pending =
    List.fold_left
      (fun pending e ->
        match e with
        | Instant { name; ts; args } ->
          ( Node { t_name = name; t_dur = 0L; t_args = args; t_children = [] },
            ts, ts )
          :: pending
        | Span { name; ts; dur; args } ->
          let s_end = Int64.add ts dur in
          let kids, pending = adopt ts s_end pending [] in
          ( Node { t_name = name; t_dur = dur; t_args = args; t_children = kids },
            ts, s_end )
          :: pending)
      [] evs
  in
  List.rev_map (fun (n, _, _) -> n) pending

let rec skeleton_json (Node n) : Json.t =
  if n.t_children = [] then Json.Str n.t_name
  else
    Json.Obj
      [
        ("name", Json.Str n.t_name);
        ("children", Json.List (List.map skeleton_json n.t_children));
      ]

let skeletons_json ts = Json.List (List.map skeleton_json ts)

let events () =
  List.stable_sort (fun a b -> Int64.compare (ts_of a) (ts_of b)) (List.rev !buf)

(* ---- emission ----------------------------------------------------- *)

let json_of_value = function
  | I i -> Json.Int i
  | F x -> Json.Float x
  | S s -> Json.Str s
  | B b -> Json.Bool b

let us ns = Int64.to_float ns /. 1_000.0

let rec tree_json (Node n) : Json.t =
  Json.Obj
    ([ ("name", Json.Str n.t_name); ("dur_us", Json.Float (us n.t_dur)) ]
    @ (if n.t_args = [] then []
       else
         [
           ( "args",
             Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) n.t_args)
           );
         ])
    @
    if n.t_children = [] then []
    else [ ("children", Json.List (List.map tree_json n.t_children)) ])

let trees_json ts = Json.List (List.map tree_json ts)

let json_of_event e : Json.t =
  let common name ph ts args rest =
    Json.Obj
      ([
         ("name", Json.Str name);
         ("cat", Json.Str "softpipe");
         ("ph", Json.Str ph);
         ("ts", Json.Float (us ts));
       ]
      @ rest
      @ [
          ("pid", Json.Int 1);
          ("tid", Json.Int 1);
          ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) args));
        ])
  in
  match e with
  | Span { name; ts; dur; args } ->
    common name "X" ts args [ ("dur", Json.Float (us dur)) ]
  | Instant { name; ts; args } ->
    common name "i" ts args [ ("s", Json.Str "t") ]

let to_chrome () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome oc = Json.to_channel oc (to_chrome ())

let write_jsonl oc =
  List.iter (fun e -> Json.to_channel oc (json_of_event e)) (events ())
