(** Architectural state shared by the reference interpreter and the
    VLIW simulator: register file, data memory (one array per segment),
    and the communication queues. Final states are comparable, which is
    how every scheduled program is validated against the sequential
    semantics. *)

open Semantics

type segdata = SF of float array | SI of int array

type t = {
  regs : value array;                    (* indexed by vreg id *)
  mem : (int, segdata) Hashtbl.t;        (* keyed by segment id *)
  mutable input : float list array;      (* per input channel *)
  output : Buffer.t array;               (* textual; see [outputs] *)
  out_vals : float list ref array;       (* per output channel, reversed *)
}

let create ?(channels = 2) (p : Program.t) =
  let regs = Array.make (max 1 (Program.num_vregs p)) (VI 0) in
  let mem = Hashtbl.create 7 in
  List.iter
    (fun (s : Memseg.t) ->
      let data =
        match s.elt with
        | Memseg.Float_elt -> SF (Array.make s.size 0.0)
        | Memseg.Int_elt -> SI (Array.make s.size 0)
      in
      Hashtbl.replace mem s.sid data)
    p.segs;
  {
    regs;
    mem;
    input = Array.make channels [];
    output = Array.init channels (fun _ -> Buffer.create 64);
    out_vals = Array.init channels (fun _ -> ref []);
  }

let set_input t ch xs =
  if ch < 0 || ch >= Array.length t.input then
    invalid_arg "Machine_state.set_input: bad channel";
  t.input.(ch) <- xs

let outputs t ch = List.rev !(t.out_vals.(ch))

let read t (v : Vreg.t) = t.regs.(v.id)
let write t (v : Vreg.t) x = t.regs.(v.id) <- x

let seg_data t (s : Memseg.t) =
  match Hashtbl.find_opt t.mem s.sid with
  | Some d -> d
  | None ->
    invalid_arg
      (Printf.sprintf "Machine_state: unknown segment %s" s.sname)

exception Out_of_bounds of string

let check_bounds (s : Memseg.t) i =
  if i < 0 || i >= s.size then
    raise
      (Out_of_bounds
         (Printf.sprintf "%s[%d] (size %d)" s.sname i s.size))

let load t s i =
  check_bounds s i;
  match seg_data t s with
  | SF a -> VF a.(i)
  | SI a -> VI a.(i)

let store t s i v =
  check_bounds s i;
  match (seg_data t s, v) with
  | SF a, VF x -> a.(i) <- x
  | SI a, VI x -> a.(i) <- x
  | SF _, VI _ -> raise (Type_error "int store to float segment")
  | SI _, VF _ -> raise (Type_error "float store to int segment")

exception Channel_empty of int

let recv t ch =
  match t.input.(ch) with
  | [] -> raise (Channel_empty ch)
  | x :: rest ->
    t.input.(ch) <- rest;
    x

let send t ch x =
  t.out_vals.(ch) := x :: !(t.out_vals.(ch));
  Buffer.add_string t.output.(ch) (Printf.sprintf "%h\n" x)

(** Initialize a float segment from a generator (for test fixtures and
    the benchmark workloads). *)
let init_farray t (s : Memseg.t) f =
  match seg_data t s with
  | SF a -> Array.iteri (fun i _ -> a.(i) <- f i) a
  | SI _ -> invalid_arg "init_farray: int segment"

let init_iarray t (s : Memseg.t) f =
  match seg_data t s with
  | SI a -> Array.iteri (fun i _ -> a.(i) <- f i) a
  | SF _ -> invalid_arg "init_iarray: float segment"

let get_farray t (s : Memseg.t) =
  match seg_data t s with
  | SF a -> Array.copy a
  | SI _ -> invalid_arg "get_farray: int segment"

let get_iarray t (s : Memseg.t) =
  match seg_data t s with
  | SI a -> Array.copy a
  | SF _ -> invalid_arg "get_iarray: float segment"

(** Structural equality of two final states: registers are {e not}
    compared (schedules legitimately leave different garbage in
    temporaries); memory and channel outputs are. *)
let observably_equal a b =
  let seg_eq sid d =
    match (d, Hashtbl.find_opt b.mem sid) with
    | SF x, Some (SF y) ->
      Array.length x = Array.length y && Array.for_all2 Float.equal x y
    | SI x, Some (SI y) -> x = y
    | _ -> false
  in
  Hashtbl.fold (fun sid d acc -> acc && seg_eq sid d) a.mem true
  && Array.for_all2
       (fun x y -> List.equal Float.equal (List.rev !x) (List.rev !y))
       a.out_vals b.out_vals

let ctx t : Semantics.ctx =
  {
    rd = read t;
    ld = load t;
    st = store t;
    recv = recv t;
    send = send t;
  }
