(** Delta-debugging minimizer for failing W2 programs.

    Classic greedy ddmin specialized to the W2 AST: propose one-point
    shrinking rewrites — drop a statement (at any depth), inline one
    arm of a conditional, halve a constant trip count, replace a
    compound expression by one of its operands, drop an unused
    declaration — and accept a candidate iff the failure predicate
    still returns the {e same verdict kind} and the candidate is
    strictly smaller. Repeat to fixpoint under an evaluation budget.

    Determinism: candidates are enumerated in a fixed syntactic order
    and the first improving candidate restarts the scan, so the result
    depends only on the input program and the predicate. Progress is
    measured by the lexicographic pair (AST node count, sum of integer
    literal magnitudes): statement/expression rewrites shrink the
    first component, trip-count halving shrinks the second without
    growing the first — so every accepted step strictly decreases the
    measure and termination is structural, not budget-dependent (the
    budget only caps predicate evaluations, each of which compiles and
    runs the candidate).

    Type-changing rewrites (e.g. replacing a comparison by a float
    operand) are proposed anyway: the candidate then fails the type
    checker, the oracle reports a different verdict kind, and the
    predicate rejects it — the same filter that rejects semantic
    drift. *)

open Sp_lang.Ast

(* ------------------------------------------------------------------ *)
(* Measure                                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_weight (x : expr) =
  match x.e with
  | Eint n -> abs n
  | Efloat _ | Evar _ -> 0
  | Eindex (_, xs) | Ecall (_, xs) ->
    List.fold_left (fun acc i -> acc + expr_weight i) 0 xs
  | Ebin (_, a, b) -> expr_weight a + expr_weight b
  | Eun (_, a) -> expr_weight a

let rec stmt_weight (x : stmt) =
  match x.s with
  | Sassign (Lvar _, ex) -> expr_weight ex
  | Sassign (Lindex (_, xs, _), ex) ->
    List.fold_left (fun acc i -> acc + expr_weight i) (expr_weight ex) xs
  | Sif (c, t, e) -> expr_weight c + body_weight t + body_weight e
  | Sfor { lo; hi; body; _ } ->
    expr_weight lo + expr_weight hi + body_weight body
  | Ssend (ex, _) -> expr_weight ex
  | Sreceive (Lvar _, _) -> 0
  | Sreceive (Lindex (_, xs, _), _) ->
    List.fold_left (fun acc i -> acc + expr_weight i) 0 xs

and body_weight stmts = List.fold_left (fun acc x -> acc + stmt_weight x) 0 stmts

(** Lexicographic (node count, integer-literal weight). *)
let measure (p : program) = (Sp_lang.Wgen.size p, body_weight p.p_body)

(* ------------------------------------------------------------------ *)
(* Candidate enumeration                                               *)
(* ------------------------------------------------------------------ *)

(** All ways to rewrite one element of [xs] via [f], plus (when
    [drop]) all ways to drop one element. *)
let one_point ?(drop = false) (f : 'a -> 'a list) (xs : 'a list) :
    'a list list =
  let rec go prefix = function
    | [] -> []
    | x :: rest ->
      let here =
        (if drop then [ List.rev_append prefix rest ] else [])
        @ List.map
            (fun x' -> List.rev_append prefix (x' :: rest))
            (f x)
      in
      here @ go (x :: prefix) rest
  in
  go [] xs

(** Strictly smaller rewrites of one expression: replace a compound
    node by one of its sub-expressions, or halve an integer literal.
    (Sub-expression promotion can change the type — the predicate
    filters those.) *)
let rec expr_rewrites (x : expr) : expr list =
  let sub_rewrites wrap subs =
    one_point expr_rewrites subs |> List.map wrap
  in
  match x.e with
  | Eint n when n > 1 -> [ { x with e = Eint (n / 2) }; { x with e = Eint 0 } ]
  | Eint 1 -> [ { x with e = Eint 0 } ]
  | Eint _ | Efloat _ | Evar _ -> []
  | Eindex (a, xs) -> sub_rewrites (fun xs' -> { x with e = Eindex (a, xs') }) xs
  | Ebin (op, l, r) ->
    (* promote either operand over the node, then shrink inside *)
    [ l; r ]
    @ sub_rewrites
        (function [ l'; r' ] -> { x with e = Ebin (op, l', r') } | _ -> x)
        [ l; r ]
  | Eun (op, a) ->
    a :: List.map (fun a' -> { x with e = Eun (op, a') }) (expr_rewrites a)
  | Ecall (f, xs) ->
    xs @ sub_rewrites (fun xs' -> { x with e = Ecall (f, xs') }) xs

(** Strictly smaller rewrites of one statement. Loop bodies and
    conditional arms additionally shrink by dropping statements. *)
let rec stmt_rewrites (x : stmt) : stmt list =
  match x.s with
  | Sassign (lv, ex) ->
    let lv_rw =
      match lv with
      | Lvar _ -> []
      | Lindex (a, xs, p) ->
        one_point expr_rewrites xs
        |> List.map (fun xs' -> { x with s = Sassign (Lindex (a, xs', p), ex) })
    in
    lv_rw
    @ List.map (fun ex' -> { x with s = Sassign (lv, ex') }) (expr_rewrites ex)
  | Sif (c, t, e) ->
    (* inline either arm in place of the conditional; shrink inside *)
    t @ e
    @ (if e <> [] then [ { x with s = Sif (c, t, []) } ] else [])
    @ List.map (fun c' -> { x with s = Sif (c', t, e) }) (expr_rewrites c)
    @ List.map
        (fun t' -> { x with s = Sif (c, t', e) })
        (one_point ~drop:true stmt_rewrites t)
    @ List.map
        (fun e' -> { x with s = Sif (c, t, e') })
        (one_point ~drop:true stmt_rewrites e)
  | Sfor ({ lo; hi; body; _ } as f) ->
    List.map (fun hi' -> { x with s = Sfor { f with hi = hi' } }) (expr_rewrites hi)
    @ List.map
        (fun lo' -> { x with s = Sfor { f with lo = lo' } })
        (expr_rewrites lo)
    @ List.map
        (fun body' -> { x with s = Sfor { f with body = body' } })
        (one_point ~drop:true stmt_rewrites body)
  | Ssend (ex, ch) ->
    List.map (fun ex' -> { x with s = Ssend (ex', ch) }) (expr_rewrites ex)
  | Sreceive _ -> []

let decl_used (p : program) (d : decl) =
  let name = d.d_name in
  let rec in_expr (x : expr) =
    match x.e with
    | Evar v -> String.equal v name
    | Eint _ | Efloat _ -> false
    | Eindex (a, xs) | Ecall (a, xs) ->
      String.equal a name || List.exists in_expr xs
    | Ebin (_, a, b) -> in_expr a || in_expr b
    | Eun (_, a) -> in_expr a
  in
  let in_lv = function
    | Lvar (v, _) -> String.equal v name
    | Lindex (a, xs, _) -> String.equal a name || List.exists in_expr xs
  in
  let rec in_stmt (x : stmt) =
    match x.s with
    | Sassign (lv, ex) -> in_lv lv || in_expr ex
    | Sif (c, t, e) -> in_expr c || List.exists in_stmt t || List.exists in_stmt e
    | Sfor { lo; hi; body; _ } ->
      in_expr lo || in_expr hi || List.exists in_stmt body
    | Ssend (ex, _) -> in_expr ex
    | Sreceive (lv, _) -> in_lv lv
  in
  List.exists in_stmt p.p_body

(** Every one-point shrink of a whole program, in fixed order:
    top-level statement drops and rewrites first (the big wins), then
    unused-declaration drops. *)
let candidates (p : program) : program list =
  let bodies =
    one_point ~drop:true stmt_rewrites p.p_body
    |> List.map (fun b -> { p with p_body = b })
  in
  let decls =
    p.p_decls
    |> List.filter (fun d -> not (decl_used p d))
    |> List.map (fun d ->
           {
             p with
             p_decls = List.filter (fun d' -> d' != d) p.p_decls;
           })
  in
  bodies @ decls

(* ------------------------------------------------------------------ *)
(* The greedy fixpoint                                                 *)
(* ------------------------------------------------------------------ *)

type stats = { evals : int; rounds : int }

(** Minimize [p] under [predicate] (true = still fails the same way).
    Returns the smallest accepted program and statistics. [budget]
    caps predicate evaluations; the algorithm also stops at the greedy
    fixpoint (no candidate accepted in a full scan). The result is
    [p] itself if nothing smaller reproduces. *)
let minimize ?(budget = 400) ~(predicate : program -> bool) (p : program) :
    program * stats =
  let evals = ref 0 in
  let rounds = ref 0 in
  let check c =
    if !evals >= budget then false
    else begin
      incr evals;
      predicate c
    end
  in
  let rec fix current =
    incr rounds;
    let cur_m = measure current in
    let rec scan = function
      | [] -> current (* fixpoint *)
      | c :: rest ->
        if measure c < cur_m && check c then fix c
        else if !evals >= budget then current
        else scan rest
    in
    scan (candidates current)
  in
  let out = fix p in
  (out, { evals = !evals; rounds = !rounds })
