test/test_array.ml: Alcotest Array List Printf Sp_core Sp_kernels Sp_lang Sp_machine Sp_vliw
