(** Graphviz export of dependence graphs, for debugging schedules and
    for documentation. Intra-iteration edges are solid; loop-carried
    edges are dashed and labelled with their iteration distance. *)

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let pp ?(name = "ddg") ppf (g : Ddg.t) =
  Fmt.pf ppf "digraph %s {@." name;
  Fmt.pf ppf "  rankdir=TB; node [shape=box, fontsize=10];@.";
  Array.iteri
    (fun i (u : Sunit.t) ->
      Fmt.pf ppf "  n%d [label=\"%s\"];@." i
        (escape (Fmt.str "%a" Sunit.pp u)))
    g.Ddg.units;
  List.iter
    (fun (e : Ddg.edge) ->
      if e.Ddg.omega = 0 then
        Fmt.pf ppf "  n%d -> n%d [label=\"%d\"];@." e.Ddg.src e.Ddg.dst
          e.Ddg.delay
      else
        Fmt.pf ppf
          "  n%d -> n%d [label=\"%d,w%d\", style=dashed, color=gray40];@."
          e.Ddg.src e.Ddg.dst e.Ddg.delay e.Ddg.omega)
    g.Ddg.edges;
  Fmt.pf ppf "}@."

let to_string ?name g = Fmt.str "%a" (pp ?name) g
