(** Hand-written lexer for the W2-like language. Identifiers and
    keywords are case-insensitive; comments are Pascal-style [{ ... }]
    or line comments [-- ...]. *)

exception Error of Token.pos * string

val tokenize : string -> (Token.pos * Token.t) list
(** Tokenize a whole source string; the last element is always [EOF].
    Raises {!Error} on malformed input. *)
