lib/lang/unroll.mli: Ast Sp_ir
