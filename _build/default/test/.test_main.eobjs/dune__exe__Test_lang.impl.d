test/test_lang.ml: Alcotest Array Ast Float Lexer List Lower Parser Printf Sp_ir Sp_kernels Sp_lang Sp_machine Typecheck Unroll
