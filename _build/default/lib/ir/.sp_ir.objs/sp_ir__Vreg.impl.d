lib/ir/vreg.ml: Fmt Map Printf Set String
