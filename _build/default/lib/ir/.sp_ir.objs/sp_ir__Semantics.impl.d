lib/ir/semantics.ml: Float Fmt List Memseg Op Sp_machine Vreg
