(** Translation validation for assembled VLIW programs (see the
    interface for the contract being checked).

    The walk is along layout order, which equals dynamic issue order —
    one instruction per cycle — on every fall-through stretch. State
    (in-flight writes) is discarded after an unconditional transfer
    ([Jump], [Halt]): the fall-through edge out of those is never
    executed, so distances measured across it are meaningless and
    would otherwise flag legal code (e.g. a then-branch write against
    an else-branch read). Conditional branches and counter loops fall
    through on one of their outcomes, so checking continues across
    them: any violation reported there is a violation on a real
    execution path. Back-edge (cross-iteration) timing is not checked
    here — that is what the whole-program equivalence suites cover. *)

open Sp_ir
open Sp_machine

type rule = Latency | Write_port | Counter | Mem_order

type violation = {
  at : int;
  rule : rule;
  detail : string;
}

let rule_to_string = function
  | Latency -> "latency"
  | Write_port -> "write-port"
  | Counter -> "counter"
  | Mem_order -> "memory-order"

let pp_violation ppf v =
  Fmt.pf ppf "instruction %d violates %s: %s" v.at (rule_to_string v.rule)
    v.detail

(* ------------------------------------------------------------------ *)

(** Registers read at issue by the instruction's control field. *)
let ctl_reads = function
  | Inst.CJump { cond; _ } -> [ cond ]
  | Inst.CtrSetR { reg; _ } -> [ reg ]
  | Inst.Next | Inst.Halt | Inst.Jump _ | Inst.CtrSet _ | Inst.CtrLoop _
  | Inst.CtrJumpLt _ -> []

(** Do two references within one instruction provably touch the same
    element? Two accesses in one cycle read their address registers at
    the same instant, so identical (post-renaming) registers with the
    same displacement mean the same address; the subscript distance
    must also prove coincidence, because symbolic subscripts are
    per-iteration expressions and modulo-expanded register copies keep
    co-scheduled iterations apart. Anything not provable is not
    flagged: references the dependence analysis proved or made
    disjoint are legally co-scheduled. *)
let same_element (a : Op.addr) (b : Op.addr) =
  let same_reg x y =
    match (x, y) with
    | None, None -> true
    | Some (rx : Vreg.t), Some ry -> rx.Vreg.id = ry.Vreg.id
    | _ -> false
  in
  Memseg.equal a.Op.seg b.Op.seg
  && (not a.Op.seg.Memseg.independent)
  && same_reg a.Op.base b.Op.base
  && same_reg a.Op.idx b.Op.idx
  && a.Op.off = b.Op.off
  &&
  match (a.Op.sub, b.Op.sub) with
  | Some sa, Some sb -> Subscript.distance ~from:sa ~to_:sb = Subscript.Exactly 0
  | _ -> false

let check_timing ?(ctrs = 16) ?(live_in = []) (m : Machine.t) (p : Prog.t) :
    violation list =
  let viols = ref [] in
  let report at rule detail = viols := { at; rule; detail } :: !viols in
  (* Per-register write state along the current fall-through stretch:
     whether any write has landed yet, and the writes still in flight
     (issue index, due cycle). A read while writes are in flight is
     legal — it returns the latest landed value, which is exactly how
     a modulo schedule overlaps a register's next write with the last
     reads of its current value. What is never legal in compiled code
     is a read whose register has a write issued strictly earlier and
     still in flight while NOTHING has landed: the read returns a
     value from before the stretch although the code already started
     replacing it — the signature of a producer displaced past its
     consumer. That judgment is only provable on the entry stretch
     (layout position 0 up to the first unconditional transfer):
     a stretch entered through a branch may find an older landed
     value in the register file, making the same read pattern legal,
     so there the rule stays silent. *)
  let wstate : (int, bool * (int * int) list * Vreg.t) Hashtbl.t =
    Hashtbl.create 64
  in
  (* Registers declared live into the checked stretch hold a landed
     value at entry, so a read overlapping their first in-stretch write
     is the legal modulo-overlap pattern, not a displaced producer. *)
  List.iter
    (fun (r : Vreg.t) -> Hashtbl.replace wstate r.Vreg.id (true, [], r))
    live_in;
  (* counters set so far, in layout order (never flushed: every loop in
     this code base sets its counter in the stretch that enters it) *)
  let counters_set = Array.make ctrs false in
  (* counter-loop body ranges (target, branch, ctr) for the nesting
     check below *)
  let ranges = ref [] in
  let entry_stretch = ref true in
  let flush () =
    Hashtbl.reset wstate;
    entry_stretch := false
  in
  let check_ctr i c =
    if c < 0 || c >= ctrs then begin
      report i Counter (Printf.sprintf "counter %d out of range [0,%d)" c ctrs);
      false
    end
    else true
  in
  let flush_next = ref false in
  Array.iteri
    (fun i (inst : Inst.t) ->
      if !flush_next then flush ();
      flush_next := false;
      (* 1. all reads happen at issue, against the state before this
         instruction's writes are recorded *)
      let reads =
        List.concat_map Op.reads inst.Inst.ops @ ctl_reads inst.Inst.ctl
      in
      List.iter
        (fun (r : Vreg.t) ->
          match Hashtbl.find_opt wstate r.Vreg.id with
          | None -> ()
          | Some (landed, pend, reg) ->
            let landed =
              landed || List.exists (fun (_, due) -> due <= i) pend
            in
            let pend = List.filter (fun (_, due) -> due > i) pend in
            Hashtbl.replace wstate r.Vreg.id (landed, pend, reg);
            if (not landed) && !entry_stretch then
              List.iter
                (fun (iss, due) ->
                  if iss < i then
                    report i Latency
                      (Printf.sprintf
                         "%s read %d cycle(s) after its first write issued \
                          at %d; the result lands only at %d"
                         (Vreg.to_string reg) (i - iss) iss due))
                pend)
        reads;
      (* 2. same-cycle memory conflicts: two stores to provably the
         same element in one cycle collide — the element's next-cycle
         value is undefined. A load issued with such a store is fine:
         it deterministically reads the old value (stores become
         visible on the following cycle), which is exactly how an
         anti-dependent load legally co-schedules at distance 0. *)
      let stores =
        List.filter_map
          (fun (op : Op.t) ->
            match op.Op.addr with
            | Some a when Op.is_store op -> Some (op, a)
            | _ -> None)
          inst.Inst.ops
      in
      let rec pairs = function
        | [] -> ()
        | ((_ : Op.t), a) :: rest ->
          List.iter
            (fun ((_ : Op.t), sa) ->
              if same_element a sa then
                report i Mem_order
                  (Printf.sprintf
                     "two stores to the same element of %s in one cycle"
                     a.Op.seg.Memseg.sname))
            rest;
          pairs rest
      in
      pairs stores;
      (* 3. control field: counter discipline *)
      (match inst.Inst.ctl with
      | Inst.CtrSet { ctr; _ } | Inst.CtrSetR { ctr; _ } ->
        if check_ctr i ctr then counters_set.(ctr) <- true
      | Inst.CtrLoop { ctr; target } ->
        if check_ctr i ctr then begin
          if not counters_set.(ctr) then
            report i Counter
              (Printf.sprintf "counter %d looped before any set" ctr);
          if target > i then
            report i Counter
              (Printf.sprintf "counter loop branches forward to %d" target)
          else ranges := (target, i, ctr) :: !ranges
        end
      | Inst.CtrJumpLt { ctr; _ } ->
        if check_ctr i ctr && not counters_set.(ctr) then
          report i Counter
            (Printf.sprintf "counter %d tested before any set" ctr)
      | Inst.Next | Inst.Halt | Inst.Jump _ | Inst.CJump _ -> ());
      (* 4. record this instruction's writes; writes due the same cycle
         on one register violate the write-port discipline *)
      List.iter
        (fun (op : Op.t) ->
          match op.Op.dst with
          | None -> ()
          | Some d ->
            let lat = max 1 (Machine.latency m op.Op.kind) in
            let due = i + lat in
            let landed, pend =
              match Hashtbl.find_opt wstate d.Vreg.id with
              | None -> (false, [])
              | Some (landed, pend, _) ->
                ( landed || List.exists (fun (_, due') -> due' <= i) pend,
                  List.filter (fun (_, due') -> due' > i) pend )
            in
            List.iter
              (fun (a, due') ->
                if due' = due then
                  report i Write_port
                    (Printf.sprintf
                       "two in-flight writes to %s land in cycle %d \
                        (issued at %d and %d)"
                       (Vreg.to_string d) due a i))
              pend;
            Hashtbl.replace wstate d.Vreg.id (landed, (i, due) :: pend, d))
        inst.Inst.ops;
      (* 5. an unconditional transfer makes the next layout position
         unreachable from here: measure nothing across it *)
      match inst.Inst.ctl with
      | Inst.Jump _ | Inst.Halt -> flush_next := true
      | _ -> ())
    p.Prog.code;
  (* counter-loop nesting: bodies must nest or be disjoint, and nested
     loops must use distinct counters *)
  let ranges = !ranges in
  List.iteri
    (fun k (t1, i1, c1) ->
      List.iteri
        (fun k' (t2, i2, c2) ->
          if k < k' then begin
            let nested_12 = t1 <= t2 && i2 <= i1 in
            let nested_21 = t2 <= t1 && i1 <= i2 in
            let disjoint = i1 < t2 || i2 < t1 in
            if not (nested_12 || nested_21 || disjoint) then
              report (max i1 i2) Counter
                (Printf.sprintf
                   "counter-loop bodies [%d,%d] and [%d,%d] overlap \
                    without nesting"
                   t1 i1 t2 i2)
            else if (nested_12 || nested_21) && c1 = c2 then
              report (max i1 i2) Counter
                (Printf.sprintf
                   "nested counter loops at [%d,%d] and [%d,%d] share \
                    counter %d"
                   t1 i1 t2 i2 c1)
          end)
        ranges)
    ranges;
  List.rev !viols

(* ------------------------------------------------------------------ *)

type report = {
  timing : violation list;
  resources : Check.violation list;
}

let all ?ctrs (m : Machine.t) (p : Prog.t) : report =
  { timing = check_timing ?ctrs m p; resources = Check.check_prog m p }

let ok r = r.timing = [] && r.resources = []

let pp_report ppf r =
  if ok r then Fmt.pf ppf "validate: ok"
  else begin
    List.iter (fun v -> Fmt.pf ppf "%a@." pp_violation v) r.timing;
    List.iter (fun v -> Fmt.pf ppf "%a@." Check.pp_violation v) r.resources
  end
