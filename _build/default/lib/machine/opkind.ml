(** Operation kinds understood by the machine model.

    These are the micro-operations of the target datapath. Each kind is
    mapped by a {!Machine.t} to a latency and a resource reservation.
    The IR ({!module:Sp_ir}) attaches operands to these kinds. *)

type rel = Eq | Ne | Lt | Le | Gt | Ge

let negate_rel = function
  | Eq -> Ne | Ne -> Eq | Lt -> Ge | Le -> Gt | Gt -> Le | Ge -> Lt

let string_of_rel = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

type t =
  (* floating point *)
  | Fadd | Fsub | Fmul
  | Fneg | Fabs
  | Fmin | Fmax
  | Fcmp of rel              (** produces an int (0/1) in an I register *)
  | Fmov                     (** FP register move (runs on the adder) *)
  | Fconst                   (** load FP immediate *)
  | Fsel                     (** select: dst = if src0 <> 0 then src1 else src2 *)
  | Frecs                    (** reciprocal seed (table lookup), ~1/17 rel. error *)
  | Frsqs                    (** reciprocal-square-root seed, ~1/16 rel. error *)
  (* integer ALU *)
  | Iadd | Isub | Imul
  | Iand | Ior | Ixor | Ishl | Ishr
  | Idiv | Imod
      (** iterative integer divide/modulo; used only in loop-setup code
          for runtime trip counts, never inside pipelined kernels *)
  | Icmp of rel
  | Imov | Iconst
  | Isel
  | Itof | Ftoi
  (* address generation: the synthesized induction-variable copy and
     update run on the dedicated address unit, as on Warp, so loop
     bookkeeping does not compete with user integer arithmetic *)
  | Amov | Aadd
  (* memory *)
  | Load                     (** data-memory read *)
  | Store                    (** data-memory write; no destination *)
  (* inter-cell communication queues *)
  | Recv of int              (** dequeue from input channel [n] *)
  | Send of int              (** enqueue to output channel [n] *)
  | Nop

let equal (a : t) (b : t) = a = b

let to_string = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul"
  | Fneg -> "fneg" | Fabs -> "fabs" | Fmin -> "fmin" | Fmax -> "fmax"
  | Fcmp r -> "fcmp." ^ string_of_rel r
  | Fmov -> "fmov" | Fconst -> "fconst" | Fsel -> "fsel"
  | Frecs -> "frecs" | Frsqs -> "frsqs"
  | Iadd -> "iadd" | Isub -> "isub" | Imul -> "imul"
  | Iand -> "iand" | Ior -> "ior" | Ixor -> "ixor"
  | Ishl -> "ishl" | Ishr -> "ishr" | Idiv -> "idiv" | Imod -> "imod"
  | Icmp r -> "icmp." ^ string_of_rel r
  | Imov -> "imov" | Iconst -> "iconst" | Isel -> "isel"
  | Amov -> "amov" | Aadd -> "aadd"
  | Itof -> "itof" | Ftoi -> "ftoi"
  | Load -> "load" | Store -> "store"
  | Recv n -> Printf.sprintf "recv%d" n
  | Send n -> Printf.sprintf "send%d" n
  | Nop -> "nop"

let pp ppf k = Fmt.string ppf (to_string k)

(** Does this operation count as one floating-point operation for MFLOPS
    accounting? (Same convention as the paper: adds and multiplies — the
    expanded INVERSE/SQRT sequences count their seeds too; compares,
    moves and selects do not count.) *)
let is_flop = function
  | Fadd | Fsub | Fmul | Frecs | Frsqs -> true
  | _ -> false

(** Number of register sources the kind expects. *)
let arity = function
  | Fconst | Iconst | Nop | Recv _ -> 0
  | Fneg | Fabs | Fmov | Itof | Ftoi | Send _ | Frecs | Frsqs | Imov
  | Amov -> 1
  | Fadd | Fsub | Fmul | Fmin | Fmax | Fcmp _
  | Iadd | Isub | Imul | Iand | Ior | Ixor | Ishl | Ishr | Idiv | Imod
  | Aadd | Icmp _ -> 2
  | Fsel | Isel -> 3
  | Load -> 0   (* address operands are carried separately *)
  | Store -> 1  (* the stored value; address operands are separate *)

(** Does the kind produce a result register? *)
let has_dst = function
  | Store | Send _ | Nop -> false
  | _ -> true

(** Register class of the destination, when there is one. *)
let dst_is_float = function
  | Fadd | Fsub | Fmul | Fneg | Fabs | Fmin | Fmax | Fmov | Fconst | Fsel
  | Frecs | Frsqs | Itof -> true
  | Load -> true (* loads of int arrays use [Ftoi] afterwards; see Sp_ir *)
  | _ -> false
