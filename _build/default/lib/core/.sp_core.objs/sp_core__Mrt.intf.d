lib/core/mrt.mli: Sp_machine
