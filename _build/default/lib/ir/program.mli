(** A whole IR program: memory segments plus a region tree, carrying
    the register/operation supplies so later passes can create fresh
    names that stay dense. *)

type t = {
  name : string;
  segs : Memseg.t list;
  body : Region.t;
  vregs : Vreg.Supply.supply;
  ops : Op.Supply.supply;
}

val num_vregs : t -> int
val num_ops : t -> int

val find_seg : t -> string -> Memseg.t
(** Raises [Invalid_argument] for an unknown segment name. *)

val pp : Format.formatter -> t -> unit

(** Structural statistics for reporting. *)
type stats = {
  n_ops : int;
  n_loops : int;
  n_innermost : int;
  n_ifs : int;
}

val stats : t -> stats
