test/test_ir.ml: Alcotest Builder List Memseg Op Program Region Sp_ir Sp_machine Subscript Vreg
