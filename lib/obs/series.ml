(** See the interface for the logical-clock and mergeability
    contracts. *)

module Histogram = Sp_util.Histogram

type t = {
  s_capacity : int;
  s_window : int;
  h_lo : float;
  h_width : float;
  h_buckets : int;
  seqs : int array;    (* ring, parallel to [vals] *)
  vals : float array;
  mutable head : int;  (* index of the oldest live sample *)
  mutable len : int;   (* live samples, <= s_capacity *)
  mutable total : int; (* samples ever recorded *)
  mutable next_seq : int;
}

let create ?(capacity = 4096) ?(window = 32) ~lo ~width ~buckets () =
  if capacity <= 0 then invalid_arg "Series.create: non-positive capacity";
  if window <= 0 then invalid_arg "Series.create: non-positive window";
  (* shape errors surface at create time, not at the first window *)
  ignore (Histogram.create ~lo ~width ~buckets);
  {
    s_capacity = capacity;
    s_window = window;
    h_lo = lo;
    h_width = width;
    h_buckets = buckets;
    seqs = Array.make capacity 0;
    vals = Array.make capacity 0.;
    head = 0;
    len = 0;
    total = 0;
    next_seq = 0;
  }

let add ?seq t v =
  let seq = match seq with Some s -> s | None -> t.next_seq in
  t.next_seq <- seq + 1;
  if t.len < t.s_capacity then begin
    let i = (t.head + t.len) mod t.s_capacity in
    t.seqs.(i) <- seq;
    t.vals.(i) <- v;
    t.len <- t.len + 1
  end
  else begin
    (* full: the oldest sample makes room *)
    t.seqs.(t.head) <- seq;
    t.vals.(t.head) <- v;
    t.head <- (t.head + 1) mod t.s_capacity
  end;
  t.total <- t.total + 1

let count t = t.total
let capacity t = t.s_capacity
let window_size t = t.s_window

let retained t =
  List.init t.len (fun k ->
      let i = (t.head + k) mod t.s_capacity in
      (t.seqs.(i), t.vals.(i)))

type window = {
  w_index : int;
  w_count : int;
  w_sum : float;
  w_min : float;
  w_max : float;
  w_hist : Histogram.t;
}

let empty_window t index =
  {
    w_index = index;
    w_count = 0;
    w_sum = 0.;
    w_min = infinity;
    w_max = neg_infinity;
    w_hist = Histogram.create ~lo:t.h_lo ~width:t.h_width ~buckets:t.h_buckets;
  }

let window_add w v =
  Histogram.add w.w_hist v;
  {
    w with
    w_count = w.w_count + 1;
    w_sum = w.w_sum +. v;
    w_min = Float.min w.w_min v;
    w_max = Float.max w.w_max v;
  }

(* Windows are built by one pass over the retained ring. Samples arrive
   in recording order; a campaign shard may index by seed out of
   arrival order, so group via a table rather than assuming the ring is
   seq-sorted. *)
let windows t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (seq, v) ->
      let ix = seq / t.s_window in
      let w =
        match Hashtbl.find_opt tbl ix with
        | Some w -> w
        | None -> empty_window t ix
      in
      Hashtbl.replace tbl ix (window_add w v))
    (retained t);
  Hashtbl.fold (fun _ w acc -> w :: acc) tbl []
  |> List.sort (fun a b -> compare a.w_index b.w_index)

let window_at t index =
  List.fold_left
    (fun w (seq, v) -> if seq / t.s_window = index then window_add w v else w)
    (empty_window t index) (retained t)

let merge_window a b =
  if a.w_index <> b.w_index then
    invalid_arg "Series.merge_window: window index mismatch";
  {
    w_index = a.w_index;
    w_count = a.w_count + b.w_count;
    w_sum = a.w_sum +. b.w_sum;
    w_min = Float.min a.w_min b.w_min;
    w_max = Float.max a.w_max b.w_max;
    w_hist = Histogram.merge a.w_hist b.w_hist;
  }

let quantile w q = Histogram.quantile w.w_hist q

let merge a b =
  if
    a.s_capacity <> b.s_capacity || a.s_window <> b.s_window
    || a.h_lo <> b.h_lo || a.h_width <> b.h_width
    || a.h_buckets <> b.h_buckets
  then invalid_arg "Series.merge: shape mismatch";
  let pts =
    List.stable_sort
      (fun (s1, _) (s2, _) -> compare s1 s2)
      (retained a @ retained b)
  in
  (* keep the newest [capacity] samples, as if they all passed through
     one ring in seq order *)
  let n = List.length pts in
  let pts =
    if n <= a.s_capacity then pts
    else List.filteri (fun i _ -> i >= n - a.s_capacity) pts
  in
  let t =
    create ~capacity:a.s_capacity ~window:a.s_window ~lo:a.h_lo
      ~width:a.h_width ~buckets:a.h_buckets ()
  in
  List.iter (fun (seq, v) -> add ~seq t v) pts;
  t.total <- a.total + b.total;
  t.next_seq <- max a.next_seq b.next_seq;
  t

let json_of_window w : Json.t =
  let q p =
    match quantile w p with None -> Json.Null | Some v -> Json.Float v
  in
  Json.Obj
    [
      ("window", Json.Int w.w_index);
      ("count", Json.Int w.w_count);
      ("sum", Json.Float w.w_sum);
      ("min", if w.w_count = 0 then Json.Null else Json.Float w.w_min);
      ("max", if w.w_count = 0 then Json.Null else Json.Float w.w_max);
      ("p50", q 0.5);
      ("p99", q 0.99);
    ]

let to_json t : Json.t =
  Json.Obj
    [
      ("schema", Json.Str "series/1");
      ("count", Json.Int t.total);
      ("retained", Json.Int t.len);
      ("capacity", Json.Int t.s_capacity);
      ("window_size", Json.Int t.s_window);
      ("windows", Json.List (List.map json_of_window (windows t)));
    ]
