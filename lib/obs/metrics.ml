(** Process-wide metric registry; see the interface for the contract. *)

module Histogram = Sp_util.Histogram

type counter = { c_name : string; mutable c : int }
type gauge = { g_name : string; mutable g : float }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histo of Histogram.t ref
      (** a [ref] so {!reset} can swap in a fresh same-shaped histogram
          while {!histogram} callers keep observing through the
          registry *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let mismatch name =
  invalid_arg
    (Printf.sprintf "Sp_obs.Metrics: %S already registered with another type"
       name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> mismatch name
  | None ->
    let c = { c_name = name; c = 0 } in
    Hashtbl.replace registry name (Counter c);
    c

let incr ?(by = 1) c = c.c <- c.c + by
let counter_value c = c.c

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> mismatch name
  | None ->
    let g = { g_name = name; g = 0. } in
    Hashtbl.replace registry name (Gauge g);
    g

let set g x = g.g <- x
let gauge_value g = g.g

let histogram ?(lo = 0.) ?(width = 1.) ?(buckets = 32) name =
  match Hashtbl.find_opt registry name with
  | Some (Histo h) -> !h
  | Some _ -> mismatch name
  | None ->
    let h = Histogram.create ~lo ~width ~buckets in
    Hashtbl.replace registry name (Histo (ref h));
    h

(* ---- snapshot ----------------------------------------------------- *)

let json_of_metric = function
  | Counter c -> Json.Obj [ ("type", Json.Str "counter"); ("value", Json.Int c.c) ]
  | Gauge g -> Json.Obj [ ("type", Json.Str "gauge"); ("value", Json.Float g.g) ]
  | Histo h ->
    let h = !h in
    let q p =
      match Histogram.quantile h p with
      | Some x -> Json.Float x
      | None -> Json.Null
    in
    let extremum v = match v with Some x -> Json.Float x | None -> Json.Null in
    Json.Obj
      [
        ("type", Json.Str "histogram");
        ("count", Json.Int (Histogram.count h));
        ("mean", Json.Float (Histogram.mean h));
        ("min", extremum (Histogram.minimum h));
        ("max", extremum (Histogram.maximum h));
        ("p50", q 0.5);
        ("p90", q 0.9);
        ("p99", q 0.99);
      ]

let snapshot () =
  let entries =
    Hashtbl.fold (fun name m acc -> (name, json_of_metric m) :: acc) registry []
  in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  Json.Obj [ ("schema_version", Json.Int 1); ("metrics", Json.Obj entries) ]

let write oc = Json.to_channel oc (snapshot ())

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.
      | Histo h ->
        let old = !h in
        h :=
          Histogram.create ~lo:old.Histogram.lo ~width:old.Histogram.width
            ~buckets:(Array.length old.Histogram.counts))
    registry
