(** A reusable fixed-size domain pool for deterministic fork/join
    batches.

    [create ~jobs:n] spawns [n - 1] worker domains (none at all for
    [n = 1], so a sequential pool is literally free — no domain is
    ever spawned and {!run} degenerates to [List.map]); the calling
    domain itself works through the queue during {!run}, so a pool of
    [n] applies [n] domains' worth of parallelism. Workers are parked
    on a condition variable between batches, which makes the pool
    cheap to reuse across many small batches — the per-loop
    compilation driver in [Sp_core.Compile] submits one batch per
    group of sibling innermost loops.

    Determinism contract: {!run} returns results in submission order
    regardless of completion order. If any task raises, every task is
    still run to completion and the exception of the {e
    lowest-indexed} failing task is re-raised (with its backtrace) on
    the calling domain — the same exception a sequential [List.map]
    would have surfaced first.

    Memory model: all task hand-off goes through the pool's mutex, so
    everything the submitting domain wrote before {!run} is visible to
    the workers, and everything the workers wrote is visible to the
    submitter when {!run} returns. Callers need no further
    synchronization for data that is only touched before submission or
    inside a task. *)

type t = {
  jobs : int;
  mutable domains : unit Domain.t list;
  m : Mutex.t;
  work_ready : Condition.t; (* queue gained work, or [stop] flipped *)
  batch_done : Condition.t; (* a batch's remaining-count reached 0 *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  executed : int Atomic.t array;
      (* tasks run per slot: 0 = the submitting domain, 1.. = workers.
         Each slot is bumped only by its own domain; atomics make the
         cross-domain reads of skew snapshots well-defined. *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Pop-and-run jobs until the queue is empty and (for workers) the pool
   is stopped. Runs with the mutex held between jobs; released while a
   job executes. *)
let worker t ~slot =
  Mutex.lock t.m;
  let rec loop () =
    match Queue.take_opt t.queue with
    | Some job ->
      Mutex.unlock t.m;
      job ();
      Atomic.incr t.executed.(slot);
      Mutex.lock t.m;
      loop ()
    | None ->
      if not t.stop then begin
        Condition.wait t.work_ready t.m;
        loop ()
      end
  in
  loop ();
  Mutex.unlock t.m

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      domains = [];
      m = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      stop = false;
      executed = Array.init jobs (fun _ -> Atomic.make 0);
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i ->
        Domain.spawn (fun () -> worker t ~slot:(i + 1)));
  t

let jobs t = t.jobs
let worker_counts t = Array.map Atomic.get t.executed

let shutdown t =
  let ds =
    locked t (fun () ->
        t.stop <- true;
        Condition.broadcast t.work_ready;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds

(** Run every task to completion and return each task's own outcome in
    submission order. Never raises from a task: an exception is
    captured (with its backtrace) into that task's slot, which is what
    makes the error surfaced by {!run} deterministic — the lowest
    failing index is found by scanning the slots, not by racing
    workers for a shared cell. The campaign driver uses this directly
    so one crashing program cannot abort a batch. *)
let try_run (type a) t (fs : (unit -> a) list) :
    (a, exn * Printexc.raw_backtrace) result list =
  let wrap f =
    try Ok (f ()) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  match fs with
  | [] -> []
  | [ f ] ->
    (* single-task batches — the compile service's common case of one
       request in flight — skip the queue and condvar round trip *)
    let r = wrap f in
    Atomic.incr t.executed.(0);
    [ r ]
  | fs when t.jobs <= 1 ->
    List.map
      (fun f ->
        let r = wrap f in
        Atomic.incr t.executed.(0);
        r)
      fs
  | fs -> begin
    let fs = Array.of_list fs in
    let n = Array.length fs in
    if n = 0 then []
    else begin
      let results : (a, exn * Printexc.raw_backtrace) result option array =
        Array.make n None
      in
      let remaining = ref n in
      let job i () =
        let r = wrap fs.(i) in
        locked t (fun () ->
            results.(i) <- Some r;
            decr remaining;
            if !remaining = 0 then Condition.broadcast t.batch_done)
      in
      locked t (fun () ->
          for i = 0 to n - 1 do
            Queue.add (job i) t.queue
          done;
          Condition.broadcast t.work_ready);
      (* The calling domain works through the queue too, then waits for
         the stragglers executing on worker domains. *)
      Mutex.lock t.m;
      let rec drain () =
        match Queue.take_opt t.queue with
        | Some job ->
          Mutex.unlock t.m;
          job ();
          Atomic.incr t.executed.(0);
          Mutex.lock t.m;
          drain ()
        | None -> if !remaining > 0 then (Condition.wait t.batch_done t.m; drain ())
      in
      drain ();
      Mutex.unlock t.m;
      Array.to_list (Array.map Option.get results)
    end
  end

let run t fs =
  let rs = try_run t fs in
  (* the lowest-indexed failure, i.e. the first Error in list order —
     the same exception a sequential [List.map] would surface first *)
  List.iter
    (function
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt | Ok _ -> ())
    rs;
  List.map (function Ok v -> v | Error _ -> assert false) rs

(** Scoped pool: create, run [f], always shut the workers down — the
    discipline long-lived drivers (the compile daemon, bench harnesses)
    want so an escaping exception cannot leak parked domains. *)
let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(** Pool width for the CLI default: [SP_JOBS] when set to a positive
    integer, else the runtime's recommendation for this machine. *)
let default_jobs () =
  match Option.bind (Sys.getenv_opt "SP_JOBS") int_of_string_opt with
  | Some n when n >= 1 -> n
  | _ -> Domain.recommended_domain_count ()
