(** The differential oracle: one W2 source program through parse →
    typecheck → lower → compile → static check → validate → simulate →
    interpreter equivalence, with every failure mode mapped to a
    verdict. Total (never raises), deterministic, self-contained
    (seeded array init, no channel inputs) — so banked [.w2] repros
    replay bit-identically. *)

type kind =
  | Pass
  | Crash         (** uncaught exception anywhere in the pipeline *)
  | Invalid       (** static resource check or validator rejected *)
  | Mismatch      (** simulation disagreed with the interpreter *)
  | Ii_bound      (** pipelined II outside [mii <= ii <= seq_len] *)
  | Jobs_diverge  (** [-j 1] vs [-j 2] fingerprints differ *)
  | Cache_diverge (** compiling through a shared schedule cache (cold
                      then warm) changed the output fingerprint *)
  | Opt_diverge   (** certifying with conflict learning on vs. off
                      produced different per-loop optimality verdicts *)
  | Degraded      (** a loop fell back (caught error / spent budget) *)
  | Hang          (** simulation exceeded the cycle watchdog *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type verdict = { kind : kind; detail : string }

type config = {
  machine : Sp_machine.Machine.t;
  fuel : int option;   (** per-loop compile-fuel watchdog *)
  max_cycles : int;    (** simulation cycle watchdog *)
  check_jobs : bool;   (** run the [-j 1] vs [-j 2] divergence oracle *)
  check_cache : bool;  (** run the cold/warm schedule-cache oracle *)
  check_opt : bool;    (** run the learn-on vs learn-off exact-certifier
                           oracle (budget-capped; off by default — the
                           campaign samples seeds) *)
  degraded_ok : bool;  (** fault-sweep mode: degradation is graceful *)
}

val default : config
(** warp machine, unlimited fuel, 200k-cycle watchdog, jobs and cache
    checks on, opt check off, degradation counted as a failure. *)

val opt_fuel : int
(** Certifier budget per loop for the [check_opt] compiles — capped
    well below {!Sp_opt.Certify.default_fuel} so a fuzzing campaign
    stays fast; intervals left [Unknown] on either side are
    incomparable and never diverge. *)

type outcome = {
  verdict : verdict;
  result : Sp_core.Compile.result option;
      (** the [-j 1] compilation when one was produced; read numbers
          off it and drop it — the campaign retains nothing per
          program *)
}

val site : string
(** ["camp.oracle"] — the oracle's own fault site, hit once per
    invocation. Arming it makes the oracle raise deterministically,
    exercising the crash-capture and crash-banking paths without a
    real compiler bug. *)

val init_state : Sp_ir.Machine_state.t -> Sp_ir.Program.t -> unit
(** The fixed deterministic array initialization both engines run
    under (also used when replaying banked repros). *)

val ii_violation : Sp_core.Compile.loop_report -> string option
(** [Some reason] when a pipelined loop's II is impossible
    ([ii < mii]) or pointless ([ii > seq_len]). *)

val degradation : Sp_core.Compile.loop_report -> string option
(** [Some reason] when the loop degraded (caught internal error or
    exhausted budget). *)

val run : config -> string -> outcome
(** The full oracle on one source text. Never raises. *)

val kind_of : config -> string -> kind
(** Just the verdict kind — the minimizer's predicate. *)
