(** Test entry point. Suites are grouped per library layer; run with
    [dune runtest]. Set [ALCOTEST_QUICK_TESTS=1] to skip the slow
    workload simulations. *)

let () =
  Alcotest.run "softpipe"
    [
      ("util", Test_util.suite);
      ("machine", Test_machine.suite);
      ("ir", Test_ir.suite);
      ("interp", Test_interp.suite);
      ("lang", Test_lang.suite);
      ("vliw", Test_vliw.suite);
      ("array", Test_array.suite);
      ("ddg", Test_ddg.suite);
      ("sched", Test_sched.suite);
      ("modsched", Test_modsched.suite);
      ("mve", Test_mve.suite);
      ("compile", Test_compile.suite);
      ("opt", Test_opt.suite);
      ("kernels", Test_kernels.suite);
      ("validate", Test_validate.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
      ("campaign", Test_campaign.suite);
    ]
