(** Hand-written lexer for the W2-like language.

    Comments are Pascal-style [{ ... }] and line comments [-- ...]. *)

exception Error of Token.pos * string

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int;  (* offset of beginning of current line *)
}

let make src = { src; off = 0; line = 1; bol = 0 }

let pos st : Token.pos = { Token.line = st.line; col = st.off - st.bol + 1 }

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.bol <- st.off + 1
  | _ -> ());
  st.off <- st.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '{' ->
    let p = pos st in
    let rec go () =
      match peek st with
      | None -> raise (Error (p, "unterminated comment"))
      | Some '}' -> advance st
      | Some _ ->
        advance st;
        go ()
    in
    advance st;
    go ();
    skip_ws st
  | Some '-'
    when st.off + 1 < String.length st.src && st.src.[st.off + 1] = '-' ->
    let rec go () =
      match peek st with
      | None | Some '\n' -> ()
      | Some _ ->
        advance st;
        go ()
    in
    go ();
    skip_ws st
  | _ -> ()

let lex_number st =
  let start = st.off in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match peek st with
    | Some '.'
      when st.off + 1 < String.length st.src
           && is_digit st.src.[st.off + 1] ->
      advance st;
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | _ -> false
  in
  let is_float =
    match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done;
      true
    | _ -> is_float
  in
  let text = String.sub st.src start (st.off - start) in
  if is_float then Token.FLOAT (float_of_string text)
  else Token.INT (int_of_string text)

let next st : Token.pos * Token.t =
  skip_ws st;
  let p = pos st in
  match peek st with
  | None -> (p, Token.EOF)
  | Some c when is_digit c -> (p, lex_number st)
  | Some c when is_alpha c ->
    let start = st.off in
    while (match peek st with Some c -> is_alnum c | None -> false) do
      advance st
    done;
    let text = String.lowercase_ascii (String.sub st.src start (st.off - start)) in
    (p, Option.value ~default:(Token.IDENT text) (List.assoc_opt text Token.keywords))
  | Some c ->
    advance st;
    let two next_c tok_if tok_else =
      if peek st = Some next_c then begin
        advance st;
        tok_if
      end
      else tok_else
    in
    let t =
      match c with
      | ';' -> Token.SEMI
      | ',' -> Token.COMMA
      | '(' -> Token.LPAREN
      | ')' -> Token.RPAREN
      | '[' -> Token.LBRACKET
      | ']' -> Token.RBRACKET
      | '+' -> Token.PLUS
      | '-' -> Token.MINUS
      | '*' -> Token.STAR
      | '/' -> Token.SLASH
      | '=' -> Token.EQ
      | ':' -> two '=' Token.ASSIGN Token.COLON
      | '.' -> two '.' Token.DOTDOT Token.DOT
      | '<' -> two '=' Token.LE (two '>' Token.NE Token.LT)
      | '>' -> two '=' Token.GE Token.GT
      | _ -> raise (Error (p, Printf.sprintf "unexpected character %C" c))
    in
    (p, t)

(** Tokenize a whole source string. *)
let tokenize src =
  let st = make src in
  let rec go acc =
    let p, t = next st in
    if t = Token.EOF then List.rev ((p, t) :: acc) else go ((p, t) :: acc)
  in
  go []
