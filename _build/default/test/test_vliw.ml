(** Tests for the VLIW target: assembler, the simulator's timing
    contract, and the static resource checker. *)

open Sp_ir
module Inst = Sp_vliw.Inst
module Prog = Sp_vliw.Prog
module Sim = Sp_vliw.Sim
module Check = Sp_vliw.Check
module Opkind = Sp_machine.Opkind

let m = Sp_machine.Machine.warp

(* a tiny hand-assembled program over a one-segment context *)
type ctx = {
  p : Program.t;
  a : Memseg.t;
  sup : Vreg.Supply.supply;
  ops : Op.Supply.supply;
}

let mk_ctx () =
  let b = Builder.create "ctx" in
  let a = Builder.farray b "a" 16 in
  let p = Builder.finish b in
  { p; a; sup = p.Program.vregs; ops = p.Program.ops }

let freg c = Vreg.Supply.fresh c.sup Vreg.F

let fconst c x dst = Op.Supply.mk c.ops ~dst ~imm:(Op.Fimm x) Opkind.Fconst
let fadd c dst x y = Op.Supply.mk c.ops ~dst ~srcs:[ x; y ] Opkind.Fadd

let store c v off =
  Op.Supply.mk c.ops ~srcs:[ v ]
    ~addr:{ Op.seg = c.a; base = None; idx = None; off; sub = None }
    Opkind.Store

let run c code = Sim.run m c.p code

let test_write_latency_visibility () =
  (* an adder result is invisible before its 7-cycle latency elapses *)
  let c = mk_ctx () in
  let x = freg c and y = freg c and z = freg c in
  let asm = Prog.Asm.create () in
  Prog.Asm.inst asm [ fconst c 1.5 x; fconst c 0.25 y ];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [ fadd c y x x ];      (* issues at 2, lands at 9 *)
  Prog.Asm.inst asm [ fadd c z y y ];      (* reads y at 3: still 0.25! *)
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [ store c y 0 ];       (* at 10: sees 3.0 *)
  Prog.Asm.inst asm [ store c z 1 ];       (* z = 0 + 0 *)
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let r = run c (Prog.Asm.finish asm) in
  let arr = Machine_state.get_farray r.Sim.state c.a in
  Alcotest.(check (float 0.0)) "landed value" 3.0 arr.(0);
  Alcotest.(check (float 0.0)) "early read saw the old value" 0.5 arr.(1)

let test_store_load_same_cycle () =
  (* a load issued with a store to the same address reads the OLD value *)
  let c = mk_ctx () in
  let one = freg c and got = freg c in
  let load dst off =
    Op.Supply.mk c.ops ~dst
      ~addr:{ Op.seg = c.a; base = None; idx = None; off; sub = None }
      Opkind.Load
  in
  let asm = Prog.Asm.create () in
  Prog.Asm.inst asm [ fconst c 9.0 one ];
  Prog.Asm.inst asm [];
  (* same instruction: store a[0] := 9.0 and load a[0] *)
  Prog.Asm.inst asm [ store c one 0; load got 0 ];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [ store c got 1 ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let r = run c (Prog.Asm.finish asm) in
  let arr = Machine_state.get_farray r.Sim.state c.a in
  Alcotest.(check (float 0.0)) "store landed" 9.0 arr.(0);
  Alcotest.(check (float 0.0)) "load saw the old value" 0.0 arr.(1)

let test_ctr_loop () =
  (* hardware counter: body executes exactly [n] times *)
  let c = mk_ctx () in
  let acc = freg c and one = freg c in
  let asm = Prog.Asm.create () in
  Prog.Asm.inst asm [ fconst c 1.0 one ];
  Prog.Asm.inst asm [ fconst c 0.0 acc ];
  Prog.Asm.inst asm ~ctl:(Inst.CtrSet { ctr = 0; value = 5 }) [];
  let top = Prog.Asm.fresh_label asm in
  Prog.Asm.place asm top;
  Prog.Asm.inst asm [ fadd c acc acc one ];
  (* wait out the adder before the next accumulation *)
  for _ = 1 to 6 do
    Prog.Asm.inst asm []
  done;
  Prog.Asm.attach_ctl asm (Inst.CtrLoop { ctr = 0; target = top });
  Prog.Asm.inst asm [ store c acc 0 ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let r = run c (Prog.Asm.finish asm) in
  let arr = Machine_state.get_farray r.Sim.state c.a in
  Alcotest.(check (float 0.0)) "5 iterations" 5.0 arr.(0)

let test_ctr_jump_lt () =
  let c = mk_ctx () in
  let flag = freg c in
  let asm = Prog.Asm.create () in
  let skip = Prog.Asm.fresh_label asm in
  Prog.Asm.inst asm [ fconst c 0.0 flag ];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm ~ctl:(Inst.CtrSet { ctr = 1; value = 0 }) [];
  Prog.Asm.inst asm ~ctl:(Inst.CtrJumpLt { ctr = 1; bound = 1; target = skip }) [];
  Prog.Asm.inst asm [ fconst c 7.0 flag ]; (* skipped *)
  Prog.Asm.place asm skip;
  Prog.Asm.inst asm [ store c flag 0 ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let r = run c (Prog.Asm.finish asm) in
  let arr = Machine_state.get_farray r.Sim.state c.a in
  Alcotest.(check (float 0.0)) "guard skipped the body" 0.0 arr.(0)

let test_write_conflict_detected () =
  let c = mk_ctx () in
  let x = freg c in
  let asm = Prog.Asm.create () in
  (* two writes landing on x in the same cycle *)
  Prog.Asm.inst asm [ fconst c 1.0 x; fconst c 2.0 x ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let code = Prog.Asm.finish asm in
  match run c code with
  | exception Sim.Write_conflict _ -> ()
  | _ -> Alcotest.fail "expected a write-port conflict"

let test_cycle_limit () =
  let c = mk_ctx () in
  let asm = Prog.Asm.create () in
  let top = Prog.Asm.fresh_label asm in
  Prog.Asm.place asm top;
  Prog.Asm.inst asm ~ctl:(Inst.Jump top) [];
  let code = Prog.Asm.finish asm in
  match Sim.run ~max_cycles:1000 m c.p code with
  | exception Sim.Cycle_limit _ -> ()
  | _ -> Alcotest.fail "expected the cycle limit to fire"

let test_unplaced_label () =
  let asm = Prog.Asm.create () in
  let l = Prog.Asm.fresh_label asm in
  Prog.Asm.inst asm ~ctl:(Inst.Jump l) [];
  match Prog.Asm.finish asm with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unplaced label must be rejected"

let test_checker_flags_oversubscription () =
  let c = mk_ctx () in
  let x = freg c and y = freg c and z = freg c and w = freg c in
  let asm = Prog.Asm.create () in
  (* two adds in one instruction on the single adder *)
  Prog.Asm.inst asm [ fadd c x y y; fadd c z w w ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let code = Prog.Asm.finish asm in
  match Check.check_prog m code with
  | [ v ] ->
    Alcotest.(check string) "resource" "fadd" v.Check.resource;
    Alcotest.(check int) "used" 2 v.Check.used;
    Alcotest.check_raises "check_exn raises" (Check.Oversubscribed v)
      (fun () -> Check.check_exn m code)
  | _ -> Alcotest.fail "expected exactly one violation"

let test_checker_accepts_legal () =
  let c = mk_ctx () in
  let x = freg c and y = freg c in
  let asm = Prog.Asm.create () in
  Prog.Asm.inst asm [ fadd c x y y ];
  Prog.Asm.inst asm [ fadd c y x x ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  Alcotest.(check int) "no violations" 0
    (List.length (Check.check_prog m (Prog.Asm.finish asm)))

let test_stats () =
  let c = mk_ctx () in
  let x = freg c and y = freg c in
  let asm = Prog.Asm.create () in
  Prog.Asm.inst asm [ fconst c 1.0 x; fconst c 2.0 y ];
  Prog.Asm.inst asm [];
  Prog.Asm.inst asm [ store c x 0 ];
  Prog.Asm.inst asm ~ctl:Inst.Halt [];
  let st = Sp_vliw.Stats.compute m (Prog.Asm.finish asm) in
  Alcotest.(check int) "words" 4 st.Sp_vliw.Stats.words;
  Alcotest.(check int) "ops" 3 st.Sp_vliw.Stats.ops;
  Alcotest.(check int) "empty" 2 st.Sp_vliw.Stats.empty_words;
  Alcotest.(check int) "peak" 2 st.Sp_vliw.Stats.max_ops_per_word;
  Alcotest.(check (float 1e-9)) "mean" 0.75 st.Sp_vliw.Stats.mean_ops_per_word;
  Alcotest.(check (option int)) "mem uses" (Some 1)
    (List.assoc_opt "mem" st.Sp_vliw.Stats.resource_use)

let suite =
  [
    ("write latency visibility", `Quick, test_write_latency_visibility);
    ("store/load same cycle", `Quick, test_store_load_same_cycle);
    ("hardware counter loop", `Quick, test_ctr_loop);
    ("counter guard", `Quick, test_ctr_jump_lt);
    ("write conflict detected", `Quick, test_write_conflict_detected);
    ("cycle limit", `Quick, test_cycle_limit);
    ("unplaced label rejected", `Quick, test_unplaced_label);
    ("checker flags oversubscription", `Quick, test_checker_flags_oversubscription);
    ("checker accepts legal code", `Quick, test_checker_accepts_legal);
    ("occupancy statistics", `Quick, test_stats);
  ]
