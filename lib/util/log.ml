(** Leveled diagnostic logging shared by the compiler passes and the
    driver/benchmark tools.

    Replaces the ad-hoc [SP_DEBUG] [Printf.eprintf] tracing that used
    to be sprinkled through {!Sp_core.Compile}: one switch, three
    levels, all output on stderr so it never corrupts report output.

    The level comes from the [SP_LOG] environment variable ([quiet],
    [info] or [debug]; [SP_DEBUG] being set at all still selects
    [debug], for compatibility with old invocations) and can be
    overridden programmatically with {!set_level}. *)

type level = Quiet | Info | Debug

let int_of_level = function Quiet -> 0 | Info -> 1 | Debug -> 2

let level_of_string = function
  | "quiet" -> Some Quiet
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let current =
  ref
    (match Option.bind (Sys.getenv_opt "SP_LOG") level_of_string with
    | Some l -> l
    | None -> if Sys.getenv_opt "SP_DEBUG" <> None then Debug else Quiet)

let set_level l = current := l
let level () = !current
let enabled l = int_of_level l <= int_of_level !current

(** [logf level fmt ...] writes one line to stderr when [level] is
    enabled; a disabled level costs only the format dispatch. *)
let logf l fmt =
  if enabled l then Printf.eprintf ("[sp] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
