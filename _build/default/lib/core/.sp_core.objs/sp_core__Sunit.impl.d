lib/core/sunit.ml: Array Fmt Hashtbl List Memseg Op Option Sp_ir Sp_machine Sp_vliw Subscript Vreg
