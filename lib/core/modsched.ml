(** The software pipelining scheduler (paper Sections 2.2.1–2.2.2).

    For a candidate initiation interval [s]:

    + each nontrivial strongly connected component is scheduled by
      itself, nodes in a topological ordering of the intra-iteration
      edges, every node placed in the earliest slot inside its
      {e precedence-constrained range} — the legal window derived from
      the already-placed nodes through the precomputed symbolic
      longest-path closure, instantiated at [s]. If a node cannot be
      placed within [s] consecutive slots of its range, the attempt at
      this [s] fails (by modulo-ness it would never fit);
    + the graph is condensed — each component becomes one vertex whose
      reservation is the aggregate of its members at their relative
      offsets — and the resulting acyclic graph is list scheduled
      against the {e modulo} resource reservation table.

    The driver searches initiation intervals from the lower bound
    upward. The paper argues for {e linear} search (schedulability is
    not monotonic in [s], and the lower bound is usually achieved);
    binary search is provided for the ablation of DESIGN.md §5. *)

open Sp_machine

type schedule = {
  s : int;             (** initiation interval *)
  times : int array;   (** issue time per unit, all >= 0 *)
  span : int;          (** max over units of time + len *)
  sc : int;            (** stage count, ceil(span / s) *)
}

(* Wrap check: a [no_wrap] unit (a reduced control construct) must not
   straddle the steady-state boundary — its whole occupancy must fall
   inside one s-window — and must not even touch the window's end:
   the instruction at every window boundary has to stay a plain word so
   that loop control (the kernel back-branch, the pass-counter set at
   the prolog seam) can attach to it without inserting an extra cycle
   into the modulo timeline. An inserted cycle at a seam silently
   shifts every in-flight value crossing it — a bug class caught by the
   random-program equivalence tests. *)
let wrap_ok ~s (u : Sunit.t) ~at =
  (not u.Sunit.no_wrap) || (at mod s) + u.Sunit.len <= s - 1

(** Dependence-graph analysis shared by the interval search: strongly
    connected components, the recurrence lower bound, and the symbolic
    longest-path closure of each nontrivial component (computed once,
    valid for every interval in [rec_mii .. s_max] — the range the
    search actually visits). *)
type analysis = {
  a_scc : Scc.t;
  a_spaths : Spath.t option array;
  a_rec_mii : int;
      (** recurrence bound; [> s_max] when some cycle admits no
          interval within range *)
}

let analyze ~s_max (g : Ddg.t) : analysis =
  let scc =
    Scc.compute
      ~n:(Array.length g.Ddg.units)
      ~succs:(fun v -> List.map (fun (e : Ddg.edge) -> e.dst) g.Ddg.succs.(v))
  in
  let rec_mii = ref 1 in
  let spaths =
    Array.mapi
      (fun c members ->
        if not scc.Scc.nontrivial.(c) then None
        else begin
          let local = Hashtbl.create 16 in
          List.iteri (fun k v -> Hashtbl.replace local v k) members;
          let edges =
            List.filter_map
              (fun (e : Ddg.edge) ->
                match
                  (Hashtbl.find_opt local e.src, Hashtbl.find_opt local e.dst)
                with
                | Some i, Some j -> Some (i, j, e.delay, e.omega)
                | _ -> None)
              g.Ddg.edges
          in
          let n = List.length members in
          let comp_rec = Spath.rec_mii_bound ~n ~edges ~s_max in
          rec_mii := max !rec_mii comp_rec;
          Some (Spath.compute ~n ~edges ~s_min:comp_rec ~s_max)
        end)
      scc.Scc.comps
  in
  { a_scc = scc; a_spaths = spaths; a_rec_mii = !rec_mii }

(* ------------------------------------------------------------------ *)

let () = Sp_util.Fault.register "modsched.place"

(* process-wide scheduler metrics (Sp_obs.Metrics): cumulative over
   every loop of every compilation in the process; the per-loop figures
   live in [stats] / [Compile.loop_report] *)
let m_intervals = Sp_obs.Metrics.counter "modsched.intervals_probed"
let m_fuel = Sp_obs.Metrics.counter "modsched.fuel_spent"
let m_placements = Sp_obs.Metrics.counter "modsched.placements"
let m_backtracks = Sp_obs.Metrics.counter "modsched.backtracks"
let m_searches = Sp_obs.Metrics.counter "modsched.searches"
let m_exhausted = Sp_obs.Metrics.counter "modsched.fuel_exhausted"

(** Fuel accounting: every slot probe against a reservation table
    spends one unit. Exhausting the budget aborts the whole interval
    search — the degradation machinery in {!Sp_core.Compile} then
    reverts the loop to its serial schedule, so a pathological loop
    can bound the compiler's work instead of hanging it. The meter
    keeps counting even without a budget, so a successful search can
    report its total cost (the gap table's cost column). *)
exception Out_of_fuel

type meter = { mutable spent : int; budget : int option }

let unlimited () = { spent = 0; budget = None }

let spend meter =
  meter.spent <- meter.spent + 1;
  match meter.budget with
  | Some b when meter.spent > b -> raise Out_of_fuel
  | _ -> ()

(* Explain support: name a resource for the decision log. *)
let rname (m : Machine.t) rid = (Machine.resource m rid).Machine.rname

let explain_fail (g : Ddg.t) ~s ~unit_id fail =
  if Sp_obs.Explain.enabled () then
    Sp_obs.Explain.record
      (Sp_obs.Explain.Probe_fail
         {
           s;
           unit_id;
           unit_desc = Fmt.str "%a" Sunit.pp g.Ddg.units.(unit_id);
           fail;
         })

let schedule_component ~fuel (m : Machine.t) (g : Ddg.t) ~s ~members
    ~(sp : Spath.t) : int array option =
  ignore m;
  let members = Array.of_list members in
  let k = Array.length members in
  let table = Mrt.Modulo.create m ~s in
  let off = Array.make k (-1) in
  let exception Fail in
  try
    (* members are in sid order = topological order of intra-iteration
       edges (they always point forward in program order) *)
    for v = 0 to k - 1 do
      let lo = ref 0 and hi = ref max_int in
      for w = 0 to k - 1 do
        if off.(w) >= 0 then begin
          (match Spath.query sp ~s w v with
          | Some d -> lo := max !lo (off.(w) + d)
          | None -> ());
          match Spath.query sp ~s v w with
          | Some d -> hi := min !hi (off.(w) - d)
          | None -> ()
        end
      done;
      if !lo > !hi then begin
        explain_fail g ~s ~unit_id:members.(v)
          (Sp_obs.Explain.Window_empty { lo = !lo; hi = !hi });
        raise Fail
      end;
      let u = g.Ddg.units.(members.(v)) in
      let placed = ref false in
      let t = ref !lo in
      while (not !placed) && !t <= !hi && !t < !lo + s do
        spend fuel;
        if Mrt.Modulo.fits table ~at:!t u.Sunit.resv then begin
          Mrt.Modulo.add table ~at:!t u.Sunit.resv;
          off.(v) <- !t;
          Sp_obs.Metrics.incr m_placements;
          Sp_util.Fault.point "modsched.place";
          placed := true
        end
        else incr t
      done;
      if not !placed then begin
        (if Sp_obs.Explain.enabled () then
           let hi' = min !hi (!lo + s - 1) in
           match Mrt.Modulo.last_conflict table with
           | Some (slot, rid) ->
             explain_fail g ~s ~unit_id:members.(v)
               (Sp_obs.Explain.No_slot
                  { lo = !lo; hi = hi'; resource = rname m rid; slot })
           | None ->
             explain_fail g ~s ~unit_id:members.(v)
               (Sp_obs.Explain.Window_empty { lo = !lo; hi = hi' }));
        raise Fail
      end
    done;
    Some off
  with Fail ->
    Sp_obs.Metrics.incr m_backtracks;
    None

let try_schedule_fueled ~fuel (m : Machine.t) (g : Ddg.t) ~(scc : Scc.t)
    ~(spaths : Spath.t option array) ~s : int array option =
  let nc = Scc.num_components scc in
  let units = g.Ddg.units in
  let exception Fail in
  try
    (* 1. schedule each nontrivial component internally *)
    let offsets = Array.make nc [||] in
    for c = 0 to nc - 1 do
      let members = scc.Scc.comps.(c) in
      match spaths.(c) with
      | None -> offsets.(c) <- Array.make (List.length members) 0
      | Some sp -> (
        match schedule_component ~fuel m g ~s ~members ~sp with
        | Some off -> offsets.(c) <- off
        | None -> raise Fail)
    done;
    (* relative offset of a node inside its component *)
    let node_off = Array.make (Array.length units) 0 in
    for c = 0 to nc - 1 do
      List.iteri
        (fun k v -> node_off.(v) <- offsets.(c).(k))
        scc.Scc.comps.(c)
    done;
    (* 2. condense and list schedule against the global modulo table *)
    let table = Mrt.Modulo.create m ~s in
    let start = Array.make nc (-1) in
    (* effective delay of cross-component edges *)
    let cedges = Array.make nc [] in
    List.iter
      (fun (e : Ddg.edge) ->
        let cs = scc.Scc.comp_of.(e.src) and cd = scc.Scc.comp_of.(e.dst) in
        if cs <> cd then
          let d = e.delay - (s * e.omega) + node_off.(e.src) - node_off.(e.dst) in
          cedges.(cd) <- (cs, d) :: cedges.(cd))
      g.Ddg.edges;
    List.iter
      (fun c ->
        let members = scc.Scc.comps.(c) in
        let est =
          List.fold_left
            (fun acc (pc, d) ->
              if start.(pc) < 0 then
                invalid_arg "Modsched: component order not topological";
              max acc (start.(pc) + d))
            0 cedges.(c)
        in
        (* aggregate reservation of the whole component *)
        let resv =
          List.concat_map
            (fun v ->
              List.map
                (fun (o, r) -> (o + node_off.(v), r))
                units.(v).Sunit.resv)
            members
        in
        let wrap_failed = ref false in
        let fits_at t =
          if not (Mrt.Modulo.fits table ~at:t resv) then begin
            wrap_failed := false;
            false
          end
          else if
            not
              (List.for_all
                 (fun v -> wrap_ok ~s units.(v) ~at:(t + node_off.(v)))
                 members)
          then begin
            wrap_failed := true;
            false
          end
          else true
        in
        let placed = ref false in
        let t = ref est in
        while (not !placed) && !t < est + s do
          spend fuel;
          if fits_at !t then begin
            Mrt.Modulo.add table ~at:!t resv;
            start.(c) <- !t;
            Sp_obs.Metrics.incr m_placements;
            Sp_util.Fault.point "modsched.place";
            placed := true
          end
          else incr t
        done;
        if not !placed then begin
          (if Sp_obs.Explain.enabled () then
             let unit_id = List.hd members in
             let lo = est and hi = est + s - 1 in
             if !wrap_failed then
               explain_fail g ~s ~unit_id (Sp_obs.Explain.No_wrap { lo; hi })
             else
               match Mrt.Modulo.last_conflict table with
               | Some (slot, rid) ->
                 explain_fail g ~s ~unit_id
                   (Sp_obs.Explain.No_slot
                      { lo; hi; resource = rname m rid; slot })
               | None ->
                 explain_fail g ~s ~unit_id
                   (Sp_obs.Explain.Window_empty { lo; hi }));
          raise Fail
        end)
      (Scc.topo_components scc);
    let times =
      Array.mapi
        (fun v _ -> start.(scc.Scc.comp_of.(v)) + node_off.(v))
        units
    in
    Some times
  with Fail ->
    Sp_obs.Metrics.incr m_backtracks;
    None

let try_schedule (m : Machine.t) (g : Ddg.t) ~(scc : Scc.t)
    ~(spaths : Spath.t option array) ~s : int array option =
  try_schedule_fueled ~fuel:(unlimited ()) m g ~scc ~spaths ~s

(* ------------------------------------------------------------------ *)

type search = Linear | Binary

type stats = {
  intervals_probed : int;
  fuel_spent : int;
}

type outcome =
  | Scheduled of schedule * stats
  | No_interval of stats
  | Fuel_exhausted of stats

let mk_schedule units ~s times =
  let span =
    Array.fold_left max 1
      (Array.mapi (fun i (u : Sunit.t) -> times.(i) + u.Sunit.len) units)
  in
  { s; times; span; sc = Sp_util.Intmath.ceil_div span s }

(** Search [\[mii, max_ii\]] for the smallest schedulable initiation
    interval under a placement-probe budget. [analysis] must come from
    {!analyze} with [s_max >= max_ii]. *)
let schedule_with_budget ?(search = Linear) ?analysis ?fuel (m : Machine.t)
    (g : Ddg.t) ~mii ~max_ii : outcome =
  let a =
    match analysis with
    | Some a -> a
    | None -> analyze ~s_max:(max mii max_ii) g
  in
  let mii = max mii a.a_rec_mii in
  let meter = { spent = 0; budget = fuel } in
  let probed = ref 0 in
  let last_s = ref 0 in
  let try_s s =
    incr probed;
    last_s := s;
    let r = try_schedule_fueled ~fuel:meter m g ~scc:a.a_scc ~spaths:a.a_spaths ~s in
    (match r with
    | Some times when Sp_obs.Explain.enabled () ->
      let sch = mk_schedule g.Ddg.units ~s times in
      Sp_obs.Explain.record
        (Sp_obs.Explain.Probe_ok { s; span = sch.span; sc = sch.sc })
    | _ -> ());
    r
  in
  let stats () =
    Sp_obs.Metrics.incr m_searches;
    Sp_obs.Metrics.incr ~by:!probed m_intervals;
    Sp_obs.Metrics.incr ~by:meter.spent m_fuel;
    Sp_obs.Trace.instant "modsched.search"
      ~args:(fun () ->
        [ ("intervals_probed", Sp_obs.Trace.I !probed);
          ("fuel_spent", Sp_obs.Trace.I meter.spent) ]);
    { intervals_probed = !probed; fuel_spent = meter.spent }
  in
  try
    match search with
    | Linear ->
      let rec go s =
        if s > max_ii then No_interval (stats ())
        else
          match try_s s with
          | Some times -> Scheduled (mk_schedule g.Ddg.units ~s times, stats ())
          | None -> go (s + 1)
      in
      go (max 1 mii)
    | Binary ->
      (* assumes monotone schedulability — the assumption the paper
         rejects; kept for the ablation *)
      let rec go lo hi best =
        if lo > hi then best
        else
          let mid = (lo + hi) / 2 in
          match try_s mid with
          | Some times ->
            go lo (mid - 1)
              (Some (mk_schedule g.Ddg.units ~s:mid times))
          | None -> go (mid + 1) hi best
      in
      (match go (max 1 mii) max_ii None with
      | Some sched -> Scheduled (sched, stats ())
      | None -> No_interval (stats ()))
  with Out_of_fuel ->
    Sp_obs.Metrics.incr m_exhausted;
    if Sp_obs.Explain.enabled () then
      Sp_obs.Explain.record (Sp_obs.Explain.Fuel_out { s = !last_s });
    Fuel_exhausted (stats ())

(** Unbudgeted search; [None] when no interval in range is schedulable
    (the loop is then left unpipelined). *)
let schedule ?search ?analysis (m : Machine.t) (g : Ddg.t) ~mii ~max_ii :
    schedule option =
  match schedule_with_budget ?search ?analysis m g ~mii ~max_ii with
  | Scheduled (s, _) -> Some s
  | No_interval _ | Fuel_exhausted _ -> None
