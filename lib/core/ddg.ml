(** Data-dependence graph over scheduling units.

    Edges follow the paper's Section 2.1 model: each edge carries a
    {e delay} [d] and a {e minimum iteration difference} [omega] (the
    paper's [p]), meaning that for schedule [sigma] and initiation
    interval [s]:

    {v  sigma(dst) - sigma(src)  >=  d - s * omega  v}

    Delays can be zero or negative (anti-dependences on a machine whose
    reads happen at issue and writes [latency] cycles later).

    Register dependences, memory dependences through the subscript
    analysis, channel ordering (receives and sends on one channel are
    kept in program order by treating the queue as an always-aliasing
    pseudo-segment), and barrier ordering are all generated here.

    The builder also identifies the {e modulo variable expansion}
    candidates (Section 2.3): registers that are "redefined at the
    beginning of every iteration", i.e. whose first access in the body
    is a definition and which are not live outside the loop. For those,
    the carried anti- and output-dependences are omitted ("we pretend
    that every iteration of the loop has a dedicated register location
    … and remove all inter-iteration precedence constraints between
    operations on these variables"), and {!Mve} later assigns them
    rotating register copies. *)

open Sp_ir

type edge = { src : int; dst : int; delay : int; omega : int }

type t = {
  units : Sunit.t array;
  edges : edge list;
  succs : edge list array;
  preds : edge list array;
  mve_candidates : Vreg.Set.t;
}

let pp_edge ppf e =
  Fmt.pf ppf "u%d -> u%d (d=%d, w=%d)" e.src e.dst e.delay e.omega

let pp ppf g =
  Array.iter (fun u -> Fmt.pf ppf "%a@." Sunit.pp u) g.units;
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_edge e) g.edges

(** Completion time of a unit relative to its issue: when its last
    instruction slot, last register write and last memory effect are all
    done. Used for barrier ordering and block lengths. *)
let completion (u : Sunit.t) =
  let m = ref u.len in
  List.iter (fun (_, t) -> if t > !m then m := t) u.defs;
  List.iter (fun (e : Sunit.mem_eff) -> if e.at + 1 > !m then m := e.at + 1) u.mems;
  !m

(* Pseudo-segments representing the communication queues, so channel
   operations stay ordered like always-aliasing memory accesses. *)
let chan_seg ~out ch : Memseg.t =
  {
    Memseg.sid = -1 - ch - (if out then 100 else 0);
    sname = (if out then "chout" else "chin") ^ string_of_int ch;
    size = 0;
    elt = Memseg.Float_elt;
    independent = false;
  }

(** Memory effects of a unit including channel pseudo-effects. *)
let effects (u : Sunit.t) : Sunit.mem_eff list =
  let chan_effs =
    match u.payload with
    | Sunit.P_op op -> (
      match op.Op.kind with
      | Sp_machine.Opkind.Recv ch ->
        [ { Sunit.seg = chan_seg ~out:false ch; write = true; sub = None;
            at = 0; summary = false } ]
      | Sp_machine.Opkind.Send ch ->
        [ { Sunit.seg = chan_seg ~out:true ch; write = true; sub = None;
            at = 0; summary = false } ]
      | _ -> [])
    | _ -> []
  in
  u.mems @ chan_effs

type access = { a_unit : int; a_def : bool; a_time : int; a_pos : int }
(* [a_pos]: global program-order position used for tie-breaking; uses of
   a unit sort before its defs. *)

let build ?(mve = true) ?(live_out = fun (_ : Vreg.t) -> false)
    (units : Sunit.t array) : t =
  let n = Array.length units in
  (* --- collect per-register access streams ------------------------- *)
  let reg_accesses : (int, access list) Hashtbl.t = Hashtbl.create 64 in
  let regs : (int, Vreg.t) Hashtbl.t = Hashtbl.create 64 in
  let push (r : Vreg.t) acc =
    Hashtbl.replace regs r.Vreg.id r;
    let l = Option.value ~default:[] (Hashtbl.find_opt reg_accesses r.Vreg.id) in
    Hashtbl.replace reg_accesses r.Vreg.id (acc :: l)
  in
  Array.iteri
    (fun i (u : Sunit.t) ->
      List.iter
        (fun (r, t) -> push r { a_unit = i; a_def = false; a_time = t; a_pos = 2 * i })
        u.uses;
      List.iter
        (fun (r, t) -> push r { a_unit = i; a_def = true; a_time = t; a_pos = (2 * i) + 1 })
        u.defs)
    units;
  (* --- MVE candidates ---------------------------------------------- *)
  let candidates = ref Vreg.Set.empty in
  if mve then
    Hashtbl.iter
      (fun rid accs ->
        let accs =
          List.sort (fun a b -> compare a.a_pos b.a_pos) (List.rev accs)
        in
        let r = Hashtbl.find regs rid in
        match accs with
        | { a_def = true; _ } :: _ when not (live_out r) ->
          candidates := Vreg.Set.add r !candidates
        | _ -> ())
      reg_accesses;
  let is_candidate (r : Vreg.t) = Vreg.Set.mem r !candidates in
  (* --- edge accumulation, strongest-per-(src,dst,omega) ------------ *)
  (* A negative intra-iteration delay licenses the successor to issue
     before the predecessor, trusting that cycle distance equals
     instruction-word distance (reads at issue, writes land a latency
     later). A unit that expands at emission (an inner loop) re-executes
     its words, so any such unit scheduled between the two issue points
     stretches the cycle distance past the word distance and the
     in-flight-write-over-read overlap resolves the wrong way. When the
     body contains an expanding unit, negative same-iteration delays
     are therefore clamped to zero: issue order then implies cycle
     order under any monotone word-to-cycle mapping. Carried edges
     need no clamp — the restart interval spans the whole (dynamic)
     body, covering any stretch. *)
  let expanding_present = Array.exists Sunit.expands units in
  let acc : (int * int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let edge src dst delay omega =
    let delay =
      if expanding_present && omega = 0 && delay < 0 then 0 else delay
    in
    if src = dst && omega = 0 then ()
    else
      let key = (src, dst, omega) in
      match Hashtbl.find_opt acc key with
      | Some d when d >= delay -> ()
      | _ -> Hashtbl.replace acc key delay
  in
  (* A reduced loop's mid slot expands to the whole dynamic execution
     at emission, so an operation that must access a register before
     the loop's body does (anti- or output-dependence into the loop)
     cannot rely on latency slack alone: scheduled at or after the mid
     slot it would be emitted after the expansion and run after every
     iteration. Such edges are clamped so the predecessor issues
     strictly before the mid. *)
  let edge_into_def src dst delay omega =
    let delay =
      match units.(dst).Sunit.payload with
      | Sunit.P_loop { prolog; _ } -> max delay (1 - Array.length prolog)
      | _ -> delay
    in
    edge src dst delay omega
  in
  (* --- register dependences ---------------------------------------- *)
  Hashtbl.iter
    (fun rid accs ->
      let accs =
        List.sort (fun a b -> compare a.a_pos b.a_pos) (List.rev accs)
      in
      let r = Hashtbl.find regs rid in
      let defs = List.filter (fun a -> a.a_def) accs in
      (match defs with
      | [] -> () (* live-in only: no ordering needed *)
      | firstdef :: _ ->
        let lastdef = List.nth defs (List.length defs - 1) in
        (* same-iteration edges *)
        let rec same_iter = function
          | [] -> ()
          | a :: rest ->
            (if a.a_def then
               (* flow to uses up to next def; output to next def *)
               let rec scan = function
                 | [] -> ()
                 | b :: more ->
                   if b.a_def then
                     edge_into_def a.a_unit b.a_unit (a.a_time - b.a_time + 1) 0
                   else begin
                     edge a.a_unit b.a_unit (a.a_time - b.a_time) 0;
                     scan more
                   end
               in
               scan rest
             else
               (* anti to the next def of ANOTHER unit. A def by the
                  use's own unit (a construct that both reads and
                  rewrites the register, or a dual-time def entry) must
                  not stop the scan: it would only produce a skipped
                  self edge, and the unit's output edge to the next
                  def bounds that def against the unit's WRITE time,
                  not against this read — which can be later. *)
               match
                 List.find_opt
                   (fun b -> b.a_def && b.a_unit <> a.a_unit)
                   rest
               with
               | Some d ->
                 edge_into_def a.a_unit d.a_unit (a.a_time - d.a_time + 1) 0
               | None -> ());
            same_iter rest
        in
        same_iter accs;
        (* carried edges (omega = 1) *)
        if not (is_candidate r) then begin
          (* flow: last def feeds uses that precede the first def *)
          List.iter
            (fun a ->
              if (not a.a_def) && a.a_pos < firstdef.a_pos then
                edge lastdef.a_unit a.a_unit (lastdef.a_time - a.a_time) 1)
            accs;
          (* anti: uses at-or-after the last def must finish before the
             next iteration's first def *)
          List.iter
            (fun a ->
              if (not a.a_def) && a.a_pos > lastdef.a_pos then
                edge_into_def a.a_unit firstdef.a_unit
                  (a.a_time - firstdef.a_time + 1)
                  1)
            accs;
          (* output: last def before next iteration's first def *)
          edge_into_def lastdef.a_unit firstdef.a_unit
            (lastdef.a_time - firstdef.a_time + 1)
            1
        end))
    reg_accesses;
  (* --- memory and channel dependences ------------------------------- *)
  let effs =
    Array.mapi
      (fun i u -> List.map (fun e -> (i, e)) (effects u))
      units
    |> Array.to_list |> List.concat
  in
  let mem_delay (a : Sunit.mem_eff) (b : Sunit.mem_eff) =
    (* store->load and store->store need one full cycle; load->store may
       share a cycle (stores commit at end of cycle) *)
    if a.write then a.at - b.at + 1 else a.at - b.at
  in
  List.iter
    (fun (i, (a : Sunit.mem_eff)) ->
      List.iter
        (fun (j, (b : Sunit.mem_eff)) ->
          if
            a.seg.Memseg.sid = b.seg.Memseg.sid
            && (a.write || b.write)
            && not (i = j && a == b && not a.write)
          then
            let dist =
              match (a.sub, b.sub) with
              | Some sa, Some sb -> Subscript.distance ~from:sa ~to_:sb
              | _ -> Subscript.Unknown
            in
            match dist with
            | Subscript.Never -> ()
            | Subscript.Exactly p ->
              if p > 0 then edge i j (mem_delay a b) p
              else if p = 0 && i < j then edge i j (mem_delay a b) 0
              else if p = 0 && i = j && a != b then
                (* two accesses in one unit at fixed relative times *)
                ()
            | Subscript.Unknown ->
              if
                a.seg.Memseg.independent
                && not (a.summary || b.summary)
              then ()
              else if i < j then edge i j (mem_delay a b) 0
              else if i > j then edge i j (mem_delay a b) 1
              else (* i = j: conservative self dependence across iterations *)
                edge i j (mem_delay a b) 1)
        effs)
    effs;
  (* --- barriers ------------------------------------------------------ *)
  Array.iteri
    (fun i (u : Sunit.t) ->
      if u.barrier then
        for j = 0 to n - 1 do
          if j < i then edge j i (completion units.(j)) 0
          else if j > i then edge i j (completion u) 0
        done)
    units;
  (* --- assemble ------------------------------------------------------ *)
  let edges =
    Hashtbl.fold
      (fun (src, dst, omega) delay l -> { src; dst; delay; omega } :: l)
      acc []
  in
  if Sp_obs.Cost.enabled () then
    Sp_obs.Cost.add Sp_obs.Cost.Ddg_edge (List.length edges);
  let succs = Array.make n [] and preds = Array.make n [] in
  List.iter
    (fun e ->
      succs.(e.src) <- e :: succs.(e.src);
      preds.(e.dst) <- e :: preds.(e.dst))
    edges;
  { units; edges; succs; preds; mve_candidates = !candidates }

(** Restriction to intra-iteration edges, as used by basic-block
    compaction and by the topological ordering inside strongly
    connected components. *)
let intra_edges g = List.filter (fun e -> e.omega = 0) g.edges
