(** Source-level loop unrolling — the baseline the paper compares
    software pipelining against in Section 5.1 (trace scheduling
    "relies primarily on source code unrolling"). Constant-bound loops
    are rewritten into groups of [k] substituted body copies plus a
    residue; run-time-bound loops are left alone. *)

val program : int -> Ast.program -> Ast.program
(** Unroll every constant-bound loop [k] times ([k <= 1] is the
    identity). *)

val compile_source : k:int -> string -> Sp_ir.Program.t
(** Parse, unroll, check, lower — mirroring
    {!Lower.compile_source}. *)
