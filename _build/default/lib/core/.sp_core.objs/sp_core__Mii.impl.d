lib/core/mii.ml: Array List Machine Sp_machine Sp_util Sunit
