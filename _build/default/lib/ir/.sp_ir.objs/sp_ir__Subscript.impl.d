lib/ir/subscript.ml: Fmt Int List Printf String Vreg
