(** Observability-layer tests: the JSON value type round-trips through
    its own strict parser, tracing is inert when disabled and faithful
    when enabled, the metrics registry keeps handles stable across
    resets, and schedule-quality profiles expose the fields the bench
    harness and CI validators rely on.

    Tracing and metrics are process-global; every test that enables
    tracing disables it again so the rest of the suite runs with the
    zero-cost path. *)

open Sp_obs
module C = Sp_core.Compile
module Machine = Sp_machine.Machine

(* ---- Json ----------------------------------------------------------- *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("n", Json.Int (-42));
      ("x", Json.Float 2.5);
      ("s", Json.Str "hi \"there\"\\ \n\t \x01");
      ("l", Json.List [ Json.Int 1; Json.Str "two"; Json.Obj [] ]);
      ("o", Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ]);
    ]

let rec json_eq a b =
  match (a, b) with
  | Json.Null, Json.Null -> true
  | Json.Bool x, Json.Bool y -> x = y
  | Json.Int x, Json.Int y -> x = y
  | Json.Float x, Json.Float y -> Float.abs (x -. y) < 1e-9
  | Json.Int x, Json.Float y | Json.Float y, Json.Int x ->
    Float.abs (float_of_int x -. y) < 1e-9
  | Json.Str x, Json.Str y -> x = y
  | Json.List x, Json.List y ->
    List.length x = List.length y && List.for_all2 json_eq x y
  | Json.Obj x, Json.Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_eq v v') x y
  | _ -> false

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      let s = Json.to_string ~pretty sample in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip pretty=%b" pretty)
        true
        (json_eq sample (Json.of_string s)))
    [ false; true ]

let test_json_ordering () =
  (* objects serialize in insertion order — the determinism the bench
     harness relies on for byte-stable artifacts *)
  Alcotest.(check string)
    "insertion order" {|{"b":2,"a":1}|}
    (Json.to_string (Json.Obj [ ("b", Json.Int 2); ("a", Json.Int 1) ]))

let test_json_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "1 x"; "\"\\q\""; "nul" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | _ -> Alcotest.failf "parser accepted %S" s
      | exception Json.Parse_error _ -> ())
    bad;
  Alcotest.check_raises "non-finite float"
    (Invalid_argument "Json: non-finite float has no JSON representation")
    (fun () -> ignore (Json.to_string (Json.Float Float.nan)))

let test_json_error_positions () =
  (* parse errors carry 1-based line and column of the offending byte,
     so a hand-edited artifact fails with an actionable message *)
  List.iter
    (fun (src, msg) ->
      match Json.of_string src with
      | _ -> Alcotest.failf "parser accepted %S" src
      | exception Json.Parse_error got ->
        Alcotest.(check string) (Printf.sprintf "position for %S" src) msg got)
    [
      ("{", "line 1, column 2: expected '\"', found end of input");
      ("[1,]", "line 1, column 4: unexpected ']'");
      ("{\n  \"a\": }", "line 2, column 8: unexpected '}'");
      ("nul", "line 1, column 1: bad literal (wanted null)");
      ("1 x", "line 1, column 3: trailing garbage");
      ("{\"a\":1,\n\"b\":[1,\n2,]}", "line 3, column 3: unexpected ']'");
    ]

let test_json_member_path () =
  let j = Json.of_string {|{"a":{"b":[10,20]},"c":3}|} in
  Alcotest.(check bool)
    "member c" true
    (Json.member "c" j = Some (Json.Int 3));
  Alcotest.(check bool) "member missing" true (Json.member "z" j = None);
  Alcotest.(check bool)
    "path a.b" true
    (match Json.path [ "a"; "b" ] j with Some (Json.List _) -> true | _ -> false);
  Alcotest.(check bool) "path dead end" true (Json.path [ "c"; "x" ] j = None)

(* ---- Trace ---------------------------------------------------------- *)

let span_name = function
  | Trace.Span { name; _ } | Trace.Instant { name; _ } -> name

let test_trace_disabled () =
  Trace.enable ();
  Trace.disable ();
  let forced = ref false in
  let v =
    Trace.span ~args:(fun () -> forced := true; []) "off" (fun () -> 7)
  in
  Trace.instant ~args:(fun () -> forced := true; []) "off2";
  Alcotest.(check int) "span returns value" 7 v;
  Alcotest.(check bool) "no events buffered" true (Trace.events () = []);
  Alcotest.(check bool) "args thunk not forced" false !forced

let test_trace_enabled () =
  Trace.enable ();
  let v =
    Trace.span ~args:(fun () -> [ ("k", Trace.I 1) ]) "outer" (fun () ->
        Trace.instant "mid";
        Trace.span "inner" (fun () -> 42))
  in
  Trace.disable ();
  Alcotest.(check int) "nested result" 42 v;
  let evs = Trace.events () in
  Alcotest.(check (list string))
    "start-time order" [ "outer"; "mid"; "inner" ] (List.map span_name evs);
  (match evs with
  | Trace.Span { args; dur; _ } :: _ ->
    Alcotest.(check bool) "args recorded" true (args = [ ("k", Trace.I 1) ]);
    Alcotest.(check bool) "non-negative duration" true (Int64.compare dur 0L >= 0)
  | _ -> Alcotest.fail "first event is not the outer span");
  match Json.member "traceEvents" (Trace.to_chrome ()) with
  | Some (Json.List l) ->
    Alcotest.(check int) "chrome event count" 3 (List.length l)
  | _ -> Alcotest.fail "to_chrome lacks traceEvents"

let test_trace_error_span () =
  Trace.enable ();
  (try ignore (Trace.span "boom" (fun () -> failwith "bang")) with
  | Failure m -> Alcotest.(check string) "re-raised" "bang" m);
  Trace.disable ();
  match Trace.events () with
  | [ Trace.Span { name = "boom"; args; _ } ] ->
    Alcotest.(check bool)
      "error attribute" true
      (List.mem_assoc "error" args)
  | _ -> Alcotest.fail "escaping exception did not record a span"

let test_trace_compile_coverage () =
  (* every compile phase shows up as a span — the w2c --trace contract *)
  Trace.enable ();
  let b = Sp_ir.Builder.create "cov" in
  let a = Sp_ir.Builder.farray b "a" 48 in
  let k = Sp_ir.Builder.fconst b 2.0 in
  Sp_ir.Builder.for_ b (Sp_ir.Region.Const 40) (fun i ->
      let x = Sp_ir.Builder.load_iv b a i 0 in
      Sp_ir.Builder.store_iv b a i 0 (Sp_ir.Builder.fmul b x k));
  ignore (C.program Machine.warp (Sp_ir.Builder.finish b));
  Trace.disable ();
  let names = List.map span_name (Trace.events ()) in
  List.iter
    (fun phase ->
      Alcotest.(check bool)
        (phase ^ " span present") true (List.mem phase names))
    [
      "compile"; "compile.ddg"; "compile.compact"; "compile.mii";
      "compile.modsched"; "compile.mve"; "compile.emit"; "compile.validate";
    ]

(* ---- Metrics -------------------------------------------------------- *)

let test_metrics_counter_gauge () =
  let c = Metrics.counter "test.obs.hits" in
  let c' = Metrics.counter "test.obs.hits" in
  Metrics.incr c;
  Metrics.incr ~by:4 c';
  Alcotest.(check int)
    "same name, same cell" 5 (Metrics.counter_value c);
  let g = Metrics.gauge "test.obs.level" in
  Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge" 2.5 (Metrics.gauge_value g);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument
       "Sp_obs.Metrics: \"test.obs.hits\" already registered with another type")
    (fun () -> ignore (Metrics.gauge "test.obs.hits"))

let test_metrics_snapshot () =
  let h = Metrics.histogram ~lo:0. ~width:1. ~buckets:4 "test.obs.dist" in
  List.iter (Sp_util.Histogram.add h) [ 0.5; 1.5; 3.5 ];
  let j = Metrics.snapshot () in
  Alcotest.(check bool)
    "schema_version" true
    (Json.member "schema_version" j = Some (Json.Int 1));
  match Json.member "metrics" j with
  | Some (Json.Obj kvs) ->
    let names = List.map fst kvs in
    Alcotest.(check (list string))
      "sorted names" (List.sort compare names) names;
    Alcotest.(check bool)
      "histogram count serialized" true
      (Json.path [ "metrics"; "test.obs.dist"; "count" ] j = Some (Json.Int 3))
  | _ -> Alcotest.fail "snapshot lacks a metrics object"

let test_metrics_reset () =
  let c = Metrics.counter "test.obs.resettable" in
  Metrics.incr ~by:9 c;
  Metrics.reset ();
  Alcotest.(check int) "zeroed" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.counter_value c)

(* ---- Profile -------------------------------------------------------- *)

let compiled_report () =
  let b = Sp_ir.Builder.create "prof" in
  let a = Sp_ir.Builder.farray b "a" 48 in
  let k = Sp_ir.Builder.fconst b 1.5 in
  Sp_ir.Builder.for_ b (Sp_ir.Region.Const 40) (fun i ->
      let x = Sp_ir.Builder.load_iv b a i 0 in
      Sp_ir.Builder.store_iv b a i 0 (Sp_ir.Builder.fadd b x k));
  let r = C.program Machine.warp (Sp_ir.Builder.finish b) in
  match r.C.loops with
  | lr :: _ -> lr
  | [] -> Alcotest.fail "no loop report"

let test_profile_loop () =
  let lr = compiled_report () in
  let lp = C.profile_loop Machine.warp lr in
  Alcotest.(check string) "status" "pipelined" lp.Profile.lp_status;
  Alcotest.(check bool) "achieved ii" true (lp.Profile.lp_achieved_ii = lr.C.ii);
  Alcotest.(check bool)
    "efficiency in (0,1]" true
    (lp.Profile.lp_efficiency > 0. && lp.Profile.lp_efficiency <= 1.0);
  Alcotest.(check int)
    "prolog words = (sc-1)*ii"
    ((lp.Profile.lp_sc - 1) * Option.get lp.Profile.lp_achieved_ii)
    lp.Profile.lp_prolog_words;
  List.iter
    (fun (rname, occ) ->
      Alcotest.(check bool)
        (rname ^ " occupancy in (0,1]") true (occ > 0. && occ <= 1.0))
    lp.Profile.lp_mrt;
  let j = Profile.loop_to_json lp in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (key ^ " present") true (Json.member key j <> None))
    [
      "loop"; "depth"; "status"; "res_mii"; "rec_mii"; "mii"; "seq_len";
      "achieved_ii"; "optimal_ii"; "efficiency"; "sc"; "unroll";
      "prolog_words"; "epilog_words"; "kernel_words"; "overhead";
      "intervals_probed"; "fuel_spent"; "mrt_occupancy";
    ]

let test_report_json () =
  let lr = compiled_report () in
  let report =
    {
      Profile.r_kernel = "prof";
      r_machine = Machine.warp.Machine.name;
      r_code_size = 10;
      r_loops = [ C.profile_loop Machine.warp lr ];
      r_cycles = Some 100;
      r_flops = Some 40;
      r_mflops = Some 4.0;
      r_dyn_ops = Some 120;
      r_sem_ok = Some true;
      r_utilization = [ ("fadd", 0.4) ];
    }
  in
  let j = Profile.to_json report in
  Alcotest.(check bool)
    "schema_version" true
    (Json.member "schema_version" j = Some (Json.Int 1));
  Alcotest.(check bool)
    "utilization nested" true
    (Json.path [ "utilization"; "fadd" ] j <> None);
  (* serialization is deterministic: same report, same bytes *)
  Alcotest.(check string)
    "byte-stable" (Json.to_string j)
    (Json.to_string (Profile.to_json report))

(* ---- degraded-path statistics (the stats formerly dropped) ---------- *)

let test_degraded_stats () =
  let b = Sp_ir.Builder.create "starved" in
  let a = Sp_ir.Builder.farray b "a" 48 in
  let k = Sp_ir.Builder.fconst b 2.0 in
  Sp_ir.Builder.for_ b (Sp_ir.Region.Const 40) (fun i ->
      let x = Sp_ir.Builder.load_iv b a i 0 in
      let y = Sp_ir.Builder.load_iv b a i 1 in
      Sp_ir.Builder.store_iv b a i 0
        (Sp_ir.Builder.fadd b (Sp_ir.Builder.fmul b x k) y));
  let p = Sp_ir.Builder.finish b in
  let config = { C.default with C.fuel = Some 1 } in
  let r = C.program ~config Machine.warp p in
  match r.C.loops with
  | lr :: _ ->
    Alcotest.(check string)
      "status" "budget-exhausted"
      (C.status_to_string lr.C.status);
    Alcotest.(check bool) "probed recorded" true (lr.C.probed > 0);
    Alcotest.(check bool) "fuel recorded" true (lr.C.fuel_spent > 0)
  | [] -> Alcotest.fail "no loop report"

(* ---- Explain: the scheduler decision log ---------------------------- *)

let pipelined_program () =
  let b = Sp_ir.Builder.create "xpl" in
  let a = Sp_ir.Builder.farray b "a" 48 in
  let k = Sp_ir.Builder.fconst b 1.5 in
  Sp_ir.Builder.for_ b (Sp_ir.Region.Const 40) (fun i ->
      let x = Sp_ir.Builder.load_iv b a i 0 in
      Sp_ir.Builder.store_iv b a i 0 (Sp_ir.Builder.fadd b x k));
  Sp_ir.Builder.finish b

let test_explain_disabled () =
  Explain.disable ();
  ignore (C.program Machine.warp (pipelined_program ()));
  Alcotest.(check bool) "no events when disabled" true (Explain.events () = [])

let test_explain_compile () =
  Explain.enable ();
  ignore (C.program Machine.warp (pipelined_program ()));
  let evs = Explain.events () in
  Explain.disable ();
  let has f = List.exists f evs in
  Alcotest.(check bool)
    "bounds recorded with a binding constraint" true
    (has (function
      | l, Explain.Bounds { mii; res_mii; rec_mii; binding; critical; _ } ->
        l = 0 && mii >= res_mii && mii >= rec_mii
        && List.mem binding [ "resource"; "recurrence"; "control" ]
        && critical <> ""
      | _ -> false));
  Alcotest.(check bool)
    "probe success recorded" true
    (has (function
      | 0, Explain.Probe_ok { s; span; sc } -> s > 0 && span > 0 && sc > 0
      | _ -> false));
  Alcotest.(check bool)
    "mve decision recorded" true
    (has (function
      | 0, Explain.Mve_choice { unroll; binding_q; _ } ->
        unroll >= 1 && binding_q >= 1
      | _ -> false));
  Alcotest.(check bool)
    "outcome recorded" true
    (has (function
      | 0, Explain.Outcome { status = "pipelined"; ii = Some _; _ } -> true
      | _ -> false));
  (* straight-line code outside the loop is stamped loop -1, never 0 *)
  Alcotest.(check bool)
    "loop stamps are -1 or 0 only" true
    (List.for_all (fun (l, _) -> l = -1 || l = 0) evs)

let test_explain_json_stable () =
  let run () =
    Explain.enable ();
    ignore (C.program Machine.warp (pipelined_program ()));
    let s = Json.to_string ~pretty:true (Explain.to_json ()) in
    Explain.disable ();
    s
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-stable across identical runs" a b;
  (* and the artifact is valid JSON of the parser's own dialect *)
  match Json.of_string a with
  | Json.Obj _ -> ()
  | _ -> Alcotest.fail "explain artifact is not an object"

let test_explain_fuel_out () =
  Explain.enable ();
  let config = { C.default with C.fuel = Some 1 } in
  ignore (C.program ~config Machine.warp (pipelined_program ()));
  let evs = Explain.events () in
  Explain.disable ();
  Alcotest.(check bool)
    "fuel exhaustion recorded" true
    (List.exists
       (function 0, Explain.Fuel_out { s } -> s > 0 | _ -> false)
       evs);
  Alcotest.(check bool)
    "budget-exhausted outcome recorded" true
    (List.exists
       (function
         | 0, Explain.Outcome { status = "budget-exhausted"; _ } -> true
         | _ -> false)
       evs)

(* ---- Render: visual schedule artifacts ------------------------------ *)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let test_render_views () =
  Render.disable ();
  let r0 = C.program Machine.warp (pipelined_program ()) in
  Alcotest.(check bool)
    "no views when disabled" true
    (List.for_all (fun lr -> lr.C.view = None) r0.C.loops);
  Render.enable ();
  let r = C.program Machine.warp (pipelined_program ()) in
  Render.disable ();
  match r.C.loops with
  | [ { C.view = Some v; ii = Some ii; sc; unroll; _ } ] ->
    Alcotest.(check int) "view ii" ii v.Render.v_ii;
    Alcotest.(check int) "view sc" sc v.Render.v_sc;
    Alcotest.(check int) "view unroll" unroll v.Render.v_unroll;
    Alcotest.(check bool) "ops present" true (v.Render.v_ops <> []);
    List.iter
      (fun (o : Render.op_row) ->
        Alcotest.(check int)
          "stage = time / ii" (o.Render.op_time / ii) o.Render.op_stage)
      v.Render.v_ops;
    (* MRT demand never exceeds the resource limit in a valid schedule,
       and every row has exactly II residues *)
    List.iter
      (fun (rr : Render.res_row) ->
        Alcotest.(check int) "II residues" ii (Array.length rr.Render.rr_counts);
        Array.iter
          (fun c ->
            Alcotest.(check bool)
              (rr.Render.rr_name ^ " within limit") true
              (c >= 0 && c <= rr.Render.rr_limit))
          rr.Render.rr_counts)
      v.Render.v_mrt;
    List.iter
      (fun (lf : Render.life_row) ->
        Alcotest.(check bool)
          "death >= birth" true
          (lf.Render.lf_death >= lf.Render.lf_birth);
        Alcotest.(check bool) "q >= 1" true (lf.Render.lf_q >= 1))
      v.Render.v_lifetimes;
    let ascii = Render.to_ascii v in
    List.iter
      (fun frag ->
        Alcotest.(check bool)
          (frag ^ " in ascii") true
          (contains ~affix:frag ascii))
      [ "loop 0"; "kernel gantt"; "mrt occupancy" ];
    let html = Render.to_html ~title:"t" [ v ] in
    Alcotest.(check bool)
      "html has inline svg" true
      (contains ~affix:"<svg" html);
    (* self-contained: no external fetches of any kind *)
    List.iter
      (fun banned ->
        Alcotest.(check bool)
          ("no " ^ banned) false
          (contains ~affix:banned html))
      [ "http://"; "https://"; "<script src"; "<link" ];
    Alcotest.(check string)
      "html deterministic" html
      (Render.to_html ~title:"t" [ v ])
  | _ -> Alcotest.fail "expected one pipelined loop with a view"

(* ---- Profile over degraded loops ------------------------------------ *)

module Kernel = Sp_kernels.Kernel

let test_profile_degraded () =
  (* a fault mid-placement degrades the loop to serial code; profiling
     the measurement must not raise and must carry the search stats *)
  let starved = pipelined_program () in
  Sp_util.Fault.arm ~site:"modsched.place" ~after:1;
  let meas =
    Kernel.run Machine.warp
      (Kernel.mk "deg" ~init:(Kernel.init_all_arrays ~seed:1)
         (Kernel.Ir (fun () -> starved)))
  in
  Sp_util.Fault.disarm ();
  Alcotest.(check bool) "run completed" true (meas.Kernel.failure = None);
  let rep = Kernel.profile Machine.warp meas in
  (match rep.Profile.r_loops with
  | [ lp ] ->
    Alcotest.(check bool)
      "degraded status" true
      (String.length lp.Profile.lp_status >= 8
         && String.sub lp.Profile.lp_status 0 8 = "degraded");
    Alcotest.(check bool)
      "not pipelined" true
      (lp.Profile.lp_achieved_ii = None);
    ignore (Json.to_string (Profile.to_json rep))
  | _ -> Alcotest.fail "expected one loop profile");
  (* same contract on the fuel-exhaustion path *)
  let config = { C.default with C.fuel = Some 1 } in
  let meas2 =
    Kernel.run ~config Machine.warp
      (Kernel.mk "bex" ~init:(Kernel.init_all_arrays ~seed:1)
         (Kernel.Ir (fun () -> pipelined_program ())))
  in
  let rep2 = Kernel.profile Machine.warp meas2 in
  match rep2.Profile.r_loops with
  | [ lp ] ->
    Alcotest.(check string)
      "budget-exhausted status" "budget-exhausted" lp.Profile.lp_status;
    Alcotest.(check bool) "probed > 0" true (lp.Profile.lp_probed > 0);
    Alcotest.(check bool) "fuel spent > 0" true (lp.Profile.lp_fuel_spent > 0);
    ignore (Json.to_string (Profile.to_json rep2))
  | _ -> Alcotest.fail "expected one loop profile"

(* ---- simulator utilization accounting ------------------------------- *)

(** On [Machine.serial] every operation reserves exactly one slot of
    the single universal resource, so the simulator's per-resource
    issue-slot uses must total the dynamic operation count — and
    {!Sp_vliw.Stats.utilization} must invert back to the same total. *)
let prop_utilization_sums =
  QCheck2.Test.make ~name:"res_busy sums to dyn_ops (serial)" ~count:40
    ~print:(Fmt.str "%a" Gen.pp_spec) Gen.spec_gen (fun sp ->
      let m = Machine.serial in
      let p, init, inputs = Gen.build sp in
      let r = C.program m p in
      let sim = Sp_vliw.Sim.run ~init ~inputs m p r.C.code in
      let busy = Array.fold_left ( + ) 0 sim.Sp_vliw.Sim.res_busy in
      if busy <> sim.Sp_vliw.Sim.dyn_ops then
        QCheck2.Test.fail_reportf "res_busy total %d <> dyn_ops %d" busy
          sim.Sp_vliw.Sim.dyn_ops;
      let util =
        Sp_vliw.Stats.utilization m ~cycles:sim.Sp_vliw.Sim.cycles
          ~res_busy:sim.Sp_vliw.Sim.res_busy
      in
      let recovered =
        List.fold_left
          (fun acc (rname, u) ->
            let res = Machine.find_resource m rname in
            acc +. (u *. float_of_int (sim.Sp_vliw.Sim.cycles * res.Machine.count)))
          0. util
      in
      Float.abs (recovered -. float_of_int sim.Sp_vliw.Sim.dyn_ops) < 1e-6)

(* ---- Series: rolling time series on a logical clock ----------------- *)

let test_series_ring () =
  let s =
    Series.create ~capacity:4 ~window:4 ~lo:0.0 ~width:1.0 ~buckets:8 ()
  in
  for i = 0 to 9 do
    Series.add s (float_of_int i)
  done;
  Alcotest.(check int) "total count survives eviction" 10 (Series.count s);
  Alcotest.(check (list (pair int (float 1e-9))))
    "newest capacity retained, oldest first"
    [ (6, 6.0); (7, 7.0); (8, 8.0); (9, 9.0) ]
    (Series.retained s)

let test_series_windows () =
  let s =
    Series.create ~capacity:64 ~window:4 ~lo:0.0 ~width:1.0 ~buckets:16 ()
  in
  (* seqs 0..9 fall into windows 0 (0..3), 1 (4..7), 2 (8..9) *)
  for i = 0 to 9 do
    Series.add s (float_of_int i)
  done;
  (match Series.windows s with
  | [ w0; w1; w2 ] ->
    Alcotest.(check int) "w0 index" 0 w0.Series.w_index;
    Alcotest.(check int) "w0 count" 4 w0.Series.w_count;
    Alcotest.(check (float 1e-9)) "w0 sum" 6.0 w0.Series.w_sum;
    Alcotest.(check (float 1e-9)) "w1 min" 4.0 w1.Series.w_min;
    Alcotest.(check (float 1e-9)) "w1 max" 7.0 w1.Series.w_max;
    Alcotest.(check int) "w2 count" 2 w2.Series.w_count;
    (match Series.quantile w1 0.5 with
    | Some v ->
      Alcotest.(check bool) "w1 median in range" true (v >= 4.0 && v <= 7.0)
    | None -> Alcotest.fail "median of a full window")
  | ws ->
    Alcotest.fail (Printf.sprintf "expected 3 windows, got %d" (List.length ws)));
  (* a window index with no samples is empty, and empty windows have no
     quantiles *)
  let empty = Series.window_at s 7 in
  Alcotest.(check int) "empty window count" 0 empty.Series.w_count;
  Alcotest.(check bool)
    "empty window quantiles are None" true
    (Series.quantile empty 0.5 = None && Series.quantile empty 0.99 = None)

let test_series_shard_merge () =
  let shape () =
    Series.create ~capacity:8 ~window:4 ~lo:0.0 ~width:1.0 ~buckets:8 ()
  in
  let a = shape () and b = shape () in
  List.iter (fun i -> Series.add ~seq:i a 1.0) [ 0; 1; 2 ];
  List.iter (fun i -> Series.add ~seq:i b 0.0) [ 5; 6 ];
  let m = Series.merge a b in
  Alcotest.(check int) "merged total" 5 (Series.count m);
  Alcotest.(check (list int))
    "merged seqs in order" [ 0; 1; 2; 5; 6 ]
    (List.map fst (Series.retained m));
  let j = Series.to_json m in
  Alcotest.(check bool)
    "series snapshot is versioned" true
    (Json.member "schema" j = Some (Json.Str "series/1"));
  Alcotest.(check string)
    "snapshot deterministic" (Json.to_string j)
    (Json.to_string (Series.to_json m))

let win_eq a b =
  a.Series.w_index = b.Series.w_index
  && a.Series.w_count = b.Series.w_count
  && Float.abs (a.Series.w_sum -. b.Series.w_sum) < 1e-9
  && (a.Series.w_count = 0
     || Float.abs (a.Series.w_min -. b.Series.w_min) < 1e-9
        && Float.abs (a.Series.w_max -. b.Series.w_max) < 1e-9)
  && a.Series.w_hist.Sp_util.Histogram.counts
     = b.Series.w_hist.Sp_util.Histogram.counts

let prop_series_merge_window =
  (* shards that each saw a slice of one window combine into its true
     aggregate in any order: associative, commutative, empty identity *)
  let slice =
    QCheck2.Gen.(
      small_list
        (pair (int_range 8 11) (map (fun i -> float_of_int i /. 2.0) (int_range 0 19))))
  in
  QCheck2.Test.make
    ~name:"series: window merge associative, commutative, unital" ~count:100
    QCheck2.Gen.(triple slice slice slice)
    (fun (xs, ys, zs) ->
      let mk samples =
        let s =
          Series.create ~capacity:64 ~window:4 ~lo:0.0 ~width:1.0 ~buckets:10 ()
        in
        List.iter (fun (seq, v) -> Series.add ~seq s v) samples;
        Series.window_at s 2
      in
      let wa = mk xs and wb = mk ys and wc = mk zs in
      win_eq
        (Series.merge_window (Series.merge_window wa wb) wc)
        (Series.merge_window wa (Series.merge_window wb wc))
      && win_eq (Series.merge_window wa wb) (Series.merge_window wb wa)
      && win_eq wa (Series.merge_window wa (mk [])))

(* ---- span-tree reconstruction --------------------------------------- *)

let test_trace_tree () =
  let shared_before = Trace.events () in
  let r, evs =
    Trace.with_recording (fun () ->
        Trace.span "outer" (fun () ->
            Trace.span "inner1" (fun () -> ());
            Trace.instant "mark";
            Trace.span "inner2" (fun () -> ());
            17))
  in
  (match r with
  | Result.Ok v -> Alcotest.(check int) "result" 17 v
  | Result.Error _ -> Alcotest.fail "no error expected");
  Alcotest.(check bool)
    "recording leaves global state untouched" true
    ((not (Trace.enabled ())) && Trace.events () = shared_before);
  let trees = Trace.tree_of_events evs in
  Alcotest.(check string)
    "skeleton nests children under their parent"
    {|[{"name":"outer","children":["inner1","mark","inner2"]}]|}
    (Json.to_string (Trace.skeletons_json trees));
  (* the full form carries durations in microseconds *)
  match trees with
  | [ Trace.Node n ] ->
    Alcotest.(check int) "three children" 3 (List.length n.t_children);
    Alcotest.(check bool)
      "full json has dur_us" true
      (match Trace.tree_json (Trace.Node n) with
      | Json.Obj kvs -> List.mem_assoc "dur_us" kvs
      | _ -> false)
  | _ -> Alcotest.fail "expected one root span"

let qt = QCheck_alcotest.to_alcotest

(* ---- metrics under parallelism -------------------------------------- *)

let prop_metrics_parallel_increments =
  QCheck2.Test.make
    ~name:"metrics: concurrent counter increments never lose updates"
    ~count:20
    QCheck2.Gen.(pair (int_range 2 4) (int_range 100 2_000))
    (fun (domains, n) ->
      let c = Metrics.counter "test.parallel.incr" in
      let before = Metrics.counter_value c in
      let ds =
        List.init domains (fun _ ->
            Domain.spawn (fun () ->
                for _ = 1 to n do
                  Metrics.incr c
                done))
      in
      List.iter Domain.join ds;
      (* the merged total equals what the same increments would have
         produced sequentially *)
      Metrics.counter_value c - before = domains * n)

(* ---- deterministic work-cost accounting ------------------------------ *)

(** Arbitrary profiles assembled from single-cell rows: loops -1..3,
    every phase and counter reachable, including duplicate cells (the
    interesting merge case). *)
let gen_cost_profile =
  QCheck2.Gen.(
    map
      (fun cells ->
        List.fold_left
          (fun acc (l, (p, (c, n))) ->
            Cost.merge acc
              (Cost.row ~loop:l
                 (List.nth Cost.all_phases p)
                 [ (List.nth Cost.all_counters c, n) ]))
          Cost.empty cells)
      (small_list
         (pair (int_range (-1) 3)
            (pair
               (int_range 0 (List.length Cost.all_phases - 1))
               (pair
                  (int_range 0 (List.length Cost.all_counters - 1))
                  (int_range 0 50))))))

let prop_cost_merge_laws =
  (* the shard-merge contract the parallel driver and the campaign rely
     on: any bracketing and any order of shard merges yields the same
     profile, with the empty profile as identity and totals additive *)
  QCheck2.Test.make ~name:"cost: merge associative, commutative, unital"
    ~count:200
    QCheck2.Gen.(triple gen_cost_profile gen_cost_profile gen_cost_profile)
    (fun (a, b, c) ->
      Cost.equal
        (Cost.merge (Cost.merge a b) c)
        (Cost.merge a (Cost.merge b c))
      && Cost.equal (Cost.merge a b) (Cost.merge b a)
      && Cost.equal a (Cost.merge a Cost.empty)
      && Cost.equal a (Cost.merge Cost.empty a)
      && Cost.total (Cost.merge a b) = Cost.total a + Cost.total b)

(** The [-j 1 ≡ -j N] identity end to end: compiling the same program
    sequentially and on an 8-domain pool records byte-identical cost
    profiles (collect/inject in loop order + commutative merge). *)
let test_cost_jobs_identity () =
  let profile_of ~jobs p =
    let was = Cost.enabled () in
    if not was then Cost.enable ();
    Fun.protect
      ~finally:(fun () -> if not was then Cost.disable ())
      (fun () ->
        let (_ : C.result), prof =
          Cost.collect (fun () ->
              C.program
                ~config:{ C.default with C.jobs }
                Machine.warp p)
        in
        prof)
  in
  let check name p =
    let p1 = profile_of ~jobs:1 p and p8 = profile_of ~jobs:8 p in
    Alcotest.(check bool) (name ^ ": profile nonempty") false (Cost.is_empty p1);
    Alcotest.(check bool) (name ^ ": -j1 = -j8") true (Cost.equal p1 p8);
    Alcotest.(check string)
      (name ^ ": identical artifacts")
      (Json.to_string (Cost.to_json p1))
      (Json.to_string (Cost.to_json p8));
    Alcotest.(check string)
      (name ^ ": identical folded stacks")
      (Cost.folded p1) (Cost.folded p8)
  in
  List.iter
    (fun k ->
      check k.Sp_kernels.Kernel.name (Sp_kernels.Kernel.program k))
    (List.filteri (fun i _ -> i < 5) Sp_kernels.Livermore.all);
  (* random sibling-loop corpus — the shape the parallel driver batches *)
  let specs =
    List.init 6 (fun i ->
        {
          Gen.seed = 100 + i;
          trip = 17;
          n_stmts = 3;
          use_if = i mod 2 = 0;
          use_accum = true;
          use_chan = false;
          carried_store = i mod 3 = 0;
          empty_body = false;
          maxlat = false;
        })
  in
  let p, _, _ = Gen.build_many specs in
  check "gen corpus" p

let cost_fixture =
  List.fold_left Cost.merge Cost.empty
    [
      Cost.row ~loop:0 Cost.P_ddg [ (Cost.Ddg_edge, 12) ];
      Cost.row ~loop:0 Cost.P_search
        [ (Cost.Mrt_probe, 40); (Cost.Heap_op, 7) ];
      Cost.row ~loop:1 Cost.P_bounds [ (Cost.Spath_relax, 25) ];
      Cost.row ~loop:(-1) Cost.P_other [ (Cost.Heap_op, 3) ];
    ]

(** Golden-file check of the flame/treemap render: pure function of the
    profile (stable colors from a label hash, no clocks), so the HTML
    is byte-stable. Regenerate [golden/cost_flame.golden] by pasting
    the new output when the format changes deliberately. *)
let test_cost_flame_golden () =
  let got = Render.flame_html ~title:"cost profile" (Cost.flame cost_fixture) in
  let ic = open_in "golden/cost_flame.golden" in
  let n = in_channel_length ic in
  let expected = really_input_string ic n in
  close_in ic;
  Alcotest.(check string) "flame html" expected got

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json ordering" `Quick test_json_ordering;
    Alcotest.test_case "json errors" `Quick test_json_errors;
    Alcotest.test_case "json error positions" `Quick test_json_error_positions;
    Alcotest.test_case "json member/path" `Quick test_json_member_path;
    Alcotest.test_case "trace disabled" `Quick test_trace_disabled;
    Alcotest.test_case "trace enabled" `Quick test_trace_enabled;
    Alcotest.test_case "trace error span" `Quick test_trace_error_span;
    Alcotest.test_case "trace compile coverage" `Quick
      test_trace_compile_coverage;
    Alcotest.test_case "metrics counter/gauge" `Quick test_metrics_counter_gauge;
    Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot;
    Alcotest.test_case "metrics reset" `Quick test_metrics_reset;
    Alcotest.test_case "profile loop" `Quick test_profile_loop;
    Alcotest.test_case "report json" `Quick test_report_json;
    Alcotest.test_case "degraded stats" `Quick test_degraded_stats;
    Alcotest.test_case "explain disabled" `Quick test_explain_disabled;
    Alcotest.test_case "explain compile" `Quick test_explain_compile;
    Alcotest.test_case "explain json stable" `Quick test_explain_json_stable;
    Alcotest.test_case "explain fuel out" `Quick test_explain_fuel_out;
    Alcotest.test_case "render views" `Quick test_render_views;
    Alcotest.test_case "profile degraded" `Quick test_profile_degraded;
    Alcotest.test_case "series ring wraparound" `Quick test_series_ring;
    Alcotest.test_case "series windows" `Quick test_series_windows;
    Alcotest.test_case "series shard merge" `Quick test_series_shard_merge;
    Alcotest.test_case "trace span tree" `Quick test_trace_tree;
    Alcotest.test_case "cost jobs identity" `Quick test_cost_jobs_identity;
    Alcotest.test_case "cost flame golden" `Quick test_cost_flame_golden;
    qt prop_series_merge_window;
    qt prop_utilization_sums;
    qt prop_metrics_parallel_increments;
    qt prop_cost_merge_laws;
  ]
