lib/vliw/inst.ml: Fmt Sp_ir
