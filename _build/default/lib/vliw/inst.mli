(** Very long instruction words: any number of micro-operations per
    word (capacity enforced by {!Check}) plus one sequencer control
    field. Hardware loop counters model Warp's sequencer-side looping
    support, so loop control never competes with the datapath. *)

type label = int
(** Symbolic until {!Prog.Asm.finish}; instruction index afterwards. *)

type ctl =
  | Next
  | Halt
  | Jump of label
  | CJump of { cond : Sp_ir.Vreg.t; if_zero : bool; target : label }
      (** branch when [cond <> 0] (or [= 0] when [if_zero]); the
          register is read at issue *)
  | CtrSet of { ctr : int; value : int }
  | CtrSetR of { ctr : int; reg : Sp_ir.Vreg.t }
  | CtrLoop of { ctr : int; target : label }
      (** decrement; jump while still positive *)
  | CtrJumpLt of { ctr : int; bound : int; target : label }

type t = { ops : Sp_ir.Op.t list; ctl : ctl }

val empty : t
val pp_ctl : Format.formatter -> ctl -> unit
val pp : Format.formatter -> t -> unit
