(** Visual schedule artifacts; see the interface. Views are flat
    (strings and ints only) for the same layering reason as {!Profile}
    and {!Explain}. *)

type op_row = {
  op_id : int;
  op_desc : string;
  op_time : int;
  op_len : int;
  op_stage : int;
}

type res_row = { rr_name : string; rr_limit : int; rr_counts : int array }
type life_row = { lf_reg : string; lf_birth : int; lf_death : int; lf_q : int }

type loop_view = {
  v_loop : int;
  v_ii : int;
  v_span : int;
  v_sc : int;
  v_unroll : int;
  v_ops : op_row list;
  v_mrt : res_row list;
  v_lifetimes : life_row list;
}

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* ---- ASCII --------------------------------------------------------- *)

let stage_char st =
  (* iteration (stage) coloring in ASCII: one digit per stage *)
  Char.chr (Char.code '0' + (st mod 10))

let sorted_ops v =
  List.sort
    (fun a b ->
      match compare a.op_time b.op_time with
      | 0 -> compare a.op_id b.op_id
      | c -> c)
    v.v_ops

let pp_ascii ppf (v : loop_view) =
  let width = max 1 v.v_span in
  Fmt.pf ppf "loop %d: II=%d span=%d stages=%d unroll=%d@." v.v_loop v.v_ii
    v.v_span v.v_sc v.v_unroll;
  Fmt.pf ppf "  kernel gantt (cycle 0..%d, digit = stage):@." (width - 1);
  List.iter
    (fun o ->
      let line = Bytes.make width '.' in
      for t = o.op_time to min (width - 1) (o.op_time + o.op_len - 1) do
        Bytes.set line t (stage_char o.op_stage)
      done;
      Fmt.pf ppf "    u%-3d t=%-3d |%s| %s@." o.op_id o.op_time
        (Bytes.to_string line) o.op_desc)
    (sorted_ops v);
  if v.v_mrt <> [] then begin
    Fmt.pf ppf "  mrt occupancy (residue 0..%d, count of %d):@." (v.v_ii - 1)
      v.v_ii;
    List.iter
      (fun r ->
        let cells =
          String.concat ""
            (Array.to_list
               (Array.map
                  (fun c ->
                    if c = 0 then "."
                    else if c < 10 then string_of_int c
                    else "+")
                  r.rr_counts))
        in
        Fmt.pf ppf "    %-6s %d/unit x%d |%s|@." r.rr_name
          (Array.fold_left max 0 r.rr_counts)
          r.rr_limit cells)
      v.v_mrt
  end;
  if v.v_lifetimes <> [] then begin
    Fmt.pf ppf "  mve register lifetimes:@.";
    List.iter
      (fun l ->
        let w = max width (l.lf_death + 1) in
        let line = Bytes.make w '.' in
        for t = l.lf_birth to l.lf_death do
          if t >= 0 && t < w then Bytes.set line t '#'
        done;
        Fmt.pf ppf "    %-8s q=%d |%s| [%d..%d]@." l.lf_reg l.lf_q
          (Bytes.to_string line) l.lf_birth l.lf_death)
      v.v_lifetimes
  end

let to_ascii v = Fmt.str "%a" pp_ascii v

(* ---- HTML / SVG ---------------------------------------------------- *)

(* Fixed palette, one color per pipeline stage (wraps after 8). *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#b07aa1"; "#76b7b2";
     "#edc948"; "#9c755f" |]

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let cell = 14 (* svg pixels per cycle *)
let row_h = 18

let svg_gantt buf (v : loop_view) =
  let ops = sorted_ops v in
  let nrows = List.length ops in
  let w = (max 1 v.v_span * cell) + 220 in
  let h = (nrows * row_h) + 24 in
  Printf.bprintf buf
    "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"kernel \
     gantt\">\n"
    w h;
  (* stage boundaries every II cycles *)
  let x0 = 200 in
  for k = 0 to (max 1 v.v_span / max 1 v.v_ii) + 1 do
    let x = x0 + (k * v.v_ii * cell) in
    if x <= x0 + (v.v_span * cell) then
      Printf.bprintf buf
        "<line x1=\"%d\" y1=\"0\" x2=\"%d\" y2=\"%d\" stroke=\"#ccc\"/>\n" x x
        (nrows * row_h)
  done;
  List.iteri
    (fun i o ->
      let y = i * row_h in
      let color = palette.(o.op_stage mod Array.length palette) in
      Printf.bprintf buf
        "<text x=\"0\" y=\"%d\" font-size=\"11\" \
         font-family=\"monospace\">u%d %s</text>\n"
        (y + 12) o.op_id
        (html_escape
           (if String.length o.op_desc > 24 then String.sub o.op_desc 0 24
            else o.op_desc));
      Printf.bprintf buf
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\">\
         <title>u%d t=%d len=%d stage=%d</title></rect>\n"
        (x0 + (o.op_time * cell))
        (y + 2)
        (max 1 o.op_len * cell)
        (row_h - 4) color o.op_id o.op_time o.op_len o.op_stage)
    ops;
  Printf.bprintf buf
    "<text x=\"%d\" y=\"%d\" font-size=\"10\" fill=\"#666\">cycles 0..%d, \
     II=%d (colors = stages)</text>\n"
    x0
    ((nrows * row_h) + 16)
    (v.v_span - 1) v.v_ii;
  Buffer.add_string buf "</svg>\n"

let mrt_table buf (v : loop_view) =
  Buffer.add_string buf "<table class=\"mrt\"><tr><th>resource</th>";
  for r = 0 to v.v_ii - 1 do
    Printf.bprintf buf "<th>%d</th>" r
  done;
  Buffer.add_string buf "</tr>\n";
  List.iter
    (fun r ->
      Printf.bprintf buf "<tr><td>%s (x%d)</td>" (html_escape r.rr_name)
        r.rr_limit;
      Array.iter
        (fun c ->
          let cls =
            if c = 0 then "z"
            else if c >= r.rr_limit then "full"
            else "part"
          in
          Printf.bprintf buf "<td class=\"%s\">%d</td>" cls c)
        r.rr_counts;
      Buffer.add_string buf "</tr>\n")
    v.v_mrt;
  Buffer.add_string buf "</table>\n"

let svg_lifetimes buf (v : loop_view) =
  let lfs = v.v_lifetimes in
  let wmax =
    List.fold_left (fun a l -> max a (l.lf_death + 1)) (max 1 v.v_span) lfs
  in
  let nrows = List.length lfs in
  let w = (wmax * cell) + 220 in
  let h = (nrows * row_h) + 8 in
  Printf.bprintf buf
    "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"register \
     lifetimes\">\n"
    w h;
  let x0 = 200 in
  List.iteri
    (fun i l ->
      let y = i * row_h in
      Printf.bprintf buf
        "<text x=\"0\" y=\"%d\" font-size=\"11\" \
         font-family=\"monospace\">%s q=%d</text>\n"
        (y + 12)
        (html_escape l.lf_reg)
        l.lf_q;
      Printf.bprintf buf
        "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
         fill=\"#59a14f\"><title>%s [%d..%d] q=%d</title></rect>\n"
        (x0 + (l.lf_birth * cell))
        (y + 4)
        (max cell ((l.lf_death - l.lf_birth + 1) * cell))
        (row_h - 8)
        (html_escape l.lf_reg)
        l.lf_birth l.lf_death l.lf_q)
    lfs;
  Buffer.add_string buf "</svg>\n"

let style =
  {|<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.4em; }
h3 { font-size: 0.95em; color: #444; margin-bottom: 0.3em; }
table.mrt { border-collapse: collapse; font-family: monospace; font-size: 12px; }
table.mrt th, table.mrt td { border: 1px solid #bbb; padding: 2px 6px; text-align: center; }
table.mrt td.z { color: #bbb; }
table.mrt td.part { background: #cfe3f5; }
table.mrt td.full { background: #f5c6c6; }
.meta { color: #555; font-size: 0.9em; }
</style>|}

let to_html ~title (views : loop_view list) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>%s</title>\n%s\n</head><body>\n<h1>%s</h1>\n"
    (html_escape title) style (html_escape title);
  if views = [] then
    Buffer.add_string buf "<p class=\"meta\">no pipelined loops.</p>\n";
  List.iter
    (fun v ->
      Printf.bprintf buf
        "<h2>loop %d</h2>\n<p class=\"meta\">II=%d, span=%d, %d stages, \
         unroll %d</p>\n"
        v.v_loop v.v_ii v.v_span v.v_sc v.v_unroll;
      Buffer.add_string buf "<h3>kernel gantt</h3>\n";
      svg_gantt buf v;
      if v.v_mrt <> [] then begin
        Buffer.add_string buf
          "<h3>modulo reservation table occupancy</h3>\n";
        mrt_table buf v
      end;
      if v.v_lifetimes <> [] then begin
        Buffer.add_string buf "<h3>mve register lifetimes</h3>\n";
        svg_lifetimes buf v
      end)
    views;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

(* ---- service dashboard --------------------------------------------- *)

type strip = { st_name : string; st_points : float list }
type grid = { g_name : string; g_filled : int; g_total : int }

type dash = {
  d_title : string;
  d_tiles : (string * string) list;
  d_strips : strip list;
  d_grids : grid list;
}

(* One sparkline: a polyline over the points, y-normalized to the
   observed [min, max] (a flat series draws a midline), plus the last
   value as text. Pure text generation — same inputs, same bytes. *)
let svg_sparkline buf (s : strip) =
  let pts = Array.of_list s.st_points in
  let n = Array.length pts in
  let w = max 120 (n * 6) and h = 36 in
  Printf.bprintf buf "<div class=\"strip\"><span class=\"lbl\">%s</span>"
    (html_escape s.st_name);
  if n = 0 then Buffer.add_string buf "<span class=\"meta\">no samples</span>"
  else begin
    let mn = Array.fold_left Float.min infinity pts in
    let mx = Array.fold_left Float.max neg_infinity pts in
    let span = mx -. mn in
    Printf.bprintf buf
      "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"%s\">\
       <polyline fill=\"none\" stroke=\"#4e79a7\" stroke-width=\"1.5\" \
       points=\""
      w h (html_escape s.st_name);
    Array.iteri
      (fun i v ->
        let x =
          if n = 1 then w / 2
          else i * (w - 8) / (n - 1) + 4
        in
        let y =
          if span <= 0. then float_of_int (h / 2)
          else
            float_of_int (h - 6)
            -. ((v -. mn) /. span *. float_of_int (h - 12))
        in
        Printf.bprintf buf "%s%d,%.1f" (if i = 0 then "" else " ") x y)
      pts;
    Printf.bprintf buf
      "\"/></svg><span class=\"meta\">min %g · last %g · max %g</span>" mn
      pts.(n - 1) mx
  end;
  Buffer.add_string buf "</div>\n"

(* Occupancy grid: [g_total] cells, the first [g_filled] colored — the
   cache's fill level at a glance. *)
let occupancy_grid buf (g : grid) =
  Printf.bprintf buf
    "<div class=\"grid\"><span class=\"lbl\">%s</span><span \
     class=\"meta\">%d / %d</span><br/>\n"
    (html_escape g.g_name) g.g_filled g.g_total;
  let per_row = 32 in
  let cellpx = 10 in
  let total = max g.g_total 1 in
  let rows = (total + per_row - 1) / per_row in
  Printf.bprintf buf "<svg width=\"%d\" height=\"%d\" role=\"img\" \
                      aria-label=\"occupancy\">\n"
    (per_row * (cellpx + 2))
    (rows * (cellpx + 2));
  for i = 0 to total - 1 do
    let x = i mod per_row * (cellpx + 2) in
    let y = i / per_row * (cellpx + 2) in
    Printf.bprintf buf
      "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n" x y
      cellpx cellpx
      (if i < g.g_filled then "#59a14f" else "#e8e8e8")
  done;
  Buffer.add_string buf "</svg></div>\n"

let dash_style =
  {|<style>
body { font-family: sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 1em; }
.tile { border: 1px solid #ccc; border-radius: 6px; padding: 8px 14px; background: #fafafa; }
.tile .k { color: #666; font-size: 0.8em; display: block; }
.tile .v { font-family: monospace; font-size: 1.2em; }
.strip, .grid { margin: 0.6em 0; }
.lbl { display: inline-block; width: 14em; font-family: monospace; font-size: 0.85em; vertical-align: top; }
.meta { color: #555; font-size: 0.85em; margin-left: 0.8em; }
</style>|}

let dashboard (d : dash) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\">\n\
     <title>%s</title>\n\
     %s\n\
     </head><body>\n\
     <h1>%s</h1>\n"
    (html_escape d.d_title) dash_style (html_escape d.d_title);
  Buffer.add_string buf "<div class=\"tiles\">\n";
  List.iter
    (fun (k, v) ->
      Printf.bprintf buf
        "<div class=\"tile\"><span class=\"k\">%s</span><span \
         class=\"v\">%s</span></div>\n"
        (html_escape k) (html_escape v))
    d.d_tiles;
  Buffer.add_string buf "</div>\n";
  List.iter (fun s -> svg_sparkline buf s) d.d_strips;
  List.iter (fun g -> occupancy_grid buf g) d.d_grids;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

(* ---- flame graph / treemap ------------------------------------------ *)

type flame_node = {
  fn_name : string;
  fn_self : int;
  fn_children : flame_node list;
}

let rec flame_value n =
  List.fold_left (fun acc c -> acc + flame_value c) n.fn_self n.fn_children

let flame_depth roots =
  let rec go d n =
    List.fold_left (fun acc c -> max acc (go (d + 1) c)) d n.fn_children
  in
  List.fold_left (fun acc n -> max acc (go 1 n)) 0 roots

(* Stable color per label: a tiny deterministic hash into the palette,
   so the same phase/counter is the same hue in every render. *)
let flame_color name =
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land 0xffffff) name;
  palette.(!h mod Array.length palette)

let frame_h = 20

(* Classic icicle layout (roots on top), widths proportional to
   subtree value; children laid out left-to-right in list order, so the
   output is a pure function of the nodes. *)
let svg_flame buf roots ~width =
  let total = List.fold_left (fun a n -> a + flame_value n) 0 roots in
  if total > 0 then begin
    let depth = flame_depth roots in
    let h = depth * (frame_h + 2) in
    let scale = float_of_int width /. float_of_int total in
    Printf.bprintf buf
      "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"flame \
       graph\">\n"
      width h;
    let rec draw x y (n : flame_node) =
      let v = flame_value n in
      let w = float_of_int v *. scale in
      if w >= 0.5 then begin
        Printf.bprintf buf
          "<rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" \
           fill=\"%s\" stroke=\"#fff\"><title>%s: %d (%.1f%%)</title>\
           </rect>\n"
          x y w frame_h (flame_color n.fn_name) (html_escape n.fn_name) v
          (100. *. float_of_int v /. float_of_int total);
        if w >= 40. then
          Printf.bprintf buf
            "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" \
             font-family=\"monospace\" fill=\"#222\">%s</text>\n"
            (x +. 3.)
            (y + 14)
            (html_escape
               (let max_chars = int_of_float (w /. 6.5) in
                if String.length n.fn_name > max_chars then
                  String.sub n.fn_name 0 (max max_chars 1)
                else n.fn_name))
      end;
      let cx = ref x in
      List.iter
        (fun c ->
          draw !cx (y + frame_h + 2) c;
          cx := !cx +. (float_of_int (flame_value c) *. scale))
        n.fn_children
    in
    let x = ref 0. in
    List.iter
      (fun n ->
        draw !x 0 n;
        x := !x +. (float_of_int (flame_value n) *. scale))
      roots;
    Buffer.add_string buf "</svg>\n"
  end

(* Slice-and-dice treemap over the top level (alternating split
   direction per depth): simple, deterministic, and good enough to eye
   the heavy loops. *)
let svg_treemap buf roots ~width ~height =
  let total = List.fold_left (fun a n -> a + flame_value n) 0 roots in
  if total > 0 then begin
    Printf.bprintf buf
      "<svg width=\"%d\" height=\"%d\" role=\"img\" aria-label=\"cost \
       treemap\">\n"
      width height;
    let rec tile x y w h horiz label nodes sum =
      let pos = ref 0. in
      List.iter
        (fun n ->
          let v = flame_value n in
          if v > 0 then begin
            let frac = float_of_int v /. float_of_int sum in
            let name =
              if label = "" then n.fn_name else label ^ ";" ^ n.fn_name
            in
            let nx, ny, nw, nh =
              if horiz then (x +. (!pos *. w), y, frac *. w, h)
              else (x, y +. (!pos *. h), w, frac *. h)
            in
            pos := !pos +. frac;
            if n.fn_children = [] then begin
              Printf.bprintf buf
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
                 fill=\"%s\" stroke=\"#fff\"><title>%s: %d</title></rect>\n"
                nx ny nw nh
                (flame_color n.fn_name)
                (html_escape name) v;
              if nw >= 60. && nh >= 14. then
                Printf.bprintf buf
                  "<text x=\"%.1f\" y=\"%.1f\" font-size=\"9\" \
                   font-family=\"monospace\" fill=\"#222\">%s</text>\n"
                  (nx +. 2.) (ny +. 11.)
                  (html_escape n.fn_name)
            end
            else begin
              Printf.bprintf buf
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
                 fill=\"none\" stroke=\"#888\"><title>%s: %d</title>\
                 </rect>\n"
                nx ny nw nh (html_escape name) v;
              tile nx ny nw nh (not horiz) name n.fn_children v
            end
          end)
        nodes
    in
    tile 0. 0. (float_of_int width) (float_of_int height) true "" roots total;
    Buffer.add_string buf "</svg>\n"
  end

let flame_html ~title (roots : flame_node list) : string =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "<!DOCTYPE html>\n\
     <html><head><meta charset=\"utf-8\">\n\
     <title>%s</title>\n\
     %s\n\
     </head><body>\n\
     <h1>%s</h1>\n"
    (html_escape title) style (html_escape title);
  let total = List.fold_left (fun a n -> a + flame_value n) 0 roots in
  if total = 0 then
    Buffer.add_string buf "<p class=\"meta\">no work recorded.</p>\n"
  else begin
    Printf.bprintf buf
      "<p class=\"meta\">%d work units (deterministic counts — no wall \
       clock).</p>\n"
      total;
    Buffer.add_string buf "<h3>flame view (loop &gt; phase &gt; counter)</h3>\n";
    svg_flame buf roots ~width:960;
    Buffer.add_string buf "<h3>treemap</h3>\n";
    svg_treemap buf roots ~width:960 ~height:320
  end;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
