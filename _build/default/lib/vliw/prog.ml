(** Assembled VLIW programs and the assembler used to build them.

    The assembler hands out symbolic labels, lets the emitter place
    them, and resolves everything to instruction indices in
    {!Asm.finish}. *)

type t = { code : Inst.t array }

let length p = Array.length p.code

let pp ppf p =
  Array.iteri (fun i inst -> Fmt.pf ppf "%4d: %a@." i Inst.pp inst) p.code

(** Static code-size statistics (Section 2.4 of the paper). *)
let size p = Array.length p.code

module Asm = struct
  type asm = {
    mutable insts : Inst.t list; (* reversed *)
    mutable n : int;
    mutable labels : (int * int) list; (* symbolic label -> index *)
    mutable next_label : int;
  }

  let create () = { insts = []; n = 0; labels = []; next_label = 0 }

  let fresh_label a =
    let l = a.next_label in
    a.next_label <- l + 1;
    l

  (** Bind [l] to the address of the next instruction emitted. *)
  let place a l = a.labels <- (l, a.n) :: a.labels

  let here a = a.n

  let inst a ?(ctl = Inst.Next) ops =
    a.insts <- { Inst.ops; ctl } :: a.insts;
    a.n <- a.n + 1

  (** Attach [ctl] to the last emitted instruction if its control field
      is free; otherwise emit a fresh instruction carrying it. Used to
      place loop-back branches and join jumps after code whose last
      instruction may already branch (e.g. a conditional ending exactly
      at a construct boundary). *)
  let attach_ctl a ctl =
    (* if a label points at the next address, some branch targets the
       position after the last instruction — the control transfer must
       occupy that position, not piggyback on the previous word *)
    let label_here = List.exists (fun (_, i) -> i = a.n) a.labels in
    match a.insts with
    | ({ Inst.ctl = Inst.Next; _ } as i) :: rest when not label_here ->
      a.insts <- { i with Inst.ctl } :: rest
    | _ -> inst a ~ctl []

  let resolve a l =
    match List.assoc_opt l a.labels with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Asm: unplaced label L%d" l)

  let finish a =
    let fix (i : Inst.t) =
      let ctl =
        match i.ctl with
        | Inst.Next | Inst.Halt | Inst.CtrSet _ | Inst.CtrSetR _ -> i.ctl
        | Inst.Jump l -> Inst.Jump (resolve a l)
        | Inst.CJump c -> Inst.CJump { c with target = resolve a c.target }
        | Inst.CtrLoop c -> Inst.CtrLoop { c with target = resolve a c.target }
        | Inst.CtrJumpLt c ->
          Inst.CtrJumpLt { c with target = resolve a c.target }
      in
      { i with Inst.ctl }
    in
    { code = Array.of_list (List.rev_map fix a.insts) }
end
