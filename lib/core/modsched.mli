(** The software pipelining scheduler (paper Sections 2.2.1–2.2.2):
    per-component scheduling inside precedence-constrained ranges,
    condensation, list scheduling against the modulo reservation table,
    and the iterative search over initiation intervals. *)

open Sp_machine

type schedule = {
  s : int;             (** initiation interval *)
  times : int array;   (** issue time per unit, all non-negative *)
  span : int;          (** max over units of time + length *)
  sc : int;            (** stage count, [ceil(span / s)] *)
}

(** Analysis shared by the interval search: components, the recurrence
    bound, and per-component symbolic longest-path closures valid over
    the searched range. *)
type analysis = {
  a_scc : Scc.t;
  a_spaths : Spath.t option array;
  a_rec_mii : int;
}

val analyze : s_max:int -> Ddg.t -> analysis

val wrap_ok : s:int -> Sunit.t -> at:int -> bool
(** May a unit requiring [no_wrap] sit at time [at] under interval
    [s]? (Its occupancy must fall within one s-window.) *)

val try_schedule :
  Machine.t ->
  Ddg.t ->
  scc:Scc.t ->
  spaths:Spath.t option array ->
  s:int ->
  int array option
(** One attempt at a fixed interval; [None] when some node cannot be
    placed (the driver then tries the next interval). *)

type search =
  | Linear  (** the paper's choice: schedulability is not monotonic *)
  | Binary  (** ablation: assumes monotonicity *)

(** Cost of a completed interval search: how many candidate intervals
    were probed and how many placement probes (fuel units) they cost in
    total — the raw material of the gap table's cost column. *)
type stats = {
  intervals_probed : int;
  fuel_spent : int;
}

(** Result of a budgeted interval search. *)
type outcome =
  | Scheduled of schedule * stats
  | No_interval of stats
      (** no interval in [\[mii, max_ii\]] is schedulable; the stats say
          what the failed search cost *)
  | Fuel_exhausted of stats
      (** the placement-probe budget ran out mid-search *)

val mk_schedule : Sunit.t array -> s:int -> int array -> schedule
(** Package issue times at interval [s] into a {!schedule} (span and
    stage count derived). Used by the exact scheduler in [Sp_opt] to
    return results in the heuristic's currency. *)

val schedule_with_budget :
  ?search:search ->
  ?analysis:analysis ->
  ?fuel:int ->
  Machine.t ->
  Ddg.t ->
  mii:int ->
  max_ii:int ->
  outcome
(** Search [max mii rec_bound .. max_ii] for the smallest schedulable
    interval, spending one unit of [fuel] per reservation-table probe
    (unlimited when omitted). [analysis] must come from {!analyze} with
    [s_max >= max_ii]; it is recomputed when omitted. *)

val schedule :
  ?search:search ->
  ?analysis:analysis ->
  Machine.t ->
  Ddg.t ->
  mii:int ->
  max_ii:int ->
  schedule option
(** {!schedule_with_budget} without a budget; [None] when no interval
    in range is schedulable. *)
