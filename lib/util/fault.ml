(** Deterministic fault injection.

    Compiler passes mark their interesting failure sites with
    {!point}[ "pass.site"]; a test (or [w2c --inject site@k]) arms one
    site so that its [k]-th execution raises {!Injected}. The
    degradation machinery in {!Sp_core.Compile} must catch the
    exception and revert the affected loop to its serial schedule —
    the property suite in [test/test_fault.ml] verifies that under
    every registered fault the compiler still terminates, validates
    and produces interpreter-identical code.

    Sites are registered at module-initialization time by the passes
    that own them, so {!sites} is complete as soon as the libraries
    are linked. All state is global and explicitly deterministic:
    arming, hit counting and firing depend only on the call sequence.

    The armed spec and the fired flag are atomics: long-lived servers
    ({!Sp_serve.Service}) arm a fault around one request on a worker
    domain while other domains keep calling {!is_armed} and {!point},
    and those reads must be well-defined. Hit counting stays a plain
    hash table — it is only touched while a site is armed, and every
    armed section runs single-domain (parallel drivers check
    {!is_armed} and fall back to sequential execution). *)

exception Injected of string
(** Raised by an armed {!point}. Carries the site name. *)

let registered : (string, unit) Hashtbl.t = Hashtbl.create 16
let armed : (string * int) option Atomic.t = Atomic.make None
let hit_counts : (string, int) Hashtbl.t = Hashtbl.create 16
let fired_site : string option Atomic.t = Atomic.make None

let register site = Hashtbl.replace registered site ()

let sites () =
  List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) registered [])

(** Arm [site]: its [after]-th subsequent execution (1-based) raises
    {!Injected}. Re-arming resets all hit counters; only one site is
    armed at a time. *)
let arm ~site ~after =
  if after < 1 then invalid_arg "Fault.arm: after must be >= 1";
  register site;
  Hashtbl.reset hit_counts;
  Atomic.set fired_site None;
  Atomic.set armed (Some (site, after))

(** Disarm everything and clear counters. *)
let disarm () =
  Atomic.set armed None;
  Atomic.set fired_site None;
  Hashtbl.reset hit_counts

(** Executions of [site] since the last {!arm}/{!disarm}. *)
let hits site = Option.value ~default:0 (Hashtbl.find_opt hit_counts site)

(** The armed site, if it has fired since arming. *)
let fired () = Atomic.get fired_site

(** The currently armed [(site, after)] specification, if any — lets a
    driver that must re-arm per work item (the campaign's inject mode)
    read back what the CLI armed. *)
let armed_spec () = Atomic.get armed

(** Whether any site is currently armed. Hit counting is global and
    call-sequence-dependent, so parallel drivers (the batch scheduler
    in {!Sp_core.Compile}) check this and fall back to sequential
    execution while a fault is armed — keeping injection
    deterministic. *)
let is_armed () = Atomic.get armed <> None

(** Mark a failure site. When any site is armed, counts the hit and
    raises {!Injected} on the armed site's [after]-th execution; when
    nothing is armed it costs a single atomic read. *)
let point site =
  match Atomic.get armed with
  | None -> ()
  | Some (s, after) ->
    let n = 1 + hits site in
    Hashtbl.replace hit_counts site n;
    if s = site && n = after then begin
      Atomic.set fired_site (Some site);
      raise (Injected site)
    end

(** [with_armed ~site ~after f] arms [site], runs [f ()], and disarms
    unconditionally — including when [f] raises (typically the
    {!Injected} it asked for). This is the per-request arming
    discipline of the compile service: a fault armed for one request
    on a worker domain can never leak into the next request. *)
let with_armed ~site ~after f =
  arm ~site ~after;
  Fun.protect ~finally:disarm f
